//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Mirrors the subset of the parking_lot API this workspace uses:
//! `Mutex`/`MutexGuard` and `RwLock` with non-poisoning semantics
//! (a panicked holder does not wedge the lock for everyone else).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutex that hands out non-poisoning guards.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    pub fn is_locked(&self) -> bool {
        matches!(self.inner.try_lock(), Err(TryLockError::WouldBlock))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock with non-poisoning guards.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended_is_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        assert!(m.is_locked());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(1u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
