//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`,
//! strategies over integer ranges, tuples, `any::<T>()`, `Just`,
//! `prop_oneof!`, `.prop_map(...)`, and `collection::vec`.
//!
//! Cases are generated from a deterministic per-test seed so failures
//! reproduce across runs. There is **no shrinking**: a failing case is
//! reported at full size. `.proptest-regressions` files are ignored.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// Object-safe so `prop_oneof!` can erase heterogeneous arms; the
    /// combinator methods are `Self: Sized` and so live off the vtable.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between erased alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.arms.len() as u64) as usize;
            self.arms[k].sample(rng)
        }
    }

    /// Integer types samplable from range strategies.
    pub trait SampleUniform: Copy {
        fn to_u128(self) -> u128;
        fn from_u128(v: u128) -> Self;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn to_u128(self) -> u128 { self as u128 }
                fn from_u128(v: u128) -> $t { v as $t }
            }
        )*};
    }

    impl_sample_uniform!(u8, u16, u32, u64, usize);

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let lo = self.start.to_u128();
            let hi = self.end.to_u128();
            assert!(lo < hi, "empty range strategy");
            T::from_u128(lo + rng.below((hi - lo) as u64) as u128)
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let lo = self.start().to_u128();
            let hi = self.end().to_u128();
            T::from_u128(lo + rng.below((hi - lo + 1) as u64) as u128)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        fn generate(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Whole-domain strategy for `T` (see [`any`]).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    /// The canonical strategy for any `Arbitrary` type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name so every run replays the same cases.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Generates deterministic random test functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let __strategies = ($($strat,)+);
                for __case in 0..__cfg.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&__strategies, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategy arms (weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(Box::new($arm) as $crate::strategy::BoxedStrategy<_>,)+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        let s = crate::collection::vec((1u32..50, any::<bool>()), 1..120);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..120).contains(&v.len()));
            assert!(v.iter().all(|&(n, _)| (1..50).contains(&n)));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_runner::TestRng::from_name("arms");
        let s = prop_oneof![(0u32..1).prop_map(|_| 0u8), (0u32..1).prop_map(|_| 1u8)];
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, config, and Just all wire up.
        #[test]
        fn macro_round_trip(x in 3u8..=9, (a, b) in (0u32..4, 0u32..4), tag in Just(7u8)) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(a < 4 && b < 4);
            prop_assert_eq!(tag, 7);
        }
    }
}
