//! Offline stand-in for `criterion`.
//!
//! Provides the group/bench/iter API shape this workspace's benches use
//! and reports a median wall-clock time per iteration. There is no
//! outlier analysis, warm-up tuning, or report output — numbers are
//! printed to stdout, one line per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed passes.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), f)
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input))
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.samples.sort();
        let median = bencher
            .samples
            .get(bencher.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!(
            "bench {}/{}: median {:?} over {} samples",
            self.name,
            id,
            median,
            bencher.samples.len()
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Re-exported for compatibility; prefer `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        let mut runs = 0u32;
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // 1 warm-up + 3 timed passes.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }
}
