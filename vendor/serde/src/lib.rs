//! Offline stand-in for the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on architectural state
//! for forward compatibility but never serializes anything today, so the
//! traits here are pure markers satisfied by every type, and the derive
//! macros (see `serde_derive`) expand to nothing. Swapping the real serde
//! back in requires only restoring the registry dependency.

/// Marker trait; blanket-implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait; blanket-implemented for every type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Owned variant, blanket-implemented like the borrows.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
