//! Offline stand-in for the `rand` crate (0.10 API surface).
//!
//! Only the pieces this workspace touches are provided: a seedable
//! `StdRng` plus `random_range`/`random_bool`. The generator is
//! SplitMix64 — statistically fine for test workload shuffling, not for
//! anything cryptographic.

use std::ops::Range;

/// Core trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types `random_range` can sample.
pub trait UniformInt: Copy {
    fn sample_range(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range(rng: &mut dyn FnMut() -> u64, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty random_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                let r = ((rng() as u128) << 64 | rng() as u128) % span;
                (range.start as u128).wrapping_add(r) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The convenience methods rand 0.10 hangs off every generator.
pub trait RngExt: RngCore {
    /// Uniform sample from a half-open integer range.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let mut draw = || self.next_u64();
        T::sample_range(&mut draw, range)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of mantissa is plenty for test workloads.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform sample of the full domain of `T`.
    fn random<T: Bounded>(&mut self) -> T
    where
        Self: Sized,
    {
        T::full(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Helper for [`RngExt::random`].
pub trait Bounded: Sized {
    fn full(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_bounded {
    ($($t:ty),*) => {$(
        impl Bounded for $t {
            fn full(rng: &mut impl RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_bounded!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, and good enough for workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(16u32..256);
            assert!((16..256).contains(&v));
            let w = rng.random_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
