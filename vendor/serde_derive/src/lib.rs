//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The marker traits in the stub `serde` crate are blanket-implemented,
//! so the derive has nothing to generate; it exists so `#[derive(...)]`
//! and `#[serde(...)]` attributes keep compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
