//! Swapping demo: release 2's alternate storage implementation (§6.2).
//!
//! "A single Ada specification defines the common interface ... Both a
//! swapping and a non-swapping implementation meet this specification ...
//! The system is configured by selecting one of the alternate
//! implementations; most applications will not be affected by this
//! selection."
//!
//! The same workload (a working set larger than its SRO) runs against
//! both managers through the same interface: the non-swapping manager
//! reports exhaustion, the swapping manager transparently evicts and
//! reloads — and the data survives the round trips.
//!
//! Run with: `cargo run --example swapping`

use imax::arch::Level;
use imax::arch::{ObjectSpace, ObjectSpec, Rights};
use imax::storage::{create_sro, FrozenManager, SroQuota, StorageManager, SwappingManager};

const OBJECTS: usize = 24;
const OBJ_BYTES: u32 = 256;
const SRO_BYTES: u32 = 8 * OBJ_BYTES; // room for only 8 of the 24

fn workload(mgr: &mut dyn StorageManager) -> Result<(), String> {
    let mut space = ObjectSpace::new(256 * 1024, 16 * 1024, 4096);
    let root = space.root_sro();
    let sro = create_sro(
        &mut space,
        root,
        Level(0),
        SroQuota {
            data_bytes: SRO_BYTES,
            access_slots: 256,
        },
    )
    .map_err(|e| e.to_string())?;

    // Allocate a working set three times the SRO's capacity, stamping
    // each object.
    let mut objs = Vec::new();
    for i in 0..OBJECTS {
        let o = mgr
            .create_object(&mut space, sro, ObjectSpec::generic(OBJ_BYTES, 0))
            .map_err(|e| format!("allocation {i}: {e}"))?;
        let ad = space.mint(o, Rights::READ | Rights::WRITE);
        space.write_u64(ad, 0, 0xC0FFEE00 + i as u64).unwrap();
        objs.push((o, ad));
    }

    // Revisit everything; under the swapping manager many of these are
    // absent and must come back from the backing store.
    for (i, (o, ad)) in objs.iter().enumerate() {
        if space.table.get(*o).map(|e| e.desc.absent).unwrap_or(false) {
            mgr.ensure_resident(&mut space, *o)
                .map_err(|e| e.to_string())?;
        }
        let v = space.read_u64(*ad, 0).map_err(|e| e.to_string())?;
        if v != 0xC0FFEE00 + i as u64 {
            return Err(format!("object {i} corrupted: {v:#x}"));
        }
    }
    let st = mgr.stats();
    println!(
        "    [{}] allocated {}, swap-outs {}, swap-ins {}, eviction rounds {}",
        mgr.name(),
        st.allocated,
        st.swap_outs,
        st.swap_ins,
        st.eviction_rounds
    );
    Ok(())
}

fn main() {
    println!(
        "workload: {OBJECTS} objects x {OBJ_BYTES} B against an SRO of {SRO_BYTES} B (3x oversubscribed)"
    );

    println!("\nrelease 1 — non-swapping manager:");
    let mut frozen = FrozenManager::new();
    match workload(&mut frozen) {
        Ok(()) => println!("    unexpectedly succeeded"),
        Err(e) => println!("    storage fault, as expected: {e}"),
    }

    println!("\nrelease 2 — swapping manager (same interface, same workload):");
    let mut swapping = SwappingManager::new();
    match workload(&mut swapping) {
        Ok(()) => println!("    all {OBJECTS} objects intact across eviction round trips"),
        Err(e) => panic!("swapping run failed: {e}"),
    }
    println!("\nswapping OK");
}
