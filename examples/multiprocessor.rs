//! Multiprocessor scaling: the paper's "factor of 10" claim (§3).
//!
//! "With the bussing schemes designed for the 432, a factor of 10 in
//! total processing power of a single 432 system is realizable." This
//! example runs the same batch of compute processes on 1..12 processors
//! and prints the speedup curve; the address-interleaved bus model
//! supplies the saturation the paper's claim implies.
//!
//! Run with: `cargo run --release --example multiprocessor`

use imax::gdp::isa::{AluOp, DataDst, DataRef};
use imax::gdp::ProgramBuilder;
use imax::sim::{RunOutcome, System, SystemConfig};

const JOBS: usize = 24;
const ITERS: u64 = 60;
const WORK_PER_ITER: u32 = 400;

/// Runs the batch on `cpus` processors; returns simulated makespan.
fn makespan(cpus: u32, buses: usize) -> u64 {
    let mut sys = System::new(
        &SystemConfig::small()
            .with_processors(cpus)
            .with_buses(buses, 2),
    );
    // Each job: a loop mixing pure compute with memory traffic so the
    // bus model matters.
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(ITERS), DataDst::Local(0));
    p.bind(top);
    p.work(WORK_PER_ITER);
    p.mov(DataRef::Local(0), DataDst::Local(8));
    p.mov(DataRef::Local(8), DataDst::Local(16));
    p.alu(
        AluOp::Sub,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.jump_if_nonzero(DataRef::Local(0), top);
    p.halt();
    let sub = sys.subprogram("job", p.finish(), 64, 8);
    let dom = sys.install_domain("batch", vec![sub], 0);
    for _ in 0..JOBS {
        sys.spawn(dom, 0, None);
    }
    let outcome = sys.run_to_completion(200_000_000);
    assert_eq!(outcome, RunOutcome::Stopped, "{cpus} cpus: {outcome:?}");
    sys.now()
}

fn main() {
    println!("multiprocessor scaling: {JOBS} jobs x {ITERS} iterations");
    println!();
    println!("interleaved buses = 4 (the 432's multi-bus scheme)");
    println!(
        "{:>6} {:>14} {:>9} {:>11}",
        "cpus", "makespan(cy)", "speedup", "efficiency"
    );
    let t1 = makespan(1, 4);
    for cpus in [1u32, 2, 4, 6, 8, 10, 12] {
        let t = makespan(cpus, 4);
        let s = t1 as f64 / t as f64;
        println!(
            "{:>6} {:>14} {:>8.2}x {:>10.0}%",
            cpus,
            t,
            s,
            100.0 * s / cpus as f64
        );
    }
    println!();
    println!("single shared bus (no interleaving): contention bites early");
    println!("{:>6} {:>14} {:>9}", "cpus", "makespan(cy)", "speedup");
    let t1b = makespan(1, 1);
    for cpus in [1u32, 2, 4, 8] {
        let t = makespan(cpus, 1);
        println!("{:>6} {:>14} {:>8.2}x", cpus, t, t1b as f64 / t as f64);
    }
    println!();
    println!("multiprocessor OK (same programs, zero code changes across configurations)");
}
