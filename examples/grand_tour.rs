//! Grand tour: every subsystem in one running system.
//!
//! Boots the multi-user configuration (swapping storage, fair-share
//! scheduling, GC daemon), attaches an asynchronous console, runs a mix
//! of well-behaved and misbehaving programs, recovers a leaked tape
//! drive through the destruction filter, survives a divide-by-zero via
//! the fault service, files the run's results to a byte image, and
//! prints the debugging-base reports.
//!
//! Run with: `cargo run --release --example grand_tour`

use imax::inspect;
use imax::io::iop::{REQ_DATA_OFF, REQ_LEN_OFF, REQ_OP_OFF, REQ_SLOT_REPLY, REQ_STATUS_OFF};
use imax::io::{ConsoleDevice, DeviceImpl, TapePool, OP_WRITE};
use imax::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    // ------------------------------------------------------------------
    // Boot: release-2 storage, fair-share controller, GC daemon on.
    // ------------------------------------------------------------------
    let mut os = Imax::boot(&ImaxConfig::multi_user(2));
    println!("booted iMAX: 2 processors, swapping storage, fair-share scheduling, GC on");

    // ------------------------------------------------------------------
    // Devices: an async console behind the I/O subsystem, and a tape
    // pool with a destruction filter.
    // ------------------------------------------------------------------
    let console = Arc::new(Mutex::new(ConsoleDevice::new("tty0", b"")));
    console.lock().open().expect("open console");
    let req_port = os.attach_device(console.clone(), 16).expect("attach");

    let root = os.sys.space.root_sro();
    let mut pool = TapePool::new(&mut os.sys.space, root, 2).expect("tape pool");
    let tdo_ad = os.sys.space.mint(pool.tdo(), Rights::NONE);
    let fp_ad = os.sys.space.mint(pool.filter_port(), Rights::NONE);
    os.sys.anchor(tdo_ad);
    os.sys.anchor(fp_ad);

    // A client leaks a drive before the applications even start.
    let _leaked = pool.acquire(&mut os.sys.space, root).expect("acquire");
    println!(
        "a client leaked a tape drive ({} of 2 free)",
        pool.free_count()
    );

    // ------------------------------------------------------------------
    // Applications: two async writers (different fair-share weights) and
    // one crasher.
    // ------------------------------------------------------------------
    let reply = create_port(&mut os.sys.space, root, 8, PortDiscipline::Fifo).expect("port");
    os.sys.anchor(reply.ad());

    let writer = |marker: u8, spin: u32| {
        let mut p = ProgramBuilder::new();
        // Ports from the parameter object.
        p.load_ad(imax::arch::sysobj::CTX_SLOT_ARG as u16, DataRef::Imm(0), 5);
        p.load_ad(imax::arch::sysobj::CTX_SLOT_ARG as u16, DataRef::Imm(1), 6);
        // Compute a while (fair-share contends here).
        p.work(spin);
        // Submit an async write of one marker byte.
        p.create_object(
            imax::arch::sysobj::CTX_SLOT_SRO as u16,
            DataRef::Imm((REQ_DATA_OFF + 8) as u64),
            DataRef::Imm(2),
            7,
        );
        p.mov(DataRef::Imm(OP_WRITE as u64), DataDst::Field(7, REQ_OP_OFF));
        p.mov(DataRef::Imm(1), DataDst::Field(7, REQ_LEN_OFF));
        p.mov(DataRef::Imm(marker as u64), DataDst::Field(7, REQ_DATA_OFF));
        p.store_ad(6, 7, DataRef::Imm(REQ_SLOT_REPLY as u64));
        p.send(5, 7);
        // Overlap more compute with the device, then reap the completion.
        p.work(spin);
        p.receive(6, 8);
        let ok = p.new_label();
        p.alu(
            AluOp::Eq,
            DataRef::Field(8, REQ_STATUS_OFF),
            DataRef::Imm(0),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), ok);
        p.push(Instruction::RaiseFault { code: 99 });
        p.bind(ok);
        p.halt();
        p.finish()
    };

    let make_params = |os: &mut Imax| {
        let root = os.sys.space.root_sro();
        let params = os
            .sys
            .space
            .create_object(root, ObjectSpec::generic(0, 2))
            .unwrap();
        os.sys
            .space
            .store_ad_hw(params, 0, Some(req_port.send_only().ad()))
            .unwrap();
        os.sys
            .space
            .store_ad_hw(params, 1, Some(reply.ad()))
            .unwrap();
        os.sys.space.mint(params, Rights::READ)
    };

    let w_a = os.sys.subprogram("writer_a", writer(b'A', 20_000), 64, 12);
    let w_b = os.sys.subprogram("writer_b", writer(b'B', 20_000), 64, 12);
    let mut crash = ProgramBuilder::new();
    crash.work(5_000);
    crash.alu(
        AluOp::Div,
        DataRef::Imm(1),
        DataRef::Imm(0),
        DataDst::Local(0),
    );
    crash.halt();
    let crash_sub = os.sys.subprogram("crasher", crash.finish(), 32, 8);
    let dom = os.sys.install_domain("apps", vec![w_a, w_b, crash_sub], 0);

    let pa = make_params(&mut os);
    let pb = make_params(&mut os);
    let writer_a = os.spawn_weighted(dom, 0, Some(pa), 1);
    let writer_b = os.spawn_weighted(dom, 1, Some(pb), 3);
    let crasher = os.spawn_program(dom, 2, None);
    println!("spawned: writer A (weight 1), writer B (weight 3), and a crasher");

    // ------------------------------------------------------------------
    // Run. The service passes repair/terminate faults, drive the I/O
    // subsystem, and rebalance the controller; the GC daemon collects.
    // ------------------------------------------------------------------
    let outcome = os.run(10_000_000);
    println!("run outcome: {outcome:?}");
    for (name, p) in [("writer A", writer_a), ("writer B", writer_b)] {
        let ps = os.sys.space.process(p).unwrap();
        assert_eq!(ps.status, ProcessStatus::Terminated);
        assert_eq!(ps.fault_code, 0, "{name}: {}", ps.fault_detail);
        println!(
            "  {name}: terminated cleanly after {} cycles",
            ps.total_cycles
        );
    }
    let crash_state = os.sys.space.process(crasher).unwrap();
    println!(
        "  crasher: {:?} (fault: {})",
        crash_state.status, crash_state.fault_detail
    );
    assert!(os
        .fault_log
        .iter()
        .any(|d| matches!(d, FaultDisposition::Terminated { process, .. } if *process == crasher)));
    let mut transcript = console.lock().transcript().to_vec();
    transcript.sort_unstable();
    assert_eq!(transcript, b"AB");
    println!(
        "console transcript (sorted): {:?}",
        String::from_utf8_lossy(&transcript)
    );

    // ------------------------------------------------------------------
    // Lost-object recovery: the daemon has been collecting; service the
    // pool until the leaked drive comes home.
    // ------------------------------------------------------------------
    let mut recovered = 0;
    for _ in 0..40 {
        let _ = os.sys.run_to_quiescence(50_000);
        recovered += pool.recover_lost(&mut os.sys.space).expect("recover");
        if recovered > 0 {
            break;
        }
    }
    assert_eq!(
        recovered,
        1,
        "gc stats: {:?}",
        os.collector.as_ref().unwrap().lock().stats
    );
    println!(
        "destruction filter recovered the leaked drive ({} of 2 free)",
        pool.free_count()
    );

    // ------------------------------------------------------------------
    // File the run's result as a persistent object graph.
    // ------------------------------------------------------------------
    let report_mgr = TypeManager::new(&mut os.sys.space, root, "run_report").unwrap();
    let report = report_mgr
        .create_instance(&mut os.sys.space, root, 16, 0)
        .unwrap();
    let full = report_mgr.amplify(&mut os.sys.space, report).unwrap();
    os.sys
        .space
        .write_u64(full, 0, transcript.len() as u64)
        .unwrap();
    let image = passivate(&mut os.sys.space, full).unwrap().to_bytes();
    println!(
        "filed the run report: {} bytes, type identity included",
        image.len()
    );

    // ------------------------------------------------------------------
    // The debugging base (§9).
    // ------------------------------------------------------------------
    let census = inspect::census(&os.sys.space);
    println!(
        "\nobject census: {} live objects, {} bytes of data parts",
        census.live, census.data_bytes
    );
    for (t, n) in &census.by_type {
        println!("  {t:<24} {n}");
    }
    println!("\nports:\n{}", inspect::port_report(&os.sys.space));
    println!("storage:\n{}", inspect::storage_report(&os.sys.space));
    let gc_stats = os.collector.as_ref().unwrap().lock().stats;
    println!(
        "gc: {} cycles completed, {} objects reclaimed, {} finalized",
        gc_stats.cycles, gc_stats.reclaimed, gc_stats.finalized
    );
    println!("grand tour OK");
}
