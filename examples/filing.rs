//! Object filing: release 2's persistent objects (paper §7.2/§9).
//!
//! A document graph — user-typed records referencing shared attachments
//! with restricted rights — is passivated to a byte image, the "machine"
//! is shut down, and a fresh machine activates the image. Hardware type
//! identity survives: the revived records are amplifiable only by the
//! matching type manager, exactly as §7.2 promises for storage channels.
//!
//! Run with: `cargo run --example filing`

use imax::arch::{ObjectSpace, ObjectSpec, Rights};
use imax::inspect;
use imax::typemgr::TypeManager;
use imax::{activate, passivate, PassiveStore};

fn main() {
    // --- Machine 1: build and file a document graph. ----------------------
    let mut m1 = ObjectSpace::new(256 * 1024, 16 * 1024, 4096);
    let root = m1.root_sro();
    let documents = TypeManager::new(&mut m1, root, "document").expect("type");

    // Two documents sharing one attachment (read-only from doc B).
    let doc_a = documents
        .create_instance(&mut m1, root, 32, 2)
        .expect("doc");
    let doc_b = documents
        .create_instance(&mut m1, root, 32, 2)
        .expect("doc");
    let full_a = documents.amplify(&mut m1, doc_a).expect("amplify");
    let full_b = documents.amplify(&mut m1, doc_b).expect("amplify");
    m1.write_u64(full_a, 0, 0xA11CE).unwrap();
    m1.write_u64(full_b, 0, 0xB0B).unwrap();

    let attachment = m1
        .create_object(root, ObjectSpec::generic(64, 0))
        .expect("attachment");
    let att_rw = m1.mint(attachment, Rights::READ | Rights::WRITE);
    m1.write_u64(att_rw, 0, 0x5EA1).unwrap();
    m1.store_ad(full_a, 0, Some(att_rw)).unwrap();
    m1.store_ad(full_b, 0, Some(att_rw.restricted(Rights::READ)))
        .unwrap();
    // A folder object rooting both documents.
    let folder = m1.create_object(root, ObjectSpec::generic(8, 2)).unwrap();
    let folder_ad = m1.mint(folder, Rights::READ | Rights::WRITE);
    m1.store_ad(folder_ad, 0, Some(full_a)).unwrap();
    m1.store_ad(folder_ad, 1, Some(full_b)).unwrap();

    println!("machine 1 census:\n{:#?}", inspect::census(&m1).by_type);
    println!("folder graph:");
    print!("{}", inspect::graph_dump(&mut m1, folder, 3));

    let image = passivate(&mut m1, folder_ad).expect("passivate").to_bytes();
    println!("filed {} objects into {} bytes", 5, image.len());
    drop(m1); // machine 1 is gone.

    // --- Machine 2: activate. ---------------------------------------------
    let mut m2 = ObjectSpace::new(256 * 1024, 16 * 1024, 4096);
    let root2 = m2.root_sro();
    let documents2 = TypeManager::new(&mut m2, root2, "document").expect("type");

    let store = PassiveStore::from_bytes(&image).expect("parse");
    let folder2 = activate(&mut m2, root2, &store, |name| {
        (name == "document").then_some(documents2.tdo())
    })
    .expect("activate");

    let doc_a2 = m2.load_ad(folder2, 0).unwrap().unwrap();
    let doc_b2 = m2.load_ad(folder2, 1).unwrap().unwrap();
    println!(
        "revived documents: a={:x}, b={:x}",
        m2.read_u64(doc_a2, 0).unwrap(),
        m2.read_u64(doc_b2, 0).unwrap()
    );

    // The shared attachment is still shared...
    let att_via_a = m2.load_ad(doc_a2, 0).unwrap().unwrap();
    let att_via_b = m2.load_ad(doc_b2, 0).unwrap().unwrap();
    assert_eq!(att_via_a.obj, att_via_b.obj, "sharing preserved");
    // ...and B's view is still read-only.
    assert!(m2.write_u64(att_via_a, 8, 1).is_ok());
    assert!(m2.write_u64(att_via_b, 8, 2).is_err());
    println!("attachment sharing and rights preserved across filing");

    // Type identity: the new manager can amplify; a stranger cannot.
    let sealed = doc_a2.restricted(Rights::NONE);
    assert!(documents2.amplify(&mut m2, sealed).is_ok());
    let stranger = TypeManager::new(&mut m2, root2, "stranger").unwrap();
    assert!(stranger.amplify(&mut m2, sealed).is_err());
    println!("type identity preserved and checked after activation");

    // And without the manager present, activation refuses outright.
    let mut m3 = ObjectSpace::new(64 * 1024, 4096, 256);
    let root3 = m3.root_sro();
    assert!(activate(&mut m3, root3, &store, |_| None).is_err());
    println!("activation without the type manager is refused (identity is never dropped)");
    println!("filing OK");
}
