//! Typed ports: Figure 2 in action, plus the runtime-checked variant.
//!
//! Demonstrates the paper's three views of the port mechanism:
//!
//! 1. `Untyped_Ports` (Figure 1) — `any_access` messages; maximal
//!    flexibility, no typing.
//! 2. `Typed_Ports` (Figure 2) — a generic instance per message type;
//!    compile-time checking at **zero cost** ("the code generated for any
//!    instance of this package [is] identical to that generated for the
//!    untyped port package").
//! 3. Runtime-checked ports — "a few more generated instructions making
//!    use of user-defined types": hardware type identity verified on
//!    every send/receive.
//!
//! Run with: `cargo run --example typed_pipeline`

use imax::arch::{ObjectSpace, ObjectSpec, ObjectType, PortDiscipline, Rights, SysState};
use imax::ipc::{create_port, CheckedPort, PortMessage, TypedPort};
use imax::typemgr::TypeManager;

/// An application message type: a fixed-point temperature sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sample {
    sensor: u32,
    millikelvin: u32,
}

impl PortMessage for Sample {
    const DATA_LEN: u32 = 8;

    fn store<S: imax::arch::SpaceAccess + ?Sized>(
        &self,
        space: &mut S,
        ad: imax::arch::AccessDescriptor,
    ) -> Result<(), imax::gdp::Fault> {
        let packed = ((self.sensor as u64) << 32) | self.millikelvin as u64;
        space.write_u64(ad, 0, packed).map_err(Into::into)
    }

    fn load<S: imax::arch::SpaceAccess + ?Sized>(
        space: &mut S,
        ad: imax::arch::AccessDescriptor,
    ) -> Result<Sample, imax::gdp::Fault> {
        let packed = space.read_u64(ad, 0)?;
        Ok(Sample {
            sensor: (packed >> 32) as u32,
            millikelvin: packed as u32,
        })
    }
}

fn main() {
    let mut space = ObjectSpace::new(256 * 1024, 16 * 1024, 4096);
    let root = space.root_sro();

    // --- View 1: untyped (Figure 1). -------------------------------------
    let raw = create_port(&mut space, root, 8, PortDiscipline::Fifo).expect("port");
    let obj = space
        .create_object(root, ObjectSpec::generic(16, 0))
        .expect("msg");
    let msg = space.mint(obj, Rights::READ | Rights::WRITE);
    space.write_u64(msg, 0, 0xfeed).unwrap();
    imax::ipc::untyped::send(&mut space, raw, msg).expect("send");
    let got = imax::ipc::untyped::receive(&mut space, raw)
        .expect("receive")
        .expect("message");
    println!(
        "untyped: sent any_access, received any_access, payload {:#x}",
        space.read_u64(got, 0).unwrap()
    );

    // --- View 2: typed (Figure 2) — compile-time. ------------------------
    let samples: TypedPort<Sample> =
        TypedPort::create(&mut space, root, 8, PortDiscipline::Fifo).expect("typed port");
    for (sensor, mk) in [(1u32, 295_150u32), (2, 273_150), (3, 310_000)] {
        samples
            .send(
                &mut space,
                root,
                &Sample {
                    sensor,
                    millikelvin: mk,
                },
            )
            .expect("typed send");
    }
    let mut readings = Vec::new();
    while let Some(s) = samples.receive(&mut space).expect("typed receive") {
        readings.push(s);
    }
    println!(
        "typed:   {} samples through TypedPort<Sample>:",
        readings.len()
    );
    for s in &readings {
        println!(
            "         sensor {} reads {:.2} K",
            s.sensor,
            s.millikelvin as f64 / 1000.0
        );
    }
    // The wrapper is zero-sized over the raw port — Figure 2's zero-cost
    // claim, visible in the type system itself.
    assert_eq!(
        std::mem::size_of::<TypedPort<Sample>>(),
        std::mem::size_of::<imax::ipc::Port>()
    );

    // --- View 3: runtime-checked — hardware type identity. ---------------
    let mgr = TypeManager::new(&mut space, root, "sample_record").expect("type");
    let port = create_port(&mut space, root, 8, PortDiscipline::Fifo).expect("port");
    let checked = CheckedPort::bind(port, mgr.tdo());

    // A genuine instance passes.
    let inst = mgr
        .create_instance(&mut space, root, 8, 0)
        .expect("instance");
    checked.send(&mut space, inst).expect("checked send");
    println!("checked: instance of 'sample_record' accepted");

    // A forged generic object is rejected *before* it enters the queue.
    let fake_obj = space
        .create_object(root, ObjectSpec::generic(8, 0))
        .expect("obj");
    let fake = space.mint(fake_obj, Rights::READ);
    let err = checked.send(&mut space, fake).unwrap_err();
    println!("checked: forged message rejected ({err})");

    // Even a same-shaped instance of a *different* type is rejected —
    // identity is the TDO, not the layout.
    let other_mgr = TypeManager::new(&mut space, root, "impostor").expect("type");
    let impostor = other_mgr
        .create_instance(&mut space, root, 8, 0)
        .expect("instance");
    assert!(checked.send(&mut space, impostor).is_err());
    println!("checked: same-shaped impostor type rejected");

    let _ = SysState::Generic;
    let _ = ObjectType::GENERIC;
    println!("typed pipeline OK");
}
