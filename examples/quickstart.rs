//! Quickstart: boot iMAX, create a port through the Figure-1 service,
//! and run a producer/consumer pair of processes over it.
//!
//! Run with: `cargo run --example quickstart`

use imax::arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_FIRST_FREE, CTX_SLOT_SRO};
use imax::arch::PortDiscipline;
use imax::gdp::isa::{AluOp, DataDst, DataRef};
use imax::gdp::ProgramBuilder;
use imax::ipc::create_port;
use imax::{Imax, ImaxConfig};

const ITEMS: u64 = 10;

fn main() {
    // 1. Boot the development configuration: one processor, the
    //    non-swapping (release 1) storage manager, garbage collection on.
    let mut os = Imax::boot(&ImaxConfig::development());
    println!("booted iMAX (storage: non-swapping, GC daemon: on)");

    // 2. Create a communication port with the Figure-1 package.
    let root = os.sys.space.root_sro();
    let port =
        create_port(&mut os.sys.space, root, 4, PortDiscipline::Fifo).expect("port creation");
    println!("created a FIFO port (message_count = 4): {}", port.ad());

    // 3. A producer: creates ITEMS message objects, tags each with its
    //    sequence number, and SENDs them (blocking when the queue fills).
    let producer_code = {
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(0), DataDst::Local(0)); // counter
        p.bind(top);
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 5);
        p.mov(DataRef::Local(0), DataDst::Field(5, 0));
        p.send(CTX_SLOT_ARG as u16, 5);
        p.alu(
            AluOp::Add,
            DataRef::Local(0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.alu(
            AluOp::Lt,
            DataRef::Local(0),
            DataRef::Imm(ITEMS),
            DataDst::Local(8),
        );
        p.jump_if_nonzero(DataRef::Local(8), top);
        p.halt();
        p.finish()
    };

    // 4. A consumer: RECEIVEs ITEMS messages (blocking when empty) and
    //    accumulates their tags at local offset 16.
    let consumer_code = {
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(0), DataDst::Local(0)); // counter
        p.mov(DataRef::Imm(0), DataDst::Local(16)); // sum
        p.bind(top);
        p.receive(CTX_SLOT_ARG as u16, CTX_SLOT_FIRST_FREE as u16);
        p.alu(
            AluOp::Add,
            DataRef::Local(16),
            DataRef::Field(CTX_SLOT_FIRST_FREE as u16, 0),
            DataDst::Local(16),
        );
        p.alu(
            AluOp::Add,
            DataRef::Local(0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.alu(
            AluOp::Lt,
            DataRef::Local(0),
            DataRef::Imm(ITEMS),
            DataDst::Local(8),
        );
        p.jump_if_nonzero(DataRef::Local(8), top);
        // Report the sum through the port: one final self-describing
        // message the host reads back.
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 6);
        p.mov(DataRef::Local(16), DataDst::Field(6, 0));
        p.send(CTX_SLOT_ARG as u16, 6);
        p.halt();
        p.finish()
    };

    let producer_sub = os.sys.subprogram("producer", producer_code, 64, 8);
    let consumer_sub = os.sys.subprogram("consumer", consumer_code, 64, 8);
    let dom = os
        .sys
        .install_domain("pipeline", vec![producer_sub, consumer_sub], 0);

    // 5. Spawn both processes; each receives the port as its argument —
    //    capabilities are the only naming there is.
    let producer = os.spawn_program(dom, 0, Some(port.ad()));
    let consumer = os.spawn_program(dom, 1, Some(port.ad()));
    println!("spawned producer {producer:?} and consumer {consumer:?}");

    // 6. Run.
    let outcome = os.run(2_000_000);
    println!("run outcome: {outcome:?}");
    println!(
        "simulated time: {} cycles ({:.1} ms at 8 MHz)",
        os.sys.now(),
        os.sys.now() as f64 / 8_000.0
    );

    // 7. The consumer's report is waiting at the port.
    let report = imax::ipc::untyped::receive(&mut os.sys.space, port)
        .expect("receive")
        .expect("consumer posted its sum");
    let sum = os.sys.space.read_u64(report, 0).expect("read sum");
    println!("consumer summed tags 0..{ITEMS}: {sum}");
    assert_eq!(sum, ITEMS * (ITEMS - 1) / 2);

    // 8. Port statistics show the blocking rendezvous behaviour of
    //    Figure 1 (capacity 4, ten messages: someone must have waited).
    let stats = os.sys.space.port(port.object()).expect("port state").stats;
    println!(
        "port stats: {} sends, {} receives, {} blocked sends, {} blocked receives",
        stats.sends, stats.receives, stats.blocked_sends, stats.blocked_receives
    );
    println!("quickstart OK");
}
