//! Tape spooler: the paper's §8.2 lost-object example, end to end.
//!
//! A pool of tape drives is managed by a type manager. Clients acquire
//! sealed drive handles; a well-behaved client returns its drive, a buggy
//! one simply drops the handle. Without destruction filters "the system
//! will be short one tape drive"; with them, the garbage collector
//! manufactures an access descriptor for the lost handle and sends it to
//! the pool's filter port, and the pool recovers the drive.
//!
//! Run with: `cargo run --example tape_spooler`

use imax::gc::{Collector, GcPhase};
use imax::io::{DeviceImpl, TapePool};
use imax::sim::{System, SystemConfig};

fn main() {
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();

    // A pool of three drives with its own `tape_drive` type and a bound
    // destruction filter.
    let mut pool = TapePool::new(&mut sys.space, root, 3).expect("pool");
    // The pool's TDO and filter port are system-reachable (the pool is a
    // global service).
    let tdo_ad = sys.space.mint(pool.tdo(), i432::NO_RIGHTS);
    let fp_ad = sys.space.mint(pool.filter_port(), i432::NO_RIGHTS);
    sys.anchor(tdo_ad);
    sys.anchor(fp_ad);
    println!("tape pool up: {} drives free", pool.free_count());

    // Client 1 (well-behaved): acquire, write a label, return.
    let h1 = pool.acquire(&mut sys.space, root).expect("acquire");
    pool.with_drive(&mut sys.space, h1, |d| {
        d.write(b"VOL=BACKUP-001").expect("write label");
    })
    .expect("with_drive");
    pool.release(&mut sys.space, h1).expect("release");
    println!(
        "client 1 used and returned a drive ({} free)",
        pool.free_count()
    );

    // Clients 2 and 3 (buggy): acquire drives and lose the handles.
    let _lost_a = pool.acquire(&mut sys.space, root).expect("acquire");
    let _lost_b = pool.acquire(&mut sys.space, root).expect("acquire");
    println!(
        "clients 2 and 3 leaked their handles ({} free — two drives lost)",
        pool.free_count()
    );
    // The handles go out of host scope here: nothing in the object space
    // references them.

    // The garbage collector finds the lost handles. (Driving the
    // collector directly here; the daemon process form is exercised in
    // the quickstart/gc tests.)
    let mut gc = Collector::new();
    gc.collect_full(&mut sys.space).expect("collect");
    println!(
        "GC cycle 1: {} reclaimed, {} delivered to destruction filters",
        gc.stats.reclaimed, gc.stats.finalized
    );

    // The pool services its filter port and recovers the drives.
    let recovered = pool.recover_lost(&mut sys.space).expect("recover");
    println!(
        "pool recovered {recovered} lost drives ({} free again)",
        pool.free_count()
    );
    assert_eq!(pool.free_count(), 3);

    // The recovered handle objects are garbage again (the pool dropped
    // them); a couple of cycles later they are reclaimed for good,
    // without a second filter notification.
    gc.collect_full(&mut sys.space).expect("collect");
    gc.collect_full(&mut sys.space).expect("collect");
    println!(
        "after two more cycles: {} total reclaimed, {} total finalized (no re-notification)",
        gc.stats.reclaimed, gc.stats.finalized
    );
    assert_eq!(gc.stats.finalized, 2);
    assert_eq!(pool.recovered_count, 2);
    assert!(matches!(gc.phase(), GcPhase::Idle));
    println!("tape spooler OK");
}

/// Local shim: rights constants in example scope.
mod i432 {
    pub const NO_RIGHTS: imax::arch::Rights = imax::arch::Rights::NONE;
}
