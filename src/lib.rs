//! Workspace-root library: re-exports for examples and integration tests.
pub use imax;
