//! Timed receives and timeout faults — the "limited set of timeout
//! faults" that §7.3 permits system-level-2 processes.

use imax::arch::sysobj::CTX_SLOT_ARG;
use imax::arch::{PortDiscipline, ProcessStatus, Rights};
use imax::gdp::isa::{DataDst, DataRef, Instruction};
use imax::gdp::{FaultKind, ProgramBuilder};
use imax::ipc::create_port;
use imax::sim::{RunOutcome, System, SystemConfig};

fn timed_receiver(timeout: u64) -> Vec<Instruction> {
    let mut p = ProgramBuilder::new();
    p.push(Instruction::ReceiveTimeout {
        port: CTX_SLOT_ARG as u16,
        dst: 6,
        timeout: DataRef::Imm(timeout),
    });
    // If a message did arrive, record its payload.
    p.mov(DataRef::Field(6, 0), DataDst::Local(0));
    p.halt();
    p.finish()
}

#[test]
fn receive_times_out_on_silence() {
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let port = create_port(&mut sys.space, root, 4, PortDiscipline::Fifo).unwrap();
    sys.anchor(port.ad());
    let sub = sys.subprogram("waiter", timed_receiver(10_000), 64, 12);
    let dom = sys.install_domain("app", vec![sub], 0);
    let proc_ref = sys.spawn(dom, 0, Some(port.ad()));

    // Nobody ever sends. A second spinner keeps the clock advancing past
    // the deadline.
    let mut spin = ProgramBuilder::new();
    spin.work(50_000);
    spin.halt();
    let spin_sub = sys.subprogram("clock", spin.finish(), 32, 8);
    let spin_dom = sys.install_domain("clock", vec![spin_sub], 0);
    sys.spawn(spin_dom, 0, None);

    let _ = sys.run_to_quiescence(1_000_000);
    let ps = sys.space.process(proc_ref).unwrap();
    assert_eq!(
        ps.fault_code,
        FaultKind::Timeout.code(),
        "{}",
        ps.fault_detail
    );
    // No fault port: terminated by delivery.
    assert_eq!(ps.status, ProcessStatus::Terminated);
    // The port's waiting area is clean again.
    let st = sys.space.port(port.object()).unwrap();
    assert_eq!(st.wait_count, 0);
}

#[test]
fn message_beats_the_deadline() {
    let mut sys = System::new(&SystemConfig::small().with_processors(2));
    let root = sys.space.root_sro();
    let port = create_port(&mut sys.space, root, 4, PortDiscipline::Fifo).unwrap();
    sys.anchor(port.ad());
    let rx_sub = sys.subprogram("waiter", timed_receiver(1_000_000), 64, 12);

    // A sender that delivers promptly.
    let mut tx = ProgramBuilder::new();
    tx.create_object(
        imax::arch::sysobj::CTX_SLOT_SRO as u16,
        DataRef::Imm(8),
        DataRef::Imm(0),
        5,
    );
    tx.mov(DataRef::Imm(0xFEED), DataDst::Field(5, 0));
    tx.send(CTX_SLOT_ARG as u16, 5);
    tx.halt();
    let tx_sub = sys.subprogram("sender", tx.finish(), 64, 8);
    let dom = sys.install_domain("pair", vec![rx_sub, tx_sub], 0);
    let rx = sys.spawn(dom, 0, Some(port.ad()));
    sys.spawn(dom, 1, Some(port.ad()));

    let outcome = sys.run_to_completion(5_000_000);
    assert_eq!(outcome, RunOutcome::Stopped);
    let ps = sys.space.process(rx).unwrap();
    assert_eq!(ps.fault_code, 0, "{}", ps.fault_detail);
    assert_eq!(ps.status, ProcessStatus::Terminated);
    assert_eq!(ps.timeout_at, 0, "timer disarmed by the rendezvous");
}

#[test]
fn level2_process_survives_a_timeout_fault() {
    // The §7.3 rule end to end: a level-2 process may take a timeout
    // fault (delivered to its fault port) where any other fault would be
    // a system error.
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let port = create_port(&mut sys.space, root, 4, PortDiscipline::Fifo).unwrap();
    let fault_port = create_port(&mut sys.space, root, 4, PortDiscipline::Fifo).unwrap();
    sys.anchor(port.ad());
    sys.anchor(fault_port.ad());

    let sub = sys.subprogram("svc_waiter", timed_receiver(5_000), 64, 12);
    let dom = sys.install_domain("svc", vec![sub], 0);
    let mut spec = imax::gdp::process::ProcessSpec::new(sys.dispatch_ad());
    spec.sys_level = 2;
    spec.fault_port = Some(fault_port.ad());
    let proc_ref = sys.spawn_with(dom, 0, Some(port.ad()), spec);

    let mut spin = ProgramBuilder::new();
    spin.work(40_000);
    spin.halt();
    let spin_sub = sys.subprogram("clock", spin.finish(), 32, 8);
    let spin_dom = sys.install_domain("clock", vec![spin_sub], 0);
    sys.spawn(spin_dom, 0, None);

    let outcome = sys.run_to_quiescence(1_000_000);
    assert!(
        !matches!(outcome, RunOutcome::SystemError(_)),
        "timeouts are permitted at level 2: {outcome:?}"
    );
    // The faulted process was delivered to its fault port.
    let delivered = imax::ipc::untyped::receive(&mut sys.space, fault_port)
        .unwrap()
        .expect("process delivered to fault port");
    assert_eq!(delivered.obj, proc_ref);
    assert_eq!(
        sys.space.process(proc_ref).unwrap().fault_code,
        FaultKind::Timeout.code()
    );
    let _ = Rights::NONE;
}
