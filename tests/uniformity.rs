//! §4's headline: "the iMAX user sees no difference whatsoever between
//! calling an operating system subprogram and calling some user-defined
//! subprogram." Here that is *measured*: the CALL overhead into a native
//! iMAX service equals the CALL overhead into user interpreted code, and
//! both go through identical machinery (same instruction, same context
//! allocation, same faults).

use imax::arch::sysobj::CTX_SLOT_ARG;
use imax::arch::{CodeBody, Subprogram};
use imax::gdp::isa::{DataDst, DataRef};
use imax::gdp::native::NativeReturn;
use imax::gdp::{ProgramBuilder, StepEvent};
use imax::sim::{System, SystemConfig};

/// Measures the cycles of the first executed instruction (the CALL) of
/// a one-call program against the given target domain.
fn call_cost(sys: &mut System, target: imax::arch::AccessDescriptor) -> u64 {
    let mut p = ProgramBuilder::new();
    p.call(CTX_SLOT_ARG as u16, 0, None, None, None);
    p.halt();
    let sub = sys.subprogram("caller", p.finish(), 32, 8);
    let app = sys.install_domain("app", vec![sub], 0);
    sys.spawn(app, 0, Some(target));
    let mut first = None;
    sys.run_until(10_000, |_, e| {
        if let StepEvent::Executed { cycles, .. } = e {
            if first.is_none() {
                first = Some(*cycles);
            }
        }
        matches!(
            e,
            StepEvent::ProcessExited(_) | StepEvent::ProcessFaulted { .. }
        )
    });
    first.expect("the call executed")
}

#[test]
fn os_calls_cost_the_same_as_user_calls() {
    let mut sys = System::new(&SystemConfig::small());

    // A user subprogram doing nothing.
    let mut body = ProgramBuilder::new();
    body.ret(None, None);
    let user_sub = sys.subprogram("user_noop", body.finish(), 32, 8);
    let user_dom = sys.install_domain("user_pkg", vec![user_sub], 0);

    // An "OS service" doing nothing, as a native body.
    let nid = sys.natives.register("os_noop", |cx| {
        cx.charge(0);
        Ok(NativeReturn::void())
    });
    let os_dom = sys.install_domain(
        "os_pkg",
        vec![Subprogram {
            name: "noop".into(),
            body: CodeBody::Native(nid),
            ctx_data_len: 32,
            ctx_access_len: 8,
        }],
        0,
    );

    let user_cost = call_cost(&mut sys, user_dom);
    let os_cost = call_cost(&mut sys, os_dom);
    // The native call completes call+return in one step; the interpreted
    // call's RETURN is a separate instruction. Compare the *call* side:
    // os_cost == user_cost + return_total (the folded return).
    let ret = sys.cost.return_total();
    assert_eq!(
        os_cost,
        user_cost + ret,
        "identical CALL machinery (native folds its return: {os_cost} vs {user_cost}+{ret})"
    );
}

#[test]
fn os_and_user_calls_fault_identically() {
    // A bad subprogram index faults the same way against both.
    let mut sys = System::new(&SystemConfig::small());
    let mut body = ProgramBuilder::new();
    body.ret(None, None);
    let user_sub = sys.subprogram("user_noop", body.finish(), 32, 8);
    let user_dom = sys.install_domain("user_pkg", vec![user_sub], 0);

    let mut p = ProgramBuilder::new();
    p.call(CTX_SLOT_ARG as u16, 7, None, None, None); // index 7 missing
    p.halt();
    let sub = sys.subprogram("bad_caller", p.finish(), 32, 8);
    let app = sys.install_domain("app", vec![sub], 0);
    let proc_ref = sys.spawn(app, 0, Some(user_dom));
    let _ = sys.run_to_quiescence(10_000);
    assert_eq!(
        sys.space.process(proc_ref).unwrap().fault_code,
        imax::gdp::FaultKind::BadSubprogram.code()
    );
    let _ = (DataRef::Imm(0), DataDst::Local(0));
}
