//! F1 — Figure 1's blocking semantics, exercised through real processes.
//!
//! "If the message queue of the port is full then the calling process
//! will block until a message slot becomes available. ... If no message
//! is available the process will block until a message becomes
//! available."

use imax::arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_SRO};
use imax::arch::{PortDiscipline, ProcessStatus, Rights};
use imax::gdp::isa::{AluOp, DataDst, DataRef};
use imax::gdp::ProgramBuilder;
use imax::ipc::create_port;
use imax::sim::{RunOutcome, System, SystemConfig};

/// Producer sending `n` messages through the argument port.
fn producer(n: u64) -> Vec<imax::gdp::Instruction> {
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(0), DataDst::Local(0));
    p.bind(top);
    p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 5);
    p.mov(DataRef::Local(0), DataDst::Field(5, 0));
    p.send(CTX_SLOT_ARG as u16, 5);
    p.alu(
        AluOp::Add,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.alu(
        AluOp::Lt,
        DataRef::Local(0),
        DataRef::Imm(n),
        DataDst::Local(8),
    );
    p.jump_if_nonzero(DataRef::Local(8), top);
    p.halt();
    p.finish()
}

/// Consumer receiving `n` messages, checking they arrive in FIFO order.
fn consumer(n: u64) -> Vec<imax::gdp::Instruction> {
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    let ok = p.new_label();
    p.mov(DataRef::Imm(0), DataDst::Local(0));
    p.bind(top);
    p.receive(CTX_SLOT_ARG as u16, 6);
    // FIFO check: the tag must equal the receive counter.
    p.alu(
        AluOp::Eq,
        DataRef::Field(6, 0),
        DataRef::Local(0),
        DataDst::Local(8),
    );
    p.jump_if_nonzero(DataRef::Local(8), ok);
    p.push(imax::gdp::Instruction::RaiseFault { code: 77 });
    p.bind(ok);
    p.alu(
        AluOp::Add,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.alu(
        AluOp::Lt,
        DataRef::Local(0),
        DataRef::Imm(n),
        DataDst::Local(8),
    );
    p.jump_if_nonzero(DataRef::Local(8), top);
    p.halt();
    p.finish()
}

#[test]
fn sender_blocks_on_full_queue_and_recovers() {
    // Capacity 2, producer sends 10 before the consumer even starts
    // (consumer is made runnable only after the producer blocks).
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let port = create_port(&mut sys.space, root, 2, PortDiscipline::Fifo).unwrap();
    sys.anchor(port.ad());

    let tx_sub = sys.subprogram("tx", producer(10), 64, 8);
    let rx_sub = sys.subprogram("rx", consumer(10), 64, 12);
    let dom = sys.install_domain("pair", vec![tx_sub, rx_sub], 0);
    let tx = sys.spawn(dom, 0, Some(port.ad()));

    // Run until the producer blocks (queue full, nobody consuming).
    let outcome = sys.run_to_quiescence(100_000);
    assert_eq!(outcome, RunOutcome::Quiescent);
    assert_eq!(
        sys.space.process(tx).unwrap().status,
        ProcessStatus::BlockedSend
    );
    assert_eq!(sys.space.port(port.object()).unwrap().msg_count, 2);

    // Now start the consumer: everything drains, both exit.
    let rx = sys.spawn(dom, 1, Some(port.ad()));
    let outcome = sys.run_to_completion(10_000_000);
    assert_eq!(outcome, RunOutcome::Stopped);
    for p in [tx, rx] {
        assert_eq!(
            sys.space.process(p).unwrap().status,
            ProcessStatus::Terminated
        );
        assert_eq!(sys.space.process(p).unwrap().fault_code, 0);
    }
    let stats = sys.space.port(port.object()).unwrap().stats;
    assert_eq!(stats.sends, 10);
    assert_eq!(stats.receives, 10);
    assert!(stats.blocked_sends >= 1);
}

#[test]
fn receiver_blocks_on_empty_queue_and_recovers() {
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let port = create_port(&mut sys.space, root, 4, PortDiscipline::Fifo).unwrap();
    sys.anchor(port.ad());

    let rx_sub = sys.subprogram("rx", consumer(5), 64, 12);
    let tx_sub = sys.subprogram("tx", producer(5), 64, 8);
    let dom = sys.install_domain("pair", vec![rx_sub, tx_sub], 0);
    let rx = sys.spawn(dom, 0, Some(port.ad()));

    let outcome = sys.run_to_quiescence(100_000);
    assert_eq!(outcome, RunOutcome::Quiescent);
    assert_eq!(
        sys.space.process(rx).unwrap().status,
        ProcessStatus::BlockedReceive
    );

    let tx = sys.spawn(dom, 1, Some(port.ad()));
    let outcome = sys.run_to_completion(10_000_000);
    assert_eq!(outcome, RunOutcome::Stopped);
    for p in [tx, rx] {
        assert_eq!(sys.space.process(p).unwrap().fault_code, 0);
    }
}

#[test]
fn many_producers_one_consumer_fifo_total_order_per_sender() {
    // Three producers, one consumer summing everything: total must match
    // regardless of interleaving; run on two processors for real overlap.
    let mut sys = System::new(&SystemConfig::small().with_processors(2));
    let root = sys.space.root_sro();
    let port = create_port(&mut sys.space, root, 8, PortDiscipline::Fifo).unwrap();
    sys.anchor(port.ad());

    const PER: u64 = 12;
    let tx_sub = sys.subprogram("tx", producer(PER), 64, 8);
    // Summing consumer.
    let rx_code = {
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(0), DataDst::Local(0));
        p.mov(DataRef::Imm(0), DataDst::Local(16));
        p.bind(top);
        p.receive(CTX_SLOT_ARG as u16, 6);
        p.alu(
            AluOp::Add,
            DataRef::Local(16),
            DataRef::Field(6, 0),
            DataDst::Local(16),
        );
        p.alu(
            AluOp::Add,
            DataRef::Local(0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.alu(
            AluOp::Lt,
            DataRef::Local(0),
            DataRef::Imm(3 * PER),
            DataDst::Local(8),
        );
        p.jump_if_nonzero(DataRef::Local(8), top);
        // Publish the sum.
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(8), DataRef::Imm(0), 7);
        p.mov(DataRef::Local(16), DataDst::Field(7, 0));
        p.send(CTX_SLOT_ARG as u16, 7);
        p.halt();
        p.finish()
    };
    let rx_sub = sys.subprogram("rx", rx_code, 64, 12);
    let dom = sys.install_domain("fanin", vec![tx_sub, rx_sub], 0);
    for _ in 0..3 {
        sys.spawn(dom, 0, Some(port.ad()));
    }
    sys.spawn(dom, 1, Some(port.ad()));
    let outcome = sys.run_to_completion(50_000_000);
    assert_eq!(outcome, RunOutcome::Stopped);
    let report = imax::ipc::untyped::receive(&mut sys.space, port)
        .unwrap()
        .unwrap();
    let sum = sys
        .space
        .read_u64(report.restricted(Rights::ALL), 0)
        .unwrap();
    assert_eq!(sum, 3 * (PER * (PER - 1) / 2));
}

#[test]
fn priority_port_delivers_urgent_first() {
    // Host-level: queue three keyed messages, receive by priority.
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let port = create_port(&mut sys.space, root, 8, PortDiscipline::Priority).unwrap();
    for (tag, key) in [(1u64, 50u64), (2, 10), (3, 30)] {
        let o = sys
            .space
            .create_object(root, imax::arch::ObjectSpec::generic(8, 0))
            .unwrap();
        let ad = sys.space.mint(o, Rights::READ | Rights::WRITE);
        sys.space.write_u64(ad, 0, tag).unwrap();
        imax::gdp::port::send(&mut sys.space, None, port.ad(), ad, key, false, false).unwrap();
    }
    let mut order = Vec::new();
    while let Some(m) = imax::ipc::untyped::receive(&mut sys.space, port).unwrap() {
        order.push(sys.space.read_u64(m.restricted(Rights::ALL), 0).unwrap());
    }
    assert_eq!(order, vec![2, 3, 1]);
}
