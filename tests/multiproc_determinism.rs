//! I5 — multiprocessing transparency, paper §3.
//!
//! "The 432 hardware ... makes the existence of multiple general data
//! processors transparent to virtually all of the system software. ...
//! it is merely necessary that the design of iMAX never assume that only
//! a single processor is running."
//!
//! The same logical workload must produce the same logical results on
//! 1, 2, 4 and 8 processors, and identical configurations must replay
//! identically (determinism of the simulation).

use imax::arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_FIRST_FREE, CTX_SLOT_SRO};
use imax::arch::{PortDiscipline, Rights};
use imax::gdp::isa::{AluOp, DataDst, DataRef};
use imax::gdp::ProgramBuilder;
use imax::ipc::create_port;
use imax::sim::{RunOutcome, System, SystemConfig};

/// N workers each send `per_worker` tagged results through a shared
/// port; the host sums what arrives. The sum is the logical result.
fn run_workload(cpus: u32) -> (u64, u64) {
    let mut sys = System::new(&SystemConfig::small().with_processors(cpus));
    let root = sys.space.root_sro();
    let port = create_port(&mut sys.space, root, 128, PortDiscipline::Fifo).unwrap();
    sys.anchor(port.ad());

    const WORKERS: u64 = 6;
    const PER_WORKER: u64 = 8;

    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(0), DataDst::Local(0));
    p.bind(top);
    p.work(300);
    p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 5);
    // Tag = counter * 3 + 1 (any deterministic function works).
    p.alu(
        AluOp::Mul,
        DataRef::Local(0),
        DataRef::Imm(3),
        DataDst::Local(8),
    );
    p.alu(
        AluOp::Add,
        DataRef::Local(8),
        DataRef::Imm(1),
        DataDst::Local(8),
    );
    p.mov(DataRef::Local(8), DataDst::Field(5, 0));
    p.send(CTX_SLOT_ARG as u16, 5);
    p.alu(
        AluOp::Add,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.alu(
        AluOp::Lt,
        DataRef::Local(0),
        DataRef::Imm(PER_WORKER),
        DataDst::Local(16),
    );
    p.jump_if_nonzero(DataRef::Local(16), top);
    p.halt();
    let sub = sys.subprogram("worker", p.finish(), 64, 8);
    let dom = sys.install_domain("pool", vec![sub], 0);
    for _ in 0..WORKERS {
        sys.spawn(dom, 0, Some(port.ad()));
    }
    let outcome = sys.run_to_completion(50_000_000);
    assert_eq!(outcome, RunOutcome::Stopped, "{cpus} cpus");

    // Logical result: the multiset of delivered tags, summarized as a
    // sum (order may differ across processor counts; content may not).
    let mut sum = 0u64;
    let mut count = 0u64;
    while let Some(msg) = imax::ipc::untyped::receive(&mut sys.space, port).unwrap() {
        sum += sys.space.read_u64(msg.restricted(Rights::ALL), 0).unwrap();
        count += 1;
    }
    assert_eq!(count, WORKERS * PER_WORKER);
    (sum, sys.now())
}

#[test]
fn logical_results_identical_across_processor_counts() {
    let (sum1, t1) = run_workload(1);
    let (sum2, t2) = run_workload(2);
    let (sum4, t4) = run_workload(4);
    let (sum8, _t8) = run_workload(8);
    assert_eq!(sum1, sum2);
    assert_eq!(sum1, sum4);
    assert_eq!(sum1, sum8);
    // And multiprocessing actually helped (the point of having it).
    assert!(t2 < t1, "2 cpus {t2} !< 1 cpu {t1}");
    assert!(t4 < t2, "4 cpus {t4} !< 2 cpus {t2}");
}

#[test]
fn identical_runs_replay_identically() {
    let a = run_workload(3);
    let b = run_workload(3);
    assert_eq!(a, b, "same configuration must replay exactly");
}

#[test]
fn explicit_synchronization_only() {
    // Paper §3: "all synchronization within the system must be explicit,
    // never assuming that process priority or other scheduling artifact
    // is sufficient to guarantee exclusion."
    //
    // Two processes of *different priorities* both increment a shared
    // counter through a mutex port (one token circulates). If exclusion
    // held only by priority, the high-priority process could starve or
    // race the other; with the token it cannot.
    let mut sys = System::new(&SystemConfig::small().with_processors(2));
    let root = sys.space.root_sro();
    let mutex = create_port(&mut sys.space, root, 1, PortDiscipline::Fifo).unwrap();
    sys.anchor(mutex.ad());
    // The shared counter object, reachable by both processes.
    let shared = sys
        .space
        .create_object(root, imax::arch::ObjectSpec::generic(8, 0))
        .unwrap();
    let shared_ad = sys.space.mint(shared, Rights::READ | Rights::WRITE);
    sys.anchor(shared_ad);
    // The token: any object.
    let token = sys
        .space
        .create_object(root, imax::arch::ObjectSpec::generic(8, 0))
        .unwrap();
    let token_ad = sys.space.mint(token, Rights::READ | Rights::WRITE);
    imax::ipc::untyped::send(&mut sys.space, mutex, token_ad).unwrap();

    const ROUNDS: u64 = 25;
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(0), DataDst::Local(0));
    p.bind(top);
    // P(mutex): take the token.
    p.receive(CTX_SLOT_ARG as u16, 6);
    // Critical section: read-modify-write the shared counter (slot 5).
    p.mov(DataRef::Field(5, 0), DataDst::Local(8));
    p.work(50); // widen the race window
    p.alu(
        AluOp::Add,
        DataRef::Local(8),
        DataRef::Imm(1),
        DataDst::Local(8),
    );
    p.mov(DataRef::Local(8), DataDst::Field(5, 0));
    // V(mutex): return the token.
    p.send(CTX_SLOT_ARG as u16, 6);
    p.alu(
        AluOp::Add,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.alu(
        AluOp::Lt,
        DataRef::Local(0),
        DataRef::Imm(ROUNDS),
        DataDst::Local(16),
    );
    p.jump_if_nonzero(DataRef::Local(16), top);
    p.halt();
    let sub = sys.subprogram("incrementer", p.finish(), 64, 8);
    let dom = sys.install_domain("racers", vec![sub], 0);

    let a = sys.spawn(dom, 0, Some(mutex.ad()));
    let b = sys.spawn(dom, 0, Some(mutex.ad()));
    // Different priorities: exclusion must not depend on them.
    sys.space.process_mut(a).unwrap().priority = 10;
    sys.space.process_mut(b).unwrap().priority = 200;
    for proc_ref in [a, b] {
        let ctx = sys
            .space
            .load_ad_hw(proc_ref, imax::arch::sysobj::PROC_SLOT_CONTEXT)
            .unwrap()
            .unwrap()
            .obj;
        sys.space
            .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE + 1, Some(shared_ad))
            .unwrap();
    }
    let outcome = sys.run_to_completion(80_000_000);
    assert_eq!(outcome, RunOutcome::Stopped);
    let final_count = sys.space.read_u64(shared_ad, 0).unwrap();
    assert_eq!(final_count, 2 * ROUNDS, "no lost updates under the token");
}
