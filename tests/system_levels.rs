//! I4 — iMAX system levels, paper §7.3: fault-permission tiers and the
//! level-2/3 asynchrony rule, enforced end to end through the machine.

use imax::gdp::isa::{AluOp, DataDst, DataRef};
use imax::gdp::{FaultKind, Instruction, ProgramBuilder, StepEvent};
use imax::levels::SysLevel;
use imax::sim::{RunOutcome, System, SystemConfig};

/// Spawns one process at the given system level running `code`; returns
/// the final event of interest.
fn run_at_level(sys_level: u8, code: Vec<Instruction>) -> (System, StepEvent) {
    let mut sys = System::new(&SystemConfig::small());
    let sub = sys.subprogram("probe", code, 64, 8);
    let dom = sys.install_domain("probe", vec![sub], 0);
    let p = sys.spawn(dom, 0, None);
    sys.space.process_mut(p).unwrap().sys_level = sys_level;
    let mut last = StepEvent::Idle;
    let outcome = sys.run_until(100_000, |_, e| match e {
        StepEvent::ProcessFaulted { .. } | StepEvent::ProcessExited(_) => {
            last = e.clone();
            true
        }
        _ => false,
    });
    // System errors end the run before the predicate sees them.
    if let RunOutcome::SystemError(fault) = outcome {
        last = StepEvent::SystemError {
            process: None,
            fault,
        };
    }
    (sys, last)
}

fn faulting_code() -> Vec<Instruction> {
    let mut p = ProgramBuilder::new();
    p.alu(
        AluOp::Div,
        DataRef::Imm(1),
        DataRef::Imm(0),
        DataDst::Local(0),
    );
    p.halt();
    p.finish()
}

#[test]
fn level3_faults_are_survivable() {
    let (_, ev) = run_at_level(SysLevel::Level3.number(), faulting_code());
    assert!(
        matches!(
            ev,
            StepEvent::ProcessFaulted {
                kind: FaultKind::DivideByZero,
                ..
            }
        ),
        "{ev:?}"
    );
}

#[test]
fn level2_ordinary_fault_is_a_system_error() {
    let (_, ev) = run_at_level(SysLevel::Level2.number(), faulting_code());
    assert!(matches!(ev, StepEvent::SystemError { .. }), "{ev:?}");
}

#[test]
fn level1_fault_is_a_system_error() {
    let (_, ev) = run_at_level(SysLevel::Level1.number(), faulting_code());
    assert!(matches!(ev, StepEvent::SystemError { .. }), "{ev:?}");
}

#[test]
fn clean_code_runs_at_any_level() {
    for lvl in [1u8, 2, 3] {
        let mut p = ProgramBuilder::new();
        p.work(100);
        p.halt();
        let (_, ev) = run_at_level(lvl, p.finish());
        assert!(
            matches!(ev, StepEvent::ProcessExited(_)),
            "level {lvl}: {ev:?}"
        );
    }
}

#[test]
fn system_error_halts_only_the_one_processor() {
    // A level-1 process faulting halts its processor; the other
    // processor keeps running its own work.
    let mut sys = System::new(&SystemConfig::small().with_processors(2));
    let crash_sub = sys.subprogram("crash", faulting_code(), 32, 8);
    let crash_dom = sys.install_domain("crash", vec![crash_sub], 0);
    let crasher = sys.spawn(crash_dom, 0, None);
    sys.space.process_mut(crasher).unwrap().sys_level = 1;

    let mut w = ProgramBuilder::new();
    let top = w.new_label();
    w.mov(DataRef::Imm(200), DataDst::Local(0));
    w.bind(top);
    w.work(200);
    w.alu(
        AluOp::Sub,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    w.jump_if_nonzero(DataRef::Local(0), top);
    w.halt();
    let work_sub = sys.subprogram("work", w.finish(), 64, 8);
    let work_dom = sys.install_domain("work", vec![work_sub], 0);
    let worker = sys.spawn(work_dom, 0, None);

    // The crasher halts its processor: the run reports the system error.
    let mut worker_done = false;
    let outcome = sys.run_until(10_000_000, |_, e| {
        if let StepEvent::ProcessExited(p) = e {
            if *p == worker {
                worker_done = true;
            }
        }
        false
    });
    assert!(
        matches!(outcome, RunOutcome::SystemError(_)),
        "the crasher produced a system error: {outcome:?}"
    );
    // Continue: the surviving processor finishes the worker.
    let outcome = sys.run_until(10_000_000, |_, e| {
        if let StepEvent::ProcessExited(p) = e {
            if *p == worker {
                worker_done = true;
            }
        }
        worker_done
    });
    assert!(
        matches!(outcome, RunOutcome::Stopped | RunOutcome::SystemError(_)),
        "{outcome:?}"
    );
    assert!(worker_done, "the surviving processor finished the worker");
}

#[test]
fn sync_call_direction_rule() {
    // §7.3's structural rule, checked at configuration time.
    assert!(SysLevel::Level3.may_call_sync(SysLevel::Level1));
    assert!(!SysLevel::Level1.may_call_sync(SysLevel::Level3));
    assert!(!SysLevel::Level2.may_call_sync(SysLevel::Level3));
}
