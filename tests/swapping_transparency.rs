//! C9 — alternate storage implementations behind one interface, §6.2,
//! including transparent swap-fault repair for running programs.

use imax::arch::sysobj::CTX_SLOT_FIRST_FREE;
use imax::arch::{AccessDescriptor, ObjectRef, ObjectSpec, ProcessStatus, Rights};
use imax::gdp::isa::{AluOp, DataDst, DataRef};
use imax::gdp::ProgramBuilder;
use imax::sim::RunOutcome;
use imax::{FaultDisposition, Imax, ImaxConfig, StorageChoice};

const PLANTED: usize = 8;
const PLANT_BYTES: u32 = 8 * 1024;

/// A program that sums the first words of the eight objects planted in
/// its context slots 4..12, publishes the sum into the first object's
/// second word, and halts.
fn summer() -> Vec<imax::gdp::Instruction> {
    let mut p = ProgramBuilder::new();
    p.mov(DataRef::Imm(0), DataDst::Local(0));
    for k in 0..PLANTED as u16 {
        p.alu(
            AluOp::Add,
            DataRef::Local(0),
            DataRef::Field(CTX_SLOT_FIRST_FREE as u16 + k, 0),
            DataDst::Local(0),
        );
    }
    p.mov(
        DataRef::Local(0),
        DataDst::Field(CTX_SLOT_FIRST_FREE as u16, 8),
    );
    p.halt();
    p.finish()
}

struct Setup {
    os: Imax,
    proc_ref: ObjectRef,
    objs: Vec<(ObjectRef, AccessDescriptor)>,
}

/// Boots the chosen configuration and plants the objects + program.
fn setup(choice: StorageChoice) -> Setup {
    let cfg = ImaxConfig {
        storage: choice,
        gc: None,
        ..ImaxConfig::development()
    };
    let mut os = Imax::boot(&cfg);
    let root = os.sys.space.root_sro();
    let mut objs = Vec::new();
    for i in 0..PLANTED as u64 {
        let o = os
            .sys
            .space
            .create_object(root, ObjectSpec::generic(PLANT_BYTES, 0))
            .unwrap();
        let ad = os.sys.space.mint(o, Rights::READ | Rights::WRITE);
        os.sys.space.write_u64(ad, 0, (i + 1) * 10).unwrap();
        objs.push((o, ad));
    }
    let sub = os.sys.subprogram("summer", summer(), 64, 16);
    let dom = os.sys.install_domain("app", vec![sub], 0);
    let proc_ref = os.spawn_program(dom, 0, None);
    let ctx = os
        .sys
        .space
        .load_ad_hw(proc_ref, imax::arch::sysobj::PROC_SLOT_CONTEXT)
        .unwrap()
        .unwrap()
        .obj;
    for (k, (_, ad)) in objs.iter().enumerate() {
        os.sys
            .space
            .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE + k as u32, Some(*ad))
            .unwrap();
    }
    Setup { os, proc_ref, objs }
}

fn finish(mut setup: Setup) -> (u64, Vec<FaultDisposition>) {
    let outcome = setup.os.run(20_000_000);
    assert!(
        matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
        "{outcome:?}; faults: {:?}",
        setup.os.fault_log
    );
    assert_eq!(
        setup.os.sys.space.process(setup.proc_ref).unwrap().status,
        ProcessStatus::Terminated,
        "faults: {:?}",
        setup.os.fault_log
    );
    // The result object may itself be swapped out by now; bring it back
    // through the standard interface before reading.
    let (result_obj, result_ad) = setup.objs[0];
    setup
        .os
        .storage
        .lock()
        .ensure_resident(&mut setup.os.sys.space, result_obj)
        .unwrap();
    let sum = setup.os.sys.space.read_u64(result_ad, 8).unwrap();
    (sum, setup.os.fault_log.clone())
}

#[test]
fn same_program_same_answer_both_managers() {
    let (a, faults_a) = finish(setup(StorageChoice::NonSwapping));
    let (b, faults_b) = finish(setup(StorageChoice::Swapping));
    assert_eq!(a, 360);
    assert_eq!(a, b, "the program cannot tell the implementations apart");
    assert!(faults_a.is_empty());
    assert!(faults_b.is_empty());
}

#[test]
fn swap_faults_are_transparent_to_the_program() {
    let mut s = setup(StorageChoice::Swapping);
    let root = s.os.sys.space.root_sro();

    // Allocation pressure through the standard interface: keep creating
    // 4 KiB hogs until at least half of the planted objects have been
    // evicted (each planted object frees 8 KiB when it goes).
    {
        let mut guard = s.os.storage.lock();
        for _ in 0..512 {
            let absent = s
                .objs
                .iter()
                .filter(|(o, _)| s.os.sys.space.entry(*o).unwrap().desc.absent)
                .count();
            if absent >= PLANTED / 2 {
                break;
            }
            let _ =
                guard.create_object(&mut s.os.sys.space, root, ObjectSpec::generic(4 * 1024, 0));
        }
    }
    let absent = s
        .objs
        .iter()
        .filter(|(o, _)| s.os.sys.space.entry(*o).unwrap().desc.absent)
        .count();
    assert!(absent >= 1, "pressure must have evicted something");

    let (sum, faults) = finish(s);
    assert_eq!(sum, 360, "right answer despite eviction");
    assert!(
        faults
            .iter()
            .any(|d| matches!(d, FaultDisposition::Restarted { .. })),
        "expected repaired swap faults; log: {faults:?}"
    );
    assert!(
        !faults
            .iter()
            .any(|d| matches!(d, FaultDisposition::Terminated { .. })),
        "no process should die to a swap fault; log: {faults:?}"
    );
}
