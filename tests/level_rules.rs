//! I1 — the level (lifetime) rule, paper §5.
//!
//! "The hardware ensures that an access for an object may never be stored
//! into an object with a lower (more global) level number."

use imax::arch::{ArchError, Level, ObjectSpace, ObjectSpec, Rights};
use proptest::prelude::*;

fn space() -> ObjectSpace {
    ObjectSpace::new(256 * 1024, 16 * 1024, 4096)
}

fn object_at(space: &mut ObjectSpace, level: u16) -> imax::arch::AccessDescriptor {
    let root = space.root_sro();
    let o = space
        .create_object(
            root,
            ObjectSpec {
                level: Some(Level(level)),
                ..ObjectSpec::generic(8, 4)
            },
        )
        .unwrap();
    space.mint(o, Rights::ALL)
}

#[test]
fn exhaustive_small_levels() {
    // Every (container, target) pair in a small grid: storing succeeds
    // exactly when target.level <= container.level.
    for container_level in 0..6u16 {
        for target_level in 0..6u16 {
            let mut s = space();
            let container = object_at(&mut s, container_level);
            let target = object_at(&mut s, target_level);
            let result = s.store_ad(container, 0, Some(target));
            if target_level <= container_level {
                assert!(
                    result.is_ok(),
                    "store level-{target_level} into level-{container_level} must succeed"
                );
            } else {
                assert!(
                    matches!(result, Err(ArchError::LevelViolation { .. })),
                    "store level-{target_level} into level-{container_level} must fault"
                );
            }
        }
    }
}

#[test]
fn null_stores_are_always_legal() {
    let mut s = space();
    let container = object_at(&mut s, 0);
    assert!(s.store_ad(container, 0, None).is_ok());
}

#[test]
fn violation_leaves_slot_unchanged() {
    let mut s = space();
    let container = object_at(&mut s, 1);
    let ok_target = object_at(&mut s, 0);
    let bad_target = object_at(&mut s, 5);
    s.store_ad(container, 0, Some(ok_target)).unwrap();
    assert!(s.store_ad(container, 0, Some(bad_target)).is_err());
    assert_eq!(s.load_ad(container, 0).unwrap(), Some(ok_target));
}

#[test]
fn level_faults_are_counted() {
    let mut s = space();
    let container = object_at(&mut s, 0);
    let target = object_at(&mut s, 3);
    let before = s.stats.level_faults;
    let _ = s.store_ad(container, 0, Some(target));
    let _ = s.store_ad(container, 1, Some(target));
    assert_eq!(s.stats.level_faults, before + 2);
}

proptest! {
    /// Random graphs obey the rule: after arbitrary permitted stores, no
    /// object's access part ever references a shorter-lived object.
    #[test]
    fn no_reachable_dangling_potential(
        levels in proptest::collection::vec(0u16..8, 2..12),
        stores in proptest::collection::vec((0usize..12, 0usize..12, 0u32..4), 0..60),
    ) {
        let mut s = space();
        let objs: Vec<_> = levels.iter().map(|l| object_at(&mut s, *l)).collect();
        for (from, to, slot) in stores {
            if from >= objs.len() || to >= objs.len() {
                continue;
            }
            // Attempt the store; the space may refuse it.
            let _ = s.store_ad(objs[from], slot, Some(objs[to]));
        }
        // Invariant: every stored edge points to an object that lives at
        // least as long as its container.
        for ad in &objs {
            let container_level = s.table.get(ad.obj).unwrap().desc.level;
            for edge in s.scan_access_part(ad.obj).unwrap() {
                let target_level = s.table.get(edge.obj).unwrap().desc.level;
                prop_assert!(
                    target_level <= container_level,
                    "container level {container_level:?} holds target level {target_level:?}"
                );
            }
        }
    }
}

/// The rule holds through the *full machine path* too: a simulated
/// program that tries to publish a local object through a global one
/// takes a level fault.
#[test]
fn machine_path_enforcement() {
    use imax::arch::sysobj::CTX_SLOT_FIRST_FREE;
    use imax::gdp::isa::DataRef;
    use imax::gdp::{FaultKind, ProgramBuilder, StepEvent};
    use imax::sim::{System, SystemConfig};

    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    // A global container and a local object, planted in the program's
    // context slots.
    let global = sys
        .space
        .create_object(root, ObjectSpec::generic(0, 4))
        .unwrap();
    let global_ad = sys.space.mint(global, Rights::ALL);
    let local = sys
        .space
        .create_object(
            root,
            ObjectSpec {
                level: Some(Level(9)),
                ..ObjectSpec::generic(8, 0)
            },
        )
        .unwrap();
    let local_ad = sys.space.mint(local, Rights::ALL);

    let mut p = ProgramBuilder::new();
    p.store_ad(
        (CTX_SLOT_FIRST_FREE + 1) as u16,
        CTX_SLOT_FIRST_FREE as u16,
        DataRef::Imm(0),
    );
    p.halt();
    let sub = sys.subprogram("leaker", p.finish(), 32, 8);
    let dom = sys.install_domain("app", vec![sub], 0);
    let proc_ref = sys.spawn(dom, 0, None);
    let ctx = sys
        .space
        .load_ad_hw(proc_ref, imax::arch::sysobj::PROC_SLOT_CONTEXT)
        .unwrap()
        .unwrap()
        .obj;
    sys.space
        .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE, Some(global_ad))
        .unwrap();
    sys.space
        .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE + 1, Some(local_ad))
        .unwrap();

    let mut faulted = None;
    sys.run_until(10_000, |_, e| {
        if let StepEvent::ProcessFaulted { kind, .. } = e {
            faulted = Some(*kind);
            true
        } else {
            matches!(e, StepEvent::ProcessExited(_))
        }
    });
    assert_eq!(faulted, Some(FaultKind::Level));
}
