//! I6 — on-the-fly garbage collection safety and liveness, paper §8.1.
//!
//! Property-based: random mutator operation sequences interleaved with
//! collector increments never reclaim a reachable object, and everything
//! unreachable is reclaimed within two full cycles.

use imax::arch::{
    AccessDescriptor, ObjectSpace, ObjectSpec, ObjectType, ProcessorState, Rights, SysState,
    SystemType,
};
use imax::gc::Collector;
use proptest::prelude::*;
use std::collections::HashSet;

/// A space with one processor anchoring a root-directory object with
/// `slots` slots.
fn space_with_root(slots: u32) -> (ObjectSpace, imax::arch::ObjectRef) {
    let mut s = ObjectSpace::new(512 * 1024, 32 * 1024, 8192);
    let root = s.root_sro();
    let cpu = s
        .create_object(
            root,
            ObjectSpec {
                data_len: 0,
                access_len: imax::arch::sysobj::CPU_ACCESS_SLOTS,
                otype: ObjectType::System(SystemType::Processor),
                level: None,
                sys: SysState::Processor(ProcessorState::new(0)),
            },
        )
        .unwrap();
    let dir = s
        .create_object(root, ObjectSpec::generic(0, slots))
        .unwrap();
    let dir_ad = s.mint(dir, Rights::READ | Rights::WRITE);
    s.store_ad_hw(cpu, imax::arch::sysobj::CPU_SLOT_ROOT, Some(dir_ad))
        .unwrap();
    (s, dir)
}

/// One mutator action in the random schedule.
#[derive(Debug, Clone)]
enum Action {
    /// Allocate a new object and store it at root-directory slot `k`.
    AllocAt(u32),
    /// Copy the AD at slot `a` to slot `b`.
    Copy(u32, u32),
    /// Null slot `k`.
    Drop(u32),
    /// Store slot `a`'s AD into slot 0 of the object at slot `b`.
    Link(u32, u32),
    /// Run `n` collector increments.
    GcSteps(u8),
}

fn action_strategy(slots: u32) -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..slots).prop_map(Action::AllocAt),
        ((0..slots), (0..slots)).prop_map(|(a, b)| Action::Copy(a, b)),
        (0..slots).prop_map(Action::Drop),
        ((0..slots), (0..slots)).prop_map(|(a, b)| Action::Link(a, b)),
        (1u8..12).prop_map(Action::GcSteps),
    ]
}

/// Everything reachable from the root directory (full references, so
/// recycled table slots are never confused with their predecessors).
fn reachable(s: &ObjectSpace, dir: imax::arch::ObjectRef) -> HashSet<imax::arch::ObjectRef> {
    let mut seen = HashSet::new();
    let mut stack = vec![dir];
    seen.insert(dir);
    while let Some(o) = stack.pop() {
        for ad in s.scan_access_part(o).unwrap_or_default() {
            if s.table.get(ad.obj).is_ok() && seen.insert(ad.obj) {
                stack.push(ad.obj);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn safety_and_liveness(actions in proptest::collection::vec(action_strategy(8), 1..120)) {
        const SLOTS: u32 = 8;
        let (mut s, dir) = space_with_root(SLOTS);
        let dir_ad = s.mint(dir, Rights::READ | Rights::WRITE);
        let mut gc = Collector::new();

        // Track every object the mutator ever allocated.
        let mut allocated: Vec<AccessDescriptor> = Vec::new();
        let root_sro = s.root_sro();

        for a in &actions {
            match a {
                Action::AllocAt(k) => {
                    let o = s
                        .create_object(root_sro, ObjectSpec::generic(16, 2))
                        .unwrap();
                    let ad = s.mint(o, Rights::READ | Rights::WRITE);
                    allocated.push(ad);
                    s.store_ad(dir_ad, *k, Some(ad)).unwrap();
                }
                Action::Copy(a, b) => {
                    let ad = s.load_ad(dir_ad, *a).unwrap();
                    s.store_ad(dir_ad, *b, ad).unwrap();
                }
                Action::Drop(k) => {
                    s.store_ad(dir_ad, *k, None).unwrap();
                }
                Action::Link(a, b) => {
                    if let (Ok(Some(src)), Ok(Some(dst))) =
                        (s.load_ad(dir_ad, *a), s.load_ad(dir_ad, *b))
                    {
                        // May legitimately fail on a 0-access-slot object;
                        // our allocations all have 2 slots.
                        let _ = s.store_ad(dst, 0, Some(src));
                    }
                }
                Action::GcSteps(n) => {
                    for _ in 0..*n {
                        gc.step(&mut s).unwrap();
                    }
                }
            }
            // SAFETY: every object reachable from the root directory is
            // still alive right now.
            let live = reachable(&s, dir);
            for r in &live {
                prop_assert!(
                    s.table.get(*r).is_ok(),
                    "reachable object {r:?} was reclaimed"
                );
            }
        }

        // LIVENESS: two full cycles from any intermediate state reclaim
        // every unreachable allocation.
        gc.collect_full(&mut s).unwrap();
        gc.collect_full(&mut s).unwrap();
        let live = reachable(&s, dir);
        for ad in &allocated {
            let alive = s.table.get(ad.obj).is_ok();
            let is_reachable = live.contains(&ad.obj);
            prop_assert_eq!(
                alive, is_reachable,
                "object {:?}: alive={} reachable={}",
                ad.obj, alive, is_reachable
            );
        }
    }
}

/// The collector's sim-cycle accounting is monotone and cycles complete.
#[test]
fn accounting_sane_over_many_cycles() {
    let (mut s, dir) = space_with_root(4);
    let dir_ad = s.mint(dir, Rights::READ | Rights::WRITE);
    let root_sro = s.root_sro();
    let mut gc = Collector::new();
    let mut last = 0;
    for round in 0..10 {
        // Churn.
        for k in 0..4 {
            let o = s
                .create_object(root_sro, ObjectSpec::generic(8, 0))
                .unwrap();
            let ad = s.mint(o, Rights::READ);
            s.store_ad(dir_ad, k, Some(ad)).unwrap();
        }
        gc.collect_full(&mut s).unwrap();
        assert!(gc.stats.sim_cycles > last, "round {round}");
        last = gc.stats.sim_cycles;
        assert_eq!(gc.stats.cycles, round + 1);
    }
}
