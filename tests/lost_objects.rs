//! C10 end-to-end — destruction filters recover lost objects while the
//! whole system (processes, daemon, pool) runs together, paper §8.2.

use imax::arch::Rights;
use imax::gc::{drain_filter_port, install_gc_daemon, Collector};
use imax::io::TapePool;
use imax::ipc::Port;
use imax::sim::{System, SystemConfig};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn lost_drives_recovered_under_a_running_daemon() {
    let mut sys = System::new(&SystemConfig::small().with_processors(2));
    let root = sys.space.root_sro();
    let mut pool = TapePool::new(&mut sys.space, root, 4).unwrap();
    let tdo_ad = sys.space.mint(pool.tdo(), Rights::NONE);
    let fp_ad = sys.space.mint(pool.filter_port(), Rights::NONE);
    sys.anchor(tdo_ad);
    sys.anchor(fp_ad);

    let collector = Arc::new(Mutex::new(Collector::new()));
    install_gc_daemon(&mut sys, Arc::clone(&collector), 16, 200);

    // Lose three of four drives.
    for _ in 0..3 {
        let _lost = pool.acquire(&mut sys.space, root).unwrap();
    }
    assert_eq!(pool.free_count(), 1);

    // Let the daemon run; service the pool periodically until recovered.
    let mut recovered_total = 0;
    for _round in 0..60 {
        let _ = sys.run_to_quiescence(40_000);
        recovered_total += pool.recover_lost(&mut sys.space).unwrap();
        if recovered_total == 3 {
            break;
        }
    }
    assert_eq!(recovered_total, 3, "stats: {:?}", collector.lock().stats);
    assert_eq!(pool.free_count(), 4);
    assert_eq!(collector.lock().stats.finalized, 3);
}

#[test]
fn lost_processes_recovered_via_process_filter() {
    // Paper §9: "The first release of iMAX uses this facility only to
    // recover lost process objects."
    use imax::arch::{ObjectSpec, ObjectType, ProcessState, SysState, SystemType};
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let fport =
        imax::ipc::create_port(&mut sys.space, root, 16, imax::arch::PortDiscipline::Fifo).unwrap();
    sys.anchor(fport.ad());

    let mut gc = Collector::new();
    gc.config.process_filter_port = Some(fport.ad());

    // Manufacture three process objects nobody references.
    let mut lost = Vec::new();
    for _ in 0..3 {
        lost.push(
            sys.space
                .create_object(
                    root,
                    ObjectSpec {
                        data_len: 0,
                        access_len: imax::arch::sysobj::PROC_ACCESS_SLOTS,
                        otype: ObjectType::System(SystemType::Process),
                        level: None,
                        sys: SysState::Process(ProcessState::new(imax::arch::Level(0))),
                    },
                )
                .unwrap(),
        );
    }
    gc.collect_full(&mut sys.space).unwrap();
    let recovered = drain_filter_port(&mut sys.space, fport.ad()).unwrap();
    assert_eq!(recovered.len(), 3);
    for p in &lost {
        assert!(sys.space.entry(*p).is_ok(), "recovered, not reclaimed");
    }
    // A process manager would now reap them; we drop them — the next
    // cycles reclaim without renotification.
    gc.collect_full(&mut sys.space).unwrap();
    gc.collect_full(&mut sys.space).unwrap();
    for p in &lost {
        assert!(sys.space.entry(*p).is_err());
    }
    assert_eq!(gc.stats.finalized, 3);
}

#[test]
fn filterless_types_leak_nothing_but_lose_resources() {
    // The contrast case the paper motivates: without a filter, the
    // object is reclaimed (no leak) but the *drive* is lost — the pool
    // never learns.
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let mgr = imax::typemgr::TypeManager::new(&mut sys.space, root, "unfiltered_drive").unwrap();
    sys.anchor(sys.space.mint(mgr.tdo(), Rights::NONE));
    let mut gc = Collector::new();

    let lost = mgr.create_instance(&mut sys.space, root, 16, 0).unwrap();
    gc.collect_full(&mut sys.space).unwrap();
    gc.collect_full(&mut sys.space).unwrap();
    assert!(sys.space.entry(lost.obj).is_err(), "object reclaimed");
    assert_eq!(gc.stats.finalized, 0, "nobody was told");
}

/// The filter port itself can die; the collector must degrade gracefully
/// (reclaim rather than wedge).
#[test]
fn dead_filter_port_degrades_to_reclamation() {
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let mgr = imax::typemgr::TypeManager::new(&mut sys.space, root, "orphan_type").unwrap();
    sys.anchor(sys.space.mint(mgr.tdo(), Rights::NONE));
    let fport =
        imax::ipc::create_port(&mut sys.space, root, 4, imax::arch::PortDiscipline::Fifo).unwrap();
    imax::typemgr::bind_destruction_filter(&mut sys.space, mgr.tdo_ad(), fport.ad()).unwrap();

    let lost = mgr.create_instance(&mut sys.space, root, 8, 0).unwrap();
    // The port is destroyed before the collection runs.
    sys.space.destroy_object(fport.ad().obj).unwrap();
    let mut gc = Collector::new();
    gc.collect_full(&mut sys.space).unwrap();
    gc.collect_full(&mut sys.space).unwrap();
    assert!(
        sys.space.entry(lost.obj).is_err(),
        "reclaimed despite dead port"
    );
    let _ = Port::from_ad(fport.ad());
}
