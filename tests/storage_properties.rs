//! Property-based tests on storage management: accounting conservation
//! and content preservation under random create/destroy/swap schedules.

use imax::arch::{AccessDescriptor, ObjectRef, ObjectSpace, ObjectSpec, Rights};
use imax::storage::{create_sro, SroQuota, StorageManager, SwappingManager};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Create an object of `1 << size_class` bytes, stamped with `stamp`.
    Create(u8, u64),
    /// Destroy the k-th live object (modulo population).
    Destroy(usize),
    /// Swap out the k-th live object.
    SwapOut(usize),
    /// Swap in the k-th live object.
    SwapIn(usize),
    /// Verify the k-th live object's stamp (swapping in if needed).
    Touch(usize),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            ((4u8..10), any::<u64>()).prop_map(|(s, v)| Op::Create(s, v)),
            (0usize..64).prop_map(Op::Destroy),
            (0usize..64).prop_map(Op::SwapOut),
            (0usize..64).prop_map(Op::SwapIn),
            (0usize..64).prop_map(Op::Touch),
        ],
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn swapping_manager_never_loses_data_or_space(ops in ops_strategy()) {
        let mut space = ObjectSpace::new(512 * 1024, 32 * 1024, 8192);
        let root = space.root_sro();
        let quota = SroQuota {
            data_bytes: 64 * 1024,
            access_slots: 1024,
        };
        let sro = create_sro(&mut space, root, imax::arch::Level(0), quota).unwrap();
        let initial_free = space.sro(sro).unwrap().data_free.total_free();
        let mut mgr = SwappingManager::new();
        let mut live: Vec<(ObjectRef, AccessDescriptor, u64, u32)> = Vec::new();

        for op in ops {
            match op {
                Op::Create(size_class, stamp) => {
                    let bytes = 1u32 << size_class;
                    if let Ok(o) =
                        mgr.create_object(&mut space, sro, ObjectSpec::generic(bytes, 0))
                    {
                        let ad = space.mint(o, Rights::READ | Rights::WRITE);
                        // The new object may be instantly evicted under
                        // pressure; make sure it is resident to stamp it.
                        mgr.ensure_resident(&mut space, o).unwrap();
                        space.write_u64(ad, 0, stamp).unwrap();
                        live.push((o, ad, stamp, bytes));
                    }
                }
                Op::Destroy(k) if !live.is_empty() => {
                    let (o, _, _, _) = live.swap_remove(k % live.len());
                    mgr.destroy_object(&mut space, o).unwrap();
                }
                Op::SwapOut(k) if !live.is_empty() => {
                    let (o, _, _, _) = live[k % live.len()];
                    // May refuse (already absent); both outcomes fine.
                    let _ = mgr.swap_out(&mut space, o);
                }
                Op::SwapIn(k) if !live.is_empty() => {
                    let (o, _, _, _) = live[k % live.len()];
                    mgr.ensure_resident(&mut space, o).unwrap();
                }
                Op::Touch(k) if !live.is_empty() => {
                    let (o, ad, stamp, _) = live[k % live.len()];
                    mgr.ensure_resident(&mut space, o).unwrap();
                    prop_assert_eq!(space.read_u64(ad, 0).unwrap(), stamp);
                }
                _ => {}
            }

            // Accounting invariant: free + resident live = initial.
            let resident: u64 = live
                .iter()
                .filter(|(o, _, _, _)| {
                    !space.table.get(*o).unwrap().desc.absent
                })
                .map(|(_, _, _, b)| *b as u64)
                .sum();
            let free = space.sro(sro).unwrap().data_free.total_free() as u64;
            prop_assert_eq!(
                free + resident,
                initial_free as u64,
                "space conservation"
            );
            // Census invariant: SRO object_count matches the model.
            prop_assert_eq!(
                space.sro(sro).unwrap().object_count as usize,
                live.len()
            );
        }

        // Final verification: every survivor still holds its stamp.
        for (o, ad, stamp, _) in &live {
            mgr.ensure_resident(&mut space, *o).unwrap();
            prop_assert_eq!(space.read_u64(*ad, 0).unwrap(), *stamp);
        }
        // Backing store holds pages only for absent survivors.
        let absent = live
            .iter()
            .filter(|(o, _, _, _)| space.table.get(*o).unwrap().desc.absent)
            .count();
        mgr.scrub(&space);
        prop_assert!(mgr.backing.resident_pages() <= absent + live.len());
    }

    /// Bulk destruction is exact: after creating a random population in
    /// a child SRO and bulk-destroying it, the parent's free space is
    /// bit-for-bit restored.
    #[test]
    fn bulk_destroy_restores_parent_exactly(
        sizes in proptest::collection::vec(8u32..512, 0..40),
    ) {
        let mut space = ObjectSpace::new(512 * 1024, 32 * 1024, 8192);
        let root = space.root_sro();
        let before_data = space.sro(root).unwrap().data_free.total_free();
        let before_slots = space.sro(root).unwrap().access_free.total_free();
        let sro = create_sro(
            &mut space,
            root,
            imax::arch::Level(2),
            SroQuota {
                data_bytes: 64 * 1024,
                access_slots: 512,
            },
        )
        .unwrap();
        for s in &sizes {
            // Some of these may exhaust the quota; that is fine.
            let _ = space.create_object(sro, ObjectSpec::generic(*s, 2));
        }
        space.bulk_destroy_sro(sro).unwrap();
        prop_assert_eq!(space.sro(root).unwrap().data_free.total_free(), before_data);
        prop_assert_eq!(
            space.sro(root).unwrap().access_free.total_free(),
            before_slots
        );
    }
}
