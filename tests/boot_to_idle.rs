//! End-to-end boot: every configuration preset boots, runs work through
//! the full stack (services, scheduler, GC, fault service) and reaches a
//! clean stop.

use imax::gdp::isa::{AluOp, DataDst, DataRef};
use imax::gdp::ProgramBuilder;
use imax::sim::RunOutcome;
use imax::{Imax, ImaxConfig, SchedulingChoice};

fn mixed_workload(os: &mut Imax, n: u32) -> Vec<imax::arch::ObjectRef> {
    use imax::arch::sysobj::CTX_SLOT_SRO;
    // Allocate-and-drop loop: exercises storage + GC.
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(25), DataDst::Local(0));
    p.bind(top);
    p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(64), DataRef::Imm(2), 5);
    p.work(200);
    p.alu(
        AluOp::Sub,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.jump_if_nonzero(DataRef::Local(0), top);
    p.halt();
    let sub = os.sys.subprogram("churn", p.finish(), 64, 8);
    let dom = os.sys.install_domain("app", vec![sub], 0);
    (0..n).map(|_| os.spawn_program(dom, 0, None)).collect()
}

fn boots_and_finishes(cfg: &ImaxConfig, procs: u32) {
    let mut os = Imax::boot(cfg);
    let spawned = mixed_workload(&mut os, procs);
    let outcome = os.run(30_000_000);
    assert!(
        matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
        "{outcome:?}"
    );
    for p in spawned {
        assert_eq!(
            os.sys.status_of(p),
            Some(imax::arch::ProcessStatus::Terminated)
        );
        assert_eq!(os.sys.space.process(p).unwrap().fault_code, 0);
    }
    assert!(os.fault_log.is_empty(), "{:?}", os.fault_log);
}

#[test]
fn development_configuration() {
    boots_and_finishes(&ImaxConfig::development(), 3);
}

#[test]
fn embedded_configuration() {
    boots_and_finishes(&ImaxConfig::embedded(), 3);
}

#[test]
fn multi_user_configuration() {
    boots_and_finishes(&ImaxConfig::multi_user(4), 6);
}

#[test]
fn round_robin_configuration() {
    let cfg = ImaxConfig {
        scheduling: SchedulingChoice::RoundRobin { quantum: 5_000 },
        ..ImaxConfig::development()
    };
    boots_and_finishes(&cfg, 4);
}

#[test]
fn gc_daemon_reclaims_program_garbage() {
    let mut os = Imax::boot(&ImaxConfig::development());
    let spawned = mixed_workload(&mut os, 2);
    let outcome = os.run(30_000_000);
    assert!(matches!(
        outcome,
        RunOutcome::Stopped | RunOutcome::Quiescent
    ));
    // Give the daemon a little more time to finish cycles after the
    // mutators exit.
    for _ in 0..6 {
        let _ = os.sys.run_to_quiescence(100_000);
    }
    let stats = os.collector.as_ref().unwrap().lock().stats;
    assert!(stats.cycles >= 1, "{stats:?}");
    assert!(
        stats.reclaimed >= 40,
        "the churn loops dropped ~50 objects: {stats:?}"
    );
    let _ = spawned;
}

#[test]
fn fair_share_converges_under_contention() {
    // Two long-running spinners on one processor, weights 1 and 4: the
    // weighted process must accumulate clearly more cycles.
    let cfg = ImaxConfig {
        scheduling: SchedulingChoice::FairShare,
        gc: None,
        ..ImaxConfig::development()
    };
    let mut os = Imax::boot(&cfg);
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(4000), DataDst::Local(0));
    p.bind(top);
    p.work(400);
    p.alu(
        AluOp::Sub,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.jump_if_nonzero(DataRef::Local(0), top);
    p.halt();
    let sub = os.sys.subprogram("spin", p.finish(), 64, 8);
    let dom = os.sys.install_domain("spinners", vec![sub], 0);
    let light = os.spawn_weighted(dom, 0, None, 1);
    let heavy = os.spawn_weighted(dom, 0, None, 4);
    // Short timeslices so the fair-share rebalancer gets traction.
    for p in [light, heavy] {
        os.sys.space.process_mut(p).unwrap().timeslice = 4_000;
        os.sys.space.process_mut(p).unwrap().slice_remaining = 4_000;
    }
    // Run a bounded burst, then compare progress.
    let _ = os.run(600_000);
    let light_cycles = os.sys.space.process(light).unwrap().total_cycles;
    let heavy_cycles = os.sys.space.process(heavy).unwrap().total_cycles;
    // Both made progress; the heavy one made more (or both finished).
    if os.sys.status_of(light) != Some(imax::arch::ProcessStatus::Terminated)
        || os.sys.status_of(heavy) != Some(imax::arch::ProcessStatus::Terminated)
    {
        assert!(
            heavy_cycles > light_cycles,
            "weight 4 ({heavy_cycles}) should outrun weight 1 ({light_cycles})"
        );
    }
}
