//! End-to-end process control: nested start/stop on running computation
//! trees (paper §6.1), earliest-deadline dispatching, and tree-capacity
//! edges.

use imax::arch::{PortDiscipline, ProcessStatus};
use imax::gdp::isa::{AluOp, DataDst, DataRef};
use imax::gdp::process::ProcessSpec;
use imax::gdp::ProgramBuilder;
use imax::process::BasicProcessManager;
use imax::sim::{RunOutcome, System, SystemConfig};

/// An infinite spinner subprogram.
fn spinner(sys: &mut System) -> imax::arch::AccessDescriptor {
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.bind(top);
    p.work(200);
    p.jump(top);
    let sub = sys.subprogram("spin", p.finish(), 64, 8);
    sys.install_domain("spinners", vec![sub], 0)
}

#[test]
fn stop_parks_a_running_computation_and_start_resumes_it() {
    let mut sys = System::new(&SystemConfig::small());
    let dom = spinner(&mut sys);
    let p = sys.spawn(dom, 0, None);
    sys.space.process_mut(p).unwrap().timeslice = 5_000;
    sys.space.process_mut(p).unwrap().slice_remaining = 5_000;
    let mut mgr = BasicProcessManager::new();

    // Let it run a little.
    let _ = sys.run_until(2_000, |_, _| false);
    let before = sys.space.process(p).unwrap().total_cycles;
    assert!(before > 0);

    // Stop it mid-flight: it leaves the mix at its next scheduling event
    // and is parked.
    mgr.stop(&mut sys.space, p).unwrap();
    let _ = sys.run_to_quiescence(100_000);
    assert_eq!(sys.space.process(p).unwrap().status, ProcessStatus::Stopped);
    let parked_at = sys.space.process(p).unwrap().total_cycles;

    // While stopped, it makes no progress.
    let _ = sys.run_to_quiescence(10_000);
    assert_eq!(sys.space.process(p).unwrap().total_cycles, parked_at);

    // Start: it re-enters the mix and runs again.
    mgr.start(&mut sys.space, p).unwrap();
    let _ = sys.run_until(3_000, |_, _| false);
    assert!(sys.space.process(p).unwrap().total_cycles > parked_at);
}

#[test]
fn stopping_a_tree_stops_children_the_controller_never_saw() {
    // Paper §6.1: "a user wishing to control a computation need not be
    // aware of the internal structure of that process."
    let mut sys = System::new(&SystemConfig::small().with_processors(2));
    let dom = spinner(&mut sys);
    let mut mgr = BasicProcessManager::new();
    let dispatch = sys.dispatch_ad();
    let root_sro = sys.space.root_sro();

    // A parent with two children, built through the manager (the
    // "computation" — its internal structure is the manager's business).
    let parent = mgr
        .create_process(
            &mut sys.space,
            root_sro,
            dom,
            0,
            None,
            ProcessSpec::new(dispatch),
            None,
        )
        .unwrap();
    let mut kids = Vec::new();
    for _ in 0..2 {
        kids.push(
            mgr.create_process(
                &mut sys.space,
                root_sro,
                dom,
                0,
                None,
                ProcessSpec::new(dispatch),
                Some(parent),
            )
            .unwrap(),
        );
    }
    for p in std::iter::once(parent).chain(kids.iter().copied()) {
        sys.space.process_mut(p).unwrap().timeslice = 4_000;
        sys.space.process_mut(p).unwrap().slice_remaining = 4_000;
        imax::gdp::port::make_ready(&mut sys.space, p).unwrap();
        sys.anchor(sys.space.mint(p, imax::arch::Rights::CONTROL));
    }

    let _ = sys.run_until(5_000, |_, _| false);
    // The controller stops *the parent*; the whole tree parks.
    mgr.stop(&mut sys.space, parent).unwrap();
    let _ = sys.run_to_quiescence(200_000);
    for p in std::iter::once(parent).chain(kids.iter().copied()) {
        assert_eq!(
            sys.space.process(p).unwrap().status,
            ProcessStatus::Stopped,
            "whole tree parked"
        );
    }
    // Start the parent: everyone resumes.
    mgr.start(&mut sys.space, parent).unwrap();
    let marks: Vec<u64> = kids
        .iter()
        .map(|p| sys.space.process(*p).unwrap().total_cycles)
        .collect();
    let _ = sys.run_until(10_000, |_, _| false);
    for (p, mark) in kids.iter().zip(marks) {
        assert!(
            sys.space.process(*p).unwrap().total_cycles > mark,
            "children resumed with the tree"
        );
    }
}

#[test]
fn deadline_dispatching_runs_the_most_urgent_first() {
    // A deadline-discipline dispatching port: the hardware binds the
    // earliest-deadline ready process, with no scheduler software at all.
    let mut cfg = SystemConfig::small();
    cfg.dispatch_discipline = PortDiscipline::Deadline;
    let mut sys = System::new(&cfg);

    // Three short jobs with distinct deadlines, spawned before any runs.
    let mut p = ProgramBuilder::new();
    p.work(5_000);
    p.halt();
    let sub = sys.subprogram("job", p.finish(), 64, 8);
    let dom = sys.install_domain("jobs", vec![sub], 0);
    let spawn_with_deadline = |sys: &mut System, deadline: u64| {
        let mut spec = ProcessSpec::new(sys.dispatch_ad());
        spec.deadline = deadline;
        sys.spawn_with(dom, 0, None, spec)
    };
    let late = spawn_with_deadline(&mut sys, 30_000);
    let urgent = spawn_with_deadline(&mut sys, 1_000);
    let middle = spawn_with_deadline(&mut sys, 10_000);

    // Record completion order.
    let mut order = Vec::new();
    let outcome = sys.run_until(1_000_000, |_, e| {
        if let imax::gdp::StepEvent::ProcessExited(p) = e {
            order.push(*p);
        }
        order.len() == 3
    });
    assert_eq!(outcome, RunOutcome::Stopped);
    assert_eq!(order, vec![urgent, middle, late], "EDF completion order");
}

#[test]
fn child_list_capacity_is_enforced() {
    use imax::arch::sysobj::PROC_CHILD_SLOTS;
    let mut sys = System::new(&SystemConfig::small());
    let dom = spinner(&mut sys);
    let mut mgr = BasicProcessManager::new();
    let dispatch = sys.dispatch_ad();
    let root_sro = sys.space.root_sro();
    let parent = mgr
        .create_process(
            &mut sys.space,
            root_sro,
            dom,
            0,
            None,
            ProcessSpec::new(dispatch),
            None,
        )
        .unwrap();
    for _ in 0..PROC_CHILD_SLOTS {
        mgr.create_process(
            &mut sys.space,
            root_sro,
            dom,
            0,
            None,
            ProcessSpec::new(dispatch),
            Some(parent),
        )
        .unwrap();
    }
    // One more child than the process object can link: refused cleanly.
    let err = mgr
        .create_process(
            &mut sys.space,
            root_sro,
            dom,
            0,
            None,
            ProcessSpec::new(dispatch),
            Some(parent),
        )
        .unwrap_err();
    assert_eq!(err.kind, imax::gdp::FaultKind::QueueOverflow);
    assert_eq!(
        mgr.children(&mut sys.space, parent).unwrap().len(),
        PROC_CHILD_SLOTS as usize
    );
    let _ = AluOp::Add;
    let _ = (DataDst::Local(0), DataRef::Imm(0));
}
