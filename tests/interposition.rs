//! F-interposition — paper §4: "any system interface can be mimicked by
//! a user package. This makes it straightforward for a user to extend
//! the system interface, trap certain system calls, or otherwise alter
//! iMAX services."
//!
//! A user-written *tracing* package exposes the same `create_port`
//! interface as the real `Untyped_Ports` service (subprogram 0, same
//! argument record, same return). It counts calls into its own state
//! object and forwards to the real service it holds in its package
//! state. Clients cannot tell the difference — they receive a working
//! port either way — because OS calls and user calls are the *same
//! mechanism*.

use imax::arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_DOMAIN, CTX_SLOT_SRO};
use imax::arch::{ObjectSpec, ProcessStatus, Rights};
use imax::gdp::isa::{AluOp, DataDst, DataRef, Instruction};
use imax::gdp::ProgramBuilder;
use imax::sim::RunOutcome;
use imax::{Imax, ImaxConfig};

#[test]
fn user_package_interposes_on_a_system_service() {
    let mut os = Imax::boot(&ImaxConfig::embedded());
    let root = os.sys.space.root_sro();

    // The interposer's own state: a call counter object.
    let counter = os
        .sys
        .space
        .create_object(root, ObjectSpec::generic(8, 0))
        .unwrap();
    let counter_ad = os.sys.space.mint(counter, Rights::READ | Rights::WRITE);

    // The interposer package: subprogram 0 has the *same shape* as
    // Untyped_Ports.create_port — it takes the argument record, bumps
    // its counter, forwards to the real service (held in its domain
    // state, slot 1), and returns the service's result.
    let trace_code = {
        let mut p = ProgramBuilder::new();
        // Reach into the defining environment: slot 0 = counter object,
        // slot 1 = the real untyped_ports domain.
        p.load_ad(CTX_SLOT_DOMAIN as u16, DataRef::Imm(0), 5);
        p.load_ad(CTX_SLOT_DOMAIN as u16, DataRef::Imm(1), 6);
        // counter += 1 (package-private state).
        p.alu(
            AluOp::Add,
            DataRef::Field(5, 0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.mov(DataRef::Local(0), DataDst::Field(5, 0));
        // Forward the original argument record to the real service and
        // capture the returned port AD in slot 7.
        p.call(6, 0, Some(CTX_SLOT_ARG as u16), Some(7), None);
        // Return the port to our caller, exactly as the real service
        // does.
        p.ret(Some(7), None);
        p.finish()
    };
    let trace_sub = os.sys.subprogram("create_port(traced)", trace_code, 64, 12);
    let interposer = os
        .sys
        .install_domain("traced_untyped_ports", vec![trace_sub], 2);
    os.sys
        .space
        .store_ad_hw(interposer.obj, 0, Some(counter_ad))
        .unwrap();
    os.sys
        .space
        .store_ad_hw(interposer.obj, 1, Some(os.services.untyped_ports))
        .unwrap();

    // The client program: identical no matter which "untyped_ports" it
    // is handed — it builds the Figure-1 argument record, calls
    // subprogram 0, and loops a message through the returned port.
    let client_code = {
        let mut p = ProgramBuilder::new();
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 5);
        p.mov(DataRef::Imm(4), DataDst::Field(5, 0)); // message_count
        p.mov(DataRef::Imm(0), DataDst::Field(5, 8)); // FIFO
        p.call(CTX_SLOT_ARG as u16, 0, Some(5), Some(6), None);
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(8), DataRef::Imm(0), 7);
        p.mov(DataRef::Imm(0xAB), DataDst::Field(7, 0));
        p.send(6, 7);
        p.receive(6, 8);
        let ok = p.new_label();
        p.alu(
            AluOp::Eq,
            DataRef::Field(8, 0),
            DataRef::Imm(0xAB),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), ok);
        p.push(Instruction::RaiseFault { code: 80 });
        p.bind(ok);
        p.halt();
        p.finish()
    };
    let client_sub = os.sys.subprogram("client", client_code, 64, 12);
    let app = os.sys.install_domain("app", vec![client_sub], 0);

    // Client 1 gets the real service; clients 2 and 3 get the
    // interposer. Nobody's code changes.
    let direct = os.spawn_program(app, 0, Some(os.services.untyped_ports));
    let traced_a = os.spawn_program(app, 0, Some(interposer));
    let traced_b = os.spawn_program(app, 0, Some(interposer));

    let outcome = os.run(5_000_000);
    assert!(
        matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
        "{outcome:?}"
    );
    for p in [direct, traced_a, traced_b] {
        let ps = os.sys.space.process(p).unwrap();
        assert_eq!(ps.status, ProcessStatus::Terminated);
        assert_eq!(ps.fault_code, 0, "{}", ps.fault_detail);
    }
    // The trap counted exactly the interposed calls.
    assert_eq!(os.sys.space.read_u64(counter_ad, 0).unwrap(), 2);
}

#[test]
fn callers_cannot_read_package_state_through_call_rights() {
    // The flip side of the defining-environment view: a *caller* holding
    // only call rights cannot inspect a domain's owned slots.
    let mut os = Imax::boot(&ImaxConfig::embedded());
    let svc = os.services.untyped_ports;
    assert!(svc.allows(Rights::CALL));
    assert!(!svc.allows(Rights::READ));
    assert!(os.sys.space.load_ad(svc, 0).is_err(), "callers can't peek");
}
