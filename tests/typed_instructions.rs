//! Machine-path tests for the user-defined-type instructions (CREATE
//! TYPED OBJECT, AMPLIFY) and the conditional port operations — the
//! instruction forms behind §4's dynamic typing and §8.2's type
//! managers, executed by real simulated processes.

use imax::arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_FIRST_FREE, CTX_SLOT_SRO};
use imax::arch::{ObjectType, PortDiscipline, Rights};
use imax::gdp::isa::{AluOp, DataDst, DataRef, Instruction};
use imax::gdp::{FaultKind, ProgramBuilder, StepEvent};
use imax::ipc::create_port;
use imax::sim::{RunOutcome, System, SystemConfig};
use imax::typemgr::create_tdo;

fn run_to_end(sys: &mut System, proc_ref: imax::arch::ObjectRef) -> u16 {
    let _ = sys.run_until(1_000_000, |_, e| {
        matches!(
            e,
            StepEvent::ProcessExited(_) | StepEvent::ProcessFaulted { .. }
        )
    });
    sys.space.process(proc_ref).unwrap().fault_code
}

#[test]
fn create_typed_object_carries_identity() {
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let tdo = create_tdo(&mut sys.space, root, "widget").unwrap();

    // Program: create a typed instance from the argument TDO, stash it
    // into its own slot 6, and halt.
    let mut p = ProgramBuilder::new();
    p.push(Instruction::CreateTypedObject {
        sro: CTX_SLOT_SRO as u16,
        tdo: CTX_SLOT_ARG as u16,
        data_len: DataRef::Imm(16),
        access_len: DataRef::Imm(0),
        dst: 6,
    });
    // Inspect it: the type tag must be 255 (user) and the TDO index must
    // match; fault otherwise.
    p.push(Instruction::InspectAd {
        slot: 6,
        dst: DataDst::Local(0),
    });
    p.alu(
        AluOp::Shr,
        DataRef::Local(0),
        DataRef::Imm(24),
        DataDst::Local(8),
    );
    p.alu(
        AluOp::And,
        DataRef::Local(8),
        DataRef::Imm(0xff),
        DataDst::Local(8),
    );
    let ok = p.new_label();
    p.alu(
        AluOp::Eq,
        DataRef::Local(8),
        DataRef::Imm(255),
        DataDst::Local(16),
    );
    p.jump_if_nonzero(DataRef::Local(16), ok);
    p.push(Instruction::RaiseFault { code: 50 });
    p.bind(ok);
    p.halt();
    let sub = sys.subprogram("maker", p.finish(), 64, 12);
    let dom = sys.install_domain("app", vec![sub], 0);
    let proc_ref = sys.spawn(dom, 0, Some(tdo));
    assert_eq!(run_to_end(&mut sys, proc_ref), 0);
    assert_eq!(sys.space.tdo(tdo.obj).unwrap().instances_created, 1);
}

#[test]
fn create_typed_object_requires_create_rights() {
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let tdo = create_tdo(&mut sys.space, root, "widget").unwrap();
    let weak = tdo.restricted(Rights::READ); // no CREATE_INSTANCE

    let mut p = ProgramBuilder::new();
    p.push(Instruction::CreateTypedObject {
        sro: CTX_SLOT_SRO as u16,
        tdo: CTX_SLOT_ARG as u16,
        data_len: DataRef::Imm(8),
        access_len: DataRef::Imm(0),
        dst: 6,
    });
    p.halt();
    let sub = sys.subprogram("forger", p.finish(), 64, 12);
    let dom = sys.install_domain("app", vec![sub], 0);
    let proc_ref = sys.spawn(dom, 0, Some(weak));
    assert_eq!(run_to_end(&mut sys, proc_ref), FaultKind::Rights.code());
}

#[test]
fn amplify_instruction_restores_rights_for_the_manager_only() {
    // The "type manager" runs as a process holding the TDO; a sealed
    // instance arrives as the argument and is amplified, written, and
    // returned through a port.
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let tdo = create_tdo(&mut sys.space, root, "cell").unwrap();
    let port = create_port(&mut sys.space, root, 2, PortDiscipline::Fifo).unwrap();
    sys.anchor(port.ad());

    // A sealed instance, host-minted (stands for a client's handle).
    let inst = sys
        .space
        .create_object(
            root,
            imax::arch::ObjectSpec {
                data_len: 16,
                access_len: 0,
                otype: ObjectType::User(tdo.obj),
                level: None,
                sys: imax::arch::SysState::Generic,
            },
        )
        .unwrap();
    let sealed = sys.space.mint(inst, Rights::NONE);

    // Manager program: slot 4 (ARG) = sealed instance, slot 6 = TDO,
    // slot 7 = reply port (planted). Amplify, write 0x777, send back.
    let mut p = ProgramBuilder::new();
    p.push(Instruction::Amplify {
        slot: CTX_SLOT_ARG as u16,
        tdo: 6,
        add: Rights::READ | Rights::WRITE,
    });
    p.mov(DataRef::Imm(0x777), DataDst::Field(CTX_SLOT_ARG as u16, 0));
    p.send(7, CTX_SLOT_ARG as u16);
    p.halt();
    let sub = sys.subprogram("manager", p.finish(), 64, 12);
    let dom = sys.install_domain("mgr", vec![sub], 0);
    let proc_ref = sys.spawn(dom, 0, Some(sealed));
    let ctx = sys
        .space
        .load_ad_hw(proc_ref, imax::arch::sysobj::PROC_SLOT_CONTEXT)
        .unwrap()
        .unwrap()
        .obj;
    sys.space.store_ad_hw(ctx, 6, Some(tdo)).unwrap();
    sys.space.store_ad_hw(ctx, 7, Some(port.ad())).unwrap();
    assert_eq!(run_to_end(&mut sys, proc_ref), 0);

    // The reply carries an amplified descriptor with the value written.
    let reply = imax::ipc::untyped::receive(&mut sys.space, port)
        .unwrap()
        .unwrap();
    assert!(reply.allows(Rights::READ | Rights::WRITE));
    assert_eq!(sys.space.read_u64(reply, 0).unwrap(), 0x777);
}

#[test]
fn amplify_without_tdo_rights_faults() {
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let tdo = create_tdo(&mut sys.space, root, "cell").unwrap();
    let inst = sys
        .space
        .create_object(
            root,
            imax::arch::ObjectSpec {
                data_len: 8,
                access_len: 0,
                otype: ObjectType::User(tdo.obj),
                level: None,
                sys: imax::arch::SysState::Generic,
            },
        )
        .unwrap();
    let sealed = sys.space.mint(inst, Rights::NONE);

    let mut p = ProgramBuilder::new();
    p.push(Instruction::Amplify {
        slot: CTX_SLOT_ARG as u16,
        tdo: 6,
        add: Rights::ALL,
    });
    p.halt();
    let sub = sys.subprogram("wannabe", p.finish(), 64, 12);
    let dom = sys.install_domain("app", vec![sub], 0);
    let proc_ref = sys.spawn(dom, 0, Some(sealed));
    let ctx = sys
        .space
        .load_ad_hw(proc_ref, imax::arch::sysobj::PROC_SLOT_CONTEXT)
        .unwrap()
        .unwrap()
        .obj;
    // The wannabe only has a *read-restricted* TDO descriptor.
    sys.space
        .store_ad_hw(ctx, 6, Some(tdo.restricted(Rights::READ)))
        .unwrap();
    assert_eq!(run_to_end(&mut sys, proc_ref), FaultKind::Rights.code());
}

#[test]
fn conditional_ops_never_block() {
    // CondReceive on empty: done=0, slot nulled; CondSend to full port:
    // done=0; both leave the process running.
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let port = create_port(&mut sys.space, root, 1, PortDiscipline::Fifo).unwrap();
    sys.anchor(port.ad());

    let mut p = ProgramBuilder::new();
    // 1. CondReceive on empty port -> done must be 0.
    p.cond_receive(CTX_SLOT_ARG as u16, 6, DataDst::Local(0));
    let step2 = p.new_label();
    p.jump_if_zero(DataRef::Local(0), step2);
    p.push(Instruction::RaiseFault { code: 60 });
    p.bind(step2);
    // 2. Fill the port (capacity 1): first CondSend succeeds.
    p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(8), DataRef::Imm(0), 7);
    p.cond_send(CTX_SLOT_ARG as u16, 7, DataDst::Local(8));
    let step3 = p.new_label();
    p.jump_if_nonzero(DataRef::Local(8), step3);
    p.push(Instruction::RaiseFault { code: 61 });
    p.bind(step3);
    // 3. Second CondSend would block -> done must be 0.
    p.cond_send(CTX_SLOT_ARG as u16, 7, DataDst::Local(16));
    let done = p.new_label();
    p.jump_if_zero(DataRef::Local(16), done);
    p.push(Instruction::RaiseFault { code: 62 });
    p.bind(done);
    p.halt();
    let sub = sys.subprogram("nonblocker", p.finish(), 64, 12);
    let dom = sys.install_domain("app", vec![sub], 0);
    let proc_ref = sys.spawn(dom, 0, Some(port.ad()));
    let outcome = sys.run_to_completion(1_000_000);
    assert_eq!(outcome, RunOutcome::Stopped);
    assert_eq!(sys.space.process(proc_ref).unwrap().fault_code, 0);
    // Exactly one message sits in the port.
    assert_eq!(sys.space.port(port.object()).unwrap().msg_count, 1);
    let _ = CTX_SLOT_FIRST_FREE;
}
