//! Asynchronous I/O end to end: a simulated process overlaps computation
//! with device I/O through the request/reply port protocol (paper §3's
//! independent I/O subsystems), with the subsystem serviced by iMAX's
//! ordinary service passes.

use imax::arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_SRO};
use imax::arch::{ProcessStatus, Rights};
use imax::gdp::isa::{AluOp, DataDst, DataRef, Instruction};
use imax::gdp::ProgramBuilder;
use imax::io::iop::{
    REQ_COUNT_OFF, REQ_DATA_OFF, REQ_LEN_OFF, REQ_OP_OFF, REQ_SLOT_REPLY, REQ_STATUS_OFF,
};
use imax::io::{ConsoleDevice, DeviceImpl, OP_OPEN, OP_WRITE};
use imax::sim::RunOutcome;
use imax::{Imax, ImaxConfig};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn process_overlaps_compute_with_device_io() {
    let mut os = Imax::boot(&ImaxConfig::embedded());
    let console = Arc::new(Mutex::new(ConsoleDevice::new("tty0", b"")));
    let req_port = os.attach_device(console.clone(), 8).unwrap();

    // The program (argument record layout):
    //   slot 4 (ARG) = a parameter object whose access part holds
    //     [0] = device request port, [1] = reply port.
    // It builds an OPEN request, sends it, computes while the subsystem
    // works, receives the completion, then does a WRITE the same way.
    let root = os.sys.space.root_sro();
    let reply_port =
        imax::ipc::create_port(&mut os.sys.space, root, 8, imax::arch::PortDiscipline::Fifo)
            .unwrap();
    os.sys.anchor(reply_port.ad());
    let params = os
        .sys
        .space
        .create_object(root, imax::arch::ObjectSpec::generic(0, 2))
        .unwrap();
    os.sys
        .space
        .store_ad_hw(params, 0, Some(req_port.send_only().ad()))
        .unwrap();
    os.sys
        .space
        .store_ad_hw(params, 1, Some(reply_port.ad()))
        .unwrap();
    let params_ad = os.sys.space.mint(params, Rights::READ);

    let mut p = ProgramBuilder::new();
    // Pull the two ports out of the parameter object.
    p.load_ad(CTX_SLOT_ARG as u16, DataRef::Imm(0), 5); // request port
    p.load_ad(CTX_SLOT_ARG as u16, DataRef::Imm(1), 6); // reply port
                                                        // Build the OPEN request: data 32+8, access 2 slots.
    p.create_object(
        CTX_SLOT_SRO as u16,
        DataRef::Imm((REQ_DATA_OFF + 8) as u64),
        DataRef::Imm(2),
        7,
    );
    p.mov(DataRef::Imm(OP_OPEN as u64), DataDst::Field(7, REQ_OP_OFF));
    p.store_ad(6, 7, DataRef::Imm(REQ_SLOT_REPLY as u64));
    p.send(5, 7);
    // Overlap: compute while the device opens.
    p.work(2_000);
    // Completion.
    p.receive(6, 8);
    let ok1 = p.new_label();
    p.alu(
        AluOp::Eq,
        DataRef::Field(8, REQ_STATUS_OFF),
        DataRef::Imm(0),
        DataDst::Local(0),
    );
    p.jump_if_nonzero(DataRef::Local(0), ok1);
    p.push(Instruction::RaiseFault { code: 70 });
    p.bind(ok1);
    // Reuse the request object for a WRITE of "hi!" (3 bytes).
    p.mov(DataRef::Imm(OP_WRITE as u64), DataDst::Field(8, REQ_OP_OFF));
    p.mov(DataRef::Imm(3), DataDst::Field(8, REQ_LEN_OFF));
    p.mov(
        DataRef::Imm(u64::from_le_bytes(*b"hi!\0\0\0\0\0")),
        DataDst::Field(8, REQ_DATA_OFF),
    );
    p.send(5, 8);
    p.work(2_000);
    p.receive(6, 9);
    let ok2 = p.new_label();
    p.alu(
        AluOp::Eq,
        DataRef::Field(9, REQ_COUNT_OFF),
        DataRef::Imm(3),
        DataDst::Local(0),
    );
    p.jump_if_nonzero(DataRef::Local(0), ok2);
    p.push(Instruction::RaiseFault { code: 71 });
    p.bind(ok2);
    p.halt();

    let sub = os.sys.subprogram("io_client", p.finish(), 64, 12);
    let dom = os.sys.install_domain("app", vec![sub], 0);
    let proc_ref = os.spawn_program(dom, 0, Some(params_ad));

    let outcome = os.run(5_000_000);
    assert!(
        matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
        "{outcome:?}"
    );
    let ps = os.sys.space.process(proc_ref).unwrap();
    assert_eq!(ps.fault_code, 0, "{}", ps.fault_detail);
    assert_eq!(ps.status, ProcessStatus::Terminated);
    assert_eq!(console.lock().transcript(), b"hi!");
    assert_eq!(os.io.stats().completed, 2);
}

#[test]
fn many_clients_share_one_subsystem() {
    // Four processes write to the same console asynchronously; all
    // complete, and the transcript holds all the bytes.
    let mut os = Imax::boot(&ImaxConfig::embedded());
    let console = Arc::new(Mutex::new(ConsoleDevice::new("tty0", b"")));
    {
        // Pre-open the device on behalf of everyone.
        console.lock().open().unwrap();
    }
    let req_port = os.attach_device(console.clone(), 16).unwrap();
    let root = os.sys.space.root_sro();

    let mut procs = Vec::new();
    for i in 0..4u64 {
        let reply =
            imax::ipc::create_port(&mut os.sys.space, root, 4, imax::arch::PortDiscipline::Fifo)
                .unwrap();
        os.sys.anchor(reply.ad());
        let params = os
            .sys
            .space
            .create_object(root, imax::arch::ObjectSpec::generic(0, 2))
            .unwrap();
        os.sys
            .space
            .store_ad_hw(params, 0, Some(req_port.send_only().ad()))
            .unwrap();
        os.sys
            .space
            .store_ad_hw(params, 1, Some(reply.ad()))
            .unwrap();
        let params_ad = os.sys.space.mint(params, Rights::READ);

        let mut p = ProgramBuilder::new();
        p.load_ad(CTX_SLOT_ARG as u16, DataRef::Imm(0), 5);
        p.load_ad(CTX_SLOT_ARG as u16, DataRef::Imm(1), 6);
        p.create_object(
            CTX_SLOT_SRO as u16,
            DataRef::Imm((REQ_DATA_OFF + 8) as u64),
            DataRef::Imm(2),
            7,
        );
        p.mov(DataRef::Imm(OP_WRITE as u64), DataDst::Field(7, REQ_OP_OFF));
        p.mov(DataRef::Imm(1), DataDst::Field(7, REQ_LEN_OFF));
        p.mov(
            DataRef::Imm(b'a' as u64 + i),
            DataDst::Field(7, REQ_DATA_OFF),
        );
        p.store_ad(6, 7, DataRef::Imm(REQ_SLOT_REPLY as u64));
        p.send(5, 7);
        p.receive(6, 8);
        p.halt();
        let sub = os.sys.subprogram("writer", p.finish(), 64, 12);
        let dom = os.sys.install_domain("app", vec![sub], 0);
        procs.push(os.spawn_program(dom, 0, Some(params_ad)));
    }

    let outcome = os.run(10_000_000);
    assert!(
        matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
        "{outcome:?}"
    );
    for p in procs {
        assert_eq!(
            os.sys.space.process(p).unwrap().status,
            ProcessStatus::Terminated
        );
    }
    let mut bytes = console.lock().transcript().to_vec();
    bytes.sort_unstable();
    assert_eq!(bytes, b"abcd");
}
