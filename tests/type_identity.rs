//! I3 — hardware type identity survives every channel, paper §7.2.
//!
//! "No matter what path a system object follows within the 432, its
//! hardware-recognized type identity is guaranteed to be preserved and
//! checked, either by the hardware or by object filing."

use imax::arch::{ObjectSpace, ObjectSpec, PortDiscipline, Rights};
use imax::ipc::{create_port, CheckedPort};
use imax::typemgr::TypeManager;
use imax::{activate, passivate};

fn space() -> ObjectSpace {
    ObjectSpace::new(256 * 1024, 16 * 1024, 4096)
}

#[test]
fn identity_survives_a_port_hop() {
    let mut s = space();
    let root = s.root_sro();
    let mgr = TypeManager::new(&mut s, root, "voucher").unwrap();
    let inst = mgr.create_instance(&mut s, root, 16, 0).unwrap();

    // Through an untyped port (the identity-erasing channel of
    // conventional systems).
    let port = create_port(&mut s, root, 4, PortDiscipline::Fifo).unwrap();
    imax::ipc::untyped::send(&mut s, port, inst).unwrap();
    let back = imax::ipc::untyped::receive(&mut s, port).unwrap().unwrap();

    // The manager still amplifies it; a stranger still cannot.
    assert!(mgr.amplify(&mut s, back).is_ok());
    let stranger = TypeManager::new(&mut s, root, "stranger").unwrap();
    assert!(stranger.amplify(&mut s, back).is_err());
}

#[test]
fn identity_survives_many_hands() {
    let mut s = space();
    let root = s.root_sro();
    let mgr = TypeManager::new(&mut s, root, "deed").unwrap();
    let inst = mgr.create_instance(&mut s, root, 8, 0).unwrap();

    // Pass through a chain of generic containers (a "data structure" the
    // type system knows nothing about).
    let mut holder = inst;
    for _ in 0..5 {
        let box_obj = s.create_object(root, ObjectSpec::generic(0, 1)).unwrap();
        let box_ad = s.mint(box_obj, Rights::READ | Rights::WRITE);
        s.store_ad(box_ad, 0, Some(holder)).unwrap();
        holder = s.load_ad(box_ad, 0).unwrap().unwrap();
    }
    assert!(mgr.amplify(&mut s, holder).is_ok());
}

#[test]
fn identity_survives_the_filing_system() {
    // The storage channel specifically called out by §7.2: "An example of
    // such a channel is any storage system."
    let mut s = space();
    let root = s.root_sro();
    let mgr = TypeManager::new(&mut s, root, "contract").unwrap();
    let sealed = mgr.create_instance(&mut s, root, 32, 0).unwrap();
    let full = mgr.amplify(&mut s, sealed).unwrap();
    s.write_u64(full, 0, 0xC0DE).unwrap();

    // File it, shut "the machine" down, bring up a new one.
    let image = passivate(&mut s, full).unwrap().to_bytes();
    drop(s);

    let mut s2 = space();
    let root2 = s2.root_sro();
    let mgr2 = TypeManager::new(&mut s2, root2, "contract").unwrap();
    let store = imax::PassiveStore::from_bytes(&image).unwrap();
    let revived = activate(&mut s2, root2, &store, |name| {
        (name == "contract").then_some(mgr2.tdo())
    })
    .unwrap();

    // Contents and identity both intact.
    let full2 = mgr2
        .amplify(&mut s2, revived.restricted(Rights::NONE))
        .unwrap();
    assert_eq!(s2.read_u64(full2, 0).unwrap(), 0xC0DE);

    // And the checked-port machinery recognizes the revived instance.
    let port = create_port(&mut s2, root2, 2, PortDiscipline::Fifo).unwrap();
    let checked = CheckedPort::bind(port, mgr2.tdo());
    assert!(checked.send(&mut s2, revived).is_ok());
}

#[test]
fn filing_composite_graph_with_mixed_types() {
    let mut s = space();
    let root = s.root_sro();
    let mgr_a = TypeManager::new(&mut s, root, "alpha").unwrap();
    let mgr_b = TypeManager::new(&mut s, root, "beta").unwrap();

    // A generic record referencing one instance of each type.
    let rec = s.create_object(root, ObjectSpec::generic(8, 2)).unwrap();
    let rec_ad = s.mint(rec, Rights::READ | Rights::WRITE);
    let a = mgr_a.create_instance(&mut s, root, 8, 0).unwrap();
    let b = mgr_b.create_instance(&mut s, root, 8, 0).unwrap();
    s.store_ad(rec_ad, 0, Some(a)).unwrap();
    s.store_ad(rec_ad, 1, Some(b)).unwrap();

    let image = passivate(&mut s, rec_ad).unwrap().to_bytes();
    let store = imax::PassiveStore::from_bytes(&image).unwrap();

    let mut s2 = space();
    let root2 = s2.root_sro();
    let mgr_a2 = TypeManager::new(&mut s2, root2, "alpha").unwrap();
    let mgr_b2 = TypeManager::new(&mut s2, root2, "beta").unwrap();
    let rec2 = activate(&mut s2, root2, &store, |name| match name {
        "alpha" => Some(mgr_a2.tdo()),
        "beta" => Some(mgr_b2.tdo()),
        _ => None,
    })
    .unwrap();
    let a2 = s2.load_ad(rec2, 0).unwrap().unwrap();
    let b2 = s2.load_ad(rec2, 1).unwrap().unwrap();
    assert!(mgr_a2.amplify(&mut s2, a2).is_ok());
    assert!(
        mgr_a2.amplify(&mut s2, b2).is_err(),
        "alpha cannot claim beta"
    );
    assert!(mgr_b2.amplify(&mut s2, b2).is_ok());
}

#[test]
fn sealed_rights_survive_filing() {
    // Rights on edges are part of the protection state; filing must not
    // amplify anything.
    let mut s = space();
    let root = s.root_sro();
    let holder = s.create_object(root, ObjectSpec::generic(0, 1)).unwrap();
    let holder_ad = s.mint(holder, Rights::READ | Rights::WRITE);
    let secret = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
    let secret_ro = s.mint(secret, Rights::READ);
    s.store_ad(holder_ad, 0, Some(secret_ro)).unwrap();

    let image = passivate(&mut s, holder_ad.restricted(Rights::READ))
        .unwrap()
        .to_bytes();
    let store = imax::PassiveStore::from_bytes(&image).unwrap();
    let mut s2 = space();
    let root2 = s2.root_sro();
    let revived = activate(&mut s2, root2, &store, |_| None).unwrap();
    assert!(!revived.allows(Rights::WRITE), "root rights not amplified");
    let inner = s2.load_ad(revived, 0).unwrap().unwrap();
    assert!(!inner.allows(Rights::WRITE), "edge rights not amplified");
    assert!(s2.write_u64(inner, 0, 1).is_err());
}
