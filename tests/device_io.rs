//! Device-independent I/O end to end (paper §6.3): simulated programs
//! drive devices through CALLs on device package instances, using the
//! common interface for device-independent work and the extended
//! subprograms for device-specific work — with no device registry
//! anywhere.

use imax::arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_SRO};
use imax::arch::Rights;
use imax::gdp::isa::{AluOp, DataDst, DataRef};
use imax::gdp::ProgramBuilder;
use imax::io::{
    install_device, ConsoleDevice, DeviceImpl, DeviceStatus, RamDisk, TapeDrive, OP_CONTROL_BASE,
    OP_OPEN, OP_READ, OP_STATUS, OP_WRITE,
};
use imax::sim::{RunOutcome, System, SystemConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// A device-independent program: open the argument device, write one
/// record, read it back is device-specific, so this common program only
/// opens, writes, and checks status — it runs unmodified against any
/// device.
fn common_writer(payload: &[u8]) -> Vec<imax::gdp::Instruction> {
    let mut p = ProgramBuilder::new();
    // open()
    p.call(CTX_SLOT_ARG as u16, OP_OPEN, None, None, None);
    // Build the write argument record: len at 0, data at 16 (the data
    // area is rounded up to whole words for the packed stores below).
    let data_words = payload.len().div_ceil(8) as u64;
    p.create_object(
        CTX_SLOT_SRO as u16,
        DataRef::Imm(16 + data_words * 8),
        DataRef::Imm(0),
        5,
    );
    p.mov(DataRef::Imm(payload.len() as u64), DataDst::Field(5, 0));
    // Pack the payload into words.
    for (w, chunk) in payload.chunks(8).enumerate() {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        p.mov(
            DataRef::Imm(u64::from_le_bytes(word)),
            DataDst::Field(5, 16 + (w as u32) * 8),
        );
    }
    // write(arg) -> count at local 0
    p.call(CTX_SLOT_ARG as u16, OP_WRITE, Some(5), None, Some(0));
    // status() -> local 8; fault if not open+ready.
    p.call(CTX_SLOT_ARG as u16, OP_STATUS, None, None, Some(8));
    let ok = p.new_label();
    p.alu(
        AluOp::And,
        DataRef::Local(8),
        DataRef::Imm(3),
        DataDst::Local(16),
    );
    p.alu(
        AluOp::Eq,
        DataRef::Local(16),
        DataRef::Imm(3),
        DataDst::Local(16),
    );
    p.jump_if_nonzero(DataRef::Local(16), ok);
    p.push(imax::gdp::Instruction::RaiseFault { code: 40 });
    p.bind(ok);
    p.halt();
    p.finish()
}

fn run_one(
    sys: &mut System,
    dom: imax::arch::AccessDescriptor,
    device: imax::arch::AccessDescriptor,
) {
    let code = common_writer(b"hello device");
    let sub = sys.subprogram("writer", code, 64, 12);
    let app = sys.install_domain("writer_app", vec![sub], 0);
    let _ = dom;
    let proc_ref = sys.spawn(app, 0, Some(device));
    let outcome = sys.run_to_completion(10_000_000);
    assert_eq!(outcome, RunOutcome::Stopped);
    assert_eq!(
        sys.space.process(proc_ref).unwrap().fault_code,
        0,
        "{}",
        sys.space.process(proc_ref).unwrap().fault_detail
    );
}

#[test]
fn one_program_many_devices() {
    // The same program binary drives a console, a tape drive and a RAM
    // disk — the §6.3 claim, with no registry and no case construct.
    let mut sys = System::new(&SystemConfig::small());

    let console = Arc::new(Mutex::new(ConsoleDevice::new("tty0", b"")));
    let tape = Arc::new(Mutex::new(TapeDrive::new("mt0")));
    let disk = Arc::new(Mutex::new(RamDisk::new("dk0", 8, 64)));

    let h_console = install_device(&mut sys, console.clone());
    let h_tape = install_device(&mut sys, tape.clone());
    let h_disk = install_device(&mut sys, disk.clone());

    for h in [&h_console, &h_tape, &h_disk] {
        run_one(&mut sys, h.domain, h.domain);
    }

    // Each device received the same bytes through its own
    // implementation.
    assert_eq!(console.lock().transcript(), b"hello device");
    {
        let mut t = tape.lock();
        // The writer left the tape open at record 1; rewind and read.
        t.control(imax::io::tape::TAPE_OP_REWIND, 0).unwrap();
        let mut buf = [0u8; 16];
        let n = t.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello device");
    }
    {
        let mut d = disk.lock();
        d.control(imax::io::disk::BLK_OP_SEEK, 0).unwrap();
        let mut buf = [0u8; 64];
        d.read(&mut buf).unwrap();
        assert_eq!(&buf[..12], b"hello device");
    }
}

#[test]
fn device_specific_ops_extend_the_subset() {
    // Tape rewind (OP_CONTROL_BASE + 0) exists on the tape instance;
    // calling the same index on a console faults with Unsupported —
    // class interfaces are just longer subprogram tables.
    let mut sys = System::new(&SystemConfig::small());
    let tape = Arc::new(Mutex::new(TapeDrive::new("mt0")));
    let h_tape = install_device(&mut sys, tape.clone());

    let mut p = ProgramBuilder::new();
    p.call(CTX_SLOT_ARG as u16, OP_OPEN, None, None, None);
    // Write two records, then REWIND (device-specific), then read and
    // check we are back at record 0.
    p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(24), DataRef::Imm(0), 5);
    p.mov(DataRef::Imm(4), DataDst::Field(5, 0));
    p.mov(
        DataRef::Imm(u64::from_le_bytes(*b"AAAA\0\0\0\0")),
        DataDst::Field(5, 16),
    );
    p.call(CTX_SLOT_ARG as u16, OP_WRITE, Some(5), None, None);
    p.mov(
        DataRef::Imm(u64::from_le_bytes(*b"BBBB\0\0\0\0")),
        DataDst::Field(5, 16),
    );
    p.call(CTX_SLOT_ARG as u16, OP_WRITE, Some(5), None, None);
    p.call(CTX_SLOT_ARG as u16, OP_CONTROL_BASE, None, None, None); // rewind
                                                                    // read -> the first record again.
    p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(24), DataRef::Imm(0), 6);
    p.mov(DataRef::Imm(8), DataDst::Field(6, 0));
    p.call(CTX_SLOT_ARG as u16, OP_READ, Some(6), None, Some(0));
    let ok = p.new_label();
    p.alu(
        AluOp::Eq,
        DataRef::Field(6, 16),
        DataRef::Imm(u64::from_le_bytes(*b"AAAA\0\0\0\0")),
        DataDst::Local(8),
    );
    p.jump_if_nonzero(DataRef::Local(8), ok);
    p.push(imax::gdp::Instruction::RaiseFault { code: 41 });
    p.bind(ok);
    p.halt();
    let sub = sys.subprogram("tape_user", p.finish(), 64, 12);
    let app = sys.install_domain("tape_app", vec![sub], 0);
    let proc_ref = sys.spawn(app, 0, Some(h_tape.domain));
    let outcome = sys.run_to_completion(10_000_000);
    assert_eq!(outcome, RunOutcome::Stopped);
    assert_eq!(
        sys.space.process(proc_ref).unwrap().fault_code,
        0,
        "{}",
        sys.space.process(proc_ref).unwrap().fault_detail
    );

    // The console's domain has no subprogram at that index at all —
    // calling it is a BadSubprogram fault, caught by the machinery, not
    // by a registry.
    let console = Arc::new(Mutex::new(ConsoleDevice::new("tty1", b"")));
    let h_console = install_device(&mut sys, console);
    let mut p = ProgramBuilder::new();
    p.call(CTX_SLOT_ARG as u16, OP_OPEN, None, None, None);
    p.call(CTX_SLOT_ARG as u16, OP_CONTROL_BASE, None, None, None);
    p.halt();
    let sub = sys.subprogram("bad_user", p.finish(), 64, 12);
    let app = sys.install_domain("bad_app", vec![sub], 0);
    let proc_ref = sys.spawn(app, 0, Some(h_console.domain));
    let _ = sys.run_to_quiescence(1_000_000);
    assert_eq!(
        sys.space.process(proc_ref).unwrap().fault_code,
        imax::gdp::FaultKind::BadSubprogram.code()
    );
}

#[test]
fn adding_a_device_type_touches_no_system_code() {
    // A brand-new device implementation, defined *here* in the test,
    // installs and behaves identically through the common interface —
    // "without in any way altering system code".
    struct NullDevice {
        open: bool,
        sunk: usize,
    }
    impl DeviceImpl for NullDevice {
        fn name(&self) -> &str {
            "null0"
        }
        fn open(&mut self) -> Result<(), imax::io::DeviceError> {
            self.open = true;
            Ok(())
        }
        fn close(&mut self) -> Result<(), imax::io::DeviceError> {
            self.open = false;
            Ok(())
        }
        fn read(&mut self, _buf: &mut [u8]) -> Result<usize, imax::io::DeviceError> {
            Ok(0)
        }
        fn write(&mut self, buf: &[u8]) -> Result<usize, imax::io::DeviceError> {
            self.sunk += buf.len();
            Ok(buf.len())
        }
        fn status(&self) -> DeviceStatus {
            DeviceStatus {
                ready: true,
                open: self.open,
                error: 0,
                position: self.sunk as u64,
            }
        }
    }

    let mut sys = System::new(&SystemConfig::small());
    let dev = Arc::new(Mutex::new(NullDevice {
        open: false,
        sunk: 0,
    }));
    let h = install_device(&mut sys, dev.clone());
    run_one(&mut sys, h.domain, h.domain);
    assert_eq!(dev.lock().sunk, 12);
    let _ = Rights::NONE;
}
