//! Whole-OS determinism: two boots of the same configuration running the
//! same programs produce identical simulated time, identical fault logs,
//! and identical GC statistics — the property that makes every number in
//! EXPERIMENTS.md exactly reproducible.

use imax::arch::sysobj::CTX_SLOT_SRO;
use imax::gdp::isa::{AluOp, DataDst, DataRef};
use imax::gdp::ProgramBuilder;
use imax::sim::RunOutcome;
use imax::{Imax, ImaxConfig, SchedulingChoice};

fn run_once() -> (u64, u64, usize, imax::gc::GcStats) {
    let cfg = ImaxConfig {
        scheduling: SchedulingChoice::RoundRobin { quantum: 6_000 },
        ..ImaxConfig::development()
    };
    let mut os = Imax::boot(&cfg);
    // A mixed workload: churners and a crasher.
    let mut churn = ProgramBuilder::new();
    let top = churn.new_label();
    churn.mov(DataRef::Imm(30), DataDst::Local(0));
    churn.bind(top);
    churn.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(48), DataRef::Imm(2), 5);
    churn.work(250);
    churn.alu(
        AluOp::Sub,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    churn.jump_if_nonzero(DataRef::Local(0), top);
    churn.halt();
    let churn_sub = os.sys.subprogram("churn", churn.finish(), 64, 8);
    let mut crash = ProgramBuilder::new();
    crash.work(2_000);
    crash.alu(
        AluOp::Div,
        DataRef::Imm(1),
        DataRef::Imm(0),
        DataDst::Local(0),
    );
    crash.halt();
    let crash_sub = os.sys.subprogram("crash", crash.finish(), 32, 8);
    let dom = os.sys.install_domain("apps", vec![churn_sub, crash_sub], 0);
    for _ in 0..3 {
        os.spawn_program(dom, 0, None);
    }
    os.spawn_program(dom, 1, None);
    let outcome = os.run(5_000_000);
    assert!(matches!(
        outcome,
        RunOutcome::Stopped | RunOutcome::Quiescent
    ));
    let gc = os.collector.as_ref().unwrap().lock().stats;
    (os.sys.now(), os.sys.steps(), os.fault_log.len(), gc)
}

#[test]
fn identical_configurations_replay_exactly() {
    let a = run_once();
    let b = run_once();
    assert_eq!(a.0, b.0, "simulated time");
    assert_eq!(a.1, b.1, "steps");
    assert_eq!(a.2, b.2, "fault log");
    assert_eq!(a.3, b.3, "gc stats");
}
