//! Property-based tests on the hardware port mechanism: conservation,
//! ordering, and waiter exclusivity under random operation sequences.

use imax::arch::{AccessDescriptor, ObjectSpace, ObjectSpec, PortDiscipline, Rights, WaiterKind};
use imax::gdp::port::{receive, send, RecvOutcome, SendOutcome};
use imax::ipc::create_port;
use proptest::prelude::*;
use std::collections::VecDeque;

fn space() -> ObjectSpace {
    ObjectSpace::new(256 * 1024, 16 * 1024, 4096)
}

fn msg(space: &mut ObjectSpace, tag: u64) -> AccessDescriptor {
    let root = space.root_sro();
    let o = space
        .create_object(root, ObjectSpec::generic(16, 0))
        .unwrap();
    let ad = space.mint(o, Rights::READ | Rights::WRITE);
    space.write_u64(ad, 0, tag).unwrap();
    ad
}

#[derive(Debug, Clone)]
enum Op {
    Send(u64, u64), // tag, key
    Receive,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            ((0u64..1000), (0u64..16)).prop_map(|(t, k)| Op::Send(t, k)),
            Just(Op::Receive),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO ports deliver in exact send order, conserve messages, and
    /// never report phantom occupancy.
    #[test]
    fn fifo_is_a_queue(ops in ops_strategy(), cap in 1u32..16) {
        let mut s = space();
        let root = s.root_sro();
        let port = create_port(&mut s, root, cap, PortDiscipline::Fifo).unwrap();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Send(tag, key) => {
                    let m = msg(&mut s, tag);
                    match send(&mut s, None, port.ad(), m, key, false, false).unwrap() {
                        SendOutcome::Queued | SendOutcome::Delivered => model.push_back(tag),
                        SendOutcome::WouldBlock => {
                            prop_assert_eq!(model.len(), cap as usize, "full means full");
                        }
                        SendOutcome::Blocked => unreachable!("no process"),
                    }
                }
                Op::Receive => {
                    match receive(&mut s, None, port.ad(), false, false).unwrap() {
                        RecvOutcome::Received(m) => {
                            let tag = s.read_u64(m.restricted(Rights::ALL), 0).unwrap();
                            let expect = model.pop_front();
                            prop_assert_eq!(Some(tag), expect, "FIFO order");
                        }
                        RecvOutcome::WouldBlock => prop_assert!(model.is_empty()),
                        RecvOutcome::Blocked => unreachable!("no process"),
                    }
                }
            }
            let st = s.port(port.object()).unwrap();
            prop_assert_eq!(st.msg_count as usize, model.len(), "occupancy model");
            prop_assert_eq!(st.waiters, WaiterKind::None);
        }
    }

    /// Priority ports always deliver a minimum-key message, and the
    /// multiset of delivered tags equals the multiset sent.
    #[test]
    fn priority_delivers_min_key(ops in ops_strategy(), cap in 1u32..16) {
        let mut s = space();
        let root = s.root_sro();
        let port = create_port(&mut s, root, cap, PortDiscipline::Priority).unwrap();
        // Model: multiset of (key, tag).
        let mut model: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Send(tag, key) => {
                    let m = msg(&mut s, tag);
                    match send(&mut s, None, port.ad(), m, key, false, false).unwrap() {
                        SendOutcome::Queued | SendOutcome::Delivered => model.push((key, tag)),
                        SendOutcome::WouldBlock => {}
                        SendOutcome::Blocked => unreachable!(),
                    }
                }
                Op::Receive => {
                    match receive(&mut s, None, port.ad(), false, false).unwrap() {
                        RecvOutcome::Received(m) => {
                            let tag = s.read_u64(m.restricted(Rights::ALL), 0).unwrap();
                            let min_key = model.iter().map(|(k, _)| *k).min().unwrap();
                            // The delivered message carries a minimal key.
                            let pos = model
                                .iter()
                                .position(|(k, t)| *t == tag && *k == min_key);
                            prop_assert!(
                                pos.is_some(),
                                "delivered tag {tag} must have minimal key {min_key}; model {model:?}"
                            );
                            model.remove(pos.unwrap());
                        }
                        RecvOutcome::WouldBlock => prop_assert!(model.is_empty()),
                        RecvOutcome::Blocked => unreachable!(),
                    }
                }
            }
        }
        // Drain: everything sent comes back out.
        while let RecvOutcome::Received(m) = receive(&mut s, None, port.ad(), false, false).unwrap() {
            let tag = s.read_u64(m.restricted(Rights::ALL), 0).unwrap();
            let pos = model.iter().position(|(_, t)| *t == tag);
            prop_assert!(pos.is_some(), "unexpected tag {tag}");
            model.remove(pos.unwrap());
        }
        prop_assert!(model.is_empty(), "no message lost: {model:?}");
    }

    /// Port statistics are an exact ledger: sends == receives + queued.
    #[test]
    fn stats_ledger_balances(ops in ops_strategy()) {
        let mut s = space();
        let root = s.root_sro();
        let port = create_port(&mut s, root, 8, PortDiscipline::Fifo).unwrap();
        for op in ops {
            match op {
                Op::Send(tag, key) => {
                    let m = msg(&mut s, tag);
                    let _ = send(&mut s, None, port.ad(), m, key, false, false).unwrap();
                }
                Op::Receive => {
                    let _ = receive(&mut s, None, port.ad(), false, false).unwrap();
                }
            }
            let st = s.port(port.object()).unwrap();
            prop_assert_eq!(
                st.stats.sends,
                st.stats.receives + st.msg_count as u64,
                "sends = receives + in-queue"
            );
        }
    }
}
