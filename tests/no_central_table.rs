//! I2 — no central tables, paper §7.1.
//!
//! "A module's access is routinely limited to the objects which it
//! manages. ... there is no central table of all processes in the system.
//! Rather, the manager acquires an access for a given process object ...
//! whenever it is asked to perform an operation upon it. Damage due to a
//! machine error or latent program bug is limited to the particular
//! object with which the module is dealing at a given moment."

use imax::arch::{ObjectSpace, ObjectSpec, PortDiscipline, Rights};
use imax::ipc::create_port;
use imax::process::BasicProcessManager;
use imax::typemgr::TypeManager;

#[test]
fn process_manager_state_is_only_counters() {
    // Structural: the manager owns no collection of processes. Its size
    // equals its counters struct — nothing else fits.
    assert_eq!(
        std::mem::size_of::<BasicProcessManager>(),
        std::mem::size_of::<imax::process::basic::ManagerStats>(),
    );
}

#[test]
fn every_manager_operation_takes_the_instance() {
    // Behavioural: all operations require the caller to present the
    // process; with nothing presented, the manager can answer nothing.
    // (This is an API-shape test: the methods below are the complete
    // operation set, and each takes an ObjectRef.)
    let mut space = ObjectSpace::new(128 * 1024, 8 * 1024, 2048);
    let root = space.root_sro();
    let dispatch = create_port(&mut space, root, 16, PortDiscipline::Fifo).unwrap();
    let dom = {
        use imax::arch::{CodeBody, CodeRef, DomainState, Subprogram, SysState, SystemType};
        let d = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: 2,
                    otype: imax::arch::ObjectType::System(SystemType::Domain),
                    level: None,
                    sys: SysState::Domain(DomainState {
                        name: "d".into(),
                        subprograms: vec![Subprogram {
                            name: "main".into(),
                            body: CodeBody::Interpreted(CodeRef(0)),
                            ctx_data_len: 32,
                            ctx_access_len: 8,
                        }],
                    }),
                },
            )
            .unwrap();
        space.mint(d, Rights::CALL)
    };
    let mut mgr = BasicProcessManager::new();
    let p = mgr
        .create_process(
            &mut space,
            root,
            dom,
            0,
            None,
            imax::gdp::process::ProcessSpec::new(dispatch.ad()),
            None,
        )
        .unwrap();
    // The creator received the only access. Drop it (conceptually): the
    // manager itself cannot enumerate or retrieve it — there is no
    // `mgr.processes()`.
    assert_eq!(mgr.stop_count(&space, p).unwrap(), 0);
    mgr.stop(&mut space, p).unwrap();
    assert_eq!(mgr.stop_count(&space, p).unwrap(), 1);
}

#[test]
fn type_manager_holds_only_its_tdo() {
    // A type manager's entire state is the TDO descriptor plus the
    // client-rights policy: no instance list.
    let mut space = ObjectSpace::new(64 * 1024, 4096, 1024);
    let root = space.root_sro();
    let mgr = TypeManager::new(&mut space, root, "thing").unwrap();
    // Create many instances; the manager's size cannot grow (it is Copy).
    for _ in 0..32 {
        mgr.create_instance(&mut space, root, 8, 0).unwrap();
    }
    fn assert_copy<T: Copy>(_: &T) {}
    assert_copy(&mgr);
    // Only aggregate counters exist — in the TDO (the managed type's own
    // object), not in the manager.
    assert_eq!(space.tdo(mgr.tdo()).unwrap().instances_created, 32);
}

#[test]
fn damage_is_confined_to_the_presented_instance() {
    // Corrupting one instance through the manager leaves all others
    // untouched — the "damage limited to the particular object" claim.
    let mut space = ObjectSpace::new(64 * 1024, 4096, 1024);
    let root = space.root_sro();
    let mgr = TypeManager::new(&mut space, root, "cell").unwrap();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let h = mgr.create_instance(&mut space, root, 8, 0).unwrap();
            let full = mgr.amplify(&mut space, h).unwrap();
            space.write_u64(full, 0, 100 + i).unwrap();
            h
        })
        .collect();
    // "Bug": clobber instance 3 via its amplified descriptor.
    let victim = mgr.amplify(&mut space, handles[3]).unwrap();
    space.write_u64(victim, 0, 0xDEAD).unwrap();
    for (i, h) in handles.iter().enumerate() {
        let full = mgr.amplify(&mut space, *h).unwrap();
        let v = space.read_u64(full, 0).unwrap();
        if i == 3 {
            assert_eq!(v, 0xDEAD);
        } else {
            assert_eq!(v, 100 + i as u64, "instance {i} unharmed");
        }
    }
}

#[test]
fn garbage_collector_needs_no_table_either() {
    // The GC discovers liveness purely from processors and reachability;
    // its root discovery returns processors + root SRO only.
    let mut space = ObjectSpace::new(64 * 1024, 4096, 1024);
    let root = space.root_sro();
    for _ in 0..10 {
        space
            .create_object(root, ObjectSpec::generic(8, 0))
            .unwrap();
    }
    let roots = imax::gc::find_roots(&space);
    assert_eq!(
        roots,
        vec![root],
        "nothing but the root SRO (no processors here)"
    );
}
