//! I5 under *real* concurrency: host threads drive the processors with
//! nondeterministic interleaving, yet every logical result matches the
//! deterministic runner — because the system's synchronization is all
//! explicit (ports), exactly as paper §3 prescribes.

use imax::arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_FIRST_FREE, CTX_SLOT_SRO};
use imax::arch::{PortDiscipline, Rights};
use imax::gdp::isa::{AluOp, DataDst, DataRef};
use imax::gdp::ProgramBuilder;
use imax::ipc::create_port;
use imax::sim::{run_threaded, System, SystemConfig};

/// Builds the token-mutex increment workload (the same one the
/// deterministic test uses): two processes bump a shared counter 25
/// times each under a one-token port mutex.
fn build_mutex_workload(cpus: u32, shards: u32) -> (System, imax::arch::AccessDescriptor, u64) {
    const ROUNDS: u64 = 25;
    // Scale the arenas with the stripe count so per-shard capacity stays
    // constant (system objects all land in shard 0).
    let mut cfg = SystemConfig::small()
        .with_processors(cpus)
        .with_shards(shards);
    cfg.data_bytes *= shards;
    cfg.access_slots *= shards;
    cfg.table_limit *= shards;
    let mut sys = System::new(&cfg);
    let root = sys.space.root_sro();
    let mutex = create_port(&mut sys.space, root, 1, PortDiscipline::Fifo).unwrap();
    sys.anchor(mutex.ad());
    let shared = sys
        .space
        .create_object(root, imax::arch::ObjectSpec::generic(8, 0))
        .unwrap();
    let shared_ad = sys.space.mint(shared, Rights::READ | Rights::WRITE);
    sys.anchor(shared_ad);
    let token = sys
        .space
        .create_object(root, imax::arch::ObjectSpec::generic(8, 0))
        .unwrap();
    let token_ad = sys.space.mint(token, Rights::READ | Rights::WRITE);
    imax::ipc::untyped::send(&mut sys.space, mutex, token_ad).unwrap();

    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(0), DataDst::Local(0));
    p.bind(top);
    p.receive(CTX_SLOT_ARG as u16, 6);
    p.mov(DataRef::Field(5, 0), DataDst::Local(8));
    p.work(50);
    p.alu(
        AluOp::Add,
        DataRef::Local(8),
        DataRef::Imm(1),
        DataDst::Local(8),
    );
    p.mov(DataRef::Local(8), DataDst::Field(5, 0));
    p.send(CTX_SLOT_ARG as u16, 6);
    p.alu(
        AluOp::Add,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.alu(
        AluOp::Lt,
        DataRef::Local(0),
        DataRef::Imm(ROUNDS),
        DataDst::Local(16),
    );
    p.jump_if_nonzero(DataRef::Local(16), top);
    p.halt();
    let sub = sys.subprogram("incrementer", p.finish(), 64, 8);
    let dom = sys.install_domain("racers", vec![sub], 0);
    let a = sys.spawn(dom, 0, Some(mutex.ad()));
    let b = sys.spawn(dom, 0, Some(mutex.ad()));
    for proc_ref in [a, b] {
        let ctx = sys
            .space
            .load_ad_hw(proc_ref, imax::arch::sysobj::PROC_SLOT_CONTEXT)
            .unwrap()
            .unwrap()
            .obj;
        sys.space
            .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE + 1, Some(shared_ad))
            .unwrap();
    }
    (sys, shared_ad, 2 * ROUNDS)
}

#[test]
fn threaded_mutex_has_no_lost_updates() {
    for cpus in [2u32, 4] {
        let (sys, shared_ad, expect) = build_mutex_workload(cpus, 1);
        let (sys, outcome) = run_threaded(sys, 50_000_000);
        assert!(outcome.completed, "{cpus} cpus: {outcome:?}");
        assert_eq!(outcome.system_errors, 0);
        let mut space = sys.space;
        assert_eq!(
            space.read_u64(shared_ad, 0).unwrap(),
            expect,
            "{cpus} threads: token mutex must exclude"
        );
    }
}

#[test]
fn threaded_matches_deterministic_logical_result() {
    // Deterministic arm.
    let (mut det, det_shared, expect) = build_mutex_workload(2, 1);
    let outcome = det.run_to_completion(50_000_000);
    assert_eq!(outcome, imax::sim::RunOutcome::Stopped);
    let det_value = det.space.read_u64(det_shared, 0).unwrap();

    // Threaded arm (fresh system, same construction).
    let (sys, thr_shared, _) = build_mutex_workload(2, 1);
    let (sys, thr_outcome) = run_threaded(sys, 50_000_000);
    assert!(thr_outcome.completed);
    let mut space = sys.space;
    let thr_value = space.read_u64(thr_shared, 0).unwrap();

    assert_eq!(det_value, expect);
    assert_eq!(thr_value, det_value, "interleaving must not change results");
}

#[test]
fn threaded_allocation_churn_is_safe() {
    // Concurrent object creation/abandonment from multiple threads: the
    // object space's accounting survives (no double allocation, no
    // corruption faults).
    let mut sys = System::new(&SystemConfig::small().with_processors(4));
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(30), DataDst::Local(0));
    p.bind(top);
    p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(64), DataRef::Imm(2), 5);
    p.mov(DataRef::Imm(7), DataDst::Field(5, 0));
    p.alu(
        AluOp::Sub,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.jump_if_nonzero(DataRef::Local(0), top);
    p.halt();
    let sub = sys.subprogram("churn", p.finish(), 64, 8);
    let dom = sys.install_domain("churners", vec![sub], 0);
    for _ in 0..6 {
        sys.spawn(dom, 0, None);
    }
    let (sys, outcome) = run_threaded(sys, 50_000_000);
    assert!(outcome.completed, "{outcome:?}");
    assert_eq!(outcome.system_errors, 0);
    for p in sys.processes() {
        assert_eq!(sys.space.process(*p).unwrap().fault_code, 0);
    }
    // 6 churners x 30 objects were created.
    assert!(sys.space.stats().objects_created >= 180);
}

#[test]
fn thread_shard_matrix_matches_deterministic() {
    // The same workload, same seed, across host-thread counts and shard
    // (lock stripe) counts: every combination must reach the identical
    // logical result the deterministic runner computes. Interleaving and
    // lock granularity are free to vary; outcomes are not.
    let (mut det, det_shared, expect) = build_mutex_workload(2, 1);
    assert_eq!(
        det.run_to_completion(50_000_000),
        imax::sim::RunOutcome::Stopped
    );
    let det_value = det.space.read_u64(det_shared, 0).unwrap();
    assert_eq!(det_value, expect);

    for cpus in [1u32, 4, 8] {
        for shards in [1u32, 4, 16] {
            let (sys, shared_ad, _) = build_mutex_workload(cpus, shards);
            let (sys, outcome) = run_threaded(sys, 50_000_000);
            assert!(
                outcome.completed,
                "{cpus} threads x {shards} shards: {outcome:?}"
            );
            assert_eq!(outcome.system_errors, 0, "{cpus} threads x {shards} shards");
            let mut space = sys.space;
            assert_eq!(
                space.read_u64(shared_ad, 0).unwrap(),
                det_value,
                "{cpus} threads x {shards} shards must match the deterministic run"
            );
        }
    }
}
