//! Device families: one implementation, many package instances.
//!
//! Paper §6.3: "The major extension is the raising of packages to the
//! status of types. This allows multiple instances of a module to be
//! dynamically created..." — and crucially the instances *share one
//! implementation*: same subprogram bodies, per-instance state.
//!
//! [`DeviceFamily`] registers the device operations **once**; every
//! instance is a fresh domain (minted through
//! [`imax_typemgr::PackagePrototype`]) whose state slot holds that
//! instance's unit-number object. When a shared native body runs, it
//! recovers *which* instance was called from its own context's domain
//! linkage — the very addressing environment CALL set up — and drives
//! that unit. No registry consulted, no code duplicated.

use crate::iface::{DeviceImpl, ARG_DATA_OFF, ARG_LEN_OFF};
use i432_arch::{
    sysobj::CTX_SLOT_DOMAIN, AccessDescriptor, CodeBody, ObjectSpec, Rights, Subprogram,
};
use i432_gdp::{native::NativeReturn, Fault, FaultKind, NativeCtx};
use i432_sim::System;
use imax_typemgr::PackagePrototype;
use parking_lot::Mutex;
use std::sync::Arc;

/// The shared pool of unit implementations behind one family.
type Units = Arc<Mutex<Vec<Arc<Mutex<dyn DeviceImpl>>>>>;

/// A family of device package instances sharing one implementation.
pub struct DeviceFamily {
    units: Units,
    prototype: PackagePrototype,
}

/// Reads the calling instance's unit number: context → domain → state
/// slot 0 → unit object's first word.
fn unit_of(cx: &mut NativeCtx<'_>) -> Result<usize, Fault> {
    let domain = cx
        .space
        .load_ad_hw(cx.context, CTX_SLOT_DOMAIN)
        .map_err(Fault::from)?
        .ok_or_else(|| Fault::with_detail(FaultKind::NullAccess, "context has no domain"))?;
    let state = cx
        .space
        .load_ad_hw(domain.obj, 0)
        .map_err(Fault::from)?
        .ok_or_else(|| {
            Fault::with_detail(FaultKind::NullAccess, "device instance has no state object")
        })?;
    let state = AccessDescriptor::new(state.obj, Rights::READ);
    Ok(cx.space.read_u64(state, 0).map_err(Fault::from)? as usize)
}

impl DeviceFamily {
    /// Builds the family: registers the shared operation bodies and
    /// prepares the prototype. `family_name` labels the instances.
    pub fn new(sys: &mut System, family_name: &str) -> DeviceFamily {
        let units: Units = Arc::new(Mutex::new(Vec::new()));
        let sub = |name: String, body: CodeBody| Subprogram {
            name,
            body,
            ctx_data_len: 32,
            ctx_access_len: 8,
        };
        let mut subs = Vec::new();

        let u = Arc::clone(&units);
        let id = sys
            .natives
            .register(format!("{family_name}.open"), move |cx| {
                let k = unit_of(cx)?;
                cx.charge(60);
                let dev = u.lock()[k].clone();
                let mut dev = dev.lock();
                dev.open()?;
                Ok(NativeReturn::value(0))
            });
        subs.push(sub(format!("{family_name}.open"), CodeBody::Native(id)));

        let u = Arc::clone(&units);
        let id = sys
            .natives
            .register(format!("{family_name}.close"), move |cx| {
                let k = unit_of(cx)?;
                cx.charge(60);
                let dev = u.lock()[k].clone();
                let mut dev = dev.lock();
                dev.close()?;
                Ok(NativeReturn::value(0))
            });
        subs.push(sub(format!("{family_name}.close"), CodeBody::Native(id)));

        let u = Arc::clone(&units);
        let id = sys
            .natives
            .register(format!("{family_name}.read"), move |cx| {
                let k = unit_of(cx)?;
                let arg = cx.arg().ok_or_else(|| {
                    Fault::with_detail(FaultKind::NullAccess, "read needs an argument record")
                })?;
                let len = cx.space.read_u64(arg, ARG_LEN_OFF).map_err(Fault::from)? as usize;
                let dev = u.lock()[k].clone();
                let mut buf = vec![0u8; len];
                let (n, cpb) = {
                    let mut dev = dev.lock();
                    let n = dev.read(&mut buf)?;
                    (n, dev.cycles_per_byte())
                };
                cx.space
                    .write_data(arg, ARG_DATA_OFF, &buf[..n])
                    .map_err(Fault::from)?;
                cx.charge(80 + n as u64 * cpb);
                Ok(NativeReturn::value(n as u64))
            });
        subs.push(sub(format!("{family_name}.read"), CodeBody::Native(id)));

        let u = Arc::clone(&units);
        let id = sys
            .natives
            .register(format!("{family_name}.write"), move |cx| {
                let k = unit_of(cx)?;
                let arg = cx.arg().ok_or_else(|| {
                    Fault::with_detail(FaultKind::NullAccess, "write needs an argument record")
                })?;
                let len = cx.space.read_u64(arg, ARG_LEN_OFF).map_err(Fault::from)? as usize;
                let mut buf = vec![0u8; len];
                cx.space
                    .read_data(arg, ARG_DATA_OFF, &mut buf)
                    .map_err(Fault::from)?;
                let dev = u.lock()[k].clone();
                let (n, cpb) = {
                    let mut dev = dev.lock();
                    let n = dev.write(&buf)?;
                    (n, dev.cycles_per_byte())
                };
                cx.charge(80 + n as u64 * cpb);
                Ok(NativeReturn::value(n as u64))
            });
        subs.push(sub(format!("{family_name}.write"), CodeBody::Native(id)));

        let u = Arc::clone(&units);
        let id = sys
            .natives
            .register(format!("{family_name}.status"), move |cx| {
                let k = unit_of(cx)?;
                cx.charge(30);
                let dev = u.lock()[k].clone();
                let s = dev.lock().status().pack();
                Ok(NativeReturn::value(s))
            });
        subs.push(sub(format!("{family_name}.status"), CodeBody::Native(id)));

        DeviceFamily {
            units,
            prototype: PackagePrototype::new(family_name, subs, 2),
        }
    }

    /// Number of instances minted so far.
    pub fn instance_count(&self) -> u32 {
        self.prototype.instance_count()
    }

    /// Mints a new package instance bound to `device`: a fresh domain
    /// whose state slot 0 holds this instance's unit-number object.
    /// Returns the call-rights descriptor clients hold.
    pub fn instantiate(
        &mut self,
        sys: &mut System,
        device: Arc<Mutex<dyn DeviceImpl>>,
    ) -> Result<AccessDescriptor, Fault> {
        let unit = {
            let mut units = self.units.lock();
            units.push(device);
            units.len() - 1
        };
        let root = sys.space.root_sro();
        let state = sys
            .space
            .create_object(root, ObjectSpec::generic(8, 0))
            .map_err(Fault::from)?;
        let state_ad = sys.space.mint(state, Rights::READ | Rights::WRITE);
        sys.space
            .write_u64(state_ad, 0, unit as u64)
            .map_err(Fault::from)?;
        let dom = self
            .prototype
            .instantiate_with_state(&mut sys.space, root, &[state_ad])?;
        sys.anchor(dom);
        Ok(dom)
    }

    /// Direct host-side access to a unit (diagnostics).
    pub fn unit(&self, k: usize) -> Option<Arc<Mutex<dyn DeviceImpl>>> {
        self.units.lock().get(k).cloned()
    }
}

/// The state object an instance's domain holds in slot 0 (unit number);
/// re-exported layout constant for inspectors.
pub const FAMILY_STATE_SLOT: u32 = 0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::console::ConsoleDevice;
    use crate::iface::{OP_OPEN, OP_WRITE};
    use i432_arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_SRO};
    use i432_gdp::isa::{DataDst, DataRef};
    use i432_gdp::ProgramBuilder;
    use i432_sim::{RunOutcome, SystemConfig};

    #[test]
    fn instances_share_code_but_not_state() {
        let mut sys = System::new(&SystemConfig::small());
        let mut family = DeviceFamily::new(&mut sys, "console");
        let tty0 = Arc::new(Mutex::new(ConsoleDevice::new("tty0", b"")));
        let tty1 = Arc::new(Mutex::new(ConsoleDevice::new("tty1", b"")));
        let dom0 = family.instantiate(&mut sys, tty0.clone()).unwrap();
        let dom1 = family.instantiate(&mut sys, tty1.clone()).unwrap();
        assert_eq!(family.instance_count(), 2);
        assert_ne!(dom0.obj, dom1.obj, "distinct domains");

        // One program, run once against each instance: writes its own
        // marker byte.
        let writer = |marker: u8| {
            let mut p = ProgramBuilder::new();
            p.call(CTX_SLOT_ARG as u16, OP_OPEN, None, None, None);
            p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(24), DataRef::Imm(0), 5);
            p.mov(DataRef::Imm(1), DataDst::Field(5, ARG_LEN_OFF));
            p.mov(DataRef::Imm(marker as u64), DataDst::Field(5, ARG_DATA_OFF));
            p.call(CTX_SLOT_ARG as u16, OP_WRITE, Some(5), None, None);
            p.halt();
            p.finish()
        };
        let s0 = sys.subprogram("w0", writer(b'x'), 64, 12);
        let s1 = sys.subprogram("w1", writer(b'y'), 64, 12);
        let app = sys.install_domain("app", vec![s0, s1], 0);
        let p0 = sys.spawn(app, 0, Some(dom0));
        let p1 = sys.spawn(app, 1, Some(dom1));
        let outcome = sys.run_to_completion(5_000_000);
        assert_eq!(outcome, RunOutcome::Stopped);
        for p in [p0, p1] {
            assert_eq!(
                sys.space.process(p).unwrap().fault_code,
                0,
                "{}",
                sys.space.process(p).unwrap().fault_detail
            );
        }
        assert_eq!(tty0.lock().transcript(), b"x");
        assert_eq!(tty1.lock().transcript(), b"y");
    }

    #[test]
    fn family_grows_dynamically() {
        // "multiple instances of a module to be dynamically created":
        // instances can be minted while the system is live.
        let mut sys = System::new(&SystemConfig::small());
        let mut family = DeviceFamily::new(&mut sys, "console");
        for i in 0..5 {
            let dev = Arc::new(Mutex::new(ConsoleDevice::new(format!("tty{i}"), b"")));
            family.instantiate(&mut sys, dev).unwrap();
        }
        assert_eq!(family.instance_count(), 5);
        assert!(family.unit(4).is_some());
        assert!(family.unit(5).is_none());
    }
}
