//! The device-independent interface specification.
//!
//! A device is a *domain* whose first subprograms implement the common
//! specification at fixed indices ([`OP_OPEN`] .. [`OP_STATUS`]); any
//! further subprograms ([`OP_CONTROL_BASE`] + k) are device- or
//! class-specific extensions. A program holding any device's domain AD
//! can drive it through the common subset without knowing what it is —
//! and there is deliberately no registry mapping names to devices.

use i432_arch::{AccessDescriptor, CodeBody, Subprogram};
use i432_gdp::{native::NativeReturn, Fault, FaultKind};
use i432_sim::System;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Subprogram index of `Open`.
pub const OP_OPEN: u32 = 0;
/// Subprogram index of `Close`.
pub const OP_CLOSE: u32 = 1;
/// Subprogram index of `Read`.
pub const OP_READ: u32 = 2;
/// Subprogram index of `Write`.
pub const OP_WRITE: u32 = 3;
/// Subprogram index of `Status`.
pub const OP_STATUS: u32 = 4;
/// First device-specific subprogram index.
pub const OP_CONTROL_BASE: u32 = 5;

/// Byte offset of the length field in a read/write argument record.
pub const ARG_LEN_OFF: u32 = 0;
/// Byte offset of the auxiliary field (seek position etc.).
pub const ARG_AUX_OFF: u32 = 8;
/// Byte offset where transfer data begins.
pub const ARG_DATA_OFF: u32 = 16;

/// Device-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The device is not open.
    NotOpen,
    /// The device is already open.
    AlreadyOpen,
    /// Transfer beyond the end of the medium.
    EndOfMedium,
    /// The operation is not supported by this device.
    Unsupported,
    /// Device-specific failure.
    Failed(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::NotOpen => write!(f, "device not open"),
            DeviceError::AlreadyOpen => write!(f, "device already open"),
            DeviceError::EndOfMedium => write!(f, "end of medium"),
            DeviceError::Unsupported => write!(f, "operation unsupported"),
            DeviceError::Failed(s) => write!(f, "device failure: {s}"),
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<DeviceError> for Fault {
    fn from(e: DeviceError) -> Fault {
        Fault::with_detail(FaultKind::Explicit(0x10), e.to_string())
    }
}

/// Snapshot of a device's condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStatus {
    /// Device is operational.
    pub ready: bool,
    /// Device is open.
    pub open: bool,
    /// Last error code (0 = none).
    pub error: u16,
    /// Medium position (device-defined units).
    pub position: u64,
}

impl DeviceStatus {
    /// Packs the status into the scalar returned by `Status`.
    pub fn pack(self) -> u64 {
        (self.ready as u64)
            | (self.open as u64) << 1
            | (self.error as u64) << 16
            | self.position << 32
    }

    /// Unpacks a scalar produced by [`DeviceStatus::pack`].
    pub fn unpack(v: u64) -> DeviceStatus {
        DeviceStatus {
            ready: v & 1 != 0,
            open: v & 2 != 0,
            error: (v >> 16) as u16,
            position: v >> 32,
        }
    }
}

/// One device implementation: the body behind a device package instance.
pub trait DeviceImpl: Send {
    /// Device name (diagnostics only — never used for lookup).
    fn name(&self) -> &str;
    /// Opens the device.
    fn open(&mut self) -> Result<(), DeviceError>;
    /// Closes the device.
    fn close(&mut self) -> Result<(), DeviceError>;
    /// Reads up to `buf.len()` bytes; returns the count.
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, DeviceError>;
    /// Writes `buf`; returns the count accepted.
    fn write(&mut self, buf: &[u8]) -> Result<usize, DeviceError>;
    /// Current status.
    fn status(&self) -> DeviceStatus;
    /// Device-specific operation `op` (0-based beyond the common set).
    fn control(&mut self, _op: u32, _arg: u64) -> Result<u64, DeviceError> {
        Err(DeviceError::Unsupported)
    }
    /// Number of device-specific operations (for building the domain).
    fn control_ops(&self) -> u32 {
        0
    }
    /// Simulated cycles one transferred byte costs on this device.
    fn cycles_per_byte(&self) -> u64 {
        4
    }
}

/// A handle pairing the shared implementation (host-side access) with
/// the device's domain descriptor (program-side access).
#[derive(Clone)]
pub struct DeviceHandle {
    /// The device's domain: what programs hold and CALL through.
    pub domain: AccessDescriptor,
    /// The implementation, shared with the domain's native bodies.
    pub device: Arc<Mutex<dyn DeviceImpl>>,
}

impl fmt::Debug for DeviceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceHandle")
            .field("domain", &self.domain)
            .field("device", &self.device.lock().name())
            .finish()
    }
}

fn sub(name: String, body: CodeBody) -> Subprogram {
    Subprogram {
        name,
        body,
        ctx_data_len: 32,
        ctx_access_len: 8,
    }
}

/// Installs a device as a package instance: one domain whose subprograms
/// follow the interface convention. No registry is touched — the caller
/// receives the only access.
pub fn install_device(sys: &mut System, device: Arc<Mutex<dyn DeviceImpl>>) -> DeviceHandle {
    let name = device.lock().name().to_string();
    let mut subs = Vec::new();

    // Open.
    let d = Arc::clone(&device);
    let id = sys.natives.register(format!("{name}.open"), move |cx| {
        cx.charge(60);
        d.lock().open()?;
        Ok(NativeReturn::value(0))
    });
    subs.push(sub(format!("{name}.open"), CodeBody::Native(id)));

    // Close.
    let d = Arc::clone(&device);
    let id = sys.natives.register(format!("{name}.close"), move |cx| {
        cx.charge(60);
        d.lock().close()?;
        Ok(NativeReturn::value(0))
    });
    subs.push(sub(format!("{name}.close"), CodeBody::Native(id)));

    // Read: arg record in = {len, aux}; data out at ARG_DATA_OFF.
    let d = Arc::clone(&device);
    let id = sys.natives.register(format!("{name}.read"), move |cx| {
        let arg = cx.arg().ok_or_else(|| {
            Fault::with_detail(FaultKind::NullAccess, "read needs an argument record")
        })?;
        let len = cx.space.read_u64(arg, ARG_LEN_OFF).map_err(Fault::from)? as usize;
        let mut buf = vec![0u8; len];
        let (n, cpb) = {
            let mut dev = d.lock();
            let n = dev.read(&mut buf)?;
            (n, dev.cycles_per_byte())
        };
        cx.space
            .write_data(arg, ARG_DATA_OFF, &buf[..n])
            .map_err(Fault::from)?;
        cx.charge(80 + n as u64 * cpb);
        Ok(NativeReturn::value(n as u64))
    });
    subs.push(sub(format!("{name}.read"), CodeBody::Native(id)));

    // Write: arg record in = {len, aux, data}.
    let d = Arc::clone(&device);
    let id = sys.natives.register(format!("{name}.write"), move |cx| {
        let arg = cx.arg().ok_or_else(|| {
            Fault::with_detail(FaultKind::NullAccess, "write needs an argument record")
        })?;
        let len = cx.space.read_u64(arg, ARG_LEN_OFF).map_err(Fault::from)? as usize;
        let mut buf = vec![0u8; len];
        cx.space
            .read_data(arg, ARG_DATA_OFF, &mut buf)
            .map_err(Fault::from)?;
        let (n, cpb) = {
            let mut dev = d.lock();
            let n = dev.write(&buf)?;
            (n, dev.cycles_per_byte())
        };
        cx.charge(80 + n as u64 * cpb);
        Ok(NativeReturn::value(n as u64))
    });
    subs.push(sub(format!("{name}.write"), CodeBody::Native(id)));

    // Status.
    let d = Arc::clone(&device);
    let id = sys.natives.register(format!("{name}.status"), move |cx| {
        cx.charge(30);
        Ok(NativeReturn::value(d.lock().status().pack()))
    });
    subs.push(sub(format!("{name}.status"), CodeBody::Native(id)));

    // Device-specific extensions (the subset rule: they come after the
    // common operations).
    let control_ops = device.lock().control_ops();
    for k in 0..control_ops {
        let d = Arc::clone(&device);
        let id = sys
            .natives
            .register(format!("{name}.control{k}"), move |cx| {
                let arg_val = match cx.arg() {
                    Some(arg) => cx.space.read_u64(arg, ARG_LEN_OFF).unwrap_or(0),
                    None => 0,
                };
                cx.charge(60);
                let r = d.lock().control(k, arg_val)?;
                Ok(NativeReturn::value(r))
            });
        subs.push(sub(format!("{name}.control{k}"), CodeBody::Native(id)));
    }

    let domain = sys.install_domain(&name, subs, 0);
    DeviceHandle { domain, device }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_pack_roundtrip() {
        let s = DeviceStatus {
            ready: true,
            open: false,
            error: 7,
            position: 123456,
        };
        assert_eq!(DeviceStatus::unpack(s.pack()), s);
        let s2 = DeviceStatus {
            ready: false,
            open: true,
            error: 0,
            position: 0,
        };
        assert_eq!(DeviceStatus::unpack(s2.pack()), s2);
    }

    #[test]
    fn device_error_to_fault() {
        let f: Fault = DeviceError::NotOpen.into();
        assert_eq!(f.kind, FaultKind::Explicit(0x10));
        assert!(f.detail.contains("not open"));
    }
}
