//! A console device: scripted input, captured output.

use crate::iface::{DeviceError, DeviceImpl, DeviceStatus};
use std::collections::VecDeque;

/// An in-memory console: reads consume a pre-loaded input script, writes
/// append to a captured transcript.
#[derive(Debug, Default)]
pub struct ConsoleDevice {
    name: String,
    open: bool,
    input: VecDeque<u8>,
    output: Vec<u8>,
    reads: u64,
    writes: u64,
}

impl ConsoleDevice {
    /// A console with the given name and input script.
    pub fn new(name: impl Into<String>, input: &[u8]) -> ConsoleDevice {
        ConsoleDevice {
            name: name.into(),
            input: input.iter().copied().collect(),
            ..ConsoleDevice::default()
        }
    }

    /// Everything written so far.
    pub fn transcript(&self) -> &[u8] {
        &self.output
    }

    /// Appends more scripted input.
    pub fn feed(&mut self, input: &[u8]) {
        self.input.extend(input.iter().copied());
    }
}

impl DeviceImpl for ConsoleDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn open(&mut self) -> Result<(), DeviceError> {
        if self.open {
            return Err(DeviceError::AlreadyOpen);
        }
        self.open = true;
        Ok(())
    }

    fn close(&mut self) -> Result<(), DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        self.open = false;
        Ok(())
    }

    fn read(&mut self, buf: &mut [u8]) -> Result<usize, DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        let mut n = 0;
        while n < buf.len() {
            match self.input.pop_front() {
                Some(b) => {
                    buf[n] = b;
                    n += 1;
                }
                None => break,
            }
        }
        self.reads += 1;
        Ok(n)
    }

    fn write(&mut self, buf: &[u8]) -> Result<usize, DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        self.output.extend_from_slice(buf);
        self.writes += 1;
        Ok(buf.len())
    }

    fn status(&self) -> DeviceStatus {
        DeviceStatus {
            ready: true,
            open: self.open,
            error: 0,
            position: self.output.len() as u64,
        }
    }

    fn cycles_per_byte(&self) -> u64 {
        8 // A slow character device relative to memory.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let mut c = ConsoleDevice::new("tty0", b"hello");
        c.open().unwrap();
        let mut buf = [0u8; 3];
        assert_eq!(c.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf, b"hel");
        c.write(&buf).unwrap();
        assert_eq!(c.transcript(), b"hel");
        c.close().unwrap();
    }

    #[test]
    fn closed_console_refuses_io() {
        let mut c = ConsoleDevice::new("tty0", b"x");
        assert_eq!(c.read(&mut [0u8; 1]), Err(DeviceError::NotOpen));
        assert_eq!(c.write(b"x"), Err(DeviceError::NotOpen));
        c.open().unwrap();
        assert_eq!(c.open(), Err(DeviceError::AlreadyOpen));
    }

    #[test]
    fn input_exhaustion_is_short_read() {
        let mut c = ConsoleDevice::new("tty0", b"ab");
        c.open().unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(c.read(&mut buf).unwrap(), 2);
        assert_eq!(c.read(&mut buf).unwrap(), 0);
        c.feed(b"cd");
        assert_eq!(c.read(&mut buf).unwrap(), 2);
    }
}
