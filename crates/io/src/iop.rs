//! Attached I/O subsystems: asynchronous device I/O through ports.
//!
//! Paper §3: "Multiple independent I/O subsystems provide a similar
//! expansion for the I/O bandwidth of a single system." On the 432,
//! attached I/O processors drained request ports and posted completions
//! back — the GDPs never waited for devices unless they chose to RECEIVE.
//!
//! [`AsyncDevice`] reproduces that structure: clients SEND a request
//! object to the device's request port and go on computing; the I/O
//! subsystem services the port, drives the device, and SENDs the request
//! object back to the *reply port named inside the request* with the
//! results filled in. The client RECEIVEs the completion whenever it
//! likes — overlap of computation and I/O falls out of the port
//! mechanism with no new concepts, which is the uniformity the paper is
//! about.
//!
//! The subsystem is serviced deterministically between simulation steps
//! (the real AIPs ran truly in parallel; determinism of the measurements
//! is worth more to a reproduction than wall-clock concurrency, and the
//! *client-visible* asynchrony is identical).
//!
//! ## Request object layout
//!
//! Data part: `[0]` = operation (the `OP_*` codes), `[8]` = length/aux,
//! `[16]` = completion status (0 ok, else error code), `[24]` = result
//! count, `[32..]` = transfer data. Access part: slot 0 = reply port.

use crate::iface::{DeviceImpl, OP_CLOSE, OP_CONTROL_BASE, OP_OPEN, OP_READ, OP_STATUS, OP_WRITE};
use i432_arch::{AccessDescriptor, ObjectRef, Rights, SpaceMut};
use i432_gdp::{
    port::{self, RecvOutcome, SendOutcome},
    Fault, FaultKind,
};
use imax_ipc::Port;
use parking_lot::Mutex;
use std::sync::Arc;

/// Offset of the operation code in a request object.
pub const REQ_OP_OFF: u32 = 0;
/// Offset of the length/aux field.
pub const REQ_LEN_OFF: u32 = 8;
/// Offset of the completion status (written by the subsystem).
pub const REQ_STATUS_OFF: u32 = 16;
/// Offset of the result count (written by the subsystem).
pub const REQ_COUNT_OFF: u32 = 24;
/// Offset of the transfer data area.
pub const REQ_DATA_OFF: u32 = 32;
/// Access slot of the reply port inside a request object.
pub const REQ_SLOT_REPLY: u32 = 0;

/// Counters per asynchronous device.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IopStats {
    /// Requests completed.
    pub completed: u64,
    /// Requests that failed (status != 0 posted).
    pub failed: u64,
    /// Simulated device cycles consumed.
    pub device_cycles: u64,
}

/// One device behind a request port.
pub struct AsyncDevice {
    device: Arc<Mutex<dyn DeviceImpl>>,
    request_port: Port,
    /// Counters.
    pub stats: IopStats,
}

impl AsyncDevice {
    /// Binds a device implementation to a fresh request port allocated
    /// from `sro`.
    pub fn new<S: SpaceMut + ?Sized>(
        space: &mut S,
        sro: ObjectRef,
        device: Arc<Mutex<dyn DeviceImpl>>,
        queue_depth: u32,
    ) -> Result<AsyncDevice, Fault> {
        let request_port =
            imax_ipc::create_port(space, sro, queue_depth, i432_arch::PortDiscipline::Fifo)?;
        Ok(AsyncDevice {
            device,
            request_port,
            stats: IopStats::default(),
        })
    }

    /// The request port clients send to (hand out send-only views).
    pub fn request_port(&self) -> Port {
        self.request_port
    }

    /// Services every pending request; returns how many completed.
    pub fn service<S: SpaceMut + ?Sized>(&mut self, space: &mut S) -> Result<u32, Fault> {
        let mut done = 0;
        loop {
            let req = match port::receive(space, None, self.request_port.ad(), false, true)? {
                RecvOutcome::Received(req) => req,
                RecvOutcome::WouldBlock => return Ok(done),
                RecvOutcome::Blocked => unreachable!("non-blocking receive"),
            };
            self.complete_one(space, req)?;
            done += 1;
        }
    }

    fn complete_one<S: SpaceMut + ?Sized>(
        &mut self,
        space: &mut S,
        req: AccessDescriptor,
    ) -> Result<(), Fault> {
        // The subsystem is trusted: full access to the request object.
        let req = AccessDescriptor::new(req.obj, Rights::ALL);
        let op = space.read_u64(req, REQ_OP_OFF).map_err(Fault::from)? as u32;
        let len = space.read_u64(req, REQ_LEN_OFF).map_err(Fault::from)? as usize;

        let (status, count, cycles) = {
            let mut dev = self.device.lock();
            let cpb = dev.cycles_per_byte();
            match op {
                OP_OPEN => match dev.open() {
                    Ok(()) => (0u64, 0u64, 40),
                    Err(_) => (1, 0, 40),
                },
                OP_CLOSE => match dev.close() {
                    Ok(()) => (0, 0, 40),
                    Err(_) => (1, 0, 40),
                },
                OP_STATUS => (0, dev.status().pack(), 20),
                OP_READ => {
                    let mut buf = vec![0u8; len];
                    match dev.read(&mut buf) {
                        Ok(n) => {
                            drop(dev);
                            space
                                .write_data(req, REQ_DATA_OFF, &buf[..n])
                                .map_err(Fault::from)?;
                            (0, n as u64, 60 + n as u64 * cpb)
                        }
                        Err(_) => (1, 0, 60),
                    }
                }
                OP_WRITE => {
                    let mut buf = vec![0u8; len];
                    drop(dev);
                    space
                        .read_data(req, REQ_DATA_OFF, &mut buf)
                        .map_err(Fault::from)?;
                    let mut dev = self.device.lock();
                    match dev.write(&buf) {
                        Ok(n) => (0, n as u64, 60 + n as u64 * cpb),
                        Err(_) => (1, 0, 60),
                    }
                }
                other if other >= OP_CONTROL_BASE => {
                    let aux = len as u64;
                    match dev.control(other - OP_CONTROL_BASE, aux) {
                        Ok(v) => (0, v, 50),
                        Err(_) => (1, 0, 50),
                    }
                }
                _ => (1, 0, 10),
            }
        };
        space
            .write_u64(req, REQ_STATUS_OFF, status)
            .map_err(Fault::from)?;
        space
            .write_u64(req, REQ_COUNT_OFF, count)
            .map_err(Fault::from)?;
        self.stats.device_cycles += cycles;
        if status == 0 {
            self.stats.completed += 1;
        } else {
            self.stats.failed += 1;
        }

        // Post the completion to the reply port named in the request.
        let reply = space
            .load_ad_hw(req.obj, REQ_SLOT_REPLY)
            .map_err(Fault::from)?
            .ok_or_else(|| {
                Fault::with_detail(FaultKind::NullAccess, "request has no reply port")
            })?;
        match port::send(space, None, reply, req, 0, false, true)? {
            SendOutcome::Queued | SendOutcome::Delivered => Ok(()),
            _ => Err(Fault::with_detail(
                FaultKind::QueueOverflow,
                "reply port full; completion lost",
            )),
        }
    }
}

/// One independent I/O subsystem: several devices serviced together
/// (paper §3's "multiple independent I/O subsystems").
#[derive(Default)]
pub struct IoSubsystem {
    devices: Vec<AsyncDevice>,
}

impl IoSubsystem {
    /// An empty subsystem.
    pub fn new() -> IoSubsystem {
        IoSubsystem::default()
    }

    /// Attaches a device; returns its request port.
    pub fn attach<S: SpaceMut + ?Sized>(
        &mut self,
        space: &mut S,
        sro: ObjectRef,
        device: Arc<Mutex<dyn DeviceImpl>>,
        queue_depth: u32,
    ) -> Result<Port, Fault> {
        let dev = AsyncDevice::new(space, sro, device, queue_depth)?;
        let port = dev.request_port();
        self.devices.push(dev);
        Ok(port)
    }

    /// Services every attached device once; returns total completions.
    pub fn service<S: SpaceMut + ?Sized>(&mut self, space: &mut S) -> Result<u32, Fault> {
        let mut total = 0;
        for d in &mut self.devices {
            total += d.service(space)?;
        }
        Ok(total)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> IopStats {
        let mut s = IopStats::default();
        for d in &self.devices {
            s.completed += d.stats.completed;
            s.failed += d.stats.failed;
            s.device_cycles += d.stats.device_cycles;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::console::ConsoleDevice;
    use i432_arch::{ObjectSpace, ObjectSpec};
    use imax_ipc::untyped;

    fn request(
        space: &mut ObjectSpace,
        op: u32,
        len: u64,
        data: &[u8],
        reply: Port,
    ) -> AccessDescriptor {
        let root = space.root_sro();
        let o = space
            .create_object(root, ObjectSpec::generic(REQ_DATA_OFF + 64, 2))
            .unwrap();
        let ad = space.mint(o, Rights::ALL);
        space.write_u64(ad, REQ_OP_OFF, op as u64).unwrap();
        space.write_u64(ad, REQ_LEN_OFF, len).unwrap();
        if !data.is_empty() {
            space.write_data(ad, REQ_DATA_OFF, data).unwrap();
        }
        space
            .store_ad_hw(o, REQ_SLOT_REPLY, Some(reply.ad()))
            .unwrap();
        ad
    }

    #[test]
    fn async_write_read_roundtrip() {
        let mut s = ObjectSpace::new(128 * 1024, 8 * 1024, 1024);
        let root = s.root_sro();
        let console = Arc::new(Mutex::new(ConsoleDevice::new("tty0", b"pong")));
        let mut iop = IoSubsystem::new();
        let req_port = iop.attach(&mut s, root, console.clone(), 8).unwrap();
        let reply =
            imax_ipc::create_port(&mut s, root, 8, i432_arch::PortDiscipline::Fifo).unwrap();

        // Submit open + write + read; nothing happens until the
        // subsystem runs (asynchrony).
        let r_open = request(&mut s, OP_OPEN, 0, &[], reply);
        let r_write = request(&mut s, OP_WRITE, 4, b"ping", reply);
        let r_read = request(&mut s, OP_READ, 4, &[], reply);
        for r in [r_open, r_write, r_read] {
            untyped::send(&mut s, req_port, r).unwrap();
        }
        assert_eq!(untyped::receive(&mut s, reply).unwrap(), None, "not yet");

        let done = iop.service(&mut s).unwrap();
        assert_eq!(done, 3);

        // Completions arrive in submission order on the reply port.
        for expected in [r_open, r_write, r_read] {
            let c = untyped::receive(&mut s, reply).unwrap().unwrap();
            assert_eq!(c.obj, expected.obj);
            assert_eq!(s.read_u64(expected, REQ_STATUS_OFF).unwrap(), 0);
        }
        // The write reached the device; the read brought back the script.
        assert_eq!(console.lock().transcript(), b"ping");
        let mut buf = [0u8; 4];
        s.read_data(r_read, REQ_DATA_OFF, &mut buf).unwrap();
        assert_eq!(&buf, b"pong");
        assert_eq!(s.read_u64(r_read, REQ_COUNT_OFF).unwrap(), 4);
    }

    #[test]
    fn failures_complete_with_status() {
        let mut s = ObjectSpace::new(64 * 1024, 4096, 512);
        let root = s.root_sro();
        let console = Arc::new(Mutex::new(ConsoleDevice::new("tty0", b"")));
        let mut iop = IoSubsystem::new();
        let req_port = iop.attach(&mut s, root, console, 4).unwrap();
        let reply =
            imax_ipc::create_port(&mut s, root, 4, i432_arch::PortDiscipline::Fifo).unwrap();
        // Read before open: fails, but the completion still arrives.
        let r = request(&mut s, OP_READ, 4, &[], reply);
        untyped::send(&mut s, req_port, r).unwrap();
        iop.service(&mut s).unwrap();
        let c = untyped::receive(&mut s, reply).unwrap().unwrap();
        assert_eq!(c.obj, r.obj);
        assert_eq!(s.read_u64(r, REQ_STATUS_OFF).unwrap(), 1);
        assert_eq!(iop.stats().failed, 1);
    }

    #[test]
    fn multiple_subsystems_are_independent() {
        let mut s = ObjectSpace::new(128 * 1024, 8 * 1024, 1024);
        let root = s.root_sro();
        let a = Arc::new(Mutex::new(ConsoleDevice::new("ttyA", b"")));
        let b = Arc::new(Mutex::new(ConsoleDevice::new("ttyB", b"")));
        let mut iop_a = IoSubsystem::new();
        let mut iop_b = IoSubsystem::new();
        let port_a = iop_a.attach(&mut s, root, a.clone(), 4).unwrap();
        let port_b = iop_b.attach(&mut s, root, b.clone(), 4).unwrap();
        let reply =
            imax_ipc::create_port(&mut s, root, 8, i432_arch::PortDiscipline::Fifo).unwrap();
        let ra = request(&mut s, OP_OPEN, 0, &[], reply);
        let rb = request(&mut s, OP_OPEN, 0, &[], reply);
        untyped::send(&mut s, port_a, ra).unwrap();
        untyped::send(&mut s, port_b, rb).unwrap();
        // Servicing subsystem A does not touch B's queue.
        assert_eq!(iop_a.service(&mut s).unwrap(), 1);
        assert_eq!(
            s.port(port_b.object()).unwrap().msg_count,
            1,
            "B still pending"
        );
        assert_eq!(iop_b.service(&mut s).unwrap(), 1);
    }
}
