//! Tape drives and the drive pool — the paper's §8.2 example.
//!
//! "Consider for example an implementation of a tape drive in which each
//! drive is represented by an object of type tape_drive. ... A user
//! requests from the managing package a tape_drive instance, calls
//! operations in that package to use it and eventually to close or
//! return it. If, however, the user loses access to the object through
//! accident or intent, it will be garbage collected and the system will
//! be short one tape drive. This is what we mean by a *lost object*."
//!
//! [`TapePool`] is that managing package: drives are handed out as
//! sealed instances of a user-defined `tape_drive` type; a destruction
//! filter bound to the type lets the garbage collector return lost
//! handles to the pool (the end-to-end recovery experiment is C10).

use crate::iface::{DeviceError, DeviceImpl, DeviceStatus};
use i432_arch::{AccessDescriptor, ObjectRef, PortDiscipline, Rights, SpaceMut};
use i432_gdp::{Fault, FaultKind};
use imax_ipc::{create_port, Port};
use imax_typemgr::{bind_destruction_filter, TypeManager};

/// Device-specific operation: rewind.
pub const TAPE_OP_REWIND: u32 = 0;
/// Device-specific operation: skip to record N.
pub const TAPE_OP_SEEK: u32 = 1;

/// One tape drive: a record-structured sequential medium.
#[derive(Debug, Default)]
pub struct TapeDrive {
    name: String,
    open: bool,
    records: Vec<Vec<u8>>,
    position: usize,
}

impl TapeDrive {
    /// An empty drive.
    pub fn new(name: impl Into<String>) -> TapeDrive {
        TapeDrive {
            name: name.into(),
            ..TapeDrive::default()
        }
    }

    /// Number of records on the mounted tape.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

impl DeviceImpl for TapeDrive {
    fn name(&self) -> &str {
        &self.name
    }

    fn open(&mut self) -> Result<(), DeviceError> {
        if self.open {
            return Err(DeviceError::AlreadyOpen);
        }
        self.open = true;
        Ok(())
    }

    fn close(&mut self) -> Result<(), DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        self.open = false;
        Ok(())
    }

    /// Reads the record at the current position and advances.
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        let rec = self
            .records
            .get(self.position)
            .ok_or(DeviceError::EndOfMedium)?;
        let n = rec.len().min(buf.len());
        buf[..n].copy_from_slice(&rec[..n]);
        self.position += 1;
        Ok(n)
    }

    /// Appends a record at the current position (truncating the rest).
    fn write(&mut self, buf: &[u8]) -> Result<usize, DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        self.records.truncate(self.position);
        self.records.push(buf.to_vec());
        self.position += 1;
        Ok(buf.len())
    }

    fn status(&self) -> DeviceStatus {
        DeviceStatus {
            ready: true,
            open: self.open,
            error: 0,
            position: self.position as u64,
        }
    }

    fn control(&mut self, op: u32, arg: u64) -> Result<u64, DeviceError> {
        match op {
            TAPE_OP_REWIND => {
                self.position = 0;
                Ok(0)
            }
            TAPE_OP_SEEK => {
                if arg as usize > self.records.len() {
                    return Err(DeviceError::EndOfMedium);
                }
                self.position = arg as usize;
                Ok(self.position as u64)
            }
            _ => Err(DeviceError::Unsupported),
        }
    }

    fn control_ops(&self) -> u32 {
        2
    }

    fn cycles_per_byte(&self) -> u64 {
        16 // Tape is slow.
    }
}

/// The managing package for a fixed pool of drives.
///
/// Handles are instances of the `tape_drive` user type whose data part
/// records the drive number; clients receive them *sealed* (no rights),
/// so only the pool — holding the TDO with amplify rights — can map a
/// handle back to a drive.
#[derive(Debug)]
pub struct TapePool {
    manager: TypeManager,
    filter_port: Port,
    drives: Vec<TapeDrive>,
    allocated: Vec<bool>,
    /// Drives recovered by the destruction filter rather than returned
    /// properly.
    pub recovered_count: u64,
}

impl TapePool {
    /// A pool of `n` drives with its own `tape_drive` type and a bound
    /// destruction filter.
    pub fn new<S: SpaceMut + ?Sized>(
        space: &mut S,
        sro: ObjectRef,
        n: usize,
    ) -> Result<TapePool, Fault> {
        let manager = TypeManager::new(space, sro, "tape_drive")?;
        let filter_port = create_port(
            space,
            sro,
            64.min(n as u32 * 2).max(4),
            PortDiscipline::Fifo,
        )?;
        bind_destruction_filter(space, manager.tdo_ad(), filter_port.ad())?;
        Ok(TapePool {
            manager,
            filter_port,
            drives: (0..n).map(|i| TapeDrive::new(format!("mt{i}"))).collect(),
            allocated: vec![false; n],
            recovered_count: 0,
        })
    }

    /// The pool's type definition object (keep it reachable!).
    pub fn tdo(&self) -> ObjectRef {
        self.manager.tdo()
    }

    /// The destruction-filter port object (keep it reachable!).
    pub fn filter_port(&self) -> ObjectRef {
        self.filter_port.object()
    }

    /// Drives currently available.
    pub fn free_count(&self) -> usize {
        self.allocated.iter().filter(|a| !**a).count()
    }

    /// Acquires a drive, returning a sealed handle.
    pub fn acquire<S: SpaceMut + ?Sized>(
        &mut self,
        space: &mut S,
        sro: ObjectRef,
    ) -> Result<AccessDescriptor, Fault> {
        let Some(idx) = self.allocated.iter().position(|a| !*a) else {
            return Err(Fault::with_detail(
                FaultKind::StorageExhausted,
                "no free tape drives",
            ));
        };
        let handle = self.manager.create_instance(space, sro, 16, 0)?;
        // Only the manager can write the representation.
        let full = self.manager.amplify(space, handle)?;
        space.write_u64(full, 0, idx as u64).map_err(Fault::from)?;
        self.allocated[idx] = true;
        self.drives[idx].open().map_err(Fault::from)?;
        Ok(handle)
    }

    fn drive_index<S: SpaceMut + ?Sized>(
        &self,
        space: &mut S,
        handle: AccessDescriptor,
    ) -> Result<usize, Fault> {
        let full = self.manager.amplify(space, handle)?;
        let idx = space.read_u64(full, 0).map_err(Fault::from)? as usize;
        if idx >= self.drives.len() {
            return Err(Fault::with_detail(FaultKind::Bounds, "bad drive index"));
        }
        Ok(idx)
    }

    /// Operates on the drive behind a handle.
    pub fn with_drive<S: SpaceMut + ?Sized, R>(
        &mut self,
        space: &mut S,
        handle: AccessDescriptor,
        f: impl FnOnce(&mut TapeDrive) -> R,
    ) -> Result<R, Fault> {
        let idx = self.drive_index(space, handle)?;
        Ok(f(&mut self.drives[idx]))
    }

    /// Returns a drive properly: the handle object is destroyed and the
    /// drive freed.
    pub fn release<S: SpaceMut + ?Sized>(
        &mut self,
        space: &mut S,
        handle: AccessDescriptor,
    ) -> Result<(), Fault> {
        let idx = self.drive_index(space, handle)?;
        self.manager.destroy_instance(space, handle)?;
        let _ = self.drives[idx].close();
        self.allocated[idx] = false;
        Ok(())
    }

    /// Services the destruction filter: every lost handle the collector
    /// delivered is mapped back to its drive, which is closed and freed.
    /// Returns the number of drives recovered.
    pub fn recover_lost<S: SpaceMut + ?Sized>(&mut self, space: &mut S) -> Result<u32, Fault> {
        let mut recovered = 0;
        let handles = imax_gc_support::drain(space, self.filter_port)?;
        for handle in handles {
            let idx = self.drive_index(space, handle)?;
            if self.allocated[idx] {
                let _ = self.drives[idx].close();
                self.allocated[idx] = false;
                recovered += 1;
                self.recovered_count += 1;
            }
            // Drop the handle: it is garbage again and will be reclaimed
            // (without re-notification) by a later collection.
        }
        Ok(recovered)
    }
}

/// Minimal local copy of the filter-port drain (avoids a dependency
/// cycle: `imax-gc` depends on type managers, not on devices).
mod imax_gc_support {
    use super::*;
    use i432_gdp::port::{self, RecvOutcome};

    pub fn drain<S: SpaceMut + ?Sized>(
        space: &mut S,
        port: Port,
    ) -> Result<Vec<AccessDescriptor>, Fault> {
        let mut out = Vec::new();
        loop {
            match port::receive(space, None, port.ad().restricted(Rights::ALL), false, true)? {
                RecvOutcome::Received(ad) => out.push(ad),
                RecvOutcome::WouldBlock => return Ok(out),
                RecvOutcome::Blocked => unreachable!("non-blocking receive"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::ObjectSpace;

    fn space() -> ObjectSpace {
        ObjectSpace::new(64 * 1024, 8 * 1024, 1024)
    }

    #[test]
    fn tape_records_roundtrip() {
        let mut t = TapeDrive::new("mt0");
        t.open().unwrap();
        t.write(b"rec-one").unwrap();
        t.write(b"rec-two").unwrap();
        t.control(TAPE_OP_REWIND, 0).unwrap();
        let mut buf = [0u8; 16];
        let n = t.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"rec-one");
        let n = t.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"rec-two");
        assert_eq!(t.read(&mut buf), Err(DeviceError::EndOfMedium));
    }

    #[test]
    fn tape_seek_and_overwrite() {
        let mut t = TapeDrive::new("mt0");
        t.open().unwrap();
        for r in [b"a", b"b", b"c"] {
            t.write(r).unwrap();
        }
        t.control(TAPE_OP_SEEK, 1).unwrap();
        t.write(b"B").unwrap();
        assert_eq!(t.record_count(), 2, "write truncates the tail");
        assert!(t.control(TAPE_OP_SEEK, 99).is_err());
        assert_eq!(t.control(99, 0), Err(DeviceError::Unsupported));
    }

    #[test]
    fn pool_acquire_use_release() {
        let mut s = space();
        let root = s.root_sro();
        let mut pool = TapePool::new(&mut s, root, 2).unwrap();
        assert_eq!(pool.free_count(), 2);
        let h = pool.acquire(&mut s, root).unwrap();
        assert_eq!(pool.free_count(), 1);
        // The client's handle is sealed: no direct access.
        assert!(s.read_u64(h, 0).is_err());
        // But the pool can operate the drive for them.
        pool.with_drive(&mut s, h, |d| d.write(b"payload").unwrap())
            .unwrap();
        pool.release(&mut s, h).unwrap();
        assert_eq!(pool.free_count(), 2);
        // The handle is gone.
        assert!(pool.with_drive(&mut s, h, |_| ()).is_err());
    }

    #[test]
    fn pool_exhaustion() {
        let mut s = space();
        let root = s.root_sro();
        let mut pool = TapePool::new(&mut s, root, 1).unwrap();
        let _h = pool.acquire(&mut s, root).unwrap();
        assert!(pool.acquire(&mut s, root).is_err());
    }

    #[test]
    fn foreign_handles_rejected() {
        let mut s = space();
        let root = s.root_sro();
        let mut pool_a = TapePool::new(&mut s, root, 1).unwrap();
        let mut pool_b = TapePool::new(&mut s, root, 1).unwrap();
        let h = pool_a.acquire(&mut s, root).unwrap();
        assert!(pool_b.with_drive(&mut s, h, |_| ()).is_err());
    }
}
