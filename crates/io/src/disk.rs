//! A RAM-backed block device: a *class-dependent* interface.
//!
//! Paper §6.3: "classes of devices may share a specification which
//! includes more than the minimum set of device independent operations,
//! thus providing class dependent but device independent interfaces."
//! The block-device class adds `seek` (control op 0) and
//! `block_count` (control op 1) beyond the common subset; `read`/`write`
//! transfer whole blocks at the seek position.

use crate::iface::{DeviceError, DeviceImpl, DeviceStatus};

/// Block-device class operation: seek to block N.
pub const BLK_OP_SEEK: u32 = 0;
/// Block-device class operation: total block count.
pub const BLK_OP_COUNT: u32 = 1;

/// A fixed-geometry RAM disk.
#[derive(Debug)]
pub struct RamDisk {
    name: String,
    open: bool,
    block_size: usize,
    blocks: Vec<Vec<u8>>,
    position: usize,
}

impl RamDisk {
    /// A disk of `blocks` blocks of `block_size` bytes.
    pub fn new(name: impl Into<String>, blocks: usize, block_size: usize) -> RamDisk {
        RamDisk {
            name: name.into(),
            open: false,
            block_size,
            blocks: vec![vec![0; block_size]; blocks],
            position: 0,
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> (usize, usize) {
        (self.blocks.len(), self.block_size)
    }
}

impl DeviceImpl for RamDisk {
    fn name(&self) -> &str {
        &self.name
    }

    fn open(&mut self) -> Result<(), DeviceError> {
        if self.open {
            return Err(DeviceError::AlreadyOpen);
        }
        self.open = true;
        Ok(())
    }

    fn close(&mut self) -> Result<(), DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        self.open = false;
        Ok(())
    }

    /// Reads the block at the seek position and advances.
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        let block = self
            .blocks
            .get(self.position)
            .ok_or(DeviceError::EndOfMedium)?;
        let n = block.len().min(buf.len());
        buf[..n].copy_from_slice(&block[..n]);
        self.position += 1;
        Ok(n)
    }

    /// Writes the block at the seek position and advances. Short writes
    /// zero-fill the remainder of the block.
    fn write(&mut self, buf: &[u8]) -> Result<usize, DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        if buf.len() > self.block_size {
            return Err(DeviceError::Failed(format!(
                "write of {} exceeds block size {}",
                buf.len(),
                self.block_size
            )));
        }
        let block = self
            .blocks
            .get_mut(self.position)
            .ok_or(DeviceError::EndOfMedium)?;
        block.fill(0);
        block[..buf.len()].copy_from_slice(buf);
        self.position += 1;
        Ok(buf.len())
    }

    fn status(&self) -> DeviceStatus {
        DeviceStatus {
            ready: true,
            open: self.open,
            error: 0,
            position: self.position as u64,
        }
    }

    fn control(&mut self, op: u32, arg: u64) -> Result<u64, DeviceError> {
        match op {
            BLK_OP_SEEK => {
                if arg as usize >= self.blocks.len() {
                    return Err(DeviceError::EndOfMedium);
                }
                self.position = arg as usize;
                Ok(arg)
            }
            BLK_OP_COUNT => Ok(self.blocks.len() as u64),
            _ => Err(DeviceError::Unsupported),
        }
    }

    fn control_ops(&self) -> u32 {
        2
    }

    fn cycles_per_byte(&self) -> u64 {
        2 // Fast block storage.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_roundtrip() {
        let mut d = RamDisk::new("dk0", 4, 32);
        d.open().unwrap();
        d.control(BLK_OP_SEEK, 2).unwrap();
        d.write(b"block two").unwrap();
        d.control(BLK_OP_SEEK, 2).unwrap();
        let mut buf = [0u8; 32];
        let n = d.read(&mut buf).unwrap();
        assert_eq!(n, 32);
        assert_eq!(&buf[..9], b"block two");
        assert!(buf[9..].iter().all(|b| *b == 0));
    }

    #[test]
    fn geometry_and_count() {
        let mut d = RamDisk::new("dk0", 7, 64);
        d.open().unwrap();
        assert_eq!(d.geometry(), (7, 64));
        assert_eq!(d.control(BLK_OP_COUNT, 0).unwrap(), 7);
    }

    #[test]
    fn bounds_enforced() {
        let mut d = RamDisk::new("dk0", 2, 16);
        d.open().unwrap();
        assert!(d.control(BLK_OP_SEEK, 2).is_err());
        assert!(d.write(&[0; 17]).is_err());
        d.control(BLK_OP_SEEK, 1).unwrap();
        d.read(&mut [0u8; 16]).unwrap();
        assert_eq!(d.read(&mut [0u8; 16]), Err(DeviceError::EndOfMedium));
    }
}
