//! # imax-io — device-independent I/O
//!
//! Paper §6.3: "A single specification is defined for device independent
//! input and another for device independent output. Each instance of an
//! I/O device may have a distinct implementation. The user interacts with
//! each device identically but the code is specific to the device. This
//! is really a different approach from conventional device independent
//! I/O because it avoids any centralized I/O control or interface. Any
//! user can create a new device implementation which will behave
//! identically to existing ones without in any way altering system code,
//! say to update a master I/O device list or to add a new element to a
//! case construct in the system I/O controller."
//!
//! The structure here mirrors that exactly:
//!
//! * [`iface`] defines the *specification*: fixed subprogram indices for
//!   the device-independent operations (open/close/read/write/status).
//!   "We actually go one step further ... by requiring only that a
//!   device implementation provide the common device independent
//!   interface as a subset" — device-specific operations occupy indices
//!   after the common ones.
//! * Each device is a **package instance**: a domain whose native bodies
//!   close over that device's state. There is no device table anywhere;
//!   holding the domain's access descriptor *is* having the device.
//! * [`console`], [`tape`], [`disk`] are three unrelated implementations
//!   of the same specification; [`tape`] adds the paper's §8.2 example —
//!   a drive pool managed by a type manager with a destruction filter, so
//!   lost drives are recovered rather than leaked.

#![warn(missing_docs)]

pub mod console;
pub mod disk;
pub mod family;
pub mod iface;
pub mod iop;
pub mod tape;
pub mod virtio;

pub use console::ConsoleDevice;
pub use disk::RamDisk;
pub use family::DeviceFamily;
pub use iface::{
    install_device, DeviceError, DeviceHandle, DeviceImpl, DeviceStatus, OP_CLOSE, OP_CONTROL_BASE,
    OP_OPEN, OP_READ, OP_STATUS, OP_WRITE,
};
pub use iop::{AsyncDevice, IoSubsystem, IopStats};
pub use tape::{TapeDrive, TapePool};
pub use virtio::{
    QueueRefusal, VirtQueue, VirtioBlock, VirtioDevice, VirtioKind, VirtioModel, VirtioNet,
    VirtioStats,
};
