//! Virtio-shaped asynchronous block and net device models.
//!
//! The synchronous family ([`crate::iface`]) makes every device call a
//! domain CALL; [`crate::iop`] makes it a port rendezvous. Both leave
//! the device strictly *behind* the kernel's locked paths. This module
//! adds the third shape — the one every modern paravirtual device uses
//! and the one Norost-b's `virtio_blk`/`virtio_net` drivers are built
//! on: a **per-device descriptor ring** that producers publish request
//! descriptors into without a lock, a **submission/completion split**
//! (submitting never waits for the device), and **completion-interrupt
//! delivery** — the device posts the finished request object to the
//! reply port named inside the request, so a client (or a
//! `TypedPort`-wrapped receiver) picks completions up through the
//! ordinary port machinery.
//!
//! ## The descriptor ring
//!
//! [`VirtQueue`] reuses the slot/sequence discipline of
//! [`i432_arch::portring::PortRing`] verbatim: per-slot sequence
//! numbers distinguish free/published/consumed without compare-swapping
//! payloads, head/tail carry a freeze bit (bit 63) so the queue can be
//! frozen, drained oldest-first, and retired exactly like a port ring,
//! and all position arithmetic wraps mod 2^63. What differs is only
//! ownership: a `PortRing` shadows a port's message area and must stay
//! coherent with the locked rendezvous path; a `VirtQueue` *is* the
//! device's submission area, so it is born open.
//!
//! ## Determinism
//!
//! Request descriptors name their operation explicitly — block requests
//! carry an absolute LBA, net requests are self-contained echo frames —
//! so executing a batch in any order produces the same per-request
//! results, and the cycle model (`base + per-byte × len`) depends only
//! on the request itself. The deterministic runner therefore stays
//! bit-identical whether requests travel through the ring or through
//! the locked backlog, which is exactly the differential the conform
//! `filing` workload checks.
//!
//! ## Collector visibility
//!
//! The parallel collector scans port rings for in-flight messages but
//! knows nothing of virtqueues. The rule that keeps requests reachable
//! is a drain discipline, not a scan: a service routine that submits
//! into the queue must drain it to empty before its atomic section
//! ends ([`VirtioDevice::service`] + [`VirtioDevice::assert_idle`]).
//! Native calls hold every shard lock, so a collector can never observe
//! a nonempty queue. DESIGN.md §14 spells the argument out.

use crate::iface::{DeviceError, DeviceImpl, DeviceStatus};
use i432_arch::{AccessDescriptor, ObjectIndex, ObjectRef, Rights, SpaceMut};
use i432_gdp::{
    port::{self, SendOutcome},
    Fault, FaultKind,
};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Request descriptor layout (virtio-shaped: one request object carries
// header + status + data, completion rewrites it in place).
// ---------------------------------------------------------------------

/// Offset of the operation code in a virtio request object.
pub const VREQ_OP_OFF: u32 = 0;
/// Offset of the absolute block address (block requests).
pub const VREQ_LBA_OFF: u32 = 8;
/// Offset of the transfer length in bytes.
pub const VREQ_LEN_OFF: u32 = 16;
/// Offset of the completion status (written by the device).
pub const VREQ_STATUS_OFF: u32 = 24;
/// Offset of the result count (written by the device).
pub const VREQ_COUNT_OFF: u32 = 32;
/// Offset of the simulated device cycles charged (written by the device).
pub const VREQ_CYCLES_OFF: u32 = 40;
/// Offset of the transfer data area.
pub const VREQ_DATA_OFF: u32 = 48;
/// Access slot of the reply port inside a virtio request object.
pub const VREQ_SLOT_REPLY: u32 = 0;

/// Block read at an absolute LBA.
pub const VIRTIO_OP_READ: u64 = 0;
/// Block write at an absolute LBA.
pub const VIRTIO_OP_WRITE: u64 = 1;
/// Block flush (barrier; data is already durable in the model).
pub const VIRTIO_OP_FLUSH: u64 = 2;
/// Net echo: transmit the frame, receive it back in place.
pub const VIRTIO_OP_ECHO: u64 = 3;

/// Completion status: success.
pub const VIRTIO_S_OK: u64 = 0;
/// Completion status: I/O error (bad LBA, device closed, short frame).
pub const VIRTIO_S_IOERR: u64 = 1;
/// Completion status: operation not supported by this device model.
pub const VIRTIO_S_UNSUPP: u64 = 2;

// ---------------------------------------------------------------------
// VirtQueue — the descriptor ring.
// ---------------------------------------------------------------------

const LOCK: u64 = 1 << 63;
const POS_MASK: u64 = LOCK - 1;

#[inline]
fn wadd(pos: u64, n: u64) -> u64 {
    pos.wrapping_add(n) & POS_MASK
}

#[inline]
fn wsub(a: u64, b: u64) -> u64 {
    a.wrapping_sub(b) & POS_MASK
}

/// Bounded CAS retries before a fast op reports contention.
const CLAIM_RETRIES: u32 = 8;

/// Why a fast virtqueue operation refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueRefusal {
    /// The queue is frozen or retired.
    Locked,
    /// Push: the queue holds `capacity` descriptors.
    Full,
    /// Pop: no published descriptor at the head.
    Empty,
    /// A concurrent claim won the race repeatedly.
    Contended,
}

#[repr(align(64))]
struct Slot {
    seq: AtomicU64,
    obj: AtomicU64,
    rights: AtomicU64,
}

/// A lock-free MPMC descriptor ring owned by one device.
///
/// Same discipline as [`i432_arch::portring::PortRing`]: slot `i`
/// carries `seq == pos` when free for position `pos`, `pos + 1` when
/// published, and `pos + nslots` after consumption recycles it for the
/// next lap. Head/tail carry the freeze bit in bit 63.
pub struct VirtQueue {
    capacity: u32,
    slots: Box<[Slot]>,
    head: AtomicU64,
    tail: AtomicU64,
    /// Set when the owning device was torn down: the queue never
    /// reopens.
    dead: AtomicBool,
}

impl std::fmt::Debug for VirtQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtQueue")
            .field("capacity", &self.capacity)
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .finish()
    }
}

impl VirtQueue {
    /// An open queue of `capacity` descriptors.
    pub fn new(capacity: u32) -> VirtQueue {
        Self::with_start(capacity, 0)
    }

    /// Test hook: a queue whose positions start at `start` (mod 2^63),
    /// to exercise head/tail wraparound.
    pub fn with_start(capacity: u32, start: u64) -> VirtQueue {
        let nslots = capacity.max(1).next_power_of_two() as usize;
        let start = start & POS_MASK;
        let mut seqs = vec![0u64; nslots];
        for i in 0..nslots {
            let pos = wadd(start, i as u64);
            seqs[(pos as usize) & (nslots - 1)] = pos;
        }
        let slots: Box<[Slot]> = seqs
            .into_iter()
            .map(|seq| Slot {
                seq: AtomicU64::new(seq),
                obj: AtomicU64::new(0),
                rights: AtomicU64::new(0),
            })
            .collect();
        VirtQueue {
            capacity: capacity.max(1),
            slots,
            head: AtomicU64::new(start),
            tail: AtomicU64::new(start),
            dead: AtomicBool::new(false),
        }
    }

    /// The queue's logical capacity.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// True when the owning device retired the queue.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    #[inline]
    fn slot(&self, pos: u64) -> &Slot {
        &self.slots[(pos as usize) & (self.slots.len() - 1)]
    }

    /// Published descriptors currently in the queue (racy snapshot).
    pub fn occupancy(&self) -> u64 {
        let t = self.tail.load(Ordering::Acquire) & POS_MASK;
        let h = self.head.load(Ordering::Acquire) & POS_MASK;
        wsub(t, h).min(self.capacity as u64)
    }

    /// Fast-path submit: claim the tail slot and publish `req`.
    pub fn push(&self, req: AccessDescriptor) -> Result<(), QueueRefusal> {
        for _ in 0..CLAIM_RETRIES {
            let t = self.tail.load(Ordering::Acquire);
            if t & LOCK != 0 {
                return Err(QueueRefusal::Locked);
            }
            let h = self.head.load(Ordering::Acquire);
            if h & LOCK != 0 {
                return Err(QueueRefusal::Locked);
            }
            if wsub(t, h) >= self.capacity as u64 {
                return Err(QueueRefusal::Full);
            }
            let slot = self.slot(t);
            if slot.seq.load(Ordering::Acquire) != t {
                continue;
            }
            if self
                .tail
                .compare_exchange_weak(t, wadd(t, 1), Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let obj = (u64::from(req.obj.generation) << 32) | u64::from(req.obj.index.0);
            slot.obj.store(obj, Ordering::Relaxed);
            slot.rights
                .store(u64::from(req.rights.bits()), Ordering::Relaxed);
            slot.seq.store(wadd(t, 1), Ordering::Release);
            return Ok(());
        }
        Err(QueueRefusal::Contended)
    }

    /// Fast-path claim of the oldest published descriptor.
    pub fn pop(&self) -> Result<AccessDescriptor, QueueRefusal> {
        for _ in 0..CLAIM_RETRIES {
            let h = self.head.load(Ordering::Acquire);
            if h & LOCK != 0 {
                return Err(QueueRefusal::Locked);
            }
            let slot = self.slot(h);
            if slot.seq.load(Ordering::Acquire) != wadd(h, 1) {
                return Err(QueueRefusal::Empty);
            }
            if self
                .head
                .compare_exchange_weak(h, wadd(h, 1), Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let req = Self::read_slot(slot);
            slot.seq
                .store(wadd(h, self.slots.len() as u64), Ordering::Release);
            return Ok(req);
        }
        Err(QueueRefusal::Contended)
    }

    fn read_slot(slot: &Slot) -> AccessDescriptor {
        let obj = slot.obj.load(Ordering::Relaxed);
        let rights = slot.rights.load(Ordering::Relaxed);
        AccessDescriptor {
            obj: ObjectRef {
                index: ObjectIndex(obj as u32),
                generation: (obj >> 32) as u32,
            },
            rights: Rights::from_bits(rights as u8),
        }
    }

    /// Freezes the queue (tail first, so no new claim set can form) and
    /// hands every frozen descriptor, oldest first, to `f`. Spins out
    /// in-flight publishers. Returns the number drained.
    pub fn freeze_and_drain(&self, mut f: impl FnMut(AccessDescriptor)) -> u64 {
        let t = self.tail.fetch_or(LOCK, Ordering::AcqRel) & POS_MASK;
        let h = self.head.fetch_or(LOCK, Ordering::AcqRel) & POS_MASK;
        let n = wsub(t, h);
        let mut pos = h;
        for _ in 0..n {
            let slot = self.slot(pos);
            while slot.seq.load(Ordering::Acquire) != wadd(pos, 1) {
                std::hint::spin_loop();
            }
            let req = Self::read_slot(slot);
            slot.seq
                .store(wadd(pos, self.slots.len() as u64), Ordering::Release);
            f(req);
            pos = wadd(pos, 1);
        }
        self.head.store(t | LOCK, Ordering::Release);
        n
    }

    /// True when the queue is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.tail.load(Ordering::Acquire) & LOCK != 0
    }

    /// Re-opens a frozen, drained queue. No-op once retired.
    pub fn reopen(&self) {
        if self.dead.load(Ordering::Acquire) {
            return;
        }
        let t = self.tail.load(Ordering::Acquire) & POS_MASK;
        debug_assert_eq!(
            self.head.load(Ordering::Acquire) & POS_MASK,
            t,
            "reopen requires a drained queue"
        );
        self.tail.store(t, Ordering::Release);
        self.head.store(t, Ordering::Release);
    }

    /// Retires the queue (device torn down): freezes it, hands any
    /// queued descriptors to `f` so the caller can fail them cleanly,
    /// and prevents all future reopens. Idempotent; a descriptor is
    /// handed out exactly once across every concurrent drain/retire.
    pub fn retire(&self, f: impl FnMut(AccessDescriptor)) -> u64 {
        self.dead.store(true, Ordering::Release);
        self.freeze_and_drain(f)
    }
}

// ---------------------------------------------------------------------
// Device models.
// ---------------------------------------------------------------------

/// Which taxonomy a virtio device model belongs to (drives which trace
/// counters its traffic bumps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtioKind {
    /// Block storage (LBA-addressed).
    Block,
    /// Network (frame-addressed).
    Net,
}

/// A device model a [`VirtioDevice`] drives: executes one request
/// descriptor and prices it deterministically.
pub trait VirtioModel: Send {
    /// Block or net (selects trace counters).
    fn kind(&self) -> VirtioKind;

    /// Executes one operation in place on `data`. Returns the result
    /// count on success, a `VIRTIO_S_*` status (nonzero) on failure.
    /// Must be order-independent: the result depends only on the
    /// request and the device's committed state, never on what else is
    /// in flight.
    fn execute(&mut self, op: u64, lba: u64, data: &mut [u8]) -> Result<u64, u64>;

    /// Deterministic simulated cycles for one request — a pure function
    /// of the request, identical on every runner and submission path.
    fn cost(&self, op: u64, len: u64) -> u64;
}

/// A fixed-geometry virtio block device: every request names its LBA,
/// so concurrent batches execute order-independently (unlike
/// [`crate::disk::RamDisk`], whose seek cursor serializes clients).
#[derive(Debug)]
pub struct VirtioBlock {
    name: String,
    open: bool,
    block_size: usize,
    blocks: Vec<Vec<u8>>,
    flushes: u64,
    /// Cursor for the synchronous [`DeviceImpl`] view only; the async
    /// path never touches it.
    position: usize,
}

impl VirtioBlock {
    /// A device of `blocks` blocks of `block_size` bytes, born open
    /// (virtio devices negotiate at attach, not per-request).
    pub fn new(name: impl Into<String>, blocks: usize, block_size: usize) -> VirtioBlock {
        VirtioBlock {
            name: name.into(),
            open: true,
            block_size,
            blocks: vec![vec![0; block_size]; blocks],
            flushes: 0,
            position: 0,
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> (usize, usize) {
        (self.blocks.len(), self.block_size)
    }

    /// Flush barriers issued so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Reads the block at `lba` into `buf` (short reads allowed).
    pub fn read_at(&self, lba: u64, buf: &mut [u8]) -> Result<u64, u64> {
        let block = self.blocks.get(lba as usize).ok_or(VIRTIO_S_IOERR)?;
        let n = block.len().min(buf.len());
        buf[..n].copy_from_slice(&block[..n]);
        Ok(n as u64)
    }

    /// Writes `buf` over the block at `lba`; short writes zero-fill.
    pub fn write_at(&mut self, lba: u64, buf: &[u8]) -> Result<u64, u64> {
        if buf.len() > self.block_size {
            return Err(VIRTIO_S_IOERR);
        }
        let block = self.blocks.get_mut(lba as usize).ok_or(VIRTIO_S_IOERR)?;
        block.fill(0);
        block[..buf.len()].copy_from_slice(buf);
        Ok(buf.len() as u64)
    }
}

impl VirtioModel for VirtioBlock {
    fn kind(&self) -> VirtioKind {
        VirtioKind::Block
    }

    fn execute(&mut self, op: u64, lba: u64, data: &mut [u8]) -> Result<u64, u64> {
        if !self.open {
            return Err(VIRTIO_S_IOERR);
        }
        match op {
            VIRTIO_OP_READ => self.read_at(lba, data),
            VIRTIO_OP_WRITE => self.write_at(lba, data),
            VIRTIO_OP_FLUSH => {
                self.flushes += 1;
                Ok(0)
            }
            _ => Err(VIRTIO_S_UNSUPP),
        }
    }

    fn cost(&self, op: u64, len: u64) -> u64 {
        match op {
            // Seek + transfer: the classic disk shape.
            VIRTIO_OP_READ | VIRTIO_OP_WRITE => 600 + 4 * len,
            VIRTIO_OP_FLUSH => 300,
            _ => 10,
        }
    }
}

/// The synchronous family view: `VirtioBlock` also satisfies the
/// device-independent specification (paper §6.3 — any implementation
/// behaves identically through the common subset), with the block-class
/// seek/count control ops of [`crate::disk`].
impl DeviceImpl for VirtioBlock {
    fn name(&self) -> &str {
        &self.name
    }

    fn open(&mut self) -> Result<(), DeviceError> {
        if self.open {
            return Err(DeviceError::AlreadyOpen);
        }
        self.open = true;
        Ok(())
    }

    fn close(&mut self) -> Result<(), DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        self.open = false;
        Ok(())
    }

    fn read(&mut self, buf: &mut [u8]) -> Result<usize, DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        let lba = self.position as u64;
        let n = self
            .read_at(lba, buf)
            .map_err(|_| DeviceError::EndOfMedium)?;
        self.position += 1;
        Ok(n as usize)
    }

    fn write(&mut self, buf: &[u8]) -> Result<usize, DeviceError> {
        if !self.open {
            return Err(DeviceError::NotOpen);
        }
        let lba = self.position as u64;
        let n = self
            .write_at(lba, buf)
            .map_err(|_| DeviceError::EndOfMedium)?;
        self.position += 1;
        Ok(n as usize)
    }

    fn status(&self) -> DeviceStatus {
        DeviceStatus {
            ready: true,
            open: self.open,
            error: 0,
            position: self.position as u64,
        }
    }

    fn control(&mut self, op: u32, arg: u64) -> Result<u64, DeviceError> {
        match op {
            crate::disk::BLK_OP_SEEK => {
                if arg as usize >= self.blocks.len() {
                    return Err(DeviceError::EndOfMedium);
                }
                self.position = arg as usize;
                Ok(arg)
            }
            crate::disk::BLK_OP_COUNT => Ok(self.blocks.len() as u64),
            _ => Err(DeviceError::Unsupported),
        }
    }

    fn control_ops(&self) -> u32 {
        2
    }
}

/// A virtio net device modeled as a deterministic loopback: an ECHO
/// request transmits its frame and receives it straight back in place.
/// Self-contained frames keep concurrent batches order-independent.
#[derive(Debug, Default)]
pub struct VirtioNet {
    name: String,
    frames_tx: u64,
    frames_rx: u64,
    bytes_tx: u64,
}

impl VirtioNet {
    /// A fresh loopback interface.
    pub fn new(name: impl Into<String>) -> VirtioNet {
        VirtioNet {
            name: name.into(),
            ..VirtioNet::default()
        }
    }

    /// The interface name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Frames transmitted / received / bytes moved so far.
    pub fn traffic(&self) -> (u64, u64, u64) {
        (self.frames_tx, self.frames_rx, self.bytes_tx)
    }
}

impl VirtioModel for VirtioNet {
    fn kind(&self) -> VirtioKind {
        VirtioKind::Net
    }

    fn execute(&mut self, op: u64, _lba: u64, data: &mut [u8]) -> Result<u64, u64> {
        match op {
            VIRTIO_OP_ECHO => {
                if data.is_empty() {
                    return Err(VIRTIO_S_IOERR);
                }
                self.frames_tx += 1;
                self.frames_rx += 1;
                self.bytes_tx += data.len() as u64;
                Ok(data.len() as u64)
            }
            _ => Err(VIRTIO_S_UNSUPP),
        }
    }

    fn cost(&self, op: u64, len: u64) -> u64 {
        match op {
            // Wire out + wire back.
            VIRTIO_OP_ECHO => 200 + 2 * len,
            _ => 10,
        }
    }
}

// ---------------------------------------------------------------------
// The async device: submission/completion split over a VirtQueue.
// ---------------------------------------------------------------------

/// Counters for one virtio device.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VirtioStats {
    /// Requests submitted (ring + backlog).
    pub submitted: u64,
    /// Submissions that fell back to the locked backlog.
    pub backlogged: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with a nonzero status.
    pub failed: u64,
    /// Simulated device cycles consumed.
    pub device_cycles: u64,
}

/// An asynchronous virtio device: a [`VirtQueue`] submission ring with
/// a locked backlog fallback, a [`VirtioModel`] executing requests, and
/// completion delivery to the reply port each request names.
pub struct VirtioDevice<M: VirtioModel> {
    model: Arc<Mutex<M>>,
    queue: Arc<VirtQueue>,
    /// The locked submission path: taken when the ring refuses (full,
    /// contended, frozen) or when ring submission is disabled — the
    /// device-queue off arm of the conform differential.
    backlog: Mutex<VecDeque<AccessDescriptor>>,
    use_queue: bool,
    kind: VirtioKind,
    submitted: AtomicU64,
    backlogged: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    device_cycles: AtomicU64,
}

impl<M: VirtioModel> VirtioDevice<M> {
    /// Wraps `model` behind a descriptor ring of `queue_depth` slots.
    /// `use_queue = false` routes every submission through the locked
    /// backlog instead (the differential arm).
    pub fn new(model: M, queue_depth: u32, use_queue: bool) -> VirtioDevice<M> {
        let kind = model.kind();
        VirtioDevice {
            model: Arc::new(Mutex::new(model)),
            queue: Arc::new(VirtQueue::new(queue_depth)),
            backlog: Mutex::new(VecDeque::new()),
            use_queue,
            kind,
            submitted: AtomicU64::new(0),
            backlogged: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            device_cycles: AtomicU64::new(0),
        }
    }

    /// The device's submission ring (tests and the GC drain assertion).
    pub fn queue(&self) -> &Arc<VirtQueue> {
        &self.queue
    }

    /// The underlying model.
    pub fn model(&self) -> &Arc<Mutex<M>> {
        &self.model
    }

    /// Whether ring submission is enabled.
    pub fn uses_queue(&self) -> bool {
        self.use_queue
    }

    /// A point-in-time copy of the device counters.
    pub fn stats(&self) -> VirtioStats {
        VirtioStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            backlogged: self.backlogged.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            device_cycles: self.device_cycles.load(Ordering::Relaxed),
        }
    }

    /// Submits one request descriptor. Never blocks and never touches
    /// the space: the ring publishes lock-free, and a refusal falls
    /// back to the locked backlog exactly as ring-refused port sends
    /// fall back to the rendezvous path.
    pub fn submit(&self, req: AccessDescriptor) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        if self.kind == VirtioKind::Block {
            i432_trace::bump(i432_trace::Counter::BlkSubmits);
        } else {
            i432_trace::bump(i432_trace::Counter::NetTx);
        }
        if self.use_queue {
            match self.queue.push(req) {
                Ok(()) => return,
                Err(QueueRefusal::Full)
                | Err(QueueRefusal::Contended)
                | Err(QueueRefusal::Locked)
                | Err(QueueRefusal::Empty) => {}
            }
        }
        self.backlogged.fetch_add(1, Ordering::Relaxed);
        self.backlog.lock().push_back(req);
    }

    /// Services the device: claims every submitted descriptor (ring
    /// first, oldest-first, then the backlog), executes each on the
    /// model, writes status/count/cycles back into the request object,
    /// and posts it to the reply port named in its access slot 0 — the
    /// completion interrupt.
    ///
    /// Returns `(completions, simulated cycles)` so the calling native
    /// can charge the deterministic cost.
    pub fn service<S: SpaceMut + ?Sized>(&self, space: &mut S) -> Result<(u64, u64), Fault> {
        let mut done = 0u64;
        let mut cycles = 0u64;
        loop {
            let req = match self.queue.pop() {
                Ok(req) => req,
                Err(_) => match self.backlog.lock().pop_front() {
                    Some(req) => req,
                    None => break,
                },
            };
            cycles += self.complete_one(space, req)?;
            done += 1;
        }
        Ok((done, cycles))
    }

    /// Asserts the drain discipline that stands in for collector
    /// visibility: no descriptor may rest in the device between atomic
    /// sections (debug builds only).
    pub fn assert_idle(&self) {
        debug_assert_eq!(
            self.queue.occupancy(),
            0,
            "virtqueue must be drained before the atomic section ends"
        );
        debug_assert!(
            self.backlog.lock().is_empty(),
            "device backlog must be drained before the atomic section ends"
        );
    }

    /// Tears the device down: retires the ring and fails every
    /// undelivered request with `VIRTIO_S_IOERR` to its reply port.
    pub fn shutdown<S: SpaceMut + ?Sized>(&self, space: &mut S) -> Result<u64, Fault> {
        let mut orphans: Vec<AccessDescriptor> = Vec::new();
        self.queue.retire(|req| orphans.push(req));
        orphans.extend(self.backlog.lock().drain(..));
        let n = orphans.len() as u64;
        for req in orphans {
            let req = AccessDescriptor::new(req.obj, Rights::ALL);
            space
                .write_u64(req, VREQ_STATUS_OFF, VIRTIO_S_IOERR)
                .map_err(Fault::from)?;
            self.failed.fetch_add(1, Ordering::Relaxed);
            Self::post_completion(space, req)?;
        }
        Ok(n)
    }

    fn complete_one<S: SpaceMut + ?Sized>(
        &self,
        space: &mut S,
        req: AccessDescriptor,
    ) -> Result<u64, Fault> {
        // The device is trusted: full access to the request object.
        let req = AccessDescriptor::new(req.obj, Rights::ALL);
        let op = space.read_u64(req, VREQ_OP_OFF).map_err(Fault::from)?;
        let lba = space.read_u64(req, VREQ_LBA_OFF).map_err(Fault::from)?;
        let len = space.read_u64(req, VREQ_LEN_OFF).map_err(Fault::from)? as usize;

        let mut data = vec![0u8; len];
        space
            .read_data(req, VREQ_DATA_OFF, &mut data)
            .map_err(Fault::from)?;

        let (status, count, cycles) = {
            let mut model = self.model.lock();
            let cycles = model.cost(op, len as u64);
            match model.execute(op, lba, &mut data) {
                Ok(count) => (VIRTIO_S_OK, count, cycles),
                Err(status) => (status, 0, cycles),
            }
        };
        if status == VIRTIO_S_OK {
            space
                .write_data(req, VREQ_DATA_OFF, &data)
                .map_err(Fault::from)?;
        }
        space
            .write_u64(req, VREQ_STATUS_OFF, status)
            .map_err(Fault::from)?;
        space
            .write_u64(req, VREQ_COUNT_OFF, count)
            .map_err(Fault::from)?;
        space
            .write_u64(req, VREQ_CYCLES_OFF, cycles)
            .map_err(Fault::from)?;

        self.device_cycles.fetch_add(cycles, Ordering::Relaxed);
        if status == VIRTIO_S_OK {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        if self.kind == VirtioKind::Block {
            i432_trace::bump(i432_trace::Counter::BlkCompletions);
        } else {
            i432_trace::bump(i432_trace::Counter::NetRx);
        }

        Self::post_completion(space, req)?;
        Ok(cycles)
    }

    /// Posts the finished request to its reply port (forced enqueue, as
    /// an interrupt must never be dropped for lack of queue space).
    fn post_completion<S: SpaceMut + ?Sized>(
        space: &mut S,
        req: AccessDescriptor,
    ) -> Result<(), Fault> {
        let reply = space
            .load_ad_hw(req.obj, VREQ_SLOT_REPLY)
            .map_err(Fault::from)?
            .ok_or_else(|| {
                Fault::with_detail(FaultKind::NullAccess, "virtio request has no reply port")
            })?;
        match port::send(space, None, reply, req, 0, false, true)? {
            SendOutcome::Queued | SendOutcome::Delivered => Ok(()),
            _ => Err(Fault::with_detail(
                FaultKind::QueueOverflow,
                "reply port full; completion interrupt lost",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{ObjectSpace, ObjectSpec, PortDiscipline};
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    fn space() -> ObjectSpace {
        ObjectSpace::new(256 * 1024, 16 * 1024, 4096)
    }

    fn mk_req(
        s: &mut ObjectSpace,
        reply: imax_ipc::Port,
        op: u64,
        lba: u64,
        data: &[u8],
    ) -> AccessDescriptor {
        let root = s.root_sro();
        let o = s
            .create_object(root, ObjectSpec::generic(VREQ_DATA_OFF + 256, 2))
            .unwrap();
        let ad = AccessDescriptor::new(o, Rights::ALL);
        s.write_u64(ad, VREQ_OP_OFF, op).unwrap();
        s.write_u64(ad, VREQ_LBA_OFF, lba).unwrap();
        s.write_u64(ad, VREQ_LEN_OFF, data.len() as u64).unwrap();
        s.write_data(ad, VREQ_DATA_OFF, data).unwrap();
        s.store_ad_hw(o, VREQ_SLOT_REPLY, Some(reply.ad())).unwrap();
        ad
    }

    fn fake_ad(i: u32) -> AccessDescriptor {
        AccessDescriptor {
            obj: ObjectRef {
                index: ObjectIndex(i),
                generation: 7,
            },
            rights: Rights::ALL,
        }
    }

    #[test]
    fn virtqueue_fifo_and_refusals() {
        let q = VirtQueue::new(4);
        for i in 0..4 {
            q.push(fake_ad(i)).unwrap();
        }
        assert_eq!(q.push(fake_ad(99)), Err(QueueRefusal::Full));
        assert_eq!(q.occupancy(), 4);
        for i in 0..4 {
            assert_eq!(q.pop().unwrap().obj.index.0, i);
        }
        assert_eq!(q.pop(), Err(QueueRefusal::Empty));
    }

    #[test]
    fn virtqueue_wraps_across_position_space() {
        // Positions start just below 2^63 so head/tail wrap mid-test.
        let q = VirtQueue::with_start(4, POS_MASK - 2);
        for lap in 0u32..4 {
            for i in 0..3 {
                q.push(fake_ad(lap * 3 + i)).unwrap();
            }
            for i in 0..3 {
                assert_eq!(q.pop().unwrap().obj.index.0, lap * 3 + i);
            }
        }
        assert_eq!(q.occupancy(), 0);
    }

    #[test]
    fn virtqueue_freeze_drain_reopen() {
        let q = VirtQueue::new(8);
        q.push(fake_ad(1)).unwrap();
        q.push(fake_ad(2)).unwrap();
        let mut seen = Vec::new();
        assert_eq!(q.freeze_and_drain(|ad| seen.push(ad.obj.index.0)), 2);
        assert_eq!(seen, vec![1, 2]);
        assert!(q.is_frozen());
        assert_eq!(q.push(fake_ad(3)), Err(QueueRefusal::Locked));
        q.reopen();
        q.push(fake_ad(3)).unwrap();
        assert_eq!(q.pop().unwrap().obj.index.0, 3);
    }

    #[test]
    fn virtqueue_retire_never_reopens() {
        let q = VirtQueue::new(8);
        q.push(fake_ad(1)).unwrap();
        let mut orphans = 0;
        assert_eq!(q.retire(|_| orphans += 1), 1);
        assert_eq!(orphans, 1);
        assert!(q.is_dead());
        q.reopen();
        assert_eq!(q.push(fake_ad(2)), Err(QueueRefusal::Locked));
        // Idempotent: a second retire finds nothing.
        assert_eq!(q.retire(|_| panic!("drained twice")), 0);
    }

    /// Satellite coverage: concurrent `freeze_and_drain`/`retire` with
    /// producers racing both. Every pushed descriptor must surface in
    /// exactly one drain (drainer's or retirer's), and the queue must
    /// end dead and empty.
    #[test]
    fn virtqueue_retire_during_drain_race() {
        for round in 0..64 {
            let q = Arc::new(VirtQueue::new(8));
            let pushed = Arc::new(AtomicUsize::new(0));
            let drained: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));

            std::thread::scope(|scope| {
                for p in 0u32..3 {
                    let q = Arc::clone(&q);
                    let pushed = Arc::clone(&pushed);
                    scope.spawn(move || {
                        for i in 0..200u32 {
                            match q.push(fake_ad(p * 1000 + i)) {
                                Ok(()) => {
                                    pushed.fetch_add(1, Ordering::SeqCst);
                                }
                                Err(QueueRefusal::Locked) => break,
                                Err(_) => std::thread::yield_now(),
                            }
                        }
                    });
                }
                // A drainer cycling freeze → drain → reopen, racing the
                // retirer below.
                {
                    let q = Arc::clone(&q);
                    let drained = Arc::clone(&drained);
                    scope.spawn(move || {
                        while !q.is_dead() {
                            let mut got = Vec::new();
                            q.freeze_and_drain(|ad| got.push(ad.obj.index.0));
                            drained.lock().extend(got);
                            q.reopen();
                            std::thread::yield_now();
                        }
                    });
                }
                {
                    let q = Arc::clone(&q);
                    let drained = Arc::clone(&drained);
                    scope.spawn(move || {
                        // Vary interleaving across rounds.
                        for _ in 0..(round % 7) {
                            std::thread::yield_now();
                        }
                        let mut got = Vec::new();
                        q.retire(|ad| got.push(ad.obj.index.0));
                        drained.lock().extend(got);
                    });
                }
            });

            // Post-retire drains find whatever producers squeezed in
            // between the retirer's drain and their Locked refusal —
            // the retire froze the tail first, so nothing can remain.
            let mut tail = Vec::new();
            q.freeze_and_drain(|ad| tail.push(ad.obj.index.0));
            drained.lock().extend(tail);

            let all = drained.lock();
            assert_eq!(
                all.len(),
                pushed.load(Ordering::SeqCst),
                "round {round}: every push surfaces in exactly one drain"
            );
            let unique: HashSet<u32> = all.iter().copied().collect();
            assert_eq!(unique.len(), all.len(), "round {round}: no duplicates");
            assert!(q.is_dead());
            assert_eq!(q.occupancy(), 0);
        }
    }

    #[test]
    fn block_roundtrip_over_ring_and_backlog() {
        for use_queue in [true, false] {
            let mut s = space();
            let root = s.root_sro();
            let reply = imax_ipc::create_port(&mut s, root, 16, PortDiscipline::Fifo).unwrap();
            let dev = VirtioDevice::new(VirtioBlock::new("vda", 64, 128), 8, use_queue);

            let w = mk_req(&mut s, reply, VIRTIO_OP_WRITE, 5, b"persistent");
            let r = mk_req(&mut s, reply, VIRTIO_OP_READ, 5, &[0u8; 10]);
            dev.submit(w);
            dev.submit(r);
            let (done, cycles) = dev.service(&mut s).unwrap();
            assert_eq!(done, 2);
            assert_eq!(cycles, 2 * (600 + 4 * 10));
            dev.assert_idle();

            // Both completions arrive at the reply port, write first.
            let c1 = imax_ipc::untyped::receive(&mut s, reply).unwrap().unwrap();
            let c2 = imax_ipc::untyped::receive(&mut s, reply).unwrap().unwrap();
            assert_eq!(c1.obj, w.obj);
            assert_eq!(c2.obj, r.obj);
            let c2 = AccessDescriptor::new(c2.obj, Rights::ALL);
            assert_eq!(s.read_u64(c2, VREQ_STATUS_OFF).unwrap(), VIRTIO_S_OK);
            assert_eq!(s.read_u64(c2, VREQ_COUNT_OFF).unwrap(), 10);
            let mut buf = [0u8; 10];
            s.read_data(c2, VREQ_DATA_OFF, &mut buf).unwrap();
            assert_eq!(&buf, b"persistent");

            let st = dev.stats();
            assert_eq!(st.submitted, 2);
            assert_eq!(st.completed, 2);
            assert_eq!(st.failed, 0);
            assert_eq!(st.backlogged, if use_queue { 0 } else { 2 });
        }
    }

    #[test]
    fn cycle_model_is_path_independent() {
        // The deterministic claim behind the conform differential: the
        // cycles charged for a batch depend only on the requests.
        let mut totals = Vec::new();
        for use_queue in [true, false] {
            let mut s = space();
            let root = s.root_sro();
            let reply = imax_ipc::create_port(&mut s, root, 16, PortDiscipline::Fifo).unwrap();
            let dev = VirtioDevice::new(VirtioBlock::new("vda", 64, 128), 4, use_queue);
            for lba in 0..6 {
                let req = mk_req(&mut s, reply, VIRTIO_OP_WRITE, lba, &[lba as u8; 32]);
                dev.submit(req);
            }
            let (done, cycles) = dev.service(&mut s).unwrap();
            assert_eq!(done, 6);
            totals.push(cycles);
        }
        assert_eq!(totals[0], totals[1], "ring vs backlog charge identically");
    }

    #[test]
    fn bad_lba_fails_cleanly() {
        let mut s = space();
        let root = s.root_sro();
        let reply = imax_ipc::create_port(&mut s, root, 4, PortDiscipline::Fifo).unwrap();
        let dev = VirtioDevice::new(VirtioBlock::new("vda", 4, 64), 4, true);
        let req = mk_req(&mut s, reply, VIRTIO_OP_READ, 1000, &[0u8; 8]);
        dev.submit(req);
        dev.service(&mut s).unwrap();
        let c = imax_ipc::untyped::receive(&mut s, reply).unwrap().unwrap();
        let c = AccessDescriptor::new(c.obj, Rights::ALL);
        assert_eq!(s.read_u64(c, VREQ_STATUS_OFF).unwrap(), VIRTIO_S_IOERR);
        assert_eq!(dev.stats().failed, 1);
    }

    #[test]
    fn net_echo_roundtrip() {
        let mut s = space();
        let root = s.root_sro();
        let reply = imax_ipc::create_port(&mut s, root, 4, PortDiscipline::Fifo).unwrap();
        let dev = VirtioDevice::new(VirtioNet::new("veth0"), 4, true);
        let req = mk_req(&mut s, reply, VIRTIO_OP_ECHO, 0, b"ping frame");
        dev.submit(req);
        let (done, cycles) = dev.service(&mut s).unwrap();
        assert_eq!(done, 1);
        assert_eq!(cycles, 200 + 2 * 10);
        let c = imax_ipc::untyped::receive(&mut s, reply).unwrap().unwrap();
        let c = AccessDescriptor::new(c.obj, Rights::ALL);
        assert_eq!(s.read_u64(c, VREQ_STATUS_OFF).unwrap(), VIRTIO_S_OK);
        let mut buf = [0u8; 10];
        s.read_data(c, VREQ_DATA_OFF, &mut buf).unwrap();
        assert_eq!(&buf, b"ping frame");
        assert_eq!(dev.model().lock().traffic(), (1, 1, 10));
    }

    #[test]
    fn shutdown_fails_orphans_to_reply_port() {
        let mut s = space();
        let root = s.root_sro();
        let reply = imax_ipc::create_port(&mut s, root, 4, PortDiscipline::Fifo).unwrap();
        let dev = VirtioDevice::new(VirtioBlock::new("vda", 4, 64), 4, true);
        let req = mk_req(&mut s, reply, VIRTIO_OP_READ, 0, &[0u8; 8]);
        dev.submit(req);
        assert_eq!(dev.shutdown(&mut s).unwrap(), 1);
        let c = imax_ipc::untyped::receive(&mut s, reply).unwrap().unwrap();
        let c = AccessDescriptor::new(c.obj, Rights::ALL);
        assert_eq!(s.read_u64(c, VREQ_STATUS_OFF).unwrap(), VIRTIO_S_IOERR);
        assert!(dev.queue().is_dead());
    }

    #[test]
    fn virtio_block_behind_the_family_interface() {
        // The model doubles as an ordinary family device (§6.3: the
        // common subset as a subset).
        let mut d = VirtioBlock::new("vda", 8, 16);
        DeviceImpl::close(&mut d).unwrap();
        DeviceImpl::open(&mut d).unwrap();
        d.control(crate::disk::BLK_OP_SEEK, 3).unwrap();
        DeviceImpl::write(&mut d, b"family view").unwrap();
        assert_eq!(d.control(crate::disk::BLK_OP_COUNT, 0).unwrap(), 8);
        d.control(crate::disk::BLK_OP_SEEK, 3).unwrap();
        let mut buf = [0u8; 11];
        DeviceImpl::read(&mut d, &mut buf).unwrap();
        assert_eq!(&buf, b"family view");
    }
}
