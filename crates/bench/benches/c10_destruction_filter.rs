//! C10 — host-time benchmark of the lost-object recovery scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use imax_bench::c10_destruction_filter;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c10_destruction_filter");
    g.sample_size(20);
    g.bench_function("drives_8_leaked_6", |b| {
        b.iter(|| black_box(c10_destruction_filter(8, 6)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
