//! C3 — host-time benchmark of the multiprocessor scaling scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imax_bench::c3_scaling;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c3_multiproc_scaling");
    g.sample_size(10);
    for cpus in [1u32, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(cpus), &cpus, |b, &cpus| {
            b.iter(|| black_box(c3_scaling(&[cpus], 4, 24)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
