//! C2 — host-time benchmark of the allocation-cost sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use imax_bench::c2_allocation;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c2_allocation");
    g.sample_size(20);
    g.bench_function("size_sweep", |b| b.iter(|| black_box(c2_allocation())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
