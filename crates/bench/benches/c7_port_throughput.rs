//! C7 — host-time benchmark of the port-throughput scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use i432_arch::PortDiscipline;
use imax_bench::c7_port_throughput;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c7_port_throughput");
    g.sample_size(10);
    for cap in [1u32, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| black_box(c7_port_throughput(&[cap], PortDiscipline::Fifo)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
