//! C8 — host-time benchmark of the scheduler-policy comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use imax_bench::c8_schedulers;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c8_schedulers");
    g.sample_size(10);
    g.bench_function("three_policies", |b| b.iter(|| black_box(c8_schedulers())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
