//! C1 — host-time benchmark of the domain-switch scenario (the simulated
//! cycle numbers are printed by the `repro` binary; Criterion tracks how
//! fast the emulator reproduces them).

use criterion::{criterion_group, criterion_main, Criterion};
use imax_bench::c1_domain_switch;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c1_domain_switch");
    g.sample_size(20);
    g.bench_function("calls_200", |b| {
        b.iter(|| black_box(c1_domain_switch(black_box(200))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
