//! C9 — host-time benchmark of the swapping scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imax_bench::c9_swapping;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c9_swapping");
    g.sample_size(10);
    for frac in [25u32, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(frac), &frac, |b, &f| {
            b.iter(|| black_box(c9_swapping(32, f as f64 / 100.0, 4)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
