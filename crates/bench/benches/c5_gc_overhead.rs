//! C5 — host-time benchmark of the concurrent-GC scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imax_bench::c5_gc_overhead;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c5_gc_overhead");
    g.sample_size(10);
    for increments in [0u32, 16] {
        g.bench_with_input(
            BenchmarkId::from_parameter(increments),
            &increments,
            |b, &inc| b.iter(|| black_box(c5_gc_overhead(1, &[inc]))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
