//! C6 — host-time benchmark of bulk vs collector reclamation.

use criterion::{criterion_group, criterion_main, Criterion};
use imax_bench::c6_local_heaps;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c6_local_heaps");
    g.sample_size(20);
    g.bench_function("objects_128", |b| {
        b.iter(|| black_box(c6_local_heaps(black_box(128))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
