//! C4 — host-time benchmark of the typed/untyped/checked port loops.

use criterion::{criterion_group, criterion_main, Criterion};
use imax_bench::c4_port_typing;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c4_typed_ports");
    g.sample_size(20);
    g.bench_function("rounds_200", |b| {
        b.iter(|| black_box(c4_port_typing(black_box(200))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
