//! Ablations: quantify the design choices DESIGN.md calls out.
//!
//! * A1 — the CALL fast path for context allocation. The paper's numbers
//!   (65 µs switch vs 80 µs allocation) *force* a specialized context
//!   allocator; this ablation replaces it with the general CREATE OBJECT
//!   path and reports the damage.
//! * A2 — collector increment granularity: sweep-chunk size vs the
//!   largest single increment (the daemon's "pause" proxy) and total
//!   collection cost.
//! * A3 — SRO free-list fit policy: first-fit (the default) vs best-fit
//!   under random churn, by external fragmentation.
//! * A4 — write-barrier traffic: how many AD stores actually shade
//!   (the hardware gray-bit duty cycle) across workload shapes.

use i432_arch::memory::FitPolicy;
use i432_arch::{FreeList, ObjectSpace, ObjectSpec, Rights};
use i432_gdp::cost::cycles_to_us;
use i432_gdp::CostModel;
use imax_gc::{Collector, GcPhase};
use rand::{rngs::StdRng, RngExt, SeedableRng};

// ---------------------------------------------------------------------------
// A1 — context-allocation fast path.
// ---------------------------------------------------------------------------

/// A1 results.
#[derive(Debug, Clone, Copy)]
pub struct FastPathAblation {
    /// Domain switch with the fast path (the shipped model).
    pub with_fast_path_us: f64,
    /// Domain switch if CALL paid the general allocation price for its
    /// context (64-byte data part, 16 slots).
    pub without_fast_path_us: f64,
}

/// Computes both variants from the cost model.
pub fn a1_context_fast_path() -> FastPathAblation {
    let m = CostModel::default();
    let with_fast_path = m.call_total();
    // Replace ctx_alloc by the general creation charge for a typical
    // context segment.
    let without = m.call_total() - m.ctx_alloc + m.create_total(64, 16);
    FastPathAblation {
        with_fast_path_us: cycles_to_us(with_fast_path),
        without_fast_path_us: cycles_to_us(without),
    }
}

// ---------------------------------------------------------------------------
// A2 — collector increment granularity.
// ---------------------------------------------------------------------------

/// One sweep-chunk configuration.
#[derive(Debug, Clone, Copy)]
pub struct GcGranularity {
    /// Table entries per sweep increment.
    pub sweep_chunk: u32,
    /// Total simulated cycles for one full collection.
    pub total_cycles: u64,
    /// Largest single increment in cycles (pause proxy).
    pub max_increment: u64,
    /// Number of increments the cycle took.
    pub increments: u64,
}

/// Sweeps a populated space at several chunk sizes.
pub fn a2_gc_granularity(chunks: &[u32]) -> Vec<GcGranularity> {
    chunks
        .iter()
        .map(|&sweep_chunk| {
            let mut s = ObjectSpace::new(512 * 1024, 32 * 1024, 8192);
            let root = s.root_sro();
            // A mixed population: half live (anchored), half garbage.
            let anchor = s.create_object(root, ObjectSpec::generic(0, 512)).unwrap();
            let anchor_ad = s.mint(anchor, Rights::READ | Rights::WRITE);
            // Make the anchor a root by giving it to a processor object.
            let cpu = s
                .create_object(
                    root,
                    ObjectSpec {
                        data_len: 0,
                        access_len: i432_arch::sysobj::CPU_ACCESS_SLOTS,
                        otype: i432_arch::ObjectType::System(i432_arch::SystemType::Processor),
                        level: None,
                        sys: i432_arch::SysState::Processor(i432_arch::ProcessorState::new(0)),
                    },
                )
                .unwrap();
            s.store_ad_hw(cpu, i432_arch::sysobj::CPU_SLOT_ROOT, Some(anchor_ad))
                .unwrap();
            for k in 0..512u32 {
                let o = s.create_object(root, ObjectSpec::generic(32, 1)).unwrap();
                if k % 2 == 0 {
                    let ad = s.mint(o, Rights::READ);
                    s.store_ad(anchor_ad, k, Some(ad)).unwrap();
                }
            }
            let mut gc = Collector::new();
            gc.config.sweep_chunk = sweep_chunk;
            let mut increments = 0u64;
            let mut max_increment = 0u64;
            let mut last = gc.stats.sim_cycles;
            gc.start_cycle(&mut s).unwrap();
            while gc.phase() != GcPhase::Idle {
                gc.step(&mut s).unwrap();
                increments += 1;
                let spent = gc.stats.sim_cycles - last;
                last = gc.stats.sim_cycles;
                max_increment = max_increment.max(spent);
            }
            GcGranularity {
                sweep_chunk,
                total_cycles: gc.stats.sim_cycles,
                max_increment,
                increments,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// A3 — free-list fit policy.
// ---------------------------------------------------------------------------

/// One fit-policy run.
#[derive(Debug, Clone, Copy)]
pub struct FitAblation {
    /// The policy measured.
    pub policy: FitPolicy,
    /// Allocation failures despite sufficient total free space
    /// (external-fragmentation events).
    pub frag_failures: u32,
    /// Free runs at the end (fragmentation count).
    pub final_runs: usize,
    /// Largest allocatable block at the end.
    pub final_largest: u32,
}

/// Random churn of mixed sizes against both policies (same seed).
pub fn a3_fit_policy(seed: u64, ops: u32) -> Vec<FitAblation> {
    [FitPolicy::FirstFit, FitPolicy::BestFit]
        .into_iter()
        .map(|policy| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut fl = FreeList::new(0, 64 * 1024).with_policy(policy);
            let mut live: Vec<(u32, u32)> = Vec::new();
            let mut frag_failures = 0;
            for _ in 0..ops {
                if !live.is_empty() && rng.random_bool(0.45) {
                    let i = rng.random_range(0..live.len());
                    let (base, len) = live.swap_remove(i);
                    fl.release(base, len).unwrap();
                } else {
                    // Mixed small/large requests.
                    let len = if rng.random_bool(0.8) {
                        rng.random_range(16..256)
                    } else {
                        rng.random_range(1024..4096)
                    };
                    match fl.allocate(len) {
                        Ok(base) => live.push((base, len)),
                        Err(_) => {
                            if fl.total_free() >= len {
                                frag_failures += 1;
                            }
                        }
                    }
                }
            }
            FitAblation {
                policy,
                frag_failures,
                final_runs: fl.run_count(),
                final_largest: fl.largest_free(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// A4 — write-barrier duty cycle.
// ---------------------------------------------------------------------------

/// Barrier traffic for one workload shape.
#[derive(Debug, Clone, Copy)]
pub struct BarrierDuty {
    /// Fraction of AD stores that shaded their target (percent).
    pub shade_percent: f64,
    /// Total AD stores performed.
    pub stores: u64,
}

/// Measures the gray-bit duty cycle for a pointer-churn workload with
/// the given fan-out (stores per freshly created object).
pub fn a4_barrier_duty(fanout: u32) -> BarrierDuty {
    let mut s = ObjectSpace::new(512 * 1024, 32 * 1024, 8192);
    let root = s.root_sro();
    let holder = s.create_object(root, ObjectSpec::generic(0, 64)).unwrap();
    let holder_ad = s.mint(holder, Rights::READ | Rights::WRITE);
    let before_stores = s.stats.ad_stores;
    let before_shades = s.stats.barrier_shades;
    for i in 0..256u32 {
        let o = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let ad = s.mint(o, Rights::READ);
        for k in 0..fanout {
            s.store_ad(holder_ad, (i + k) % 64, Some(ad)).unwrap();
        }
    }
    let stores = s.stats.ad_stores - before_stores;
    let shades = s.stats.barrier_shades - before_shades;
    BarrierDuty {
        shade_percent: 100.0 * shades as f64 / stores as f64,
        stores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_fast_path_is_load_bearing() {
        let r = a1_context_fast_path();
        assert!((60.0..=70.0).contains(&r.with_fast_path_us));
        assert!(
            r.without_fast_path_us > r.with_fast_path_us + 30.0,
            "without the fast path a CALL would cost {:.1}us",
            r.without_fast_path_us
        );
    }

    #[test]
    fn a2_smaller_chunks_smaller_increments() {
        let rows = a2_gc_granularity(&[4, 64, 4096]);
        assert!(rows[0].max_increment < rows[2].max_increment);
        assert!(rows[0].increments > rows[2].increments);
    }

    #[test]
    fn a3_policies_diverge_deterministically() {
        let a = a3_fit_policy(42, 4000);
        let b = a3_fit_policy(42, 4000);
        assert_eq!(a[0].final_runs, b[0].final_runs, "deterministic");
        // Both complete; the comparison itself is the data (printed by
        // the ablations binary).
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn a4_first_store_shades_rest_do_not() {
        let once = a4_barrier_duty(1);
        let thrice = a4_barrier_duty(3);
        assert!(once.shade_percent > 95.0, "{once:?}");
        assert!(
            thrice.shade_percent < once.shade_percent,
            "{thrice:?} vs {once:?}"
        );
    }
}
