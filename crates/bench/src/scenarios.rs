//! The experiment implementations (C1–C10 of DESIGN.md).

use i432_arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_FIRST_FREE, CTX_SLOT_SRO};
use i432_arch::{ObjectSpec, PortDiscipline, Rights, SpaceAccessExt};
use i432_gdp::isa::{AluOp, DataDst, DataRef, Instruction};
use i432_gdp::{cost::cycles_to_us, CostModel, ProgramBuilder, StepEvent};
use i432_sim::{RunOutcome, System, SystemConfig};
use imax_gc::{install_gc_daemon, Collector};
use imax_ipc::create_port;
use parking_lot::Mutex;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// C1 — domain switch ≈ 65 µs (paper §2).
// ---------------------------------------------------------------------------

/// C1 results.
#[derive(Debug, Clone, Copy)]
pub struct DomainSwitch {
    /// Cycles of one cross-domain CALL (measured from the machine).
    pub call_cycles: u64,
    /// Cycles of the matching RETURN.
    pub return_cycles: u64,
    /// Average cycles per call+return pair over a long loop.
    pub pair_avg: f64,
    /// The CALL in microseconds at 8 MHz.
    pub call_us: f64,
}

/// Measures one inter-domain call and return, plus a loop average.
pub fn c1_domain_switch(loop_calls: u64) -> DomainSwitch {
    // Single call: capture per-instruction cycles from the event stream.
    let mut sys = System::new(&SystemConfig::small());
    let mut callee = ProgramBuilder::new();
    callee.ret(None, None);
    let callee_sub = sys.subprogram("empty", callee.finish(), 32, 8);
    let svc = sys.install_domain("svc", vec![callee_sub], 0);

    let mut caller = ProgramBuilder::new();
    caller.call(CTX_SLOT_ARG as u16, 0, None, None, None);
    caller.halt();
    let caller_sub = sys.subprogram("caller", caller.finish(), 32, 8);
    let app = sys.install_domain("app", vec![caller_sub], 0);
    sys.spawn(app, 0, Some(svc));

    let mut cycles = Vec::new();
    sys.run_until(10_000, |_, e| {
        if let StepEvent::Executed { cycles: c, .. } = e {
            cycles.push(*c);
        }
        matches!(e, StepEvent::ProcessExited(_))
    });
    let (call_cycles, return_cycles) = (cycles[0], cycles[1]);

    // Loop average: `loop_calls` call+return pairs, loop overhead
    // subtracted using a calibration run without the CALL.
    let run_loop = |with_call: bool| -> u64 {
        let mut sys = System::new(&SystemConfig::small());
        let mut callee = ProgramBuilder::new();
        callee.ret(None, None);
        let callee_sub = sys.subprogram("empty", callee.finish(), 32, 8);
        let svc = sys.install_domain("svc", vec![callee_sub], 0);
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(loop_calls), DataDst::Local(0));
        p.bind(top);
        if with_call {
            p.call(CTX_SLOT_ARG as u16, 0, None, None, None);
        }
        p.alu(
            AluOp::Sub,
            DataRef::Local(0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), top);
        p.halt();
        let sub = sys.subprogram("loop", p.finish(), 64, 8);
        let dom = sys.install_domain("app", vec![sub], 0);
        let proc_ref = sys.spawn(dom, 0, Some(svc));
        let outcome = sys.run_to_completion(50_000_000);
        assert_eq!(outcome, RunOutcome::Stopped);
        sys.space.process(proc_ref).unwrap().total_cycles
    };
    let with = run_loop(true);
    let without = run_loop(false);
    let pair_avg = (with - without) as f64 / loop_calls as f64;

    DomainSwitch {
        call_cycles,
        return_cycles,
        pair_avg,
        call_us: cycles_to_us(call_cycles),
    }
}

// ---------------------------------------------------------------------------
// C2 — object allocation ≈ 80 µs (paper §5).
// ---------------------------------------------------------------------------

/// One allocation-size measurement.
#[derive(Debug, Clone, Copy)]
pub struct AllocationCost {
    /// Data-part bytes requested.
    pub data_bytes: u32,
    /// Access-part slots requested.
    pub access_slots: u32,
    /// Cycles of the CREATE OBJECT instruction.
    pub cycles: u64,
    /// Microseconds at 8 MHz.
    pub us: f64,
}

/// Measures CREATE OBJECT for a sweep of segment sizes.
pub fn c2_allocation() -> Vec<AllocationCost> {
    let sizes = [
        (64u32, 4u32),
        (256, 8),
        (1024, 16),
        (4096, 64),
        (16384, 128),
    ];
    sizes
        .iter()
        .map(|&(data_bytes, access_slots)| {
            use imax::inspect::{StatsDelta, StatsSnapshot};
            let mut sys = System::new(&SystemConfig::small());
            let mut p = ProgramBuilder::new();
            p.create_object(
                CTX_SLOT_SRO as u16,
                DataRef::Imm(data_bytes as u64),
                DataRef::Imm(access_slots as u64),
                CTX_SLOT_FIRST_FREE as u16,
            );
            p.halt();
            let sub = sys.subprogram("alloc", p.finish(), 32, 8);
            let dom = sys.install_domain("app", vec![sub], 0);
            sys.spawn(dom, 0, None);
            let before = StatsSnapshot::take(&mut sys.space);
            let mut create_cycles = 0;
            sys.run_until(10_000, |_, e| {
                if let StepEvent::Executed { cycles, .. } = e {
                    if create_cycles == 0 {
                        create_cycles = *cycles;
                    }
                }
                matches!(e, StepEvent::ProcessExited(_))
            });
            // Cross-check against the space counters: the measured region
            // is exactly one CREATE OBJECT.
            let delta: StatsDelta = before.delta(&mut sys.space);
            assert_eq!(delta.objects_created, 1, "one allocation per run");
            AllocationCost {
                data_bytes,
                access_slots,
                cycles: create_cycles,
                us: cycles_to_us(create_cycles),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// C3 — multiprocessor scaling to a factor of ~10 (paper §3).
// ---------------------------------------------------------------------------

/// One point of the scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Processor count.
    pub cpus: u32,
    /// Simulated makespan.
    pub makespan: u64,
    /// Speedup vs 1 processor.
    pub speedup: f64,
}

/// Runs the parallel batch on each processor count.
pub fn c3_scaling(cpu_counts: &[u32], buses: usize, jobs: u32) -> Vec<ScalingPoint> {
    let run = |cpus: u32| -> u64 {
        let mut sys = System::new(
            &SystemConfig::small()
                .with_processors(cpus)
                .with_buses(buses, 2),
        );
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(40), DataDst::Local(0));
        p.bind(top);
        p.work(400);
        p.mov(DataRef::Local(0), DataDst::Local(8));
        p.mov(DataRef::Local(8), DataDst::Local(16));
        p.alu(
            AluOp::Sub,
            DataRef::Local(0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), top);
        p.halt();
        let sub = sys.subprogram("job", p.finish(), 64, 8);
        let dom = sys.install_domain("batch", vec![sub], 0);
        for _ in 0..jobs {
            sys.spawn(dom, 0, None);
        }
        let outcome = sys.run_to_completion(500_000_000);
        assert_eq!(outcome, RunOutcome::Stopped);
        sys.now()
    };
    let t1 = run(1);
    cpu_counts
        .iter()
        .map(|&cpus| {
            let makespan = if cpus == 1 { t1 } else { run(cpus) };
            ScalingPoint {
                cpus,
                makespan,
                speedup: t1 as f64 / makespan as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// C3t — host-thread scaling of the lock-striped runner (real wall clock).
// ---------------------------------------------------------------------------

/// One point of the host-threaded scaling curve: the same batch run by
/// N host threads against the lock-striped space and against the
/// global-lock baseline.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedPoint {
    /// Host threads (= emulated processors).
    pub threads: u32,
    /// Wall-clock microseconds, lock-striped runner.
    pub striped_wall_us: u64,
    /// Wall-clock microseconds, global-lock baseline.
    pub global_lock_wall_us: u64,
    /// Wall-clock speedup of striping over the global lock.
    pub speedup: f64,
    /// System errors across both runs (must be zero).
    pub system_errors: u64,
}

/// Runs the independent-jobs batch on real host threads, once against
/// the lock-striped shared space ([`i432_sim::run_threaded`]) and once
/// against the global-lock baseline, and reports the wall-clock speedup
/// striping buys at each thread count. Unlike every other scenario this
/// one measures *host* time: it validates that shard locking turns the
/// threaded runner into an actually-parallel program.
pub fn c3_threaded(
    thread_counts: &[u32],
    shards: u32,
    jobs: u32,
    iters: u64,
) -> Vec<ThreadedPoint> {
    use i432_sim::{run_threaded, run_threaded_global_lock};
    use std::time::Instant;
    let build = |cpus: u32| batch_system(cpus, shards, jobs, iters);
    thread_counts
        .iter()
        .map(|&threads| {
            let t0 = Instant::now();
            let (_, striped) = run_threaded(build(threads), u64::MAX);
            let striped_wall = t0.elapsed();
            assert!(striped.completed, "striped run must finish: {striped:?}");
            let t1 = Instant::now();
            let (_, global) = run_threaded_global_lock(build(threads), u64::MAX);
            let global_wall = t1.elapsed();
            assert!(global.completed, "global-lock run must finish: {global:?}");
            ThreadedPoint {
                threads,
                striped_wall_us: striped_wall.as_micros() as u64,
                global_lock_wall_us: global_wall.as_micros() as u64,
                speedup: global_wall.as_secs_f64() / striped_wall.as_secs_f64(),
                system_errors: striped.system_errors + global.system_errors,
            }
        })
        .collect()
}

/// The independent-jobs batch used by the host-threaded comparisons:
/// `jobs` processes each burning `iters` iterations of the
/// mov/work/alu/jump_if hot loop, with arenas scaled so per-shard
/// capacity stays constant.
fn batch_system(cpus: u32, shards: u32, jobs: u32, iters: u64) -> System {
    let mut cfg = SystemConfig::small()
        .with_processors(cpus)
        .with_shards(shards);
    cfg.data_bytes *= shards;
    cfg.access_slots *= shards;
    cfg.table_limit *= shards;
    let mut sys = System::new(&cfg);
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(iters), DataDst::Local(0));
    p.bind(top);
    p.work(400);
    p.alu(
        AluOp::Sub,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.jump_if_nonzero(DataRef::Local(0), top);
    p.halt();
    let sub = sys.subprogram("job", p.finish(), 64, 8);
    let dom = sys.install_domain("batch", vec![sub], 0);
    for _ in 0..jobs {
        sys.spawn(dom, 0, None);
    }
    sys
}

/// One point of the dispatch-specialization comparison: the same batch
/// on the striped threaded runner with superinstruction fusion (and the
/// block/inline caches) on vs off.
#[derive(Debug, Clone, Copy)]
pub struct FusionPoint {
    /// Host threads (= emulated processors).
    pub threads: u32,
    /// Wall-clock microseconds, fused dispatch.
    pub fused_wall_us: u64,
    /// Wall-clock microseconds, plain cached dispatch.
    pub unfused_wall_us: u64,
    /// Wall-clock speedup of fusion over plain cached dispatch.
    pub speedup: f64,
    /// System errors across both runs (must be zero).
    pub system_errors: u64,
    /// Simulated cycle counts of both runs — must be equal: fusion is
    /// wall-clock-only by construction.
    pub fused_cycles: u64,
    /// See [`FusionPoint::fused_cycles`].
    pub unfused_cycles: u64,
}

/// Runs the batch with fusion on and off at each thread count. The
/// deterministic cycle model is untouched by fusion, so the per-point
/// cycle totals must be bit-identical; only the host wall clock moves.
pub fn c3_fusion(thread_counts: &[u32], shards: u32, jobs: u32, iters: u64) -> Vec<FusionPoint> {
    use i432_sim::run_threaded_full;
    use std::time::Instant;
    // The simulated cycles every process accumulated — fusion must not
    // move this by a single cycle.
    fn cycle_total(sys: &mut System) -> u64 {
        sys.processes()
            .to_vec()
            .iter()
            .map(|&p| sys.space.with_process(p, |ps| ps.total_cycles).unwrap_or(0))
            .sum()
    }
    thread_counts
        .iter()
        .map(|&threads| {
            let t0 = Instant::now();
            let (mut fsys, fused) = run_threaded_full(
                batch_system(threads, shards, jobs, iters),
                u64::MAX,
                true,
                true,
                true,
            );
            let fused_wall = t0.elapsed();
            assert!(fused.completed, "fused run must finish: {fused:?}");
            let t1 = Instant::now();
            let (mut usys, unfused) = run_threaded_full(
                batch_system(threads, shards, jobs, iters),
                u64::MAX,
                true,
                true,
                false,
            );
            let unfused_wall = t1.elapsed();
            assert!(unfused.completed, "unfused run must finish: {unfused:?}");
            FusionPoint {
                threads,
                fused_wall_us: fused_wall.as_micros() as u64,
                unfused_wall_us: unfused_wall.as_micros() as u64,
                speedup: unfused_wall.as_secs_f64() / fused_wall.as_secs_f64(),
                system_errors: fused.system_errors + unfused.system_errors,
                fused_cycles: cycle_total(&mut fsys),
                unfused_cycles: cycle_total(&mut usys),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Shared scenario plumbing.
// ---------------------------------------------------------------------------

/// The canonical token-mutex workload, shared by the threaded-runner
/// tests, the benchmarks and the conformance fuzzer (`crates/conform`):
/// `workers` processes each bump a shared counter `rounds` times under a
/// one-token port mutex. Returns the system, the AD of the shared
/// counter cell, and the expected final counter value.
///
/// The workload is *interleaving-independent by construction* — all
/// cross-process communication goes through the port token — so any
/// runner, at any thread/shard combination, must produce the same
/// logical end state.
pub fn token_mutex_system(
    cpus: u32,
    shards: u32,
    workers: u32,
    rounds: u64,
) -> (System, i432_arch::AccessDescriptor, u64) {
    // Scale the arenas with the stripe count so per-shard capacity stays
    // constant (system objects all land in shard 0).
    let mut cfg = SystemConfig::small()
        .with_processors(cpus)
        .with_shards(shards);
    cfg.data_bytes *= shards;
    cfg.access_slots *= shards;
    cfg.table_limit *= shards;
    let mut sys = System::new(&cfg);
    let root = sys.space.root_sro();
    let mutex = create_port(&mut sys.space, root, 1, PortDiscipline::Fifo).unwrap();
    sys.anchor(mutex.ad());
    let shared = sys
        .space
        .create_object(root, ObjectSpec::generic(8, 0))
        .unwrap();
    let shared_ad = sys.space.mint(shared, Rights::READ | Rights::WRITE);
    sys.anchor(shared_ad);
    let token = sys
        .space
        .create_object(root, ObjectSpec::generic(8, 0))
        .unwrap();
    let token_ad = sys.space.mint(token, Rights::READ | Rights::WRITE);
    imax_ipc::untyped::send(&mut sys.space, mutex, token_ad).unwrap();

    // receive token -> load counter -> work -> bump -> store -> return
    // token, `rounds` times. Slot 5 is the shared cell (poked below);
    // slot 6 carries the token.
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(0), DataDst::Local(0));
    p.bind(top);
    p.receive(CTX_SLOT_ARG as u16, 6);
    p.mov(DataRef::Field(5, 0), DataDst::Local(8));
    p.work(50);
    p.alu(
        AluOp::Add,
        DataRef::Local(8),
        DataRef::Imm(1),
        DataDst::Local(8),
    );
    p.mov(DataRef::Local(8), DataDst::Field(5, 0));
    p.send(CTX_SLOT_ARG as u16, 6);
    p.alu(
        AluOp::Add,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.alu(
        AluOp::Lt,
        DataRef::Local(0),
        DataRef::Imm(rounds),
        DataDst::Local(16),
    );
    p.jump_if_nonzero(DataRef::Local(16), top);
    p.halt();
    let sub = sys.subprogram("incrementer", p.finish(), 64, 8);
    let dom = sys.install_domain("racers", vec![sub], 0);
    for _ in 0..workers {
        let proc_ref = sys.spawn(dom, 0, Some(mutex.ad()));
        let ctx = sys
            .space
            .load_ad_hw(proc_ref, i432_arch::sysobj::PROC_SLOT_CONTEXT)
            .unwrap()
            .unwrap()
            .obj;
        sys.space
            .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE + 1, Some(shared_ad))
            .unwrap();
    }
    (sys, shared_ad, u64::from(workers) * rounds)
}

// ---------------------------------------------------------------------------
// C4 — typed ports are zero-overhead (paper §4 / Figure 2).
// ---------------------------------------------------------------------------

/// C4 results: cycles per send+receive round trip.
#[derive(Debug, Clone, Copy)]
pub struct PortTyping {
    /// The untyped (Figure 1) loop.
    pub untyped_cycles_per_op: f64,
    /// A `Typed_Ports` instance for `u64` messages.
    pub typed_u64_cycles_per_op: f64,
    /// A `Typed_Ports` instance for a 16-byte record type.
    pub typed_record_cycles_per_op: f64,
    /// The runtime-checked variant ("a few more generated instructions").
    pub checked_cycles_per_op: f64,
}

/// The instruction stream a `Typed_Ports` instance compiles to. The
/// generic parameter exists only at compile time — monomorphization
/// yields the *same* instructions for every `M`, which is exactly
/// Figure 2's zero-overhead claim rendered in Rust.
fn send_receive_loop<M: imax_ipc::PortMessage>(rounds: u64, checked: bool) -> Vec<Instruction> {
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(rounds), DataDst::Local(0));
    // The message object (reused each round; its creation is outside the
    // measured loop semantics but inside the program for simplicity).
    p.create_object(
        CTX_SLOT_SRO as u16,
        DataRef::Imm(M::DATA_LEN as u64),
        DataRef::Imm(M::ACCESS_LEN as u64),
        5,
    );
    p.bind(top);
    if checked {
        // The dynamic type check: one extra AD load/store pair against
        // the context (stands for the user-type qualification).
        p.move_ad(5, 6);
        p.null_ad(6);
    }
    p.send(CTX_SLOT_ARG as u16, 5);
    p.receive(CTX_SLOT_ARG as u16, 5);
    p.alu(
        AluOp::Sub,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.jump_if_nonzero(DataRef::Local(0), top);
    p.halt();
    p.finish()
}

/// Measures the three port flavours.
pub fn c4_port_typing(rounds: u64) -> PortTyping {
    let run = |code: Vec<Instruction>| -> f64 {
        let mut sys = System::new(&SystemConfig::small());
        let root = sys.space.root_sro();
        let port = create_port(&mut sys.space, root, 4, PortDiscipline::Fifo).unwrap();
        sys.anchor(port.ad());
        let sub = sys.subprogram("loop", code, 64, 12);
        let dom = sys.install_domain("app", vec![sub], 0);
        let proc_ref = sys.spawn(dom, 0, Some(port.ad()));
        let outcome = sys.run_to_completion(100_000_000);
        assert_eq!(outcome, RunOutcome::Stopped);
        sys.space.process(proc_ref).unwrap().total_cycles as f64 / rounds as f64
    };
    // "Untyped" and the two typed instances produce identical programs;
    // running all three demonstrates (and measures) the claim.
    let untyped = run(send_receive_loop::<u64>(rounds, false));
    let typed_u64 = run(send_receive_loop::<u64>(rounds, false));
    let typed_record = run(send_receive_loop::<[u8; 16]>(rounds, false));
    let checked = run(send_receive_loop::<u64>(rounds, true));
    PortTyping {
        untyped_cycles_per_op: untyped,
        typed_u64_cycles_per_op: typed_u64,
        typed_record_cycles_per_op: typed_record,
        checked_cycles_per_op: checked,
    }
}

// ---------------------------------------------------------------------------
// C5 — concurrent GC overhead (paper §8.1).
// ---------------------------------------------------------------------------

/// One GC-configuration measurement.
#[derive(Debug, Clone, Copy)]
pub struct GcOverhead {
    /// Collector increments per daemon call (0 = daemon off).
    pub increments: u32,
    /// Processors in the configuration.
    pub cpus: u32,
    /// Simulated time until the mutators finished.
    pub mutator_makespan: u64,
    /// Slowdown vs the daemon-off run on the same processor count.
    pub slowdown: f64,
    /// Objects the collector reclaimed while the mutators ran.
    pub reclaimed: u64,
    /// Full collection cycles completed.
    pub gc_cycles: u64,
}

/// Mutators churn objects while the daemon collects.
pub fn c5_gc_overhead(cpus: u32, configs: &[u32]) -> Vec<GcOverhead> {
    let run = |increments: u32| -> (u64, u64, u64) {
        let mut sys = System::new(&SystemConfig::small().with_processors(cpus));
        let collector = Arc::new(Mutex::new(Collector::new()));
        if increments > 0 {
            // Equal priority: the daemon time-slices *against* the
            // mutators (the interference we are measuring).
            let daemon = install_gc_daemon(&mut sys, Arc::clone(&collector), increments, 128);
            let ps = sys.space.process_mut(daemon).unwrap();
            ps.timeslice = 5_000;
            ps.slice_remaining = 5_000;
        }
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(80), DataDst::Local(0));
        p.bind(top);
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(64), DataRef::Imm(2), 5);
        p.work(300);
        p.alu(
            AluOp::Sub,
            DataRef::Local(0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), top);
        p.halt();
        let sub = sys.subprogram("churn", p.finish(), 64, 8);
        let dom = sys.install_domain("mutators", vec![sub], 0);
        for _ in 0..2 {
            let m = sys.spawn(dom, 0, None);
            let ps = sys.space.process_mut(m).unwrap();
            ps.timeslice = 5_000;
            ps.slice_remaining = 5_000;
        }
        let outcome = sys.run_to_completion(100_000_000);
        assert_eq!(outcome, RunOutcome::Stopped);
        let stats = collector.lock().stats;
        (sys.now(), stats.reclaimed, stats.cycles)
    };
    let (baseline, _, _) = run(0);
    configs
        .iter()
        .map(|&increments| {
            let (makespan, reclaimed, gc_cycles) = if increments == 0 {
                (baseline, 0, 0)
            } else {
                run(increments)
            };
            GcOverhead {
                increments,
                cpus,
                mutator_makespan: makespan,
                slowdown: makespan as f64 / baseline as f64,
                reclaimed,
                gc_cycles,
            }
        })
        .collect()
}

/// One point of the C5-threaded parallel-marking experiment: the same
/// object population collected with a different number of shard-worker
/// threads.
#[derive(Debug, Clone, Copy)]
pub struct GcThreadedPoint {
    /// Shards = marker threads.
    pub shards: u32,
    /// Live (anchored) objects in the space, identical at every point.
    pub live: u64,
    /// Unreferenced white objects in the space, identical at every point.
    pub garbage: u64,
    /// Objects reclaimed over the run — deterministically `garbage`,
    /// regardless of shard count or schedule.
    pub reclaimed: u64,
    /// Collection cycles driven (fixed by the harness).
    pub gc_cycles: u64,
    /// Wall-clock microseconds for the whole `collect_on` run.
    pub mark_wall_us: u64,
    /// Live objects marked per millisecond of wall clock (live × cycles
    /// ÷ wall) — the number that must rise with shards on real cores.
    pub marks_per_ms: u64,
    /// Collector worker errors (must be zero).
    pub gc_errors: u64,
}

/// C5-threaded, part 1: marking throughput vs shard count. One fixed
/// population — `live` anchored chain objects plus `garbage` lost ones,
/// striped round-robin — is collected for `cycles` full cycles by the
/// parallel per-shard collector, once per entry of `shard_counts`.
/// Everything *logical* (what gets reclaimed) is schedule-independent;
/// only the wall clock varies with the thread count.
pub fn c5_gc_threaded(
    shard_counts: &[u32],
    live: u32,
    garbage: u32,
    cycles: u32,
) -> Vec<GcThreadedPoint> {
    use i432_arch::{ObjectRef, ObjectType, ShardedSpace, SharedSpace, SysState, SystemType};
    use imax_gc::{GcConfig, ParallelGc};
    use std::time::Instant;
    let build = |shards: u32| -> ShardedSpace {
        let mut s = ShardedSpace::new(1 << 22, 1 << 17, 1 << 16, shards);
        for k in 0..shards {
            let root = s.root_sro_of(k);
            let cpu = s
                .create_object(
                    root,
                    ObjectSpec {
                        data_len: 0,
                        access_len: i432_arch::sysobj::CPU_ACCESS_SLOTS,
                        otype: ObjectType::System(SystemType::Processor),
                        level: None,
                        sys: SysState::Processor(i432_arch::ProcessorState::new(k)),
                    },
                )
                .expect("cpu allocation");
            // The live population: one long anchored chain per shard, so
            // marking must actually traverse `live / shards` pointers.
            let mut prev: Option<ObjectRef> = None;
            for _ in 0..live / shards {
                let o = s
                    .create_object(root, ObjectSpec::generic(16, 2))
                    .expect("live allocation");
                if let Some(p) = prev {
                    let ad = s.mint(p, Rights::ALL);
                    s.store_ad_hw(o, 0, Some(ad)).expect("chain link");
                }
                prev = Some(o);
            }
            let head = s.mint(prev.expect("nonempty chain"), Rights::ALL);
            s.store_ad_hw(cpu, i432_arch::sysobj::CPU_SLOT_ROOT, Some(head))
                .expect("chain anchor");
            // The lost population: allocated, never referenced — white.
            for _ in 0..garbage / shards {
                s.create_object(root, ObjectSpec::generic(16, 0))
                    .expect("garbage allocation");
            }
        }
        s
    };
    shard_counts
        .iter()
        .map(|&shards| {
            let shared = SharedSpace::new(build(shards));
            let gc = ParallelGc::new(shards, GcConfig::default());
            let t0 = Instant::now();
            gc.collect_on(&shared, cycles);
            let wall = t0.elapsed();
            let stats = gc.snapshot();
            let live_total = (live / shards * shards) as u64;
            let garbage_total = (garbage / shards * shards) as u64;
            GcThreadedPoint {
                shards,
                live: live_total,
                garbage: garbage_total,
                reclaimed: stats.reclaimed,
                gc_cycles: stats.cycles,
                mark_wall_us: wall.as_micros() as u64,
                marks_per_ms: ((live_total * cycles as u64) as f64
                    / wall.as_secs_f64().max(1e-9)
                    / 1000.0) as u64,
                gc_errors: stats.errors.len() as u64,
            }
        })
        .collect()
}

/// C5-threaded, part 2: what concurrent collection costs the mutators.
#[derive(Debug, Clone, Copy)]
pub struct GcMutatorOverhead {
    /// Wall-clock microseconds for the workload with no collector.
    pub baseline_wall_us: u64,
    /// Wall-clock microseconds with the parallel collector's shard
    /// workers marking and sweeping throughout the run.
    pub gc_on_wall_us: u64,
    /// `gc_on / baseline` — the concurrent-collection tax.
    pub slowdown: f64,
    /// Collections completed while the mutators ran (schedule-dependent,
    /// so deliberately not named `cycles`: `bench_diff` must treat it as
    /// host-dependent).
    pub collections: u64,
    /// Objects reclaimed while the mutators ran (schedule-dependent).
    pub reclaimed_during_run: u64,
    /// System errors plus collector errors (must be zero).
    pub system_errors: u64,
}

/// Runs the canonical token-mutex workload on the threaded runner twice
/// — bare, then with the per-shard collector workers riding along as
/// aux threads — and reports the mutator slowdown. The logical end
/// state (the shared counter) is asserted identical in both arms: the
/// collector must be invisible.
pub fn c5_gc_mutator_overhead(
    cpus: u32,
    shards: u32,
    workers: u32,
    rounds: u64,
) -> GcMutatorOverhead {
    use imax_gc::{run_threaded_parallel_gc, GcConfig, ParallelGc};
    use std::time::Instant;
    let t0 = Instant::now();
    let (sys, counter, expected) = token_mutex_system(cpus, shards, workers, rounds);
    let (mut sys, bare) = i432_sim::run_threaded(sys, u64::MAX);
    let baseline_wall = t0.elapsed();
    assert!(bare.completed, "bare run must finish: {bare:?}");
    assert_eq!(sys.space.read_u64(counter, 0).unwrap(), expected);

    let t1 = Instant::now();
    let (sys, counter, expected) = token_mutex_system(cpus, shards, workers, rounds);
    let gc = ParallelGc::new(shards, GcConfig::default());
    let (mut sys, with_gc) = run_threaded_parallel_gc(sys, u64::MAX, true, &gc);
    let gc_wall = t1.elapsed();
    assert!(with_gc.completed, "gc-on run must finish: {with_gc:?}");
    assert_eq!(sys.space.read_u64(counter, 0).unwrap(), expected);
    let stats = gc.snapshot();

    GcMutatorOverhead {
        baseline_wall_us: baseline_wall.as_micros() as u64,
        gc_on_wall_us: gc_wall.as_micros() as u64,
        slowdown: gc_wall.as_secs_f64() / baseline_wall.as_secs_f64(),
        collections: stats.cycles,
        reclaimed_during_run: stats.reclaimed,
        system_errors: bare.system_errors + with_gc.system_errors + stats.errors.len() as u64,
    }
}

// ---------------------------------------------------------------------------
// C6 — local heaps reclaim more cheaply than global GC (paper §5/§8.1).
// ---------------------------------------------------------------------------

/// C6 results: cycles per reclaimed object under the two strategies.
#[derive(Debug, Clone, Copy)]
pub struct ReclamationCost {
    /// Objects reclaimed in each arm.
    pub objects: u64,
    /// Bulk (scope-exit) reclamation: cycles per object, measured from
    /// the RETURN that destroys the local heap.
    pub bulk_cycles_per_object: f64,
    /// Global-heap + collector: collector cycles per reclaimed object.
    pub gc_cycles_per_object: f64,
}

/// Allocate-and-abandon under (a) a local heap destroyed at scope exit
/// and (b) the global heap swept by the collector.
pub fn c6_local_heaps(objects: u64) -> ReclamationCost {
    // (a) Bulk: host-level — build the heap, allocate, bulk destroy,
    // using the same 20-cycles-per-object charge the RETURN path applies
    // plus the measured heap construction overhead.
    let bulk = {
        use imax_storage::{create_sro, SroQuota};
        let mut sys = System::new(&SystemConfig::small());
        let root = sys.space.root_sro();
        let heap = create_sro(
            &mut sys.space,
            root,
            i432_arch::Level(1),
            SroQuota {
                data_bytes: (objects as u32) * 96,
                access_slots: (objects as u32) * 4,
            },
        )
        .unwrap();
        for _ in 0..objects {
            sys.space
                .create_object(heap, ObjectSpec::generic(64, 2))
                .unwrap();
        }
        let reclaimed = sys.space.bulk_destroy_sro(heap).unwrap() as u64;
        // The RETURN path charges 20 cycles per reclaimed object plus
        // its fixed cost; report that model charge per object.
        let fixed = CostModel::default().return_total();
        (reclaimed * 20 + fixed) as f64 / objects as f64
    };

    // (b) GC: allocate from the global heap, drop, run the collector,
    // and divide its simulated cycles by what it reclaimed.
    let gc = {
        let mut sys = System::new(&SystemConfig::small());
        let root = sys.space.root_sro();
        for _ in 0..objects {
            sys.space
                .create_object(root, ObjectSpec::generic(64, 2))
                .unwrap();
        }
        let mut collector = Collector::new();
        collector.collect_full(&mut sys.space).unwrap();
        collector.stats.sim_cycles as f64 / collector.stats.reclaimed.max(1) as f64
    };

    ReclamationCost {
        objects,
        bulk_cycles_per_object: bulk,
        gc_cycles_per_object: gc,
    }
}

// ---------------------------------------------------------------------------
// C7 — port throughput vs capacity and discipline.
// ---------------------------------------------------------------------------

/// One throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct PortThroughput {
    /// Queue capacity (Figure 1's `message_count`).
    pub capacity: u32,
    /// Queue discipline.
    pub discipline: PortDiscipline,
    /// Simulated cycles per message moved end to end.
    pub cycles_per_message: f64,
    /// Sends that blocked.
    pub blocked_sends: u64,
    /// Receives that blocked.
    pub blocked_receives: u64,
}

/// Producer/consumer pair on two processors.
pub fn c7_port_throughput(capacities: &[u32], discipline: PortDiscipline) -> Vec<PortThroughput> {
    const MESSAGES: u64 = 200;
    capacities
        .iter()
        .map(|&capacity| {
            let mut sys = System::new(&SystemConfig::small().with_processors(2));
            let root = sys.space.root_sro();
            let port = create_port(&mut sys.space, root, capacity, discipline).unwrap();
            sys.anchor(port.ad());

            let mut tx = ProgramBuilder::new();
            let top = tx.new_label();
            tx.mov(DataRef::Imm(0), DataDst::Local(0));
            tx.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 5);
            tx.bind(top);
            tx.send_keyed(CTX_SLOT_ARG as u16, 5, DataRef::Local(0));
            tx.alu(
                AluOp::Add,
                DataRef::Local(0),
                DataRef::Imm(1),
                DataDst::Local(0),
            );
            tx.alu(
                AluOp::Lt,
                DataRef::Local(0),
                DataRef::Imm(MESSAGES),
                DataDst::Local(8),
            );
            tx.jump_if_nonzero(DataRef::Local(8), top);
            tx.halt();
            let tx_sub = sys.subprogram("tx", tx.finish(), 64, 8);

            let mut rx = ProgramBuilder::new();
            let top = rx.new_label();
            rx.mov(DataRef::Imm(0), DataDst::Local(0));
            rx.bind(top);
            rx.receive(CTX_SLOT_ARG as u16, 6);
            // Per-message processing: the consumer is the bottleneck, so
            // queue capacity governs how often the producer blocks.
            rx.work(150);
            rx.alu(
                AluOp::Add,
                DataRef::Local(0),
                DataRef::Imm(1),
                DataDst::Local(0),
            );
            rx.alu(
                AluOp::Lt,
                DataRef::Local(0),
                DataRef::Imm(MESSAGES),
                DataDst::Local(8),
            );
            rx.jump_if_nonzero(DataRef::Local(8), top);
            rx.halt();
            let rx_sub = sys.subprogram("rx", rx.finish(), 64, 12);

            let dom = sys.install_domain("pipe", vec![tx_sub, rx_sub], 0);
            sys.spawn(dom, 0, Some(port.ad()));
            sys.spawn(dom, 1, Some(port.ad()));
            let outcome = sys.run_to_completion(200_000_000);
            assert_eq!(outcome, RunOutcome::Stopped);
            let stats = sys.space.port(port.object()).unwrap().stats;
            PortThroughput {
                capacity,
                discipline,
                cycles_per_message: sys.now() as f64 / MESSAGES as f64,
                blocked_sends: stats.blocked_sends,
                blocked_receives: stats.blocked_receives,
            }
        })
        .collect()
}

/// One point of the threaded port-throughput comparison: the same
/// contended-port workload with the per-port rings armed and with every
/// operation on the locked rendezvous path.
#[derive(Debug, Clone, Copy)]
pub struct PortQueuePoint {
    /// Producer/consumer pairs (host threads = 2 × pairs).
    pub pairs: u32,
    /// Wall-clock microseconds with the port rings on.
    pub queued_wall_us: u64,
    /// Wall-clock microseconds with every port op on the locked path.
    pub locked_wall_us: u64,
    /// locked / queued wall-clock ratio (> 1.0 = the ring wins).
    pub speedup: f64,
    /// End-to-end messages per second with the rings on.
    pub queued_msgs_per_sec: f64,
    /// End-to-end messages per second on the locked path.
    pub locked_msgs_per_sec: f64,
    /// System errors across both runs (must be zero).
    pub system_errors: u64,
}

/// Builds the contended-port workload: `pairs` producers and `pairs`
/// consumers, all sharing ONE FIFO port of the given capacity. Each
/// producer sends `messages` keyed messages; each consumer receives
/// `messages` and does a little per-message work. The logical outcome
/// is schedule-independent (every message is received exactly once), so
/// the deterministic runner gives the exact simulated cost and the
/// threaded runner gives host throughput.
pub fn port_pipeline_system(pairs: u32, capacity: u32, messages: u64, shards: u32) -> System {
    let mut cfg = SystemConfig::small()
        .with_processors(pairs * 2)
        .with_shards(shards);
    cfg.data_bytes *= shards;
    cfg.access_slots *= shards;
    cfg.table_limit *= shards;
    let mut sys = System::new(&cfg);
    let root = sys.space.root_sro();
    let port = create_port(&mut sys.space, root, capacity, PortDiscipline::Fifo).unwrap();
    sys.anchor(port.ad());

    let mut tx = ProgramBuilder::new();
    let top = tx.new_label();
    tx.mov(DataRef::Imm(0), DataDst::Local(0));
    tx.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 5);
    tx.bind(top);
    tx.send_keyed(CTX_SLOT_ARG as u16, 5, DataRef::Local(0));
    tx.work(30);
    tx.alu(
        AluOp::Add,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    tx.alu(
        AluOp::Lt,
        DataRef::Local(0),
        DataRef::Imm(messages),
        DataDst::Local(8),
    );
    tx.jump_if_nonzero(DataRef::Local(8), top);
    tx.halt();
    let tx_sub = sys.subprogram("tx", tx.finish(), 64, 8);

    let mut rx = ProgramBuilder::new();
    let top = rx.new_label();
    rx.mov(DataRef::Imm(0), DataDst::Local(0));
    rx.bind(top);
    rx.receive(CTX_SLOT_ARG as u16, 6);
    rx.work(30);
    rx.alu(
        AluOp::Add,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    rx.alu(
        AluOp::Lt,
        DataRef::Local(0),
        DataRef::Imm(messages),
        DataDst::Local(8),
    );
    rx.jump_if_nonzero(DataRef::Local(8), top);
    rx.halt();
    let rx_sub = sys.subprogram("rx", rx.finish(), 64, 12);

    let dom = sys.install_domain("pipe", vec![tx_sub, rx_sub], 0);
    for _ in 0..pairs {
        sys.spawn(dom, 0, Some(port.ad()));
        sys.spawn(dom, 1, Some(port.ad()));
    }
    sys
}

/// C7 threaded: multi-thread throughput of one contended port, rings on
/// vs. rings off, on real host threads. Also returns the deterministic
/// simulated cycles per message for the same construction (measured
/// with the rings off; the rings are cycle-neutral by construction and
/// `typed_untyped_diff` asserts it, so one number describes both arms).
pub fn c7_port_threaded(
    pair_counts: &[u32],
    capacity: u32,
    messages: u64,
    shards: u32,
) -> (Vec<PortQueuePoint>, f64) {
    use std::time::Instant;
    let points = pair_counts
        .iter()
        .map(|&pairs| {
            let total_msgs = u64::from(pairs) * messages;
            // Unbounded step caps, as in C3: the count includes idle
            // dispatch spins, so no finite budget is schedule-independent.
            let t0 = Instant::now();
            let (_, queued) = i432_sim::run_threaded_with_opts(
                port_pipeline_system(pairs, capacity, messages, shards),
                u64::MAX,
                true,
                true,
            );
            let queued_wall = t0.elapsed();
            assert!(queued.completed, "queued run must finish: {queued:?}");
            let t1 = Instant::now();
            let (_, locked) = i432_sim::run_threaded_with_opts(
                port_pipeline_system(pairs, capacity, messages, shards),
                u64::MAX,
                true,
                false,
            );
            let locked_wall = t1.elapsed();
            assert!(locked.completed, "locked run must finish: {locked:?}");
            PortQueuePoint {
                pairs,
                queued_wall_us: queued_wall.as_micros() as u64,
                locked_wall_us: locked_wall.as_micros() as u64,
                speedup: locked_wall.as_secs_f64() / queued_wall.as_secs_f64(),
                queued_msgs_per_sec: total_msgs as f64 / queued_wall.as_secs_f64(),
                locked_msgs_per_sec: total_msgs as f64 / locked_wall.as_secs_f64(),
                system_errors: queued.system_errors + locked.system_errors,
            }
        })
        .collect();

    // Deterministic reference cost (exact on every host).
    let det_pairs = pair_counts.first().copied().unwrap_or(1);
    let mut sys = port_pipeline_system(det_pairs, capacity, messages, shards);
    let outcome = sys.run_to_completion(2_000_000_000);
    assert_eq!(outcome, RunOutcome::Stopped);
    let det_cycles_per_message = sys.now() as f64 / (u64::from(det_pairs) * messages) as f64;
    (points, det_cycles_per_message)
}

// ---------------------------------------------------------------------------
// C8 — scheduling policies over the basic process manager (paper §6.1).
// ---------------------------------------------------------------------------

/// One policy's fairness outcome.
#[derive(Debug, Clone)]
pub struct SchedulingOutcome {
    /// Policy label.
    pub policy: &'static str,
    /// Per-process cycles consumed at the checkpoint, in spawn order.
    pub progress: Vec<u64>,
    /// max/min progress ratio (1.0 = perfectly fair).
    pub unfairness: f64,
}

/// Overcommitted spinners under the three policies.
pub fn c8_schedulers() -> Vec<SchedulingOutcome> {
    use imax::{Imax, ImaxConfig, SchedulingChoice};
    const SPINNERS: usize = 4;
    const BUDGET: u64 = 120_000;

    let spin = |os: &mut Imax| {
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.bind(top);
        p.work(400);
        p.jump(top);
        let sub = os.sys.subprogram("spin", p.finish(), 64, 8);
        os.sys.install_domain("spinners", vec![sub], 0)
    };

    let mut out = Vec::new();

    // Null policy with skewed priorities: the urgent process hogs.
    {
        let cfg = ImaxConfig {
            scheduling: SchedulingChoice::Null,
            gc: None,
            ..ImaxConfig::development()
        };
        let mut os = Imax::boot(&cfg);
        let dom = spin(&mut os);
        let procs: Vec<_> = (0..SPINNERS)
            .map(|i| {
                let p = os.spawn_program(dom, 0, None);
                // Misused dispatching parameters (the paper's warning).
                os.sys.space.process_mut(p).unwrap().priority = (10 + 60 * i) as u8;
                os.sys.space.process_mut(p).unwrap().timeslice = 5_000;
                os.sys.space.process_mut(p).unwrap().slice_remaining = 5_000;
                p
            })
            .collect();
        let _ = os.run(BUDGET);
        let progress: Vec<u64> = procs
            .iter()
            .map(|p| os.sys.space.process(*p).unwrap().total_cycles)
            .collect();
        let unfairness = *progress.iter().max().unwrap() as f64
            / (*progress.iter().min().unwrap()).max(1) as f64;
        out.push(SchedulingOutcome {
            policy: "null (skewed priorities)",
            progress,
            unfairness,
        });
    }

    // Round robin: equal quanta, equal progress.
    {
        let cfg = ImaxConfig {
            scheduling: SchedulingChoice::RoundRobin { quantum: 5_000 },
            gc: None,
            ..ImaxConfig::development()
        };
        let mut os = Imax::boot(&cfg);
        let dom = spin(&mut os);
        let procs: Vec<_> = (0..SPINNERS)
            .map(|_| os.spawn_program(dom, 0, None))
            .collect();
        let _ = os.run(BUDGET);
        let progress: Vec<u64> = procs
            .iter()
            .map(|p| os.sys.space.process(*p).unwrap().total_cycles)
            .collect();
        let unfairness = *progress.iter().max().unwrap() as f64
            / (*progress.iter().min().unwrap()).max(1) as f64;
        out.push(SchedulingOutcome {
            policy: "round-robin",
            progress,
            unfairness,
        });
    }

    // Fair share with weights 1,1,2,4: progress tracks weights.
    {
        let cfg = ImaxConfig {
            scheduling: SchedulingChoice::FairShare,
            gc: None,
            ..ImaxConfig::development()
        };
        let mut os = Imax::boot(&cfg);
        let dom = spin(&mut os);
        let weights = [1u64, 1, 2, 4];
        let procs: Vec<_> = weights
            .iter()
            .map(|w| {
                let p = os.spawn_weighted(dom, 0, None, *w);
                os.sys.space.process_mut(p).unwrap().timeslice = 2_000;
                os.sys.space.process_mut(p).unwrap().slice_remaining = 2_000;
                p
            })
            .collect();
        // The controller needs frequent rebalances relative to the
        // quantum; interleave short bursts with service passes.
        for _ in 0..(BUDGET / 200) {
            let _ = os.sys.run_to_quiescence(200);
            let _ = os.service_pass();
        }
        let progress: Vec<u64> = procs
            .iter()
            .map(|p| os.sys.space.process(*p).unwrap().total_cycles)
            .collect();
        let unfairness = *progress.iter().max().unwrap() as f64
            / (*progress.iter().min().unwrap()).max(1) as f64;
        out.push(SchedulingOutcome {
            policy: "fair-share (weights 1,1,2,4)",
            progress,
            unfairness,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// C9 — swapping vs non-swapping (paper §6.2).
// ---------------------------------------------------------------------------

/// C9 results.
#[derive(Debug, Clone, Copy)]
pub struct SwappingOutcome {
    /// Objects in the working set.
    pub working_set: u32,
    /// Fraction of the set that fits in memory (percent).
    pub resident_percent: u32,
    /// Swap-outs performed.
    pub swap_outs: u64,
    /// Swap-ins performed.
    pub swap_ins: u64,
    /// Simulated device-transfer cycles consumed.
    pub transfer_cycles: u64,
    /// Slowdown vs the fully-resident run (host-side sweep loop).
    pub slowdown: f64,
}

/// Round-robin touches over an oversubscribed working set.
pub fn c9_swapping(working_set: u32, resident_fraction: f64, sweeps: u32) -> SwappingOutcome {
    use imax_storage::{create_sro, SroQuota, StorageManager, SwappingManager};
    let obj_bytes = 512u32;
    let resident = ((working_set as f64 * resident_fraction) as u32).max(2);
    let run = |quota_objs: u32| -> (u64, u64, u64) {
        let mut sys = System::new(&SystemConfig::default());
        let root = sys.space.root_sro();
        let sro = create_sro(
            &mut sys.space,
            root,
            i432_arch::Level(0),
            SroQuota {
                data_bytes: quota_objs * obj_bytes,
                access_slots: working_set * 2 + 16,
            },
        )
        .unwrap();
        let mut mgr = SwappingManager::new();
        let mut objs = Vec::new();
        for i in 0..working_set {
            let o = mgr
                .create_object(&mut sys.space, sro, ObjectSpec::generic(obj_bytes, 0))
                .unwrap();
            let ad = sys.space.mint(o, Rights::READ | Rights::WRITE);
            sys.space.write_u64(ad, 0, i as u64).ok();
            if sys.space.entry(o).unwrap().desc.absent {
                // Freshly evicted before we wrote: bring back and write.
                mgr.ensure_resident(&mut sys.space, o).unwrap();
                sys.space.write_u64(ad, 0, i as u64).unwrap();
            }
            objs.push((o, ad));
        }
        // Sweep the set.
        for _ in 0..sweeps {
            for (i, (o, ad)) in objs.iter().enumerate() {
                if sys.space.entry(*o).unwrap().desc.absent {
                    mgr.ensure_resident(&mut sys.space, *o).unwrap();
                }
                assert_eq!(sys.space.read_u64(*ad, 0).unwrap(), i as u64);
            }
        }
        let st = mgr.stats();
        (st.swap_outs, st.swap_ins, mgr.drain_cycles())
    };
    let (swap_outs, swap_ins, transfer_cycles) = run(resident);
    let (_, _, baseline_cycles) = run(working_set + 4);
    // Slowdown model: each touch performs a nominal 2000 cycles of
    // computation (a compute:transfer ratio assumption, stated in
    // EXPERIMENTS.md); device transfers add on top.
    let touch_cost = (working_set as u64) * (sweeps as u64) * 2000;
    let slowdown = (touch_cost + transfer_cycles) as f64 / (touch_cost + baseline_cycles) as f64;
    SwappingOutcome {
        working_set,
        resident_percent: (resident_fraction * 100.0) as u32,
        swap_outs,
        swap_ins,
        transfer_cycles,
        slowdown,
    }
}

// ---------------------------------------------------------------------------
// C10 — destruction filters recover lost objects (paper §8.2).
// ---------------------------------------------------------------------------

/// C10 results.
#[derive(Debug, Clone, Copy)]
pub struct FilterOutcome {
    /// Drives in the pool.
    pub drives: usize,
    /// Handles leaked by clients.
    pub leaked: usize,
    /// Drives recovered through the destruction filter.
    pub recovered: u32,
    /// Drives free after recovery.
    pub free_after: usize,
    /// Drives free in the no-filter control arm (lost forever).
    pub free_without_filter: usize,
}

/// The tape-drive experiment, with and without filters.
pub fn c10_destruction_filter(drives: usize, leaked: usize) -> FilterOutcome {
    use imax_io::TapePool;
    // Arm 1: with filters (the pool binds one automatically).
    let (recovered, free_after) = {
        let mut sys = System::new(&SystemConfig::small());
        let root = sys.space.root_sro();
        let mut pool = TapePool::new(&mut sys.space, root, drives).unwrap();
        sys.anchor(sys.space.mint(pool.tdo(), Rights::NONE));
        sys.anchor(sys.space.mint(pool.filter_port(), Rights::NONE));
        for _ in 0..leaked {
            let _lost = pool.acquire(&mut sys.space, root).unwrap();
        }
        let mut gc = Collector::new();
        gc.collect_full(&mut sys.space).unwrap();
        let recovered = pool.recover_lost(&mut sys.space).unwrap();
        (recovered, pool.free_count())
    };
    // Arm 2: a plain type manager, no filter — the drives stay lost.
    let free_without_filter = {
        let mut sys = System::new(&SystemConfig::small());
        let root = sys.space.root_sro();
        let mgr = imax_typemgr::TypeManager::new(&mut sys.space, root, "bare_drive").unwrap();
        sys.anchor(sys.space.mint(mgr.tdo(), Rights::NONE));
        let mut free = drives;
        for _ in 0..leaked {
            let _lost = mgr.create_instance(&mut sys.space, root, 16, 0).unwrap();
            free -= 1; // the pool would mark it allocated
        }
        let mut gc = Collector::new();
        gc.collect_full(&mut sys.space).unwrap();
        gc.collect_full(&mut sys.space).unwrap();
        // The handles are reclaimed, but nobody told the pool: the
        // drives remain allocated forever.
        free
    };
    FilterOutcome {
        drives,
        leaked,
        recovered,
        free_after,
        free_without_filter,
    }
}

// ---------------------------------------------------------------------------
// C11 — multi-tenant scale over the two-level object directory.
// ---------------------------------------------------------------------------

/// C11 results: a large population of lightweight client processes is
/// booted in waves, each sending one request to a Zipf-chosen shared
/// service through a typed port. Terminated clients are retired and
/// collected between waves, so the demand-grown object directory keeps
/// the footprint bounded by recycling slots instead of growing with the
/// cumulative population. Every field except the wall clocks is a
/// simulated, bit-exact measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiTenant {
    /// Client processes booted over the whole run.
    pub processes: u64,
    /// Shared services (one typed `u64` port + one accumulator each).
    pub services: u32,
    /// Clients per boot wave.
    pub wave_size: u32,
    /// Waves run.
    pub waves: u32,
    /// Requests delivered across all services (must equal `processes`).
    pub requests: u64,
    /// Requests into the most popular service (Zipf rank 1).
    pub req_top1: u64,
    /// Requests into the eight most popular services.
    pub req_top8: u64,
    /// Objects created across the run (space counter).
    pub objects_created: u64,
    /// Table slots ever carved — the directory's dense high-water mark,
    /// summed over shards. Stays near one wave's worth, not the
    /// population's: the scale claim in one number.
    pub capacity_used: u32,
    /// Peak live objects, sampled at wave boundaries.
    pub live_peak: u32,
    /// Live objects after the final collection.
    pub live_final: u32,
    /// Peak allocated directory leaf pages (all shards).
    pub leaf_pages_peak: u32,
    /// Allocated leaf pages at the end (pages are never freed).
    pub leaf_pages_final: u32,
    /// Objects the collector reclaimed between waves.
    pub reclaimed: u64,
    /// Simulated makespan of the whole run.
    pub makespan_cycles: u64,
}

/// Boots `processes` one-shot clients in waves of `wave_size`, each
/// sending a single request to one of `services` shared services picked
/// from an integer Zipf(1) distribution seeded with `seed`.
pub fn c11_multi_tenant(processes: u64, services: u32, wave_size: u32, seed: u64) -> MultiTenant {
    use i432_arch::SpaceMut;
    use imax_ipc::{PortMessage, TypedPort};
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    assert!(
        services >= 8,
        "the report keys cover the top eight services"
    );
    assert!(
        (1..=1800).contains(&wave_size),
        "a wave (plus the service fleet) must fit the system root directory"
    );

    const SHARDS: u32 = 4;
    let mut cfg = SystemConfig::small().with_processors(4).with_shards(SHARDS);
    // Arenas are sized for one wave plus the service fleet, NOT for the
    // whole population: between waves the terminated clients are retired
    // and collected, so their table slots, data and access parts recycle.
    cfg.data_bytes = 512 * 1024 * SHARDS;
    cfg.access_slots = 32 * 1024 * SHARDS;
    cfg.table_limit = 8 * i432_arch::object_table::LEAF_ENTRIES * SHARDS;
    cfg.dispatch_capacity = (wave_size + services + 16).next_power_of_two();
    let mut sys = System::new(&cfg);
    let root = sys.space.root_sro();

    // Zipf(1) over service ranks in pure integer arithmetic — no libm,
    // so the committed baseline is bit-identical on every host. The
    // whole assignment is drawn up front: the per-wave demand it implies
    // sizes each service's port so a wave can never overflow the port's
    // bounded waiting area (backpressure is C7's experiment, not this
    // one — here a fault would silently drop requests).
    let mut cum = Vec::with_capacity(services as usize);
    let mut total = 0u64;
    for k in 1..=u64::from(services) {
        total += (1u64 << 32) / k;
        cum.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let assign: Vec<u32> = (0..processes)
        .map(|_| {
            let r = rng.random_range(0u64..total);
            cum.partition_point(|&c| c <= r) as u32
        })
        .collect();
    let mut port_capacity = vec![1u32; services as usize];
    for wave in assign.chunks(wave_size as usize) {
        let mut demand = vec![0u32; services as usize];
        for &k in wave {
            demand[k as usize] += 1;
        }
        for (cap, d) in port_capacity.iter_mut().zip(&demand) {
            *cap = (*cap).max(d + 1);
        }
    }

    // Shared services: a typed u64 port and an accumulator cell each.
    // The loop is Figure 2's receive side — take a request, drop the
    // message AD, bump the poked accumulator (context slot 5).
    let mut sp = ProgramBuilder::new();
    let top = sp.new_label();
    sp.bind(top);
    sp.receive(CTX_SLOT_ARG as u16, 6);
    sp.null_ad(6);
    sp.mov(DataRef::Field(5, 0), DataDst::Local(0));
    sp.alu(
        AluOp::Add,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    sp.mov(DataRef::Local(0), DataDst::Field(5, 0));
    sp.jump(top);
    let svc_sub = sys.subprogram("service", sp.finish(), 64, 8);
    let svc_dom = sys.install_domain("services", vec![svc_sub], 0);

    let mut ports: Vec<TypedPort<u64>> = Vec::new();
    let mut cells = Vec::new();
    for &cap in &port_capacity {
        let port = TypedPort::<u64>::from_port(
            create_port(&mut sys.space, root, cap, PortDiscipline::Fifo).unwrap(),
        );
        sys.anchor(port.as_port().ad());
        let cell = sys
            .space
            .create_object(root, ObjectSpec::generic(8, 0))
            .unwrap();
        let cell_ad = sys.space.mint(cell, Rights::READ | Rights::WRITE);
        let svc = sys.spawn(svc_dom, 0, Some(port.as_port().ad()));
        let ctx = sys
            .space
            .load_ad_hw(svc, i432_arch::sysobj::PROC_SLOT_CONTEXT)
            .unwrap()
            .unwrap()
            .obj;
        sys.space
            .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE + 1, Some(cell_ad))
            .unwrap();
        sys.mark_service(svc);
        ports.push(port);
        cells.push(cell_ad);
    }

    // One lightweight client: allocate a typed message, send it to the
    // service the spawn argument names, exit.
    let mut cp = ProgramBuilder::new();
    cp.create_object(
        CTX_SLOT_SRO as u16,
        DataRef::Imm(<u64 as PortMessage>::DATA_LEN as u64),
        DataRef::Imm(0),
        5,
    );
    cp.send(CTX_SLOT_ARG as u16, 5);
    cp.halt();
    let client_sub = sys.subprogram("client", cp.finish(), 32, 8);
    let client_dom = sys.install_domain("clients", vec![client_sub], 0);

    let mut collector = Collector::new();
    let mut booted = 0u64;
    let mut waves = 0u32;
    let mut live_peak = 0u32;
    let mut leaf_pages_peak = 0u32;
    while booted < processes {
        let wave = wave_size.min((processes - booted) as u32);
        for i in 0..u64::from(wave) {
            let k = assign[(booted + i) as usize] as usize;
            sys.spawn(client_dom, 0, Some(ports[k].as_port().ad()));
        }
        booted += u64::from(wave);
        waves += 1;
        let outcome = sys.run_to_completion(200_000_000);
        assert_eq!(outcome, RunOutcome::Stopped, "wave {waves} did not finish");
        // Drain the service ports, then retire the wave: its slots are
        // exactly what the next wave grows back into.
        let drained = sys.run_to_quiescence(200_000_000);
        assert_eq!(drained, RunOutcome::Quiescent, "wave {waves} did not drain");
        live_peak = live_peak.max(SpaceMut::live_count(&sys.space));
        leaf_pages_peak = leaf_pages_peak.max(SpaceMut::leaf_pages(&sys.space));
        let retired = sys.retire_terminated();
        assert_eq!(retired, wave, "every wave client must retire");
        // Two full cycles, not one: the hardware gray bit shades on
        // every AD move whether or not a collection is running, so after
        // a wave the retired clients sit Gray. The first cycle's
        // verification scan blackens them (zero reclaimed) and its sweep
        // whitens; only the second cycle — with the mutator stopped, so
        // nothing re-shades — actually reclaims the wave and returns its
        // table slots and arena runs before the next wave allocates.
        collector.collect_full(&mut sys.space).unwrap();
        collector.collect_full(&mut sys.space).unwrap();
    }

    let per_service: Vec<u64> = cells
        .iter()
        .map(|ad| sys.space.read_u64(*ad, 0).unwrap())
        .collect();
    let requests: u64 = per_service.iter().sum();
    assert_eq!(requests, booted, "every request must be delivered");

    MultiTenant {
        processes: booted,
        services,
        wave_size,
        waves,
        requests,
        req_top1: per_service[0],
        req_top8: per_service.iter().take(8).sum(),
        objects_created: sys.space.stats().objects_created,
        capacity_used: (0..SHARDS)
            .map(|k| sys.space.shard(k).table.capacity_used())
            .sum(),
        live_peak,
        live_final: SpaceMut::live_count(&sys.space),
        leaf_pages_peak,
        leaf_pages_final: SpaceMut::leaf_pages(&sys.space),
        reclaimed: collector.stats.reclaimed,
        makespan_cycles: sys.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_matches_paper_within_tolerance() {
        let r = c1_domain_switch(50);
        assert!((60.0..=70.0).contains(&r.call_us), "{r:?}");
        assert!(r.pair_avg > r.call_cycles as f64, "{r:?}");
    }

    #[test]
    fn c2_small_segment_near_80us() {
        let rows = c2_allocation();
        let small = &rows[0];
        assert!((74.0..=86.0).contains(&small.us), "{small:?}");
        assert!(rows.last().unwrap().cycles > small.cycles);
    }

    #[test]
    fn c4_typed_equals_untyped_checked_costs_more() {
        let r = c4_port_typing(50);
        // Same message type => bit-identical program => identical cost.
        assert_eq!(r.untyped_cycles_per_op, r.typed_u64_cycles_per_op, "{r:?}");
        // A larger message type differs only by the one-time message
        // allocation (zero-fill), amortized over the loop: the port
        // *operations* are identical.
        assert!(
            (r.untyped_cycles_per_op - r.typed_record_cycles_per_op).abs() < 1.0,
            "{r:?}"
        );
        assert!(r.checked_cycles_per_op > r.untyped_cycles_per_op, "{r:?}");
    }

    #[test]
    fn c6_bulk_beats_gc() {
        let r = c6_local_heaps(64);
        assert!(r.bulk_cycles_per_object < r.gc_cycles_per_object, "{r:?}");
    }

    #[test]
    fn c11_conserves_requests_and_bounds_the_directory() {
        let r = c11_multi_tenant(3_000, 16, 600, 42);
        assert_eq!(r.waves, 5, "{r:?}");
        assert_eq!(r.requests, 3_000, "{r:?}");
        // Zipf(1) over 16 ranks: rank 1 draws ~30% of the traffic and
        // the top eight about 80%.
        assert!(r.req_top8 > r.requests / 2, "{r:?}");
        assert!(r.req_top1 > r.requests / 5, "{r:?}");
        assert!(r.req_top1 < r.requests / 2, "{r:?}");
        // The directory recycles retired slots: the dense high-water
        // mark tracks one wave, not the cumulative population.
        assert!(u64::from(r.capacity_used) < r.objects_created / 2, "{r:?}");
        assert!(
            r.reclaimed >= 2 * (r.processes - u64::from(r.wave_size)),
            "{r:?}"
        );
        assert_eq!(r.leaf_pages_final, r.leaf_pages_peak, "pages never free");
        assert!(
            r.leaf_pages_peak
                <= r.capacity_used
                    .div_ceil(i432_arch::object_table::LEAF_ENTRIES)
                    + 4,
            "{r:?}"
        );
    }

    #[test]
    fn c11_is_deterministic() {
        let a = c11_multi_tenant(1_000, 8, 500, 7);
        let b = c11_multi_tenant(1_000, 8, 500, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn c10_filters_recover_everything() {
        let r = c10_destruction_filter(4, 3);
        assert_eq!(r.recovered, 3);
        assert_eq!(r.free_after, 4);
        assert_eq!(r.free_without_filter, 1);
    }
}
