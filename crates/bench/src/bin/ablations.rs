//! Ablation harness: prints the design-choice sensitivity tables
//! (A1–A4 of `imax_bench::ablations`).
//!
//! Run with: `cargo run --release -p imax-bench --bin ablations`

use imax_bench::*;

fn main() {
    println!("iMAX-432 ablations (deterministic)");

    println!();
    println!("== A1: CALL's context-allocation fast path =======================");
    let r = a1_context_fast_path();
    println!(
        "   with fast path (shipped):    {:>7.2} us per domain switch",
        r.with_fast_path_us
    );
    println!(
        "   via general CREATE OBJECT:   {:>7.2} us per domain switch",
        r.without_fast_path_us
    );
    println!("   (the paper's 65us switch + 80us allocation numbers force the fast path)");

    println!();
    println!("== A2: collector increment granularity ===========================");
    println!(
        "   {:<12} {:>12} {:>16} {:>12}",
        "sweep chunk", "total (cy)", "max increment", "increments"
    );
    for row in a2_gc_granularity(&[4, 16, 64, 256, 4096]) {
        println!(
            "   {:<12} {:>12} {:>16} {:>12}",
            row.sweep_chunk, row.total_cycles, row.max_increment, row.increments
        );
    }
    println!("   (smaller chunks = finer daemon preemption at slightly higher total cost)");

    println!();
    println!("== A3: SRO free-list fit policy ===================================");
    println!(
        "   {:<12} {:>16} {:>12} {:>14}",
        "policy", "frag failures", "final runs", "largest free"
    );
    for row in a3_fit_policy(42, 20_000) {
        println!(
            "   {:<12} {:>16} {:>12} {:>14}",
            format!("{:?}", row.policy),
            row.frag_failures,
            row.final_runs,
            row.final_largest
        );
    }

    println!();
    println!("== A4: gray-bit write-barrier duty cycle ==========================");
    println!(
        "   {:<22} {:>10} {:>14}",
        "stores per object", "stores", "shaded"
    );
    for fanout in [1u32, 2, 4, 8] {
        let r = a4_barrier_duty(fanout);
        println!(
            "   {:<22} {:>10} {:>13.1}%",
            fanout, r.stores, r.shade_percent
        );
    }
    println!("   (only the first store of a white object shades: the barrier is cheap)");
}
