//! Compares a freshly generated `BENCH_*.json` against the committed
//! baseline and classifies every drift.
//!
//! ```text
//! bench_diff <baseline.json> <fresh.json>
//! ```
//!
//! Two kinds of numbers live in the bench JSONs, with opposite
//! tolerance:
//!
//! * **Deterministic** values — anything whose key mentions `cycles`,
//!   plus structural configuration (`bench`, `shards`, `jobs`, `iters`,
//!   `threads`, `data_bytes`, `access_slots`, `system_errors`). These
//!   are simulated measurements, exactly reproducible on any machine:
//!   *any* drift is a real interpreter or cost-model change and fails
//!   the comparison (exit code 1).
//! * **Host-dependent** values — wall-clock keys (`*_us`), speedups
//!   derived from wall clocks, `host_cores`, and check/reason/replay
//!   strings. These legitimately vary across machines and runs, so a
//!   drift only prints a warning. (Simulated `us` values are derived
//!   from cycles at 8 MHz, so their exactness is already covered by the
//!   cycle keys.)
//!
//! Keys present in one file but not the other fail when deterministic,
//! warn otherwise — a renamed or dropped metric should never slip
//! through CI silently.
//!
//! The JSON reader below is deliberately minimal (objects, arrays,
//! strings, numbers, booleans, null — everything the bench harnesses
//! emit); the workspace vendors no JSON crate and this tool must not
//! grow one.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// A leaf value in a bench JSON document.
#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl std::fmt::Display for Leaf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Leaf::Num(n) => write!(f, "{n}"),
            Leaf::Str(s) => write!(f, "{s:?}"),
            Leaf::Bool(b) => write!(f, "{b}"),
            Leaf::Null => write!(f, "null"),
        }
    }
}

/// A parsed JSON value.
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Leaf(Leaf),
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.s.get(self.i) else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.s.get(self.i) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    out.push(match e {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        // \uXXXX and the rest never appear in bench
                        // output; pass the raw character through.
                        other => other as char,
                    });
                }
                other => out.push(other as char),
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| self.err("bad number"))
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => {
                self.i += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    fields.push((key, self.parse_value()?));
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Object(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b'"' => Ok(Json::Leaf(Leaf::Str(self.parse_string()?))),
            b't' if self.eat_literal("true") => Ok(Json::Leaf(Leaf::Bool(true))),
            b'f' if self.eat_literal("false") => Ok(Json::Leaf(Leaf::Bool(false))),
            b'n' if self.eat_literal("null") => Ok(Json::Leaf(Leaf::Null)),
            _ => Ok(Json::Leaf(Leaf::Num(self.parse_number()?))),
        }
    }
}

fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Flattens a document into `path -> leaf` (paths like
/// `points[2].striped_wall_us` or `c1.call_cycles`).
fn flatten(prefix: &str, v: &Json, out: &mut BTreeMap<String, Leaf>) {
    match v {
        Json::Object(fields) => {
            for (k, child) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, child, out);
            }
        }
        Json::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), child, out);
            }
        }
        Json::Leaf(l) => {
            out.insert(prefix.to_string(), l.clone());
        }
    }
}

/// Whether a flattened path names a deterministic (exact-compare) value.
fn is_deterministic(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.contains("cycles") {
        return true;
    }
    matches!(
        leaf,
        "bench"
            | "shards"
            | "jobs"
            | "iters"
            | "threads"
            | "system_errors"
            | "data_bytes"
            | "access_slots"
            // c11_multi_tenant: the whole run is simulated, so its
            // population, traffic shape and directory accounting are
            // exact on every host.
            | "processes"
            | "services"
            | "wave_size"
            | "waves"
            | "requests"
            | "req_top1"
            | "req_top8"
            | "objects_created"
            | "capacity_used"
            | "live_peak"
            | "live_final"
            | "leaf_pages_peak"
            | "leaf_pages_final"
            | "reclaimed"
            // c5_gc: the populations are fixed by the harness and the
            // collector must reclaim exactly the lost one at every
            // shard width, on every host.
            | "live"
            | "garbage"
            | "gc_errors"
            // c7_port: the port configuration and workload shape are
            // structural; the wall-clock throughputs and the
            // queue-check verdict stay host-dependent.
            | "pairs"
            | "capacity"
            | "messages_per_producer"
            // c13_filing: the whole protocol is simulated, so the
            // request, transfer, device and swap accounting is exact
            // on every host; only the wall-clock points stay
            // host-dependent.
            | "clients"
            | "files"
            | "ops_per_client"
            | "workers"
            | "requests_served"
            | "bytes_moved"
            | "device_errors"
            | "protocol_errors"
            | "device_completions"
            | "swap_outs"
            | "swap_ins"
    )
}

fn load(path: &str) -> Result<BTreeMap<String, Leaf>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut flat = BTreeMap::new();
    flatten("", &doc, &mut flat);
    Ok(flat)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = argv.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0u32;
    let mut warnings = 0u32;
    let mut matched = 0u32;
    let keys: std::collections::BTreeSet<&String> = baseline.keys().chain(fresh.keys()).collect();
    for key in keys {
        let exact = is_deterministic(key);
        match (baseline.get(key), fresh.get(key)) {
            (Some(b), Some(f)) if b == f => matched += 1,
            (Some(b), Some(f)) => {
                let drift = if let (Leaf::Num(bn), Leaf::Num(fn_)) = (b, f) {
                    if *bn != 0.0 {
                        format!(" ({:+.1}%)", (fn_ - bn) / bn * 100.0)
                    } else {
                        String::new()
                    }
                } else {
                    String::new()
                };
                if exact {
                    failures += 1;
                    eprintln!("FAIL {key}: baseline {b} != fresh {f}{drift} (deterministic)");
                } else {
                    warnings += 1;
                    println!("warn {key}: baseline {b} -> fresh {f}{drift} (host-dependent)");
                }
            }
            (only_b, only_f) => {
                let (side, val) = if only_b.is_some() {
                    ("only in baseline", only_b)
                } else {
                    ("only in fresh", only_f)
                };
                if exact {
                    failures += 1;
                    eprintln!("FAIL {key}: {side} ({})", val.expect("one side present"));
                } else {
                    warnings += 1;
                    println!("warn {key}: {side} ({})", val.expect("one side present"));
                }
            }
        }
    }

    println!(
        "bench_diff {baseline_path} vs {fresh_path}: {matched} matched, \
         {warnings} host-dependent drift(s), {failures} deterministic failure(s)"
    );
    if failures > 0 {
        eprintln!(
            "deterministic bench values drifted — the interpreter or cost model changed; \
             regenerate the baseline deliberately if that was intended"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
