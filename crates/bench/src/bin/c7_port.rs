//! C7 threaded variant: multi-thread throughput of one contended FIFO
//! port with the per-port lock-free rings on vs. off, written to
//! `BENCH_c7_port.json`.
//!
//! Like `c3_threaded` this harness measures *host* wall clock, so the
//! throughput numbers are machine-dependent and compared warn-only by
//! `bench_diff`. The deterministic keys — configuration, system-error
//! counts, and the simulated cycles per message of the identical
//! construction on the discrete-event runner — are exactly reproducible
//! everywhere and fail the comparison on any drift.
//!
//! Pass criteria:
//!
//! * zero system errors in every run (all hosts);
//! * the queued path at least matching the locked path at the largest
//!   pair count — only checkable with real hardware parallelism, so on
//!   hosts with fewer than 2 cores the JSON records
//!   `"queue_check": "skipped"` with an explicit machine-readable
//!   reason instead of silently passing.
//!
//! Run with: `cargo run --release -p imax-bench --bin c7_port`
//!
//! `--trace` additionally runs one 4-pair queued pass with the flight
//! recorder on and writes the counter/histogram report — fast-path
//! hits, fallbacks, drains, and the ring-occupancy histogram observed
//! at every drain — to `TRACE_c7_port_report.txt` (needs a `--features
//! trace` build; warns and continues otherwise).

use imax_bench::{c7_port_threaded, port_pipeline_system};
use std::fmt::Write as _;

const PAIRS: &[u32] = &[1, 2, 4];
const CAPACITY: u32 = 64;
const MESSAGES: u64 = 2000;
const SHARDS: u32 = 16;

/// The one-line command that reruns this benchmark exactly.
const REPLAY: &str = "cargo run --release -p imax-bench --bin c7_port";

/// Runs one traced queued pass and writes the flight-recorder counter
/// report (including the `port_queue_depth` occupancy histogram), or
/// warns when the recorder is compiled out.
fn export_trace() {
    if !i432_trace::ENABLED {
        eprintln!(
            "c7_port: --trace ignored — this binary was built without the flight \
             recorder; rebuild with: {REPLAY} --features trace -- --trace"
        );
        return;
    }
    i432_trace::reset();
    i432_trace::set_context(0, 0);
    let sys = port_pipeline_system(4, CAPACITY, MESSAGES, SHARDS);
    let (_, outcome) = i432_sim::run_threaded_with_opts(sys, u64::MAX, true, true);
    assert!(
        outcome.completed && outcome.system_errors == 0,
        "traced run failed: {outcome:?}"
    );
    let report = imax::inspect::trace_report();
    std::fs::write("TRACE_c7_port_report.txt", &report).expect("write TRACE_c7_port_report.txt");
    println!("wrote TRACE_c7_port_report.txt:\n{report}");
}

fn main() {
    let want_trace = std::env::args().skip(1).any(|a| a == "--trace");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("iMAX-432 queued-port throughput (host wall clock; machine-dependent)");
    println!(
        "   one FIFO port, capacity {CAPACITY}, {MESSAGES} messages/producer, \
         {SHARDS} shards, host cores = {host_cores}"
    );
    println!(
        "   {:<6} {:>14} {:>14} {:>14} {:>14} {:>9}",
        "pairs", "queued(us)", "locked(us)", "queued msg/s", "locked msg/s", "speedup"
    );

    let (points, det_cycles_per_message) = c7_port_threaded(PAIRS, CAPACITY, MESSAGES, SHARDS);
    for p in &points {
        println!(
            "   {:<6} {:>14} {:>14} {:>14.0} {:>14.0} {:>8.2}x",
            p.pairs,
            p.queued_wall_us,
            p.locked_wall_us,
            p.queued_msgs_per_sec,
            p.locked_msgs_per_sec,
            p.speedup
        );
    }
    println!("   deterministic cost: {det_cycles_per_message:.1} simulated cycles/message");

    let errors: u64 = points.iter().map(|p| p.system_errors).sum();
    let widest = points.last().expect("at least one pair count");

    // The ring-vs-lock comparison needs actual hardware parallelism: on
    // one core the threads only timeslice and the wall-clock ratio is
    // scheduler noise, so the check is recorded as skipped with the
    // reason, never as a silent pass.
    let (queue_check, skip_reason) = if host_cores >= 2 {
        if widest.speedup >= 1.0 {
            ("passed", None)
        } else {
            ("failed", None)
        }
    } else {
        (
            "skipped",
            Some(format!(
                "host has {host_cores} core(s); the queued-vs-locked throughput \
                 criterion needs >= 2 physical cores"
            )),
        )
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"c7_port\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"queue_check\": \"{queue_check}\",");
    match &skip_reason {
        Some(r) => {
            let _ = writeln!(json, "  \"skip_reason\": \"{r}\",");
        }
        None => {
            let _ = writeln!(json, "  \"skip_reason\": null,");
        }
    }
    let _ = writeln!(json, "  \"replay\": \"{REPLAY}\",");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"capacity\": {CAPACITY},");
    let _ = writeln!(json, "  \"messages_per_producer\": {MESSAGES},");
    let _ = writeln!(
        json,
        "  \"det_cycles_per_message\": {det_cycles_per_message:.3},"
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"pairs\": {}, \"queued_wall_us\": {}, \"locked_wall_us\": {}, \
             \"queued_msgs_per_sec_wall\": {:.0}, \"locked_msgs_per_sec_wall\": {:.0}, \
             \"speedup_vs_locked\": {:.3}, \"system_errors\": {}}}{}",
            p.pairs,
            p.queued_wall_us,
            p.locked_wall_us,
            p.queued_msgs_per_sec,
            p.locked_msgs_per_sec,
            p.speedup,
            p.system_errors,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_c7_port.json", &json).expect("write BENCH_c7_port.json");
    println!("\nwrote BENCH_c7_port.json");
    println!("replay: {REPLAY}");

    if want_trace {
        export_trace();
    }

    assert_eq!(
        errors, 0,
        "threaded port runs must be error-free; replay: {REPLAY}"
    );
    match queue_check {
        "passed" => println!(
            "pass: zero system errors; queued path {:.2}x vs locked at {} pairs",
            widest.speedup, widest.pairs
        ),
        "failed" => panic!(
            "the queued port path must at least match the locked path at {} pairs on a \
             {host_cores}-core host (got {:.2}x); replay: {REPLAY}",
            widest.pairs, widest.speedup
        ),
        _ => println!(
            "pass: zero system errors (throughput check SKIPPED: {}; got {:.2}x at {} pairs)",
            skip_reason.as_deref().unwrap_or("unknown"),
            widest.speedup,
            widest.pairs
        ),
    }
}
