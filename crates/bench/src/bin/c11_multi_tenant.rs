//! C11: multi-tenant scale over the two-level object directory, written
//! to `BENCH_c11_multi_tenant.json`.
//!
//! Boots a large population of one-shot client processes (default
//! 100 000; the nightly job passes `--processes 1000000`) in waves
//! against a fleet of shared services reached through typed ports, with
//! Zipf(1)-distributed traffic. Terminated clients are retired and
//! collected between waves, so the demand-grown directory recycles a
//! wave's slots instead of growing with the cumulative population —
//! `capacity_used` staying near one wave's worth while `processes`
//! climbs is the scale claim this harness gates.
//!
//! Every reported number except the wall clock is simulated and
//! bit-exact on any host, so `bench_diff` compares them exactly.
//!
//! Run with: `cargo run --release -p imax-bench --bin c11_multi_tenant`
//!
//! `--trace` additionally runs one small traced population with the
//! flight recorder draining into `TRACE_c11_multi_tenant.json` (needs a
//! `--features trace` build; warns and continues otherwise).

use imax_bench::c11_multi_tenant;
use std::fmt::Write as _;

const SERVICES: u32 = 64;
const WAVE_SIZE: u32 = 1500;
const SEED: u64 = 0x1432;

/// The one-line command that reruns this benchmark exactly.
const REPLAY: &str = "cargo run --release -p imax-bench --bin c11_multi_tenant";

/// Runs one small traced population and writes the merged timeline, or
/// warns when the recorder is compiled out.
fn export_trace() {
    if !i432_trace::ENABLED {
        eprintln!(
            "c11_multi_tenant: --trace ignored — this binary was built without the flight \
             recorder; rebuild with: {REPLAY} --features trace -- --trace"
        );
        return;
    }
    i432_trace::reset();
    i432_trace::set_context(0, 0);
    let r = c11_multi_tenant(10_000, SERVICES, WAVE_SIZE, SEED);
    assert_eq!(r.requests, r.processes, "traced run lost requests");
    let t = i432_trace::drain_timeline();
    std::fs::write("TRACE_c11_multi_tenant.json", t.to_json())
        .expect("write TRACE_c11_multi_tenant.json");
    println!(
        "wrote TRACE_c11_multi_tenant.json ({} events, {} dropped)",
        t.events.len(),
        t.dropped
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_trace = args.iter().any(|a| a == "--trace");
    let processes: u64 = args
        .iter()
        .position(|a| a == "--processes")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--processes takes an integer"))
        .unwrap_or(100_000);

    println!("iMAX-432 multi-tenant boot storm (simulated; deterministic)");
    println!(
        "   processes = {processes}, services = {SERVICES}, wave = {WAVE_SIZE}, \
         zipf(1) seed = {SEED:#x}"
    );

    let t0 = std::time::Instant::now();
    let r = c11_multi_tenant(processes, SERVICES, WAVE_SIZE, SEED);
    let run_wall_us = t0.elapsed().as_micros() as u64;

    println!(
        "   booted {} clients in {} waves; {} requests delivered",
        r.processes, r.waves, r.requests
    );
    println!(
        "   zipf shape: top-1 service took {} requests, top-8 took {}",
        r.req_top1, r.req_top8
    );
    println!(
        "   directory: {} objects ever created, {} table slots ever carved, \
         {} leaf pages (peak {}), live peak {}, live final {}",
        r.objects_created,
        r.capacity_used,
        r.leaf_pages_final,
        r.leaf_pages_peak,
        r.live_peak,
        r.live_final
    );
    println!(
        "   collector reclaimed {} objects between waves; makespan {} cycles; \
         host wall {} us",
        r.reclaimed, r.makespan_cycles, run_wall_us
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"c11_multi_tenant\",");
    let _ = writeln!(json, "  \"replay\": \"{REPLAY}\",");
    let _ = writeln!(json, "  \"processes\": {},", r.processes);
    let _ = writeln!(json, "  \"services\": {},", r.services);
    let _ = writeln!(json, "  \"wave_size\": {},", r.wave_size);
    let _ = writeln!(json, "  \"waves\": {},", r.waves);
    let _ = writeln!(json, "  \"requests\": {},", r.requests);
    let _ = writeln!(json, "  \"req_top1\": {},", r.req_top1);
    let _ = writeln!(json, "  \"req_top8\": {},", r.req_top8);
    let _ = writeln!(json, "  \"objects_created\": {},", r.objects_created);
    let _ = writeln!(json, "  \"capacity_used\": {},", r.capacity_used);
    let _ = writeln!(json, "  \"live_peak\": {},", r.live_peak);
    let _ = writeln!(json, "  \"live_final\": {},", r.live_final);
    let _ = writeln!(json, "  \"leaf_pages_peak\": {},", r.leaf_pages_peak);
    let _ = writeln!(json, "  \"leaf_pages_final\": {},", r.leaf_pages_final);
    let _ = writeln!(json, "  \"reclaimed\": {},", r.reclaimed);
    let _ = writeln!(json, "  \"makespan_cycles\": {},", r.makespan_cycles);
    let _ = writeln!(json, "  \"run_wall_us\": {run_wall_us}");
    json.push_str("}\n");
    std::fs::write("BENCH_c11_multi_tenant.json", &json)
        .expect("write BENCH_c11_multi_tenant.json");
    println!("\nwrote BENCH_c11_multi_tenant.json");
    println!("replay: {REPLAY}");

    if want_trace {
        export_trace();
    }

    assert_eq!(
        r.requests, r.processes,
        "every booted client's request must reach its service; replay: {REPLAY}"
    );
    // The scale claim: once the population dwarfs a wave, the directory's
    // dense high-water mark must stay wave-sized — retired slots recycle
    // instead of the table growing with the cumulative boot count.
    if r.processes >= 10 * u64::from(r.wave_size) {
        assert!(
            u64::from(r.capacity_used) < 8 * u64::from(r.wave_size),
            "table high-water {} is not wave-bounded (wave {}); replay: {REPLAY}",
            r.capacity_used,
            r.wave_size
        );
    }
    println!(
        "pass: {} requests conserved across {} waves; table high-water {} slots \
         for a {}-process population",
        r.requests, r.waves, r.capacity_used, r.processes
    );
}
