//! C13: the object-filing server — N concurrent clients driving
//! OPEN/WRITE/READ/CLOSE against the multi-worker filing service over
//! the async virtio-shaped block device — written to
//! `BENCH_c13_filing.json`.
//!
//! Two kinds of numbers, split exactly as in C3/C7/C11:
//!
//! * **Deterministic keys** — requests served, bytes moved, device
//!   completions, device/protocol error counts, swap traffic and total
//!   simulated cycles of the discrete-event run. These are exact on
//!   every host and fail `bench_diff` on any drift. Before publishing,
//!   the harness asserts two cycle-neutrality claims bit-for-bit:
//!   descriptor ring on vs. off, and typed vs. untyped device
//!   completion consumption (Figure 2 over the device path).
//! * **Host wall clock** — threaded-runner throughput per worker
//!   count; machine-dependent, compared warn-only. Every threaded run
//!   must still complete with zero errors and reproduce the
//!   deterministic per-client checksums exactly.
//!
//! Run with: `cargo run --release -p imax-bench --bin c13_filing`
//!
//! `--trace` additionally runs one threaded pass with the flight
//! recorder on and writes the counter report — `blk_submits`,
//! `blk_completions` and the `filing_request_cycles` latency histogram
//! — to `TRACE_c13_filing_report.txt` (needs a `--features trace`
//! build; warns and continues otherwise).

use imax_filing::{build_filing_system, client_checksums, FilingWorkload};
use std::fmt::Write as _;

const CLIENTS: u32 = 8;
const ITERS: u64 = 16;
const SHARDS: u32 = 4;
const SEED: u64 = 13;
const WORKER_COUNTS: &[u32] = &[1, 2, 4];
const DET_BUDGET: u64 = 500_000_000;

/// The one-line command that reruns this benchmark exactly.
const REPLAY: &str = "cargo run --release -p imax-bench --bin c13_filing";

fn workload(workers: u32, use_queue: bool, typed: bool) -> FilingWorkload {
    let mut w = FilingWorkload::small(CLIENTS, ITERS);
    w.workers = workers;
    w.shards = SHARDS;
    w.use_queue = use_queue;
    w.typed_completion = typed;
    w.seed = SEED;
    w
}

/// Deterministic run: returns `(sim_cycles, checksums, stats, swap)`.
fn run_det(
    w: &FilingWorkload,
) -> (
    u64,
    Vec<u64>,
    imax_filing::FilingStats,
    imax_storage::StorageStats,
) {
    let (mut sys, handles) = build_filing_system(w);
    let outcome = sys.run_to_completion(DET_BUDGET);
    assert!(
        matches!(
            outcome,
            i432_sim::RunOutcome::Stopped | i432_sim::RunOutcome::Quiescent
        ),
        "deterministic filing run must complete ({outcome:?}); replay: {REPLAY}"
    );
    let chk = client_checksums(&mut sys, &handles);
    (
        sys.now(),
        chk,
        handles.server.stats(),
        handles.server.swap_stats(),
    )
}

fn export_trace() {
    if !i432_trace::ENABLED {
        eprintln!(
            "c13_filing: --trace ignored — this binary was built without the flight \
             recorder; rebuild with: {REPLAY} --features trace -- --trace"
        );
        return;
    }
    i432_trace::reset();
    i432_trace::set_context(0, 0);
    let (sys, _handles) = build_filing_system(&workload(4, true, false));
    let (_, outcome) = i432_sim::run_threaded_full(sys, u64::MAX, true, true, true);
    assert!(outcome.completed, "traced run failed: {outcome:?}");
    let report = imax::inspect::trace_report();
    std::fs::write("TRACE_c13_filing_report.txt", &report)
        .expect("write TRACE_c13_filing_report.txt");
    println!("wrote TRACE_c13_filing_report.txt:\n{report}");
}

fn main() {
    let want_trace = std::env::args().skip(1).any(|a| a == "--trace");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ops_per_client = imax_filing::requests_per_client(ITERS);
    let expected_requests = u64::from(CLIENTS) * ops_per_client;

    println!("iMAX-432 object-filing server (C13)");
    println!(
        "   {CLIENTS} clients x {ops_per_client} requests (OPEN + {ITERS}x(WRITE,READ) + CLOSE), \
         {SHARDS} shards, host cores = {host_cores}"
    );

    // Deterministic arm, plus the two cycle-neutrality gates.
    let reference = workload(4, true, false);
    let (det_cycles, det_chk, stats, swap) = run_det(&reference);
    let (locked_cycles, locked_chk, _, _) = run_det(&workload(4, false, false));
    assert_eq!(
        det_cycles, locked_cycles,
        "descriptor ring on vs. off moved simulated cycles; replay: {REPLAY}"
    );
    assert_eq!(det_chk, locked_chk);
    let (typed_cycles, typed_chk, _, _) = run_det(&workload(4, true, true));
    assert_eq!(
        det_cycles, typed_cycles,
        "typed device-completion consumption moved simulated cycles (Figure 2); replay: {REPLAY}"
    );
    assert_eq!(det_chk, typed_chk);
    assert_eq!(stats.requests_served, expected_requests);
    assert_eq!(stats.protocol_errors, 0, "replay: {REPLAY}");
    assert_eq!(stats.device_errors, 0, "replay: {REPLAY}");

    println!(
        "   deterministic: {det_cycles} cycles total, {:.1} cycles/request, \
         {} bytes moved, {} device completions, {} swap-outs",
        det_cycles as f64 / expected_requests as f64,
        stats.bytes_moved,
        stats.device.completed,
        swap.swap_outs
    );
    println!("   ring on/off and typed/untyped completion arms: bit-identical");

    // Threaded arm: wall clock per worker count.
    println!(
        "   {:<8} {:>12} {:>16}",
        "workers", "wall(us)", "requests/s"
    );
    let mut points = Vec::new();
    for &workers in WORKER_COUNTS {
        let (sys, handles) = build_filing_system(&workload(workers, true, false));
        let t0 = std::time::Instant::now();
        let (mut back, outcome) = i432_sim::run_threaded_full(sys, u64::MAX, true, true, true);
        let wall = t0.elapsed();
        assert!(
            outcome.completed,
            "threaded filing run ({workers} workers) must complete ({outcome:?}); replay: {REPLAY}"
        );
        let chk = client_checksums(&mut back, &handles);
        assert_eq!(
            chk, det_chk,
            "threaded run ({workers} workers) diverged from the deterministic \
             checksums; replay: {REPLAY}"
        );
        let tstats = handles.server.stats();
        assert_eq!(tstats.requests_served, expected_requests);
        assert_eq!(tstats.protocol_errors, 0, "replay: {REPLAY}");
        assert_eq!(tstats.device_errors, 0, "replay: {REPLAY}");
        let wall_us = wall.as_micros() as u64;
        let rps = expected_requests as f64 / wall.as_secs_f64();
        println!("   {workers:<8} {wall_us:>12} {rps:>16.0}");
        points.push((workers, wall_us, rps));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"c13_filing\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"replay\": \"{REPLAY}\",");
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"files\": {CLIENTS},");
    let _ = writeln!(json, "  \"iters\": {ITERS},");
    let _ = writeln!(json, "  \"ops_per_client\": {ops_per_client},");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"requests_served\": {},", stats.requests_served);
    let _ = writeln!(json, "  \"bytes_moved\": {},", stats.bytes_moved);
    let _ = writeln!(json, "  \"device_errors\": {},", stats.device_errors);
    let _ = writeln!(json, "  \"protocol_errors\": {},", stats.protocol_errors);
    let _ = writeln!(
        json,
        "  \"device_completions\": {},",
        stats.device.completed
    );
    let _ = writeln!(json, "  \"swap_outs\": {},", swap.swap_outs);
    let _ = writeln!(json, "  \"swap_ins\": {},", swap.swap_ins);
    let _ = writeln!(json, "  \"det_cycles_total\": {det_cycles},");
    let _ = writeln!(
        json,
        "  \"det_cycles_per_request\": {:.3},",
        det_cycles as f64 / expected_requests as f64
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, (workers, wall_us, rps)) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workers\": {workers}, \"wall_us\": {wall_us}, \
             \"requests_per_sec_wall\": {rps:.0}}}{}",
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_c13_filing.json", &json).expect("write BENCH_c13_filing.json");
    println!("\nwrote BENCH_c13_filing.json");
    println!("replay: {REPLAY}");

    if want_trace {
        export_trace();
    }

    println!(
        "pass: {} requests served, zero errors, ring and typed-port arms cycle-identical",
        stats.requests_served
    );
}
