//! C3 threaded variant: wall-clock scaling of the lock-striped runner
//! against the global-lock baseline, written to `BENCH_c3_threaded.json`.
//!
//! Unlike `repro` (simulated cycles, deterministic), this harness
//! measures *host* time and is therefore machine-dependent; the JSON is
//! a baseline for regression comparisons on one machine, not a paper
//! claim. The pass criteria:
//!
//! * zero system errors in every run (all hosts);
//! * striping at least matching the global lock at 1 thread (all hosts —
//!   with the qualification and binding-register caches, a lone striped
//!   thread takes no locks on its hot path, so losing to one big mutex
//!   means the fast path regressed);
//! * striping beating the global lock by >1.5x at 4 threads — only
//!   checkable with real hardware parallelism, so on hosts with fewer
//!   than 4 cores the JSON records `"speedup_check": "skipped"` with an
//!   explicit machine-readable reason instead of silently passing;
//! * dispatch specialization (pre-decoded blocks + superinstruction
//!   fusion + inline caches) leaving the modeled cycle total bit-
//!   identical at every thread count (all hosts), and beating the plain
//!   striped runner on wall clock at 4 threads — same >= 4-core
//!   qualification, recorded as `"fusion_check": "skipped"` otherwise.
//!
//! Run with: `cargo run --release -p imax-bench --bin c3_threaded`
//!
//! `--trace` additionally runs one 4-thread striped pass with the
//! flight recorder draining into `TRACE_c3_threaded.json` (needs a
//! `--features trace` build; warns and continues otherwise — the
//! benchmark numbers themselves never depend on the recorder).

use imax_bench::{c3_fusion, c3_threaded, token_mutex_system};
use std::fmt::Write as _;

const SHARDS: u32 = 16;
const JOBS: u32 = 16;
const ITERS: u64 = 2000;

/// The one-line command that reruns this benchmark exactly.
const REPLAY: &str = "cargo run --release -p imax-bench --bin c3_threaded";

/// Runs one traced 4-thread striped pass and writes the merged
/// timeline, or warns when the recorder is compiled out.
fn export_trace() {
    if !i432_trace::ENABLED {
        eprintln!(
            "c3_threaded: --trace ignored — this binary was built without the flight \
             recorder; rebuild with: {REPLAY} --features trace -- --trace"
        );
        return;
    }
    i432_trace::reset();
    i432_trace::set_context(0, 0);
    let (sys, shared_ad, expected) = token_mutex_system(4, SHARDS, JOBS, ITERS.min(200));
    // Unbounded like the measured runs above: the step count includes
    // idle dispatch spins of token-starved GDPs, so no finite total-step
    // cap is schedule-independent; the workload itself terminates.
    let (mut sys, outcome) = i432_sim::run_threaded(sys, u64::MAX);
    assert!(
        outcome.completed && outcome.system_errors == 0,
        "traced run failed: {outcome:?}"
    );
    assert_eq!(sys.space.read_u64(shared_ad, 0).unwrap(), expected);
    let t = i432_trace::drain_timeline();
    std::fs::write("TRACE_c3_threaded.json", t.to_json()).expect("write TRACE_c3_threaded.json");
    println!(
        "wrote TRACE_c3_threaded.json ({} events, {} dropped)",
        t.events.len(),
        t.dropped
    );
}

fn main() {
    let want_trace = std::env::args().skip(1).any(|a| a == "--trace");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("iMAX-432 threaded-runner scaling (host wall clock; machine-dependent)");
    println!("   shards = {SHARDS}, jobs = {JOBS}, {ITERS} work iterations per job");
    println!("   host cores = {host_cores}");
    println!(
        "   {:<8} {:>14} {:>16} {:>9}",
        "threads", "striped(us)", "global-lock(us)", "speedup"
    );

    let points = c3_threaded(&[1, 2, 4, 8], SHARDS, JOBS, ITERS);
    for p in &points {
        println!(
            "   {:<8} {:>14} {:>16} {:>8.2}x",
            p.threads, p.striped_wall_us, p.global_lock_wall_us, p.speedup
        );
    }

    println!();
    println!("dispatch specialization (fused superinstructions + inline caches vs. plain striped)");
    println!(
        "   {:<8} {:>12} {:>14} {:>9}",
        "threads", "fused(us)", "unfused(us)", "speedup"
    );
    let fusion_points = c3_fusion(&[1, 2, 4, 8], SHARDS, JOBS, ITERS);
    for p in &fusion_points {
        println!(
            "   {:<8} {:>12} {:>14} {:>8.2}x",
            p.threads, p.fused_wall_us, p.unfused_wall_us, p.speedup
        );
        // Bit-identity is a hard criterion on every host: fusion is a
        // dispatch specialization, so the modeled cycle total must not
        // move by a single cycle at any thread count.
        assert_eq!(
            p.fused_cycles, p.unfused_cycles,
            "fusion changed the modeled cycle total at {} thread(s); replay: {REPLAY}",
            p.threads
        );
    }

    let errors: u64 = points.iter().map(|p| p.system_errors).sum();
    let fusion_errors: u64 = fusion_points.iter().map(|p| p.system_errors).sum();
    let at1 = points
        .iter()
        .find(|p| p.threads == 1)
        .expect("1-thread point");
    let at4 = points
        .iter()
        .find(|p| p.threads == 4)
        .expect("4-thread point");

    // The 4-thread speedup criterion needs actual hardware parallelism:
    // on fewer than 4 cores the striped runner's extra threads only buy
    // timeslicing, so the check is recorded as skipped with the reason,
    // never as a silent pass.
    let (speedup_check, skip_reason) = if host_cores >= 4 {
        if at4.speedup > 1.5 {
            ("passed", None)
        } else {
            ("failed", None)
        }
    } else {
        (
            "skipped",
            Some(format!(
                "host has {host_cores} core(s); the 4-thread speedup criterion \
                 needs >= 4 physical cores"
            )),
        )
    };
    let single_thread_check = if at1.speedup >= 1.0 {
        "passed"
    } else {
        "failed"
    };

    // Fusion must win wall-clock at 4 threads — but like the striping
    // criterion it only means anything with real hardware parallelism,
    // so sub-4-core hosts record a machine-readable skip.
    let fat4 = fusion_points
        .iter()
        .find(|p| p.threads == 4)
        .expect("4-thread fusion point");
    let (fusion_check, fusion_skip_reason) = if host_cores >= 4 {
        if fat4.speedup > 1.0 {
            ("passed", None)
        } else {
            ("failed", None)
        }
    } else {
        (
            "skipped",
            Some(format!(
                "host has {host_cores} core(s); the 4-thread fusion wall-clock \
                 criterion needs >= 4 physical cores"
            )),
        )
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"c3_threaded\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"speedup_check\": \"{speedup_check}\",");
    match &skip_reason {
        Some(r) => {
            let _ = writeln!(json, "  \"skip_reason\": \"{r}\",");
        }
        None => {
            let _ = writeln!(json, "  \"skip_reason\": null,");
        }
    }
    let _ = writeln!(
        json,
        "  \"single_thread_check\": \"{single_thread_check}\","
    );
    let _ = writeln!(json, "  \"fusion_check\": \"{fusion_check}\",");
    match &fusion_skip_reason {
        Some(r) => {
            let _ = writeln!(json, "  \"fusion_skip_reason\": \"{r}\",");
        }
        None => {
            let _ = writeln!(json, "  \"fusion_skip_reason\": null,");
        }
    }
    let _ = writeln!(json, "  \"replay\": \"{REPLAY}\",");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"jobs\": {JOBS},");
    let _ = writeln!(json, "  \"iters\": {ITERS},");
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"striped_wall_us\": {}, \"global_lock_wall_us\": {}, \
             \"speedup_vs_global_lock\": {:.3}, \"system_errors\": {}}}{}",
            p.threads,
            p.striped_wall_us,
            p.global_lock_wall_us,
            p.speedup,
            p.system_errors,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"fusion_points\": [");
    for (i, p) in fusion_points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"fused_wall_us\": {}, \"unfused_wall_us\": {}, \
             \"speedup_vs_unfused\": {:.3}, \"cycles_identical\": {}, \"system_errors\": {}}}{}",
            p.threads,
            p.fused_wall_us,
            p.unfused_wall_us,
            p.speedup,
            p.fused_cycles == p.unfused_cycles,
            p.system_errors,
            if i + 1 < fusion_points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_c3_threaded.json", &json).expect("write BENCH_c3_threaded.json");
    println!("\nwrote BENCH_c3_threaded.json");
    println!("replay: {REPLAY}");

    if want_trace {
        export_trace();
    }

    assert_eq!(
        errors, 0,
        "threaded runs must be error-free; replay: {REPLAY}"
    );
    assert_eq!(
        fusion_errors, 0,
        "fusion runs must be error-free; replay: {REPLAY}"
    );
    assert!(
        at1.speedup >= 1.0,
        "a single striped thread must at least match the global lock \
         (got {:.2}x) — the lock-free qualification fast path regressed; replay: {REPLAY}",
        at1.speedup
    );
    match speedup_check {
        "passed" => println!(
            "pass: zero system errors; {:.2}x >= 1.0x at 1 thread; {:.2}x > 1.5x at 4 threads",
            at1.speedup, at4.speedup
        ),
        "failed" => panic!(
            "lock striping must beat the global lock by >1.5x at 4 threads on a \
             {host_cores}-core host (got {:.2}x); replay: {REPLAY}",
            at4.speedup
        ),
        _ => println!(
            "pass: zero system errors; {:.2}x >= 1.0x at 1 thread \
             (4-thread speedup check SKIPPED: {}; got {:.2}x)",
            at1.speedup,
            skip_reason.as_deref().unwrap_or("unknown"),
            at4.speedup
        ),
    }
    match fusion_check {
        "passed" => println!(
            "pass: fusion cycles bit-identical at every point; {:.2}x > 1.0x at 4 threads",
            fat4.speedup
        ),
        "failed" => panic!(
            "fusion must beat the unfused striped runner at 4 threads on a \
             {host_cores}-core host (got {:.2}x); replay: {REPLAY}",
            fat4.speedup
        ),
        _ => println!(
            "pass: fusion cycles bit-identical at every point \
             (4-thread fusion wall-clock check SKIPPED: {}; got {:.2}x)",
            fusion_skip_reason.as_deref().unwrap_or("unknown"),
            fat4.speedup
        ),
    }
}
