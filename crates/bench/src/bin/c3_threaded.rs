//! C3 threaded variant: wall-clock scaling of the lock-striped runner
//! against the global-lock baseline, written to `BENCH_c3_threaded.json`.
//!
//! Unlike `repro` (simulated cycles, deterministic), this harness
//! measures *host* time and is therefore machine-dependent; the JSON is
//! a baseline for regression comparisons on one machine, not a paper
//! claim. The pass criteria are structural: zero system errors in every
//! run, and striping beating the global lock by >1.5x at 4 host threads.
//!
//! Run with: `cargo run --release -p imax-bench --bin c3_threaded`

use imax_bench::c3_threaded;
use std::fmt::Write as _;

const SHARDS: u32 = 16;
const JOBS: u32 = 16;
const ITERS: u64 = 2000;

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("iMAX-432 threaded-runner scaling (host wall clock; machine-dependent)");
    println!("   shards = {SHARDS}, jobs = {JOBS}, {ITERS} work iterations per job");
    println!("   host cores = {host_cores}");
    println!(
        "   {:<8} {:>14} {:>16} {:>9}",
        "threads", "striped(us)", "global-lock(us)", "speedup"
    );

    let points = c3_threaded(&[1, 2, 4, 8], SHARDS, JOBS, ITERS);
    // The speedup criterion needs actual hardware parallelism: on fewer
    // than 4 cores the striped runner pays per-shard locking with no
    // physical concurrency to buy back, so only the structural checks
    // (completion, zero errors) are meaningful there — and the JSON must
    // say so explicitly rather than look like a pass.
    let speedup_check = if host_cores >= 4 { "passed" } else { "skipped" };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"c3_threaded\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"speedup_check\": \"{speedup_check}\",");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"jobs\": {JOBS},");
    let _ = writeln!(json, "  \"iters\": {ITERS},");
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        println!(
            "   {:<8} {:>14} {:>16} {:>8.2}x",
            p.threads, p.striped_wall_us, p.global_lock_wall_us, p.speedup
        );
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"striped_wall_us\": {}, \"global_lock_wall_us\": {}, \
             \"speedup_vs_global_lock\": {:.3}, \"system_errors\": {}}}{}",
            p.threads,
            p.striped_wall_us,
            p.global_lock_wall_us,
            p.speedup,
            p.system_errors,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_c3_threaded.json", &json).expect("write BENCH_c3_threaded.json");
    println!("\nwrote BENCH_c3_threaded.json");

    let errors: u64 = points.iter().map(|p| p.system_errors).sum();
    assert_eq!(errors, 0, "threaded runs must be error-free");
    let at4 = points
        .iter()
        .find(|p| p.threads == 4)
        .expect("4-thread point");
    if host_cores >= 4 {
        assert!(
            at4.speedup > 1.5,
            "lock striping must beat the global lock by >1.5x at 4 threads (got {:.2}x)",
            at4.speedup
        );
        println!(
            "pass: zero system errors; {:.2}x > 1.5x at 4 threads",
            at4.speedup
        );
    } else {
        println!(
            "pass: zero system errors ({host_cores} host core(s): speedup check SKIPPED — \
             needs >= 4 cores; got {:.2}x at 4 threads)",
            at4.speedup
        );
    }
}
