//! C5 threaded variant: parallel per-shard marking throughput and the
//! concurrent-collection tax on mutators, written to `BENCH_c5_gc.json`.
//!
//! Like `c3_threaded` this harness measures *host* time, so the wall
//! clocks are machine-dependent; the logical results are not:
//!
//! * every point reclaims exactly the lost population (`reclaimed ==
//!   garbage`) no matter how many marker threads run — gated
//!   deterministically by `bench_diff`;
//! * zero collector and system errors everywhere (all hosts);
//! * marking throughput rising monotonically from 1 to 4 shards — only
//!   meaningful with real hardware parallelism, so on hosts with fewer
//!   than 4 cores the JSON records `"throughput_check": "skipped"` with
//!   a machine-readable reason instead of silently passing.
//!
//! Run with: `cargo run --release -p imax-bench --bin c5_gc`
//!
//! `--trace` additionally replays the 4-shard point with the flight
//! recorder on and writes the merged timeline to `TRACE_c5_gc.json`
//! (needs a `--features trace` build; warns and continues otherwise).
//! The deterministic JSON keys must come out identical in trace-on and
//! trace-off builds — CI diffs both against the same baseline.

use imax_bench::{c5_gc_mutator_overhead, c5_gc_threaded};
use std::fmt::Write as _;

const SHARD_COUNTS: &[u32] = &[1, 2, 4];
const LIVE: u32 = 16_384;
const GARBAGE: u32 = 16_384;
const CYCLES: u32 = 8;

/// The one-line command that reruns this benchmark exactly.
const REPLAY: &str = "cargo run --release -p imax-bench --bin c5_gc";

/// Replays the widest point with the recorder on and keeps the merged
/// timeline, or warns when the recorder is compiled out.
fn export_trace() {
    if !i432_trace::ENABLED {
        eprintln!(
            "c5_gc: --trace ignored — this binary was built without the flight \
             recorder; rebuild with: {REPLAY} --features trace -- --trace"
        );
        return;
    }
    i432_trace::reset();
    i432_trace::set_context(0, 0);
    let traced = c5_gc_threaded(&[4], LIVE.min(2_048), GARBAGE.min(2_048), 2);
    assert_eq!(traced[0].gc_errors, 0, "traced run failed: {:?}", traced[0]);
    let t = i432_trace::drain_timeline();
    std::fs::write("TRACE_c5_gc.json", t.to_json()).expect("write TRACE_c5_gc.json");
    println!(
        "wrote TRACE_c5_gc.json ({} events, {} dropped)",
        t.events.len(),
        t.dropped
    );
}

fn main() {
    let want_trace = std::env::args().skip(1).any(|a| a == "--trace");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("iMAX-432 parallel per-shard GC (host wall clock; machine-dependent)");
    println!("   live = {LIVE}, garbage = {GARBAGE}, {CYCLES} cycles per point");
    println!("   host cores = {host_cores}");
    println!(
        "   {:<8} {:>10} {:>12} {:>14} {:>10}",
        "shards", "reclaimed", "wall(us)", "marks/ms", "errors"
    );

    let points = c5_gc_threaded(SHARD_COUNTS, LIVE, GARBAGE, CYCLES);
    for p in &points {
        println!(
            "   {:<8} {:>10} {:>12} {:>14} {:>10}",
            p.shards, p.reclaimed, p.mark_wall_us, p.marks_per_ms, p.gc_errors
        );
    }
    let overhead = c5_gc_mutator_overhead(2, 4, 8, 400);
    println!(
        "   mutator tax: {}us bare -> {}us gc-on ({:.2}x), {} collections rode along",
        overhead.baseline_wall_us, overhead.gc_on_wall_us, overhead.slowdown, overhead.collections
    );

    let errors: u64 = points.iter().map(|p| p.gc_errors).sum::<u64>() + overhead.system_errors;
    let at = |s: u32| points.iter().find(|p| p.shards == s).expect("shard point");
    let (throughput_check, skip_reason) = if host_cores >= 4 {
        if at(1).marks_per_ms <= at(2).marks_per_ms && at(2).marks_per_ms <= at(4).marks_per_ms {
            ("passed", None)
        } else {
            ("failed", None)
        }
    } else {
        (
            "skipped",
            Some(format!(
                "host has {host_cores} core(s); the 1->2->4-shard monotonic \
                 throughput criterion needs >= 4 physical cores"
            )),
        )
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"c5_gc\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"throughput_check\": \"{throughput_check}\",");
    match &skip_reason {
        Some(r) => {
            let _ = writeln!(json, "  \"skip_reason\": \"{r}\",");
        }
        None => {
            let _ = writeln!(json, "  \"skip_reason\": null,");
        }
    }
    let _ = writeln!(json, "  \"replay\": \"{REPLAY}\",");
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"shards\": {}, \"live\": {}, \"garbage\": {}, \"reclaimed\": {}, \
             \"gc_cycles\": {}, \"mark_wall_us\": {}, \"marks_per_ms\": {}, \"gc_errors\": {}}}{}",
            p.shards,
            p.live,
            p.garbage,
            p.reclaimed,
            p.gc_cycles,
            p.mark_wall_us,
            p.marks_per_ms,
            p.gc_errors,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"mutator_overhead\": {{");
    let _ = writeln!(
        json,
        "    \"baseline_wall_us\": {},",
        overhead.baseline_wall_us
    );
    let _ = writeln!(json, "    \"gc_on_wall_us\": {},", overhead.gc_on_wall_us);
    let _ = writeln!(json, "    \"slowdown\": {:.3},", overhead.slowdown);
    let _ = writeln!(json, "    \"collections\": {},", overhead.collections);
    let _ = writeln!(
        json,
        "    \"reclaimed_during_run\": {},",
        overhead.reclaimed_during_run
    );
    let _ = writeln!(json, "    \"system_errors\": {}", overhead.system_errors);
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write("BENCH_c5_gc.json", &json).expect("write BENCH_c5_gc.json");
    println!("\nwrote BENCH_c5_gc.json");
    println!("replay: {REPLAY}");

    if want_trace {
        export_trace();
    }

    assert_eq!(
        errors, 0,
        "collector and threaded runs must be error-free; replay: {REPLAY}"
    );
    for p in &points {
        assert_eq!(
            p.reclaimed, p.garbage,
            "every lost object (and nothing else) must be reclaimed at {} shard(s); \
             replay: {REPLAY}",
            p.shards
        );
    }
    match throughput_check {
        "passed" => println!(
            "pass: zero errors; exact reclamation at every width; marking throughput \
             monotonic 1->2->4 shards ({} -> {} -> {} marks/ms)",
            at(1).marks_per_ms,
            at(2).marks_per_ms,
            at(4).marks_per_ms
        ),
        "failed" => panic!(
            "marking throughput must rise monotonically 1->2->4 shards on a \
             {host_cores}-core host (got {} -> {} -> {} marks/ms); replay: {REPLAY}",
            at(1).marks_per_ms,
            at(2).marks_per_ms,
            at(4).marks_per_ms
        ),
        _ => println!(
            "pass: zero errors; exact reclamation at every width \
             (throughput check SKIPPED: {}; got {} -> {} -> {} marks/ms)",
            skip_reason.as_deref().unwrap_or("unknown"),
            at(1).marks_per_ms,
            at(2).marks_per_ms,
            at(4).marks_per_ms
        ),
    }
}
