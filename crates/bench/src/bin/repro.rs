//! Reproduction harness: prints the paper-vs-measured table for every
//! experiment in DESIGN.md (C1–C10). All numbers are simulated cycles /
//! microseconds at 8 MHz and are exactly reproducible.
//!
//! Also writes `BENCH_repro.json` with the C1/C2 headline numbers: these
//! are *deterministic simulated cycles*, so `bench_diff` compares them
//! against the committed baseline exactly — any drift is a real
//! cost-model or interpreter change, never measurement noise.
//!
//! Run with: `cargo run --release -p imax-bench --bin repro`

use i432_arch::PortDiscipline;
use imax_bench::*;
use std::fmt::Write as _;

fn header(id: &str, claim: &str) {
    println!();
    println!("== {id} ==============================================================");
    println!("   paper: {claim}");
    println!();
}

fn main() {
    println!("iMAX-432 reproduction harness (deterministic simulated measurements)");

    header(
        "C1",
        "a domain switch takes about 65 us at 8 MHz (~520 cycles)  [s2]",
    );
    let r = c1_domain_switch(200);
    println!("   {:<38} {:>10} {:>10}", "", "cycles", "us@8MHz");
    println!(
        "   {:<38} {:>10} {:>10.2}",
        "inter-domain CALL (measured)", r.call_cycles, r.call_us
    );
    println!(
        "   {:<38} {:>10} {:>10.2}",
        "matching RETURN (measured)",
        r.return_cycles,
        r.return_cycles as f64 / 8.0
    );
    println!(
        "   {:<38} {:>10.1} {:>10.2}",
        "call+return loop average",
        r.pair_avg,
        r.pair_avg / 8.0
    );

    // Deterministic headline numbers for bench_diff: C1 call/return and
    // the C2 allocation table, in both cycles (exact) and us (derived).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"repro\",");
    let _ = writeln!(
        json,
        "  \"c1\": {{\"call_cycles\": {}, \"call_us\": {:.2}, \"return_cycles\": {}, \
         \"pair_avg_cycles\": {:.1}}},",
        r.call_cycles, r.call_us, r.return_cycles, r.pair_avg
    );

    header(
        "C2",
        "allocating a segment from an SRO takes 80 us at 8 MHz  [s5]",
    );
    println!(
        "   {:<12} {:<8} {:>10} {:>10}",
        "data bytes", "slots", "cycles", "us@8MHz"
    );
    let c2_rows = c2_allocation();
    let _ = writeln!(json, "  \"c2\": [");
    for (i, row) in c2_rows.iter().enumerate() {
        println!(
            "   {:<12} {:<8} {:>10} {:>10.2}",
            row.data_bytes, row.access_slots, row.cycles, row.us
        );
        let _ = writeln!(
            json,
            "    {{\"data_bytes\": {}, \"access_slots\": {}, \"cycles\": {}, \"us\": {:.2}}}{}",
            row.data_bytes,
            row.access_slots,
            row.cycles,
            row.us,
            if i + 1 < c2_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_repro.json", &json).expect("write BENCH_repro.json");

    header(
        "C3",
        "a factor of 10 in total processing power is realizable  [s3]",
    );
    println!("   interleaved buses = 4, 120 independent jobs");
    println!("   {:<6} {:>14} {:>9}", "cpus", "makespan(cy)", "speedup");
    for p in c3_scaling(&[1, 2, 4, 6, 8, 10, 12], 4, 120) {
        println!("   {:<6} {:>14} {:>8.2}x", p.cpus, p.makespan, p.speedup);
    }
    println!("   single shared bus (contention control arm):");
    println!("   {:<6} {:>14} {:>9}", "cpus", "makespan(cy)", "speedup");
    for p in c3_scaling(&[1, 4, 8, 12], 1, 120) {
        println!("   {:<6} {:>14} {:>8.2}x", p.cpus, p.makespan, p.speedup);
    }

    header(
        "C4",
        "typed ports compile to code identical to untyped ports (zero cost)  [s4/fig2]",
    );
    let r = c4_port_typing(200);
    println!("   {:<38} {:>14}", "", "cycles/op");
    println!(
        "   {:<38} {:>14.1}",
        "Untyped_Ports loop", r.untyped_cycles_per_op
    );
    println!(
        "   {:<38} {:>14.1}",
        "Typed_Ports<u64> instance", r.typed_u64_cycles_per_op
    );
    println!(
        "   {:<38} {:>14.1}",
        "Typed_Ports<record16> instance", r.typed_record_cycles_per_op
    );
    println!(
        "   {:<38} {:>14.1}",
        "runtime-checked variant (+check)", r.checked_cycles_per_op
    );

    header(
        "C5",
        "a system-wide parallel garbage collector with minimal synchronization  [s8.1]",
    );
    for cpus in [1u32, 2, 3] {
        println!("   processors = {cpus}");
        println!(
            "   {:<22} {:>14} {:>10} {:>10} {:>8}",
            "daemon increments", "makespan(cy)", "slowdown", "reclaimed", "cycles"
        );
        for row in c5_gc_overhead(cpus, &[0, 4, 16, 64]) {
            println!(
                "   {:<22} {:>14} {:>9.3}x {:>10} {:>8}",
                if row.increments == 0 {
                    "off".to_string()
                } else {
                    row.increments.to_string()
                },
                row.mutator_makespan,
                row.slowdown,
                row.reclaimed,
                row.gc_cycles
            );
        }
    }

    header(
        "C6",
        "local heaps are collected more efficiently at scope exit  [s5/s8.1]",
    );
    let r = c6_local_heaps(128);
    println!("   {:<42} {:>14}", "", "cycles/object");
    println!(
        "   {:<42} {:>14.1}",
        "local heap, bulk destroy at scope exit", r.bulk_cycles_per_object
    );
    println!(
        "   {:<42} {:>14.1}",
        "global heap, on-the-fly collector", r.gc_cycles_per_object
    );
    println!(
        "   advantage: {:.1}x",
        r.gc_cycles_per_object / r.bulk_cycles_per_object
    );

    header(
        "C7",
        "send/receive are single instructions; blocking per Figure 1  [s2/s4]",
    );
    for disc in [PortDiscipline::Fifo, PortDiscipline::Priority] {
        println!("   discipline = {disc:?}");
        println!(
            "   {:<10} {:>16} {:>14} {:>14}",
            "capacity", "cycles/message", "blocked sends", "blocked recvs"
        );
        for row in c7_port_throughput(&[1, 4, 16, 64], disc) {
            println!(
                "   {:<10} {:>16.1} {:>14} {:>14}",
                row.capacity, row.cycles_per_message, row.blocked_sends, row.blocked_receives
            );
        }
    }

    header(
        "C8",
        "many resource-control policies layer over the basic process manager  [s6.1]",
    );
    for row in c8_schedulers() {
        println!("   {:<30} progress {:?}", row.policy, row.progress);
        println!("   {:<30} unfairness (max/min) = {:.2}", "", row.unfairness);
    }

    header(
        "C9",
        "swapping and non-swapping meet one interface; programs are oblivious  [s6.2]",
    );
    println!(
        "   {:<12} {:>10} {:>10} {:>10} {:>14} {:>10}",
        "working set", "resident", "swap-outs", "swap-ins", "transfer(cy)", "slowdown"
    );
    for frac in [1.0f64, 0.75, 0.5, 0.25] {
        let r = c9_swapping(32, frac, 4);
        println!(
            "   {:<12} {:>9}% {:>10} {:>10} {:>14} {:>9.2}x",
            r.working_set,
            r.resident_percent,
            r.swap_outs,
            r.swap_ins,
            r.transfer_cycles,
            r.slowdown
        );
    }

    header(
        "C10",
        "destruction filters recover lost objects (tape drives)  [s8.2]",
    );
    println!(
        "   {:<8} {:>8} {:>11} {:>12} {:>22}",
        "drives", "leaked", "recovered", "free after", "free without filter"
    );
    for (drives, leaked) in [(4usize, 1usize), (4, 3), (8, 6)] {
        let r = c10_destruction_filter(drives, leaked);
        println!(
            "   {:<8} {:>8} {:>11} {:>12} {:>22}",
            r.drives, r.leaked, r.recovered, r.free_after, r.free_without_filter
        );
    }

    println!();
    println!("wrote BENCH_repro.json (deterministic C1/C2 baselines for bench_diff)");
    println!("done. See EXPERIMENTS.md for the paper-vs-measured discussion.");
}
