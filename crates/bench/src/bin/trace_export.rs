//! Flight-recorder export CLI: runs the canonical token-mutex workload
//! with the recorder on and writes the merged deterministic timeline.
//!
//! ```text
//! trace_export [--runner det|threaded] [--format json|chrome]
//!              [--cpus N] [--shards N] [--workers N] [--rounds N]
//!              [--out PATH]
//! ```
//!
//! `--format json` (default) writes the timeline plus the counters
//! registry; `--format chrome` writes chrome://tracing "trace event"
//! JSON (load in chrome://tracing or https://ui.perfetto.dev — each
//! simulated processor renders as a thread, timestamps are microseconds
//! at the 432's 8 MHz clock).
//!
//! Requires a `--features trace` build; without it the recorder is
//! compiled to no-ops and this tool exits with status 2 rather than
//! writing an empty file.

use imax_bench::token_mutex_system;
use std::process::ExitCode;

struct Args {
    threaded: bool,
    chrome: bool,
    cpus: u32,
    shards: u32,
    workers: u32,
    rounds: u64,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threaded: true,
        chrome: false,
        cpus: 4,
        shards: 8,
        workers: 8,
        rounds: 64,
        out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--runner" => {
                args.threaded = match need_value(i)? {
                    "det" => false,
                    "threaded" => true,
                    other => return Err(format!("--runner: expected det|threaded, got {other:?}")),
                };
                i += 2;
            }
            "--format" => {
                args.chrome = match need_value(i)? {
                    "json" => false,
                    "chrome" => true,
                    other => return Err(format!("--format: expected json|chrome, got {other:?}")),
                };
                i += 2;
            }
            "--cpus" => {
                args.cpus = need_value(i)?.parse().map_err(|e| format!("--cpus: {e}"))?;
                i += 2;
            }
            "--shards" => {
                args.shards = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                i += 2;
            }
            "--workers" => {
                args.workers = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                i += 2;
            }
            "--rounds" => {
                args.rounds = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
                i += 2;
            }
            "--out" => {
                args.out = Some(need_value(i)?.to_string());
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("trace_export: {e}");
            return ExitCode::from(2);
        }
    };
    if !i432_trace::ENABLED {
        eprintln!(
            "trace_export: this binary was built without the flight recorder; \
             rebuild with: cargo run --release -p imax-bench --features trace --bin trace_export"
        );
        return ExitCode::from(2);
    }

    i432_trace::reset();
    i432_trace::set_context(0, 0);
    let (mut sys, shared_ad, expected) =
        token_mutex_system(args.cpus, args.shards, args.workers, args.rounds);
    let runner = if args.threaded {
        // Unbounded like the c3 bench: the step count includes idle
        // dispatch spins of token-starved GDPs, so no finite total-step
        // cap is schedule-independent; the workload itself terminates.
        let (s, outcome) = i432_sim::run_threaded(sys, u64::MAX);
        assert!(
            outcome.completed && outcome.system_errors == 0,
            "threaded run failed: {outcome:?}"
        );
        sys = s;
        "threaded"
    } else {
        let outcome = sys.run_to_quiescence(500_000_000);
        assert_eq!(outcome, i432_sim::RunOutcome::Quiescent, "{outcome:?}");
        "det"
    };
    let counter = sys.space.read_u64(shared_ad, 0).expect("counter readable");
    assert_eq!(counter, expected, "workload end state is exact");

    let t = i432_trace::drain_timeline();
    let (rendered, default_name) = if args.chrome {
        (t.to_chrome(), "TRACE_token_mutex.chrome.json")
    } else {
        (t.to_json(), "TRACE_token_mutex.json")
    };
    let out = args.out.unwrap_or_else(|| default_name.to_string());
    std::fs::write(&out, &rendered).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "wrote {out}: {} events ({} dropped), runner={runner}, \
         {} cpus x {} shards, {} workers x {} rounds, counter={counter}",
        t.events.len(),
        t.dropped,
        args.cpus,
        args.shards,
        args.workers,
        args.rounds
    );
    ExitCode::SUCCESS
}
