//! # imax-bench — reproduction scenarios for every paper claim
//!
//! Each function in [`scenarios`] sets up a simulated system, runs one
//! experiment from `DESIGN.md`'s per-experiment index (C1–C10), and
//! returns the measured numbers. All measurements are **simulated
//! cycles** — deterministic and exactly reproducible.
//!
//! Two consumers:
//! * `cargo run -p imax-bench --bin repro` prints the paper-vs-measured
//!   tables recorded in `EXPERIMENTS.md`;
//! * the Criterion benches (`benches/c*.rs`) wrap the same scenarios to
//!   track host-time performance of the emulator itself.

#![warn(missing_docs)]

pub mod ablations;
pub mod scenarios;

pub use ablations::*;
pub use scenarios::*;
