//! One-stop imports for application code.
//!
//! ```
//! use imax::prelude::*;
//!
//! let mut os = Imax::boot(&ImaxConfig::embedded());
//! let root = os.sys.space.root_sro();
//! let port = create_port(&mut os.sys.space, root, 4, PortDiscipline::Fifo).unwrap();
//! let mut p = ProgramBuilder::new();
//! p.work(10);
//! p.halt();
//! let sub = os.sys.subprogram("noop", p.finish(), 32, 8);
//! let dom = os.sys.install_domain("app", vec![sub], 0);
//! os.spawn_program(dom, 0, Some(port.ad()));
//! assert!(matches!(
//!     os.run(100_000),
//!     RunOutcome::Stopped | RunOutcome::Quiescent
//! ));
//! ```

pub use crate::{
    activate, passivate, FaultDisposition, GcChoice, Imax, ImaxConfig, PassiveStore,
    SchedulingChoice, StorageChoice, SysLevel,
};
pub use i432_arch::{
    AccessDescriptor, Level, ObjectRef, ObjectSpace, ObjectSpec, PortDiscipline, ProcessStatus,
    Rights,
};
pub use i432_gdp::{
    isa::{AluOp, DataDst, DataRef, Instruction},
    process::ProcessSpec,
    Fault, FaultKind, ProgramBuilder, StepEvent,
};
pub use i432_sim::{RunOutcome, System, SystemConfig};
pub use imax_gc::Collector;
pub use imax_ipc::{create_port, CheckedPort, Port, PortMessage, TypedPort};
pub use imax_storage::{SroQuota, StorageManager};
pub use imax_typemgr::TypeManager;
