//! System inspection: the "development debugging base" of release 1
//! (paper §9).
//!
//! Read-only reports over the object space: table census, per-process
//! and per-port detail, storage accounting, and reachability dumps.
//! Everything here is a *privileged* view (it reads through hardware
//! linkage paths); it corresponds to the debugger running inside iMAX's
//! own protection domain, not to anything an application could do with
//! its capabilities.

use i432_arch::{
    Color, ObjectIndex, ObjectRef, ObjectType, SpaceAccess, SpaceMut, SpaceStats, SysState,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A census of the object table.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Census {
    /// Live objects per system type name (user types count under
    /// `user:<name>`).
    pub by_type: BTreeMap<String, u32>,
    /// Live objects per GC color.
    pub white: u32,
    /// Live objects per GC color.
    pub gray: u32,
    /// Live objects per GC color.
    pub black: u32,
    /// Swapped-out segments.
    pub absent: u32,
    /// Total live objects.
    pub live: u32,
    /// Data-arena bytes charged to live segments.
    pub data_bytes: u64,
    /// Access-arena slots charged to live segments.
    pub access_slots: u64,
}

/// Counts everything live in the space.
pub fn census<S: SpaceMut + ?Sized>(space: &S) -> Census {
    let mut c = Census::default();
    // User-typed objects need a second lookup (their TDO's name); collect
    // the raw facts during the scan, resolve names after it.
    let mut user_typed = Vec::new();
    space.for_each_live(&mut |_, e| {
        c.live += 1;
        c.data_bytes += e.desc.data_len as u64;
        c.access_slots += e.desc.access_len as u64;
        match e.desc.color {
            Color::White => c.white += 1,
            Color::Gray => c.gray += 1,
            Color::Black => c.black += 1,
        }
        if e.desc.absent {
            c.absent += 1;
        }
        match e.desc.otype {
            ObjectType::System(t) => {
                *c.by_type.entry(t.name().to_string()).or_insert(0) += 1;
            }
            ObjectType::User(tdo) => user_typed.push(tdo),
        }
    });
    for tdo in user_typed {
        let name = space
            .tdo(tdo)
            .map(|t| t.name.clone())
            .unwrap_or_else(|_| "?".into());
        *c.by_type.entry(format!("user:{name}")).or_insert(0) += 1;
    }
    c
}

/// One line per live process: status, priority, cycles, fault state.
pub fn process_report<S: SpaceMut + ?Sized>(space: &S) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<14} {:>4} {:>6} {:>12} {:>6}  detail",
        "object", "status", "prio", "stops", "cycles", "fault"
    );
    space.for_each_live(&mut |i, e| {
        if let SysState::Process(p) = &e.sys {
            let _ = writeln!(
                out,
                "{:<8} {:<14} {:>4} {:>6} {:>12} {:>6}  {}",
                format!("#{}", i.0),
                format!("{:?}", p.status),
                p.priority,
                p.stop_count,
                p.total_cycles,
                p.fault_code,
                p.fault_detail
            );
        }
    });
    out
}

/// One line per live port: geometry, occupancy, waiters, counters.
pub fn port_report<S: SpaceMut + ?Sized>(space: &S) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<10} {:>5} {:>5} {:>8} {:>8} {:>8} {:>8}",
        "object", "disc", "cap", "msgs", "waiters", "sends", "recvs", "blocked"
    );
    space.for_each_live(&mut |i, e| {
        if let SysState::Port(p) = &e.sys {
            let _ = writeln!(
                out,
                "{:<8} {:<10} {:>5} {:>5} {:>8} {:>8} {:>8} {:>8}",
                format!("#{}", i.0),
                format!("{:?}", p.discipline),
                p.capacity,
                p.msg_count,
                format!("{}/{:?}", p.wait_count, p.waiters),
                p.stats.sends,
                p.stats.receives,
                p.stats.blocked_sends + p.stats.blocked_receives
            );
        }
    });
    out
}

/// Storage accounting per SRO: free/used, object counts.
pub fn storage_report<S: SpaceMut + ?Sized>(space: &S) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>12} {:>12} {:>8} {:>10}",
        "sro", "level", "data free", "slots free", "objects", "created"
    );
    space.for_each_live(&mut |i, e| {
        if let SysState::Sro(s) = &e.sys {
            let _ = writeln!(
                out,
                "{:<8} {:>6} {:>12} {:>12} {:>8} {:>10}",
                format!("#{}", i.0),
                s.level.0,
                s.data_free.total_free(),
                s.access_free.total_free(),
                s.object_count,
                s.created_total
            );
        }
    });
    out
}

/// Dumps the object graph reachable from `root` as indented text,
/// following access parts depth-first (cycles elided with `^#n`).
pub fn graph_dump<S: SpaceMut + ?Sized>(space: &mut S, root: ObjectRef, max_depth: u32) -> String {
    let mut out = String::new();
    let mut seen = std::collections::HashSet::new();
    fn describe<S: SpaceMut + ?Sized>(space: &S, r: ObjectRef) -> String {
        match space.entry(r) {
            Ok(e) => format!(
                "#{} {} lvl{} d{} a{}",
                r.index.0, e.desc.otype, e.desc.level.0, e.desc.data_len, e.desc.access_len
            ),
            Err(_) => format!("#{} <dead>", r.index.0),
        }
    }
    fn walk<S: SpaceMut + ?Sized>(
        space: &mut S,
        r: ObjectRef,
        depth: u32,
        max_depth: u32,
        seen: &mut std::collections::HashSet<ObjectIndex>,
        out: &mut String,
    ) {
        let pad = "  ".repeat(depth as usize);
        if !seen.insert(r.index) {
            let _ = writeln!(out, "{pad}^#{}", r.index.0);
            return;
        }
        let _ = writeln!(out, "{pad}{}", describe(space, r));
        if depth >= max_depth {
            return;
        }
        if let Ok(ads) = SpaceAccess::scan_access_part(space, r) {
            for ad in ads {
                walk(space, ad.obj, depth + 1, max_depth, seen, out);
            }
        }
    }
    walk(space, root, 0, max_depth, &mut seen, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Flight-recorder registry
// ---------------------------------------------------------------------------

/// The flight-recorder counters and histograms as a debugger report.
///
/// In a build without `--features trace` every counter reads zero and
/// the report says so up front — the debugging base tells you the
/// instrumentation is compiled out rather than showing a silent page of
/// zeros.
pub fn trace_report() -> String {
    let mut out = String::new();
    if !i432_trace::ENABLED {
        let _ = writeln!(
            out,
            "flight recorder compiled out (rebuild with --features trace)"
        );
        return out;
    }
    let snap = i432_trace::snapshot();
    let _ = writeln!(out, "{:<24} {:>14}", "counter", "value");
    for c in i432_trace::Counter::ALL {
        let _ = writeln!(out, "{:<24} {:>14}", c.name(), snap.get(*c));
    }
    for h in i432_trace::Hist::ALL {
        let total = snap.hist_total(*h);
        let _ = writeln!(out, "{:<24} {:>14}  (log2 buckets)", h.name(), total);
        if total > 0 {
            let buckets = &snap.hists[*h as usize];
            for (i, b) in buckets.iter().enumerate() {
                if *b > 0 {
                    let _ = writeln!(out, "  2^{i:<3} .. 2^{:<3} {:>12}", i + 1, b);
                }
            }
        }
    }
    // Retired-opcode pair histogram: the profile that selects which
    // pairs superinstruction fusion targets. Top pairs only — the full
    // matrix is PAIR_DIM².
    let pairs = snap.hot_pairs();
    let _ = writeln!(out, "{:<24} {:>14}  (top 12)", "opcode_pairs", pairs.len());
    for (prev, cur, n) in pairs.iter().take(12) {
        let _ = writeln!(
            out,
            "  {:<22} {:>14}",
            format!(
                "{} ; {}",
                i432_gdp::isa::opcode_name(*prev),
                i432_gdp::isa::opcode_name(*cur)
            ),
            n
        );
    }
    out
}

// ---------------------------------------------------------------------------
// SpaceStats snapshots
// ---------------------------------------------------------------------------

/// The field-wise difference of two [`SpaceStats`] snapshots: what a
/// measured region of a run cost in hardware-level operations.
pub type StatsDelta = SpaceStats;

/// A point-in-time [`SpaceStats`] snapshot; the counters are monotonic,
/// so `after - before` is a well-defined per-region cost.
///
/// ```ignore
/// let before = StatsSnapshot::take(&mut space);
/// /* ... the region of interest ... */
/// let delta: StatsDelta = before.delta(&mut space);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StatsSnapshot(SpaceStats);

impl StatsSnapshot {
    /// Snapshots the space counters (merged across shards).
    pub fn take<S: SpaceAccess + ?Sized>(space: &mut S) -> StatsSnapshot {
        StatsSnapshot(space.stats())
    }

    /// The cost accrued since this snapshot was taken.
    pub fn delta<S: SpaceAccess + ?Sized>(&self, space: &mut S) -> StatsDelta {
        space.stats() - self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{ObjectSpace, ObjectSpec, PortDiscipline, Rights};
    use imax_ipc::create_port;

    fn populated_space() -> (ObjectSpace, ObjectRef) {
        let mut s = ObjectSpace::new(64 * 1024, 8 * 1024, 1024);
        let root_sro = s.root_sro();
        let port = create_port(&mut s, root_sro, 4, PortDiscipline::Fifo).unwrap();
        let a = s
            .create_object(root_sro, ObjectSpec::generic(32, 2))
            .unwrap();
        let b = s
            .create_object(root_sro, ObjectSpec::generic(16, 0))
            .unwrap();
        let a_ad = s.mint(a, Rights::READ | Rights::WRITE);
        let b_ad = s.mint(b, Rights::READ);
        s.store_ad(a_ad, 0, Some(b_ad)).unwrap();
        s.store_ad(a_ad, 1, Some(a_ad)).unwrap(); // a cycle
        let _ = port;
        (s, a)
    }

    #[test]
    fn census_counts_types_and_colors() {
        let (s, _) = populated_space();
        let c = census(&s);
        assert_eq!(c.by_type.get("port"), Some(&1));
        assert_eq!(c.by_type.get("generic"), Some(&2));
        assert_eq!(c.by_type.get("storage-resource"), Some(&1));
        assert_eq!(c.live, c.white + c.gray + c.black);
        assert!(c.data_bytes >= 48);
    }

    #[test]
    fn graph_dump_handles_cycles() {
        let (mut s, a) = populated_space();
        let root = s.table.ref_for(a.index).unwrap();
        let dump = graph_dump(&mut s, root, 5);
        assert!(dump.contains("generic"));
        assert!(dump.contains('^'), "cycle marker present:\n{dump}");
    }

    #[test]
    fn trace_report_renders_or_says_why_not() {
        let r = trace_report();
        if i432_trace::ENABLED {
            assert!(r.contains("domain_calls"), "{r}");
            assert!(r.contains("alloc_data_bytes"), "{r}");
            // The queued-port diagnostics are part of the debugging
            // base: fast-path hit/fallback counters and the ring
            // occupancy histogram observed at every drain.
            assert!(r.contains("port_fast_sends"), "{r}");
            assert!(r.contains("port_ring_fallbacks"), "{r}");
            assert!(r.contains("port_queue_depth"), "{r}");
            // Dispatch-specialization diagnostics: fusion/IC hit
            // counters and the opcode-pair profile fusion is chosen
            // from.
            assert!(r.contains("fusion_hits"), "{r}");
            assert!(r.contains("ic_hits"), "{r}");
            assert!(r.contains("ic_flushes"), "{r}");
            assert!(r.contains("block_decodes"), "{r}");
            assert!(r.contains("opcode_pairs"), "{r}");
            // Device-subsystem diagnostics: block/net submission and
            // completion counters plus the filing request-latency
            // histogram.
            assert!(r.contains("blk_submits"), "{r}");
            assert!(r.contains("blk_completions"), "{r}");
            assert!(r.contains("net_rx"), "{r}");
            assert!(r.contains("net_tx"), "{r}");
            assert!(r.contains("filing_request_cycles"), "{r}");
        } else {
            assert!(r.contains("compiled out"), "{r}");
        }
    }

    #[test]
    fn reports_render() {
        let (s, _) = populated_space();
        let ports = port_report(&s);
        assert!(ports.contains("Fifo"));
        let storage = storage_report(&s);
        assert!(storage.contains("#0"));
        // No processes yet.
        let procs = process_report(&s);
        assert_eq!(procs.lines().count(), 1, "header only");
    }
}
