//! The object-filing *service*: filing for programs, via CALL.
//!
//! `filing.rs` provides the mechanism (passivate/activate of object
//! graphs with type identity). This module packages it as an iMAX
//! service domain, so simulated programs file and retrieve objects with
//! ordinary CALLs — completing the release-2 picture of §9 and keeping
//! §4's uniformity: the filing system is just another package.
//!
//! * subprogram 0, `passivate(graph_root) -> file` — renders the graph
//!   to a byte image in the service's cabinet and returns a sealed
//!   *file object* (a user-typed instance of the service's `file` type)
//!   whose identity names the image.
//! * subprogram 1, `activate(file) -> graph_root` — rebuilds the graph
//!   and returns the new root.
//!
//! Type resolution across the storage boundary uses the service's
//! registry of *filable types* ([`FilingService::register_type`]): a
//! type manager that wants its instances to survive filing registers
//! its TDO with the service, exactly the arrangement the iMAX filing
//! companion paper describes between filing and type managers.

use crate::filing::{activate, passivate, PassiveStore};
use i432_arch::{CodeBody, ObjectRef, Rights, Subprogram};
use i432_gdp::{native::NativeReturn, Fault, FaultKind};
use i432_sim::System;
use imax_typemgr::TypeManager;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared state between the service domain's native bodies and the host.
#[derive(Default)]
struct Cabinet {
    images: Vec<PassiveStore>,
    types: HashMap<String, ObjectRef>,
}

/// The filing service: its domain plus the host-side management handle.
pub struct FilingService {
    /// The service domain programs CALL (subprogram 0 = passivate,
    /// 1 = activate).
    pub domain: i432_arch::AccessDescriptor,
    cabinet: Arc<Mutex<Cabinet>>,
    file_type: TypeManager,
}

impl FilingService {
    /// Installs the filing service into a system.
    pub fn install(sys: &mut System) -> Result<FilingService, Fault> {
        let root = sys.space.root_sro();
        let file_type = TypeManager::new(&mut sys.space, root, "imax.file")?;
        let cabinet: Arc<Mutex<Cabinet>> = Arc::new(Mutex::new(Cabinet::default()));

        // passivate(graph_root) -> sealed file object.
        let pass_id = {
            let cabinet = Arc::clone(&cabinet);
            sys.natives.register("filing.passivate", move |cx| {
                let arg = cx.arg().ok_or_else(|| {
                    Fault::with_detail(FaultKind::NullAccess, "passivate needs a graph root")
                })?;
                let store = passivate(cx.space, arg)?;
                let bytes = store.to_bytes().len() as u64;
                let key = {
                    let mut cab = cabinet.lock();
                    cab.images.push(store);
                    (cab.images.len() - 1) as u64
                };
                // The file object: sealed identity naming the image.
                let root = cx.space.root_sro();
                let file = file_type.create_instance(cx.space, root, 16, 0)?;
                let full = file_type.amplify(cx.space, file)?;
                cx.space.write_u64(full, 0, key).map_err(Fault::from)?;
                cx.charge(400 + bytes * 2); // serialization traffic
                Ok(NativeReturn::ad(file))
            })
        };

        // activate(file) -> new graph root.
        let act_id = {
            let cabinet = Arc::clone(&cabinet);
            sys.natives.register("filing.activate", move |cx| {
                let arg = cx.arg().ok_or_else(|| {
                    Fault::with_detail(FaultKind::NullAccess, "activate needs a file object")
                })?;
                // Only genuine file objects name images (identity check
                // via amplification).
                let full = file_type.amplify(cx.space, arg)?;
                let key = cx.space.read_u64(full, 0).map_err(Fault::from)? as usize;
                let root = cx.space.root_sro();
                let (store, types) = {
                    let cab = cabinet.lock();
                    let store = cab.images.get(key).cloned().ok_or_else(|| {
                        Fault::with_detail(FaultKind::Bounds, "file names no image")
                    })?;
                    (store, cab.types.clone())
                };
                let revived = activate(cx.space, root, &store, |name| types.get(name).copied())?;
                cx.charge(400 + store.objects.len() as u64 * 40);
                Ok(NativeReturn::ad(revived))
            })
        };

        let domain = sys.install_domain(
            "filing",
            vec![
                Subprogram {
                    name: "passivate".into(),
                    body: CodeBody::Native(pass_id),
                    ctx_data_len: 32,
                    ctx_access_len: 8,
                },
                Subprogram {
                    name: "activate".into(),
                    body: CodeBody::Native(act_id),
                    ctx_data_len: 32,
                    ctx_access_len: 8,
                },
            ],
            0,
        );
        // Keep the file type reachable.
        sys.anchor(file_type.tdo_ad());

        Ok(FilingService {
            domain,
            cabinet,
            file_type,
        })
    }

    /// Registers a filable user type: instances of `tdo` survive filing
    /// and re-activate as genuine instances.
    pub fn register_type(&self, name: impl Into<String>, tdo: ObjectRef) {
        self.cabinet.lock().types.insert(name.into(), tdo);
    }

    /// Number of filed images in the cabinet.
    pub fn image_count(&self) -> usize {
        self.cabinet.lock().images.len()
    }

    /// The service's `file` type (for binding destruction filters etc.).
    pub fn file_type(&self) -> &TypeManager {
        &self.file_type
    }

    /// Host-side activation (management interface).
    pub fn activate_host<S: i432_arch::SpaceMut + ?Sized>(
        &self,
        space: &mut S,
        key: usize,
    ) -> Result<i432_arch::AccessDescriptor, Fault> {
        let (store, types) = {
            let cab = self.cabinet.lock();
            let store = cab
                .images
                .get(key)
                .cloned()
                .ok_or_else(|| Fault::with_detail(FaultKind::Bounds, "no such image"))?;
            (store, cab.types.clone())
        };
        let root = space.root_sro();
        activate(space, root, &store, |name| types.get(name).copied())
    }

    /// The filing mechanism requires read rights on everything filed;
    /// programs holding only sealed descriptors cannot exfiltrate other
    /// packages' state through the cabinet.
    pub fn rights_note() -> Rights {
        Rights::READ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_SRO};
    use i432_arch::ProcessStatus;
    use i432_gdp::isa::{AluOp, DataDst, DataRef, Instruction};
    use i432_gdp::ProgramBuilder;
    use i432_sim::{RunOutcome, SystemConfig};

    #[test]
    fn programs_file_and_retrieve_graphs() {
        let mut sys = System::new(&SystemConfig::small());
        let filing = FilingService::install(&mut sys).unwrap();

        // The program: build an object holding 0xCAFE, passivate it,
        // null every live reference, activate the file, and check the
        // payload came back.
        let mut p = ProgramBuilder::new();
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 5);
        p.mov(DataRef::Imm(0xCAFE), DataDst::Field(5, 0));
        // passivate(slot5) -> file in slot 6.
        p.call(CTX_SLOT_ARG as u16, 0, Some(5), Some(6), None);
        // Drop the original.
        p.null_ad(5);
        // activate(file in 6) -> revived root in slot 7.
        p.call(CTX_SLOT_ARG as u16, 1, Some(6), Some(7), None);
        let ok = p.new_label();
        p.alu(
            AluOp::Eq,
            DataRef::Field(7, 0),
            DataRef::Imm(0xCAFE),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), ok);
        p.push(Instruction::RaiseFault { code: 90 });
        p.bind(ok);
        p.halt();
        let sub = sys.subprogram("archivist", p.finish(), 64, 12);
        let app = sys.install_domain("app", vec![sub], 0);
        let proc_ref = sys.spawn(app, 0, Some(filing.domain));
        let outcome = sys.run_to_completion(5_000_000);
        assert_eq!(outcome, RunOutcome::Stopped);
        let ps = sys.space.process(proc_ref).unwrap();
        assert_eq!(ps.fault_code, 0, "{}", ps.fault_detail);
        assert_eq!(ps.status, ProcessStatus::Terminated);
        assert_eq!(filing.image_count(), 1);
    }

    #[test]
    fn forged_file_objects_are_rejected() {
        let mut sys = System::new(&SystemConfig::small());
        let filing = FilingService::install(&mut sys).unwrap();

        // A program that fabricates a plain object shaped like a file
        // and asks the service to activate it: type check fails.
        let mut p = ProgramBuilder::new();
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 5);
        p.mov(DataRef::Imm(0), DataDst::Field(5, 0)); // "key 0"
        p.call(CTX_SLOT_ARG as u16, 1, Some(5), Some(6), None);
        p.halt();
        let sub = sys.subprogram("forger", p.finish(), 64, 12);
        let app = sys.install_domain("app", vec![sub], 0);
        let proc_ref = sys.spawn(app, 0, Some(filing.domain));
        let _ = sys.run_to_quiescence(1_000_000);
        assert_eq!(
            sys.space.process(proc_ref).unwrap().fault_code,
            i432_gdp::FaultKind::TypeMismatch.code(),
            "hardware type identity protects the cabinet"
        );
    }

    #[test]
    fn registered_types_survive_service_filing() {
        let mut sys = System::new(&SystemConfig::small());
        let filing = FilingService::install(&mut sys).unwrap();
        let root = sys.space.root_sro();
        let mgr = TypeManager::new(&mut sys.space, root, "ledger").unwrap();
        filing.register_type("ledger", mgr.tdo());
        sys.anchor(mgr.tdo_ad());

        // Host-side: create an instance, file via the mechanism the
        // service uses, re-activate through the service, amplify.
        let inst = mgr.create_instance(&mut sys.space, root, 8, 0).unwrap();
        let full = mgr.amplify(&mut sys.space, inst).unwrap();
        sys.space.write_u64(full, 0, 42).unwrap();
        let store = passivate(&mut sys.space, full).unwrap();
        let key = {
            let mut cab = filing.cabinet.lock();
            cab.images.push(store);
            cab.images.len() - 1
        };
        let revived = filing.activate_host(&mut sys.space, key).unwrap();
        let full2 = mgr
            .amplify(&mut sys.space, revived.restricted(Rights::NONE))
            .unwrap();
        assert_eq!(sys.space.read_u64(full2, 0).unwrap(), 42);
    }
}
