//! The iMAX configuration surface.
//!
//! Paper §6: two complementary configurability mechanisms —
//! *selection of needed packages* (scheduling) and *alternate
//! implementations of standard specifications* (storage). Both appear
//! here as plain enums; [`crate::Imax::boot`] assembles the selected
//! system.

use i432_sim::SystemConfig;

/// Which storage-manager implementation backs the standard interface
/// (paper §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageChoice {
    /// Release 1: all segments resident; exhaustion faults the requester.
    #[default]
    NonSwapping,
    /// Release 2: data parts swap to backing store on pressure; absent
    /// segments fault and are transparently brought back.
    Swapping,
}

/// Which process-scheduling package is selected (paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingChoice {
    /// Basic process manager only: hardware dispatching parameters pass
    /// through untouched.
    #[default]
    Null,
    /// Round-robin with a uniform quantum (cycles).
    RoundRobin {
        /// The uniform time slice.
        quantum: u64,
    },
    /// The fair-share resource controller.
    FairShare,
}

/// Garbage-collection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcChoice {
    /// Collector increments per daemon service call.
    pub increments_per_call: u32,
    /// Daemon dispatching priority (higher value = less urgent).
    pub priority: u8,
}

impl Default for GcChoice {
    fn default() -> GcChoice {
        GcChoice {
            increments_per_call: 16,
            priority: 200,
        }
    }
}

/// A complete iMAX configuration.
#[derive(Debug, Clone, Default)]
pub struct ImaxConfig {
    /// The simulated hardware shape.
    pub hw: SystemConfig,
    /// Storage implementation.
    pub storage: StorageChoice,
    /// Scheduling package.
    pub scheduling: SchedulingChoice,
    /// Garbage collection; `None` disables the daemon (embedded
    /// configurations that never drop references).
    pub gc: Option<GcChoice>,
}

impl ImaxConfig {
    /// A small single-processor development configuration (the paper's
    /// release-1 defaults: non-swapping, null policy, GC on).
    pub fn development() -> ImaxConfig {
        ImaxConfig {
            hw: SystemConfig::small(),
            storage: StorageChoice::NonSwapping,
            scheduling: SchedulingChoice::Null,
            gc: Some(GcChoice::default()),
        }
    }

    /// A multi-user style configuration: swapping storage, fair-share
    /// scheduling, GC on.
    pub fn multi_user(processors: u32) -> ImaxConfig {
        ImaxConfig {
            hw: SystemConfig::default().with_processors(processors),
            storage: StorageChoice::Swapping,
            scheduling: SchedulingChoice::FairShare,
            gc: Some(GcChoice::default()),
        }
    }

    /// An embedded configuration: everything static, no GC daemon, null
    /// policy (paper §6.1: "completely acceptable for simple embedded
    /// systems in which the system load can be preevaluated").
    pub fn embedded() -> ImaxConfig {
        ImaxConfig {
            hw: SystemConfig::small(),
            storage: StorageChoice::NonSwapping,
            scheduling: SchedulingChoice::Null,
            gc: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_it_matters() {
        let dev = ImaxConfig::development();
        let mu = ImaxConfig::multi_user(4);
        let emb = ImaxConfig::embedded();
        assert_eq!(dev.storage, StorageChoice::NonSwapping);
        assert_eq!(mu.storage, StorageChoice::Swapping);
        assert!(dev.gc.is_some());
        assert!(emb.gc.is_none());
        assert_eq!(mu.hw.processors, 4);
        assert!(matches!(mu.scheduling, SchedulingChoice::FairShare));
    }
}
