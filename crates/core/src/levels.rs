//! iMAX system levels (paper §7.3).
//!
//! "The implementation of iMAX defines a set of levels which dictate what
//! operations are permitted to processes at that level. Processes below
//! level 3 of the system, for example, are in general not permitted to
//! fault. Processes at level 2 are actually permitted a limited set of
//! timeout faults while those at level 1 are not permitted even these.
//! To avoid dependency couplings, all communications between levels 2 and
//! 3 of the system must be asynchronous and upward communication must
//! never depend upon a reply."
//!
//! The fault tiers are enforced by the processor (`i432_gdp::FaultKind::
//! permitted_at`); this module gives them names, assignment helpers, and
//! the level-2→3 asynchrony check used when system services are wired up.

use i432_arch::{ObjectRef, ObjectSpace};
use i432_gdp::Fault;

/// The iMAX system levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SysLevel {
    /// Innermost executive: may not fault at all.
    Level1,
    /// Core services (e.g. the GC daemon, swap machinery): only timeout
    /// faults permitted.
    Level2,
    /// The virtualized environment: ordinary services and applications,
    /// all faults permitted and repairable.
    Level3,
}

impl SysLevel {
    /// The numeric level stored in process objects.
    pub fn number(self) -> u8 {
        match self {
            SysLevel::Level1 => 1,
            SysLevel::Level2 => 2,
            SysLevel::Level3 => 3,
        }
    }

    /// Parses a stored level number (anything ≥ 3 is Level3 territory).
    pub fn from_number(n: u8) -> SysLevel {
        match n {
            0 | 1 => SysLevel::Level1,
            2 => SysLevel::Level2,
            _ => SysLevel::Level3,
        }
    }

    /// Whether a *synchronous* call from `self` into `callee` level is
    /// permitted. Downward (toward lower levels) synchronous calls are
    /// fine — lower levels never depend on upper ones. Upward calls from
    /// level ≤ 2 into level 3 must be asynchronous (port messages), so
    /// they are rejected here.
    pub fn may_call_sync(self, callee: SysLevel) -> bool {
        callee <= self
    }
}

/// Assigns a process's system level.
pub fn set_system_level(
    space: &mut ObjectSpace,
    process: ObjectRef,
    level: SysLevel,
) -> Result<(), Fault> {
    space.process_mut(process).map_err(Fault::from)?.sys_level = level.number();
    Ok(())
}

/// Reads a process's system level.
pub fn system_level(space: &ObjectSpace, process: ObjectRef) -> Result<SysLevel, Fault> {
    Ok(SysLevel::from_number(
        space.process(process).map_err(Fault::from)?.sys_level,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_gdp::FaultKind;

    #[test]
    fn numbers_roundtrip() {
        for l in [SysLevel::Level1, SysLevel::Level2, SysLevel::Level3] {
            assert_eq!(SysLevel::from_number(l.number()), l);
        }
        assert_eq!(SysLevel::from_number(7), SysLevel::Level3);
        assert_eq!(SysLevel::from_number(0), SysLevel::Level1);
    }

    /// The §7.3 tiers, stated through the levels API.
    #[test]
    fn fault_tiers() {
        assert!(!FaultKind::Timeout.permitted_at(SysLevel::Level1.number()));
        assert!(FaultKind::Timeout.permitted_at(SysLevel::Level2.number()));
        assert!(!FaultKind::SegmentAbsent.permitted_at(SysLevel::Level2.number()));
        assert!(FaultKind::SegmentAbsent.permitted_at(SysLevel::Level3.number()));
    }

    /// "Upward communication must never depend upon a reply": no
    /// synchronous upward calls.
    #[test]
    fn upward_sync_calls_forbidden() {
        assert!(SysLevel::Level3.may_call_sync(SysLevel::Level2));
        assert!(SysLevel::Level3.may_call_sync(SysLevel::Level3));
        assert!(SysLevel::Level2.may_call_sync(SysLevel::Level1));
        assert!(!SysLevel::Level2.may_call_sync(SysLevel::Level3));
        assert!(!SysLevel::Level1.may_call_sync(SysLevel::Level2));
    }
}
