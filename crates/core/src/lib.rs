//! # imax — the operating system facade
//!
//! This crate assembles the substrates into the configurable operating
//! system the paper describes. Its shape follows §3 ("support for a
//! minimum range of application, configurability") and §6 ("the system is
//! configured by selecting those packages that provide the facilities
//! needed in a particular application" plus "alternate implementations of
//! standard specifications"):
//!
//! * [`config`] — the configuration surface: storage implementation
//!   (non-swapping release 1 / swapping release 2), scheduling package
//!   (null / round-robin / fair-share), garbage collection on/off,
//!   hardware shape (processors, buses).
//! * [`boot`] — [`Imax`]: boots a system from a configuration, installs
//!   the iMAX service domains (port creation, storage management), the
//!   fault service and the GC daemon, and drives the simulation with
//!   host-side service passes.
//! * [`faults`] — the fault service: faulted processes arrive at the
//!   system fault port; swap faults are repaired (swapping manager) and
//!   the process restarted; unrecoverable faults terminate it.
//! * [`levels`] — iMAX *system levels* (paper §7.3): the fault-permission
//!   tiers and the asynchronous-communication rule between levels 2 and 3.
//! * [`inspect`] — the "development debugging base" of release 1 (§9):
//!   read-only census, process/port/storage reports, graph dumps.
//! * [`filing`] — object filing (the release-2 feature of §9, detailed in
//!   the companion paper the text cites): passivating an object graph to
//!   a byte store and activating it back **with hardware type identity
//!   preserved** (§7.2's guarantee across storage channels).

#![warn(missing_docs)]

pub mod boot;
pub mod config;
pub mod faults;
pub mod filing;
pub mod filing_service;
pub mod inspect;
pub mod levels;
pub mod prelude;

pub use boot::Imax;
pub use config::{GcChoice, ImaxConfig, SchedulingChoice, StorageChoice};
pub use faults::FaultDisposition;
pub use filing::{activate, passivate, PassiveStore};
pub use filing_service::FilingService;
pub use levels::SysLevel;

// Re-export the layer crates under one roof for applications.
pub use i432_arch as arch;
pub use i432_gdp as gdp;
pub use i432_sim as sim;
pub use imax_gc as gc;
pub use imax_io as io;
pub use imax_ipc as ipc;
pub use imax_process as process;
pub use imax_storage as storage;
pub use imax_typemgr as typemgr;
