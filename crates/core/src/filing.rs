//! Object filing: passivation and activation of object graphs.
//!
//! Paper §9 names object filing as a release-2 feature (detailed in the
//! companion paper the text cites); §7.2 states the guarantee filing must
//! honour: "By the definition of Ada, if a storage system exists before
//! the compilation of a package, then it cannot know of and therefore
//! cannot preserve the type of some object that it is asked to store...
//! No matter what path a system object follows within the 432, its
//! hardware-recognized type identity is guaranteed to be preserved and
//! checked, either by the hardware or by object filing."
//!
//! [`passivate`] walks the graph reachable from one access descriptor and
//! renders it to a [`PassiveStore`] — topology, rights on every edge,
//! data parts, levels, and **type identity by type name**. [`activate`]
//! rebuilds the graph in a (possibly different) object space, resolving
//! type names back to that space's type definition objects, so activated
//! instances are once again amplifiable only by the right manager.
//!
//! Only passive objects file: generic and user-typed segments. Active
//! system objects (processes, ports, contexts...) are rejected — filing a
//! running process was out of scope for iMAX release 2 as well.

use i432_arch::{
    AccessDescriptor, Level, ObjectRef, ObjectSpec, ObjectType, Rights, SpaceMut, SysState,
    SystemType,
};
use i432_gdp::{Fault, FaultKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Filed type identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PassiveType {
    /// A generic object.
    Generic,
    /// A user-typed object, identified by its type's name.
    User(String),
}

/// One filed object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassiveObject {
    /// Type identity.
    pub otype: PassiveType,
    /// Lifetime level at passivation time.
    pub level: u16,
    /// The data part.
    pub data: Vec<u8>,
    /// The access part: `(slot, target local id, rights bits)` for each
    /// non-null slot, plus the total slot count.
    pub access_len: u32,
    /// Non-null access slots as `(slot, local id, rights)`.
    pub edges: Vec<(u32, u32, u8)>,
}

/// A filed object graph.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PassiveStore {
    /// Objects in discovery order; local ids are indices.
    pub objects: Vec<PassiveObject>,
    /// Local id of the root.
    pub root: u32,
    /// Rights the root descriptor conveyed.
    pub root_rights: u8,
}

impl PassiveStore {
    /// Serializes to a self-contained byte image (simple length-prefixed
    /// binary; no external format crates needed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"iMAXFILE");
        push_u32(&mut out, 1); // version
        push_u32(&mut out, self.root);
        out.push(self.root_rights);
        push_u32(&mut out, self.objects.len() as u32);
        for o in &self.objects {
            match &o.otype {
                PassiveType::Generic => {
                    out.push(0);
                }
                PassiveType::User(name) => {
                    out.push(1);
                    push_u32(&mut out, name.len() as u32);
                    out.extend_from_slice(name.as_bytes());
                }
            }
            out.extend_from_slice(&o.level.to_le_bytes());
            push_u32(&mut out, o.data.len() as u32);
            out.extend_from_slice(&o.data);
            push_u32(&mut out, o.access_len);
            push_u32(&mut out, o.edges.len() as u32);
            for (slot, target, rights) in &o.edges {
                push_u32(&mut out, *slot);
                push_u32(&mut out, *target);
                out.push(*rights);
            }
        }
        out
    }

    /// Parses a byte image produced by [`PassiveStore::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<PassiveStore, Fault> {
        let mut r = Reader { bytes, at: 0 };
        let magic = r.take(8)?;
        if magic != b"iMAXFILE" {
            return Err(Fault::with_detail(
                FaultKind::TypeMismatch,
                "bad file magic",
            ));
        }
        let version = r.u32()?;
        if version != 1 {
            return Err(Fault::with_detail(
                FaultKind::TypeMismatch,
                format!("unsupported file version {version}"),
            ));
        }
        let root = r.u32()?;
        let root_rights = r.u8()?;
        let count = r.u32()?;
        let mut objects = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let otype = match r.u8()? {
                0 => PassiveType::Generic,
                1 => {
                    let n = r.u32()? as usize;
                    let name = String::from_utf8(r.take(n)?.to_vec()).map_err(|_| {
                        Fault::with_detail(FaultKind::TypeMismatch, "bad type name encoding")
                    })?;
                    PassiveType::User(name)
                }
                t => {
                    return Err(Fault::with_detail(
                        FaultKind::TypeMismatch,
                        format!("bad type tag {t}"),
                    ))
                }
            };
            let level = u16::from_le_bytes([r.u8()?, r.u8()?]);
            let dlen = r.u32()? as usize;
            let data = r.take(dlen)?.to_vec();
            let access_len = r.u32()?;
            let elen = r.u32()?;
            let mut edges = Vec::with_capacity(elen as usize);
            for _ in 0..elen {
                let slot = r.u32()?;
                let target = r.u32()?;
                let rights = r.u8()?;
                edges.push((slot, target, rights));
            }
            objects.push(PassiveObject {
                otype,
                level,
                data,
                access_len,
                edges,
            });
        }
        Ok(PassiveStore {
            objects,
            root,
            root_rights,
        })
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], Fault> {
        if self.at + n > self.bytes.len() {
            return Err(Fault::with_detail(
                FaultKind::Bounds,
                "truncated file image",
            ));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, Fault> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, Fault> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Passivates the graph reachable from `root`.
///
/// Requires read rights on every reachable object (you cannot file what
/// you cannot read). Fails on active system objects.
pub fn passivate<S: SpaceMut + ?Sized>(
    space: &mut S,
    root: AccessDescriptor,
) -> Result<PassiveStore, Fault> {
    let mut ids: HashMap<ObjectRef, u32> = HashMap::new();
    let mut store = PassiveStore {
        root: 0,
        root_rights: root.rights.bits(),
        ..PassiveStore::default()
    };
    let mut queue = vec![root.obj];
    ids.insert(root.obj, 0);
    // Reserve slots so ids equal discovery order.
    while let Some(obj) = queue.pop() {
        let id = ids[&obj] as usize;
        let entry = space.entry(obj).map_err(Fault::from)?;
        let otype = match (&entry.sys, entry.desc.otype) {
            (SysState::Generic, ObjectType::System(SystemType::Generic)) => PassiveType::Generic,
            (SysState::Generic, ObjectType::User(tdo)) => {
                let name = space.tdo(tdo).map_err(|_| {
                    Fault::with_detail(
                        FaultKind::TypeMismatch,
                        "user-typed object whose TDO is gone cannot be filed",
                    )
                })?;
                PassiveType::User(name.name.clone())
            }
            _ => {
                return Err(Fault::with_detail(
                    FaultKind::TypeMismatch,
                    format!(
                        "active system object ({}) cannot be filed",
                        entry.desc.otype
                    ),
                ))
            }
        };
        let entry = space.entry(obj).map_err(Fault::from)?;
        let level = entry.desc.level.0;
        let access_len = entry.desc.access_len;
        let data_len = entry.desc.data_len;
        let mut data = vec![0u8; data_len as usize];
        let read_ad = space.mint(obj, Rights::READ);
        if data_len > 0 {
            space
                .read_data(read_ad, 0, &mut data)
                .map_err(Fault::from)?;
        }
        let mut edges = Vec::new();
        for slot in 0..access_len {
            if let Some(ad) = space.load_ad_hw(obj, slot).map_err(Fault::from)? {
                let next_id = ids.len() as u32;
                let target_id = *ids.entry(ad.obj).or_insert_with(|| {
                    queue.push(ad.obj);
                    next_id
                });
                edges.push((slot, target_id, ad.rights.bits()));
            }
        }
        if store.objects.len() <= id {
            store.objects.resize_with(ids.len(), || PassiveObject {
                otype: PassiveType::Generic,
                level: 0,
                data: Vec::new(),
                access_len: 0,
                edges: Vec::new(),
            });
        }
        store.objects[id] = PassiveObject {
            otype,
            level,
            data,
            access_len,
            edges,
        };
    }
    // Ensure the vector covers every discovered id (late discoveries).
    store.objects.resize_with(ids.len(), || PassiveObject {
        otype: PassiveType::Generic,
        level: 0,
        data: Vec::new(),
        access_len: 0,
        edges: Vec::new(),
    });
    Ok(store)
}

/// Activates a filed graph into `space`, allocating from `sro`.
///
/// `resolve_type` maps filed type names to this space's type definition
/// objects; activation fails if a name cannot be resolved — type
/// identity is *preserved and checked*, never silently dropped (paper
/// §7.2). Returns an access descriptor for the new root carrying the
/// filed rights.
pub fn activate<S: SpaceMut + ?Sized>(
    space: &mut S,
    sro: ObjectRef,
    store: &PassiveStore,
    mut resolve_type: impl FnMut(&str) -> Option<ObjectRef>,
) -> Result<AccessDescriptor, Fault> {
    // Pass 1: create all objects.
    let mut refs = Vec::with_capacity(store.objects.len());
    for po in &store.objects {
        let otype = match &po.otype {
            PassiveType::Generic => ObjectType::GENERIC,
            PassiveType::User(name) => {
                let tdo = resolve_type(name).ok_or_else(|| {
                    Fault::with_detail(
                        FaultKind::TypeMismatch,
                        format!("no type manager for filed type '{name}'"),
                    )
                })?;
                space
                    .expect_type(space.mint(tdo, Rights::NONE), SystemType::TypeDefinition)
                    .map_err(Fault::from)?;
                ObjectType::User(tdo)
            }
        };
        let obj = space
            .create_object(
                sro,
                ObjectSpec {
                    data_len: po.data.len() as u32,
                    access_len: po.access_len,
                    otype,
                    level: Some(Level(po.level)),
                    sys: SysState::Generic,
                },
            )
            .map_err(Fault::from)?;
        if !po.data.is_empty() {
            let w = space.mint(obj, Rights::WRITE);
            space.write_data(w, 0, &po.data).map_err(Fault::from)?;
        }
        refs.push(obj);
    }
    // Pass 2: rebuild edges with their filed rights.
    for (id, po) in store.objects.iter().enumerate() {
        for (slot, target, rights) in &po.edges {
            let ad = AccessDescriptor::new(refs[*target as usize], Rights::from_bits(*rights));
            space
                .store_ad_hw(refs[id], *slot, Some(ad))
                .map_err(Fault::from)?;
        }
    }
    Ok(AccessDescriptor::new(
        refs[store.root as usize],
        Rights::from_bits(store.root_rights),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::ObjectSpace;
    use imax_typemgr::TypeManager;

    fn space() -> ObjectSpace {
        ObjectSpace::new(128 * 1024, 8 * 1024, 1024)
    }

    #[test]
    fn roundtrip_preserves_topology_and_data() {
        let mut s = space();
        let root_sro = s.root_sro();
        // root -> {a, b}; a -> b (shared target).
        let root = s
            .create_object(root_sro, ObjectSpec::generic(8, 2))
            .unwrap();
        let a = s
            .create_object(root_sro, ObjectSpec::generic(8, 1))
            .unwrap();
        let b = s
            .create_object(root_sro, ObjectSpec::generic(8, 0))
            .unwrap();
        let (root_ad, a_ad, b_ad) = (
            s.mint(root, Rights::READ | Rights::WRITE),
            s.mint(a, Rights::READ | Rights::WRITE),
            s.mint(b, Rights::READ),
        );
        s.write_u64(root_ad, 0, 111).unwrap();
        s.write_u64(a_ad, 0, 222).unwrap();
        s.store_ad(root_ad, 0, Some(a_ad)).unwrap();
        s.store_ad(root_ad, 1, Some(b_ad)).unwrap();
        s.store_ad(a_ad, 0, Some(b_ad)).unwrap();

        let filed = passivate(&mut s, root_ad).unwrap();
        let bytes = filed.to_bytes();
        let parsed = PassiveStore::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, filed);

        // Activate into a fresh space.
        let mut s2 = space();
        let sro2 = s2.root_sro();
        let new_root = activate(&mut s2, sro2, &parsed, |_| None).unwrap();
        assert_eq!(s2.read_u64(new_root, 0).unwrap(), 111);
        let new_a = s2.load_ad(new_root, 0).unwrap().unwrap();
        let new_b_via_root = s2.load_ad(new_root, 1).unwrap().unwrap();
        let new_b_via_a = s2.load_ad(new_a, 0).unwrap().unwrap();
        assert_eq!(
            new_b_via_root.obj, new_b_via_a.obj,
            "shared targets stay shared"
        );
        assert_eq!(s2.read_u64(new_a, 0).unwrap(), 222);
        // Rights survived: b was filed read-only.
        assert!(!new_b_via_root.allows(Rights::WRITE));
    }

    #[test]
    fn type_identity_preserved_and_checked() {
        let mut s = space();
        let root_sro = s.root_sro();
        let mgr = TypeManager::new(&mut s, root_sro, "parcel").unwrap();
        let sealed = mgr.create_instance(&mut s, root_sro, 16, 0).unwrap();
        let full = mgr.amplify(&mut s, sealed).unwrap();
        s.write_u64(full, 0, 77).unwrap();

        let filed = passivate(&mut s, full).unwrap();
        assert!(matches!(&filed.objects[0].otype, PassiveType::User(n) if n == "parcel"));

        // Activation in a space with a matching manager.
        let mut s2 = space();
        let sro2 = s2.root_sro();
        let mgr2 = TypeManager::new(&mut s2, sro2, "parcel").unwrap();
        let revived = activate(&mut s2, sro2, &filed, |name| {
            (name == "parcel").then_some(mgr2.tdo())
        })
        .unwrap();
        // The revived object is a real instance: amplifiable by its
        // manager, rejected by others.
        assert!(mgr2
            .amplify(&mut s2, revived.restricted(Rights::NONE))
            .is_ok());
        let other = TypeManager::new(&mut s2, sro2, "other").unwrap();
        assert!(other
            .amplify(&mut s2, revived.restricted(Rights::NONE))
            .is_err());

        // Activation *without* the manager fails — identity is never
        // silently dropped.
        let mut s3 = space();
        let sro3 = s3.root_sro();
        assert!(activate(&mut s3, sro3, &filed, |_| None).is_err());
    }

    #[test]
    fn active_system_objects_refuse_to_file() {
        let mut s = space();
        let root_sro = s.root_sro();
        let port =
            imax_ipc::create_port(&mut s, root_sro, 4, i432_arch::PortDiscipline::Fifo).unwrap();
        assert!(passivate(&mut s, port.ad()).is_err());
    }

    #[test]
    fn corrupt_images_are_rejected() {
        assert!(PassiveStore::from_bytes(b"not a file").is_err());
        let mut s = space();
        let root_sro = s.root_sro();
        let o = s
            .create_object(root_sro, ObjectSpec::generic(8, 0))
            .unwrap();
        let o_ad = s.mint(o, Rights::READ);
        let filed = passivate(&mut s, o_ad).unwrap();
        let mut bytes = filed.to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(PassiveStore::from_bytes(&bytes).is_err());
    }
}
