//! The fault service.
//!
//! Faulted processes are "sent back to software": the hardware delivers
//! the process object to its fault port. This service drains the system
//! fault port and repairs what can be repaired:
//!
//! * **Segment-absent faults** (release-2 swapping): the absent segment
//!   is brought back via the storage manager and the process restarted at
//!   the faulting instruction (the instruction pointer was never
//!   advanced).
//! * Everything else is unrecoverable from the system's point of view:
//!   the process is terminated (a richer system could forward these to a
//!   per-application debugger port — the structure is the same).

use i432_arch::{ObjectIndex, ObjectRef, ProcessStatus, SpaceMut};
use i432_gdp::{port, Fault, FaultKind};
use imax_ipc::{untyped, Port};
use imax_storage::StorageManager;

/// What the service decided for one faulted process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultDisposition {
    /// The fault was repaired and the process re-entered the mix.
    Restarted {
        /// The repaired process.
        process: ObjectRef,
        /// Fault code that was repaired.
        code: u16,
    },
    /// The fault is unrecoverable; the process was terminated.
    Terminated {
        /// The terminated process.
        process: ObjectRef,
        /// Fault code.
        code: u16,
        /// Fault description.
        detail: String,
    },
}

/// Drains `fault_port`, repairing or terminating each delivered process.
///
/// Swap faults consume simulated device time; the cycles are available
/// through the storage manager's `drain_cycles` (swapping manager) and
/// are charged by the caller's service-pass accounting.
pub fn service_faults(
    space: &mut dyn SpaceMut,
    fault_port: Port,
    storage: &mut dyn StorageManager,
) -> Result<Vec<FaultDisposition>, Fault> {
    let mut out = Vec::new();
    while let Some(msg) = receive_carrier(space, fault_port)? {
        let process = msg.obj;
        let (code, detail, aux) = {
            let ps = space.process(process).map_err(Fault::from)?;
            (ps.fault_code, ps.fault_detail.clone(), ps.fault_aux)
        };
        if code == FaultKind::SegmentAbsent.code() {
            // Repair: swap the segment back in and restart.
            let index = ObjectIndex(aux as u32);
            match space.ref_for(index) {
                Ok(obj) => {
                    storage
                        .ensure_resident(space, obj)
                        .map_err(|e| Fault::with_detail(FaultKind::SegmentAbsent, e.to_string()))?;
                    {
                        let ps = space.process_mut(process).map_err(Fault::from)?;
                        ps.fault_code = 0;
                        ps.fault_detail.clear();
                        ps.fault_aux = 0;
                    }
                    port::make_ready(space, process)?;
                    out.push(FaultDisposition::Restarted { process, code });
                    continue;
                }
                Err(_) => {
                    // The object vanished while the process waited; the
                    // retry would fault again forever. Terminate.
                }
            }
        }
        space.process_mut(process).map_err(Fault::from)?.status = ProcessStatus::Terminated;
        out.push(FaultDisposition::Terminated {
            process,
            code,
            detail,
        });
    }
    Ok(out)
}

/// Receives one carrier message (process AD) from a port the service
/// holds with full trust.
fn receive_carrier<S: SpaceMut + ?Sized>(
    space: &mut S,
    port: Port,
) -> Result<Option<i432_arch::AccessDescriptor>, Fault> {
    use i432_gdp::port::RecvOutcome;
    match port::receive(space, None, port.ad(), false, true)? {
        RecvOutcome::Received(ad) => Ok(Some(ad)),
        RecvOutcome::WouldBlock => Ok(None),
        RecvOutcome::Blocked => unreachable!("non-blocking receive"),
    }
}

/// Convenience used by boot: builds the system fault port.
pub fn make_fault_port<S: SpaceMut + ?Sized>(space: &mut S, sro: ObjectRef) -> Result<Port, Fault> {
    untyped::create_port(space, sro, 64, i432_arch::PortDiscipline::Fifo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{
        Level, ObjectSpace, ObjectSpec, ObjectType, ProcessState, Rights, SysState, SystemType,
    };
    use imax_storage::{FrozenManager, SwappingManager};

    fn faulted_process(space: &mut ObjectSpace, code: u16, aux: u64) -> ObjectRef {
        let root = space.root_sro();
        let mut st = ProcessState::new(Level(0));
        st.status = ProcessStatus::Faulted;
        st.fault_code = code;
        st.fault_aux = aux;
        let p = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::PROC_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Process),
                    level: None,
                    sys: SysState::Process(st),
                },
            )
            .unwrap();
        // Give it a dispatching port so make_ready can requeue it.
        let dp = untyped::create_port(space, root, 8, i432_arch::PortDiscipline::Fifo).unwrap();
        space
            .store_ad_hw(p, i432_arch::sysobj::PROC_SLOT_DISPATCH_PORT, Some(dp.ad()))
            .unwrap();
        p
    }

    #[test]
    fn unrecoverable_fault_terminates() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 512);
        let root = space.root_sro();
        let fport = make_fault_port(&mut space, root).unwrap();
        let p = faulted_process(&mut space, FaultKind::DivideByZero.code(), 0);
        let pad = space.mint(p, Rights::NONE);
        port::send(&mut space, None, fport.ad(), pad, 0, false, true).unwrap();

        let mut mgr = FrozenManager::new();
        let outcomes = service_faults(&mut space, fport, &mut mgr).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(&outcomes[0], FaultDisposition::Terminated { .. }));
        assert_eq!(space.process(p).unwrap().status, ProcessStatus::Terminated);
    }

    #[test]
    fn swap_fault_repairs_and_restarts() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 512);
        let root = space.root_sro();
        let fport = make_fault_port(&mut space, root).unwrap();
        let mut mgr = SwappingManager::new();

        // An object, swapped out.
        let obj = space
            .create_object(root, ObjectSpec::generic(64, 0))
            .unwrap();
        mgr.swap_out(&mut space, obj).unwrap();
        assert!(space.table.get(obj).unwrap().desc.absent);

        let p = faulted_process(
            &mut space,
            FaultKind::SegmentAbsent.code(),
            obj.index.0 as u64,
        );
        let pad = space.mint(p, Rights::NONE);
        port::send(&mut space, None, fport.ad(), pad, 0, false, true).unwrap();

        let outcomes = service_faults(&mut space, fport, &mut mgr).unwrap();
        assert!(matches!(&outcomes[0], FaultDisposition::Restarted { .. }));
        assert!(!space.table.get(obj).unwrap().desc.absent, "swapped back");
        assert_eq!(space.process(p).unwrap().status, ProcessStatus::Ready);
        assert_eq!(space.process(p).unwrap().fault_code, 0);
    }

    #[test]
    fn empty_port_is_a_noop() {
        let mut space = ObjectSpace::new(16 * 1024, 2048, 256);
        let root = space.root_sro();
        let fport = make_fault_port(&mut space, root).unwrap();
        let mut mgr = FrozenManager::new();
        assert!(service_faults(&mut space, fport, &mut mgr)
            .unwrap()
            .is_empty());
    }
}
