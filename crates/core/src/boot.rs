//! [`Imax`]: boot and operation of a configured system.
//!
//! Boot assembles the configured packages over the simulated hardware:
//! the storage manager, the basic process manager, the selected
//! scheduler, the iMAX service domains (`untyped_ports`,
//! `storage_management`) callable from programs through ordinary CALLs,
//! the system fault port and its service, and (optionally) the garbage
//! collection daemon.
//!
//! [`Imax::run`] drives the simulation in chunks, interleaving the
//! host-side service passes (fault repair, scheduler servicing) the same
//! way iMAX's own service processes interleaved with applications.

use crate::{
    config::{ImaxConfig, SchedulingChoice, StorageChoice},
    faults::{make_fault_port, service_faults, FaultDisposition},
};
use i432_arch::{AccessDescriptor, CodeBody, ObjectRef, Rights, Subprogram};
use i432_gdp::{native::NativeReturn, process::ProcessSpec, Fault, FaultKind};
use i432_sim::{RunOutcome, System};
use imax_gc::{install_gc_daemon, Collector};
use imax_io::IoSubsystem;
use imax_ipc::{register_port_services, Port};
use imax_process::{BasicProcessManager, FairShareScheduler, NullScheduler, RoundRobinScheduler};
use imax_storage::{
    close_local_heap, open_local_heap_at, FrozenManager, SroQuota, StorageManager, SwappingManager,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// The selected scheduling package.
pub enum Scheduler {
    /// Pass-through policy.
    Null(NullScheduler),
    /// Round robin over a scheduler port.
    RoundRobin(RoundRobinScheduler),
    /// Fair-share controller.
    Fair(FairShareScheduler),
}

/// Well-known iMAX service domains handed to programs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceDirectory {
    /// `Untyped_Ports` (Figure 1): subprogram 0 = `Create_port`.
    pub untyped_ports: AccessDescriptor,
    /// `Storage_Management`: subprogram 0 = `open_local_heap`,
    /// 1 = `close_local_heap`.
    pub storage_management: AccessDescriptor,
}

/// A booted iMAX system.
pub struct Imax {
    /// The simulated hardware.
    pub sys: System,
    /// The storage manager behind the standard interface (shared with
    /// the storage-management native services).
    pub storage: Arc<Mutex<Box<dyn StorageManager>>>,
    /// The basic process manager.
    pub procman: BasicProcessManager,
    /// The selected scheduler.
    pub scheduler: Scheduler,
    /// The garbage collector, when configured.
    pub collector: Option<Arc<Mutex<Collector>>>,
    /// The system fault port.
    pub fault_port: Port,
    /// Service domains for programs.
    pub services: ServiceDirectory,
    /// Fault dispositions accumulated by service passes.
    pub fault_log: Vec<FaultDisposition>,
    /// The attached I/O subsystem (asynchronous device requests),
    /// serviced in every service pass.
    pub io: IoSubsystem,
    scheduler_port: Option<Port>,
}

impl Imax {
    /// Boots a system from a configuration.
    pub fn boot(config: &ImaxConfig) -> Imax {
        let mut sys = System::new(&config.hw);
        let root = sys.space.root_sro();

        // Alternate implementations of the storage specification (§6.2).
        let storage: Box<dyn StorageManager> = match config.storage {
            StorageChoice::NonSwapping => Box::new(FrozenManager::new()),
            StorageChoice::Swapping => Box::new(SwappingManager::new()),
        };
        let storage = Arc::new(Mutex::new(storage));

        // Service domain: Untyped_Ports.
        let port_ids = register_port_services(&mut sys.natives);
        let untyped_ports = sys.install_domain(
            "untyped_ports",
            vec![Subprogram {
                name: "create_port".into(),
                body: CodeBody::Native(port_ids.create_port),
                ctx_data_len: 16,
                ctx_access_len: 8,
            }],
            0,
        );

        // Service domain: Storage_Management (local heaps).
        let open_id = {
            let storage = Arc::clone(&storage);
            sys.natives
                .register("storage_management.open_local_heap", move |cx| {
                    let arg = cx.arg().ok_or_else(|| {
                        Fault::with_detail(
                            FaultKind::NullAccess,
                            "open_local_heap needs a quota record",
                        )
                    })?;
                    let data_bytes = cx.space.read_u64(arg, 0).map_err(Fault::from)? as u32;
                    let access_slots = cx.space.read_u64(arg, 8).map_err(Fault::from)? as u32;
                    cx.charge(300);
                    // The requesting frame is this service context's
                    // caller; the heap is scoped to *its* depth.
                    let caller = cx
                        .space
                        .load_ad_hw(cx.context, i432_arch::sysobj::CTX_SLOT_CALLER)
                        .map_err(Fault::from)?
                        .ok_or_else(|| {
                            Fault::with_detail(FaultKind::NullAccess, "service call has no caller")
                        })?;
                    let depth = cx.space.entry(caller.obj).map_err(Fault::from)?.desc.level;
                    let mut mgr = storage.lock();
                    let heap = open_local_heap_at(
                        mgr.as_mut(),
                        cx.space,
                        cx.process,
                        SroQuota {
                            data_bytes,
                            access_slots,
                        },
                        Some(depth),
                    )
                    .map_err(|e| Fault::with_detail(FaultKind::StorageExhausted, e.to_string()))?;
                    Ok(NativeReturn::ad(
                        cx.space.mint(heap, Rights::ALLOCATE | Rights::RECLAIM),
                    ))
                })
        };
        let close_id = {
            let storage = Arc::clone(&storage);
            sys.natives
                .register("storage_management.close_local_heap", move |cx| {
                    cx.charge(200);
                    let mut mgr = storage.lock();
                    let n = close_local_heap(mgr.as_mut(), cx.space, cx.process).map_err(|e| {
                        Fault::with_detail(FaultKind::StorageExhausted, e.to_string())
                    })?;
                    cx.charge(n as u64 * 20);
                    Ok(NativeReturn::value(n as u64))
                })
        };
        let storage_management = sys.install_domain(
            "storage_management",
            vec![
                Subprogram {
                    name: "open_local_heap".into(),
                    body: CodeBody::Native(open_id),
                    ctx_data_len: 16,
                    ctx_access_len: 8,
                },
                Subprogram {
                    name: "close_local_heap".into(),
                    body: CodeBody::Native(close_id),
                    ctx_data_len: 16,
                    ctx_access_len: 8,
                },
            ],
            0,
        );

        // The system fault port.
        let fault_port =
            make_fault_port(&mut sys.space, root).expect("fault port fits a fresh arena");
        sys.anchor(fault_port.ad());

        // Scheduling package selection (§6.1).
        let (scheduler, scheduler_port) = match config.scheduling {
            SchedulingChoice::Null => (Scheduler::Null(NullScheduler::new()), None),
            SchedulingChoice::RoundRobin { quantum } => {
                let port = imax_ipc::create_port(
                    &mut sys.space,
                    root,
                    128,
                    i432_arch::PortDiscipline::Fifo,
                )
                .expect("scheduler port fits a fresh arena");
                sys.anchor(port.ad());
                (
                    Scheduler::RoundRobin(RoundRobinScheduler::new(port, quantum)),
                    Some(port),
                )
            }
            SchedulingChoice::FairShare => (Scheduler::Fair(FairShareScheduler::new()), None),
        };

        // Garbage collection.
        let collector = config.gc.map(|gc_cfg| {
            let collector = Arc::new(Mutex::new(Collector::new()));
            install_gc_daemon(
                &mut sys,
                Arc::clone(&collector),
                gc_cfg.increments_per_call,
                gc_cfg.priority,
            );
            collector
        });

        Imax {
            sys,
            storage,
            procman: BasicProcessManager::new(),
            scheduler,
            collector,
            fault_port,
            services: ServiceDirectory {
                untyped_ports,
                storage_management,
            },
            fault_log: Vec::new(),
            io: IoSubsystem::new(),
            scheduler_port,
        }
    }

    /// Attaches a device to the I/O subsystem, returning its request
    /// port (hand clients send-only views). The port is anchored so the
    /// device stays reachable.
    pub fn attach_device(
        &mut self,
        device: std::sync::Arc<Mutex<dyn imax_io::DeviceImpl>>,
        queue_depth: u32,
    ) -> Result<Port, Fault> {
        let root = self.sys.space.root_sro();
        let port = self
            .io
            .attach(&mut self.sys.space, root, device, queue_depth)?;
        self.sys.anchor(port.ad());
        Ok(port)
    }

    /// Spawns an application process with the system fault port and the
    /// configured scheduler wired in.
    pub fn spawn_program(
        &mut self,
        domain: AccessDescriptor,
        subprogram: u32,
        arg: Option<AccessDescriptor>,
    ) -> ObjectRef {
        let mut spec = ProcessSpec::new(self.sys.dispatch_ad());
        spec.fault_port = Some(self.fault_port.ad());
        spec.scheduler_port = self.scheduler_port.map(|p| p.ad());
        if let Scheduler::RoundRobin(rr) = &self.scheduler {
            spec.timeslice = rr.quantum;
        }
        let p = self.sys.spawn_with(domain, subprogram, arg, spec);
        if let Scheduler::Fair(fs) = &mut self.scheduler {
            fs.adopt(p, 1);
        }
        p
    }

    /// [`Imax::spawn_program`] with a fair-share weight.
    pub fn spawn_weighted(
        &mut self,
        domain: AccessDescriptor,
        subprogram: u32,
        arg: Option<AccessDescriptor>,
        weight: u64,
    ) -> ObjectRef {
        let p = self.spawn_program(domain, subprogram, arg);
        if let Scheduler::Fair(fs) = &mut self.scheduler {
            // Replace the default adoption.
            fs.adopt(p, weight);
        }
        p
    }

    /// One host-side service pass: fault repair + scheduler service.
    pub fn service_pass(&mut self) -> Result<(), Fault> {
        let mut mgr = self.storage.lock();
        let dispositions = service_faults(&mut self.sys.space, self.fault_port, mgr.lock_as_mut())?;
        drop(mgr);
        for d in &dispositions {
            if let FaultDisposition::Terminated { process, .. } = d {
                // The manager loses interest in terminated processes.
                let _ = process;
            }
        }
        self.fault_log.extend(dispositions);
        self.io.service(&mut self.sys.space)?;
        match &mut self.scheduler {
            Scheduler::Null(_) => {}
            Scheduler::RoundRobin(rr) => {
                rr.service(&mut self.sys.space)?;
                for p in rr.take_reapable() {
                    self.sys.unanchor(p);
                }
            }
            Scheduler::Fair(fs) => {
                fs.rebalance(&mut self.sys.space)?;
            }
        }
        Ok(())
    }

    /// Runs the system, interleaving service passes, until every spawned
    /// process terminated, the budget is exhausted, or a system error.
    pub fn run(&mut self, max_steps: u64) -> RunOutcome {
        let chunk = 4096;
        let mut remaining = max_steps;
        loop {
            let budget = chunk.min(remaining);
            if budget == 0 {
                return RunOutcome::BudgetExhausted;
            }
            let outcome = self.sys.run_to_completion(budget);
            remaining -= budget;
            if let Err(f) = self.service_pass() {
                return RunOutcome::SystemError(f);
            }
            match outcome {
                RunOutcome::Stopped => {
                    // All processes done (service pass may have restarted
                    // some — check).
                    let all_done = self.sys.processes().iter().all(|p| {
                        matches!(
                            self.sys.status_of(*p),
                            Some(i432_arch::ProcessStatus::Terminated) | None
                        )
                    });
                    if all_done {
                        return RunOutcome::Stopped;
                    }
                }
                RunOutcome::Quiescent => {
                    // Truly quiescent only if the service pass woke
                    // nothing.
                    let any_ready = self.sys.processes().iter().any(|p| {
                        matches!(
                            self.sys.status_of(*p),
                            Some(i432_arch::ProcessStatus::Ready)
                        )
                    });
                    if !any_ready {
                        return RunOutcome::Quiescent;
                    }
                }
                RunOutcome::SystemError(f) => return RunOutcome::SystemError(f),
                RunOutcome::BudgetExhausted => {}
            }
        }
    }
}

/// Helper trait to get `&mut dyn StorageManager` out of the boxed lock.
trait LockAsMut {
    fn lock_as_mut(&mut self) -> &mut dyn StorageManager;
}

impl LockAsMut for parking_lot::MutexGuard<'_, Box<dyn StorageManager>> {
    fn lock_as_mut(&mut self) -> &mut dyn StorageManager {
        self.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GcChoice, ImaxConfig, SchedulingChoice};
    use i432_arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_SRO};
    use i432_gdp::isa::{AluOp, DataDst, DataRef};
    use i432_gdp::ProgramBuilder;

    fn worker(imax: &mut Imax, iters: u64) -> AccessDescriptor {
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(iters), DataDst::Local(0));
        p.bind(top);
        p.work(500);
        p.alu(
            AluOp::Sub,
            DataRef::Local(0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), top);
        p.halt();
        let sub = imax.sys.subprogram("work", p.finish(), 64, 8);
        imax.sys.install_domain("worker", vec![sub], 0)
    }

    #[test]
    fn boot_and_run_development_config() {
        let mut imax = Imax::boot(&ImaxConfig::development());
        let dom = worker(&mut imax, 20);
        let p = imax.spawn_program(dom, 0, None);
        let outcome = imax.run(1_000_000);
        assert!(
            matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
            "{outcome:?}"
        );
        assert_eq!(
            imax.sys.status_of(p),
            Some(i432_arch::ProcessStatus::Terminated)
        );
    }

    #[test]
    fn programs_create_ports_via_service_call() {
        let mut imax = Imax::boot(&ImaxConfig::embedded());
        // Program: build the argument record, CALL untyped_ports.create,
        // then send itself a message through the new port and receive it.
        let mut p = ProgramBuilder::new();
        // arg record: message_count=4, discipline=0 (FIFO).
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 5);
        p.mov(DataRef::Imm(4), DataDst::Field(5, 0));
        p.mov(DataRef::Imm(0), DataDst::Field(5, 8));
        // CALL the service (domain AD arrives as the program argument).
        p.call(CTX_SLOT_ARG as u16, 0, Some(5), Some(6), None);
        // Make a message and loop it through the port.
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(8), DataRef::Imm(0), 7);
        p.mov(DataRef::Imm(31337), DataDst::Field(7, 0));
        p.send(6, 7);
        p.receive(6, 8);
        // Verify the payload or fault.
        let ok = p.new_label();
        p.alu(
            AluOp::Eq,
            DataRef::Field(8, 0),
            DataRef::Imm(31337),
            DataDst::Local(16),
        );
        p.jump_if_nonzero(DataRef::Local(16), ok);
        p.push(i432_gdp::Instruction::RaiseFault { code: 1 });
        p.bind(ok);
        p.halt();
        let sub = imax.sys.subprogram("port_user", p.finish(), 64, 12);
        let dom = imax.sys.install_domain("app", vec![sub], 0);
        let svc = imax.services.untyped_ports;
        let proc_ref = imax.spawn_program(dom, 0, Some(svc));
        let outcome = imax.run(1_000_000);
        assert!(
            matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
            "{outcome:?}"
        );
        assert_eq!(
            imax.sys.status_of(proc_ref),
            Some(i432_arch::ProcessStatus::Terminated)
        );
        assert_eq!(imax.sys.space.process(proc_ref).unwrap().fault_code, 0);
        assert!(imax.fault_log.is_empty(), "{:?}", imax.fault_log);
    }

    #[test]
    fn local_heap_service_reclaims_at_close() {
        let mut imax = Imax::boot(&ImaxConfig::development());
        // Program: open a local heap, allocate from it, close it.
        let mut p = ProgramBuilder::new();
        // quota record.
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 5);
        p.mov(DataRef::Imm(2048), DataDst::Field(5, 0));
        p.mov(DataRef::Imm(64), DataDst::Field(5, 8));
        p.call(CTX_SLOT_ARG as u16, 0, Some(5), Some(6), None); // open → heap AD in 6
        p.create_object(6, DataRef::Imm(64), DataRef::Imm(2), 7);
        p.create_object(6, DataRef::Imm(64), DataRef::Imm(2), 8);
        // Null the ADs so nothing dangles in this context after close.
        p.null_ad(7);
        p.null_ad(8);
        p.null_ad(6);
        p.call(CTX_SLOT_ARG as u16, 1, None, None, Some(24)); // close → count
        let ok = p.new_label();
        p.alu(
            AluOp::Eq,
            DataRef::Local(24),
            DataRef::Imm(3),
            DataDst::Local(32),
        );
        p.jump_if_nonzero(DataRef::Local(32), ok);
        p.push(i432_gdp::Instruction::RaiseFault { code: 2 });
        p.bind(ok);
        p.halt();
        let sub = imax.sys.subprogram("heap_user", p.finish(), 64, 12);
        let dom = imax.sys.install_domain("app", vec![sub], 0);
        let svc = imax.services.storage_management;
        let proc_ref = imax.spawn_program(dom, 0, Some(svc));
        let outcome = imax.run(1_000_000);
        assert!(
            matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
            "{outcome:?}"
        );
        assert_eq!(imax.sys.space.process(proc_ref).unwrap().fault_code, 0);
        let stats = imax.storage.lock().stats();
        assert_eq!(stats.heaps_created, 1);
        assert_eq!(stats.heaps_destroyed, 1);
    }

    #[test]
    fn round_robin_configuration_runs() {
        let cfg = ImaxConfig {
            scheduling: SchedulingChoice::RoundRobin { quantum: 10_000 },
            gc: Some(GcChoice::default()),
            ..ImaxConfig::development()
        };
        let mut imax = Imax::boot(&cfg);
        let dom = worker(&mut imax, 50);
        let a = imax.spawn_program(dom, 0, None);
        let b = imax.spawn_program(dom, 0, None);
        let outcome = imax.run(2_000_000);
        assert!(
            matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
            "{outcome:?}"
        );
        for p in [a, b] {
            assert_eq!(
                imax.sys.status_of(p),
                Some(i432_arch::ProcessStatus::Terminated)
            );
            assert_eq!(imax.sys.space.process(p).unwrap().timeslice, 10_000);
        }
    }

    #[test]
    fn faulting_program_is_logged_and_terminated() {
        let mut imax = Imax::boot(&ImaxConfig::development());
        let mut p = ProgramBuilder::new();
        p.alu(
            AluOp::Div,
            DataRef::Imm(1),
            DataRef::Imm(0),
            DataDst::Local(0),
        );
        p.halt();
        let sub = imax.sys.subprogram("crasher", p.finish(), 32, 8);
        let dom = imax.sys.install_domain("app", vec![sub], 0);
        let proc_ref = imax.spawn_program(dom, 0, None);
        let _ = imax.run(500_000);
        assert!(imax.fault_log.iter().any(
            |d| matches!(d, FaultDisposition::Terminated { process, .. } if *process == proc_ref)
        ));
    }
}
