//! Architectural fault conditions.
//!
//! Every checked operation on the object space reports failures through
//! [`ArchError`]. On the real 432 these conditions raise *context-level* or
//! *process-level faults*; the GDP layer (`i432-gdp`) maps them onto its
//! fault machinery, and iMAX in turn delivers faulted processes to fault
//! ports.

use crate::{level::Level, refs::ObjectIndex, rights::Rights};
use std::fmt;

/// Result alias used across the architectural layer.
pub type ArchResult<T> = Result<T, ArchError>;

/// An architectural protection or consistency violation.
///
/// These correspond to the fault conditions the 432 hardware detects while
/// qualifying an access descriptor or while reading/writing a segment part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// An object-table index was out of range.
    BadIndex(ObjectIndex),
    /// An object-table entry was addressed through a stale reference (the
    /// segment was reclaimed and its descriptor reused). On real hardware
    /// this cannot occur for correct software because reclamation is gated
    /// on garbage collection; the emulator detects it instead of exhibiting
    /// undefined behaviour.
    StaleRef(ObjectIndex),
    /// The entry exists but is on the free list (never allocated or already
    /// reclaimed).
    FreeEntry(ObjectIndex),
    /// An operation required rights the access descriptor does not carry.
    RightsViolation {
        /// Rights the operation needed.
        needed: Rights,
        /// Rights the descriptor carried.
        held: Rights,
    },
    /// An access descriptor for a shorter-lived object was about to be
    /// stored into a longer-lived object (paper §5: "an access for an object
    /// may never be stored into an object with a lower (more global) level
    /// number").
    LevelViolation {
        /// Level of the object the descriptor designates.
        stored: Level,
        /// Level of the object that would have held the descriptor.
        container: Level,
    },
    /// A data-part access was out of bounds.
    DataBounds {
        /// Byte offset of the access.
        offset: u32,
        /// Length of the access in bytes.
        len: u32,
        /// Data-part length of the object.
        part_len: u32,
    },
    /// An access-part access was out of bounds.
    AccessBounds {
        /// Slot index of the access.
        slot: u32,
        /// Access-part length of the object in slots.
        part_len: u32,
    },
    /// An access-descriptor slot was read but holds no descriptor.
    NullAccess {
        /// The slot that was empty.
        slot: u32,
    },
    /// A segment part exceeding the architectural maximum was requested.
    PartTooLarge {
        /// Requested size (bytes for data parts, slots for access parts).
        requested: u32,
        /// Architectural maximum for that part.
        max: u32,
    },
    /// The object is not of the system type the operation requires (e.g. a
    /// SEND applied to a non-port object).
    TypeMismatch {
        /// Human-readable name of the expected type.
        expected: &'static str,
    },
    /// The underlying arena has no free storage for the request. On the 432
    /// this surfaces as a storage-resource fault handled by iMAX memory
    /// management.
    ArenaExhausted {
        /// Bytes or slots requested.
        requested: u32,
    },
    /// The object table itself is full.
    TableExhausted,
    /// The referenced segment is currently swapped out (second-release
    /// virtual-memory support); the faulting process must wait for iMAX to
    /// swap it back in.
    SegmentAbsent(ObjectIndex),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::BadIndex(i) => write!(f, "object index {i} out of range"),
            ArchError::StaleRef(i) => write!(f, "stale reference to reused object entry {i}"),
            ArchError::FreeEntry(i) => write!(f, "reference to free object entry {i}"),
            ArchError::RightsViolation { needed, held } => {
                write!(f, "rights violation: need {needed}, hold {held}")
            }
            ArchError::LevelViolation { stored, container } => write!(
                f,
                "level violation: cannot store access for level-{stored} object \
                 into level-{container} object"
            ),
            ArchError::DataBounds {
                offset,
                len,
                part_len,
            } => write!(
                f,
                "data access [{offset}, {offset}+{len}) exceeds part length {part_len}"
            ),
            ArchError::AccessBounds { slot, part_len } => {
                write!(f, "access slot {slot} exceeds part length {part_len}")
            }
            ArchError::NullAccess { slot } => write!(f, "access slot {slot} is null"),
            ArchError::PartTooLarge { requested, max } => {
                write!(
                    f,
                    "segment part of {requested} exceeds architectural max {max}"
                )
            }
            ArchError::TypeMismatch { expected } => {
                write!(f, "object is not of system type {expected}")
            }
            ArchError::ArenaExhausted { requested } => {
                write!(f, "storage arena exhausted (requested {requested})")
            }
            ArchError::TableExhausted => write!(f, "object table exhausted"),
            ArchError::SegmentAbsent(i) => write!(f, "segment {i} is swapped out"),
        }
    }
}

impl std::error::Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ArchError::RightsViolation {
            needed: Rights::WRITE,
            held: Rights::READ,
        };
        let s = e.to_string();
        assert!(s.contains("rights violation"), "{s}");
    }

    #[test]
    fn level_violation_mentions_both_levels() {
        let e = ArchError::LevelViolation {
            stored: Level(3),
            container: Level(1),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('1'), "{s}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ArchError::TableExhausted, ArchError::TableExhausted,);
        assert_ne!(
            ArchError::TableExhausted,
            ArchError::ArenaExhausted { requested: 1 },
        );
    }
}
