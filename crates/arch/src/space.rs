//! [`ObjectSpace`]: the combined, checked view of object table + arenas.
//!
//! Every capability-qualified operation the system performs — data reads
//! and writes, access-descriptor loads and stores, object creation and
//! destruction — funnels through this type. It is the emulator's analogue
//! of the 432's address-translation and AD-qualification microcode, and is
//! therefore the *single enforcement point* for:
//!
//! * rights checking ([`Rights`]);
//! * part bounds checking;
//! * the level (lifetime) rule of paper §5;
//! * the garbage collector's gray-bit write barrier (paper §8.1);
//! * virtual-memory presence (`absent`) checks.

use crate::{
    descriptor::{Color, ObjectDescriptor, ObjectType, SystemType},
    error::{ArchError, ArchResult},
    level::Level,
    memory::{AccessArena, DataArena, FreeList},
    object_table::{Entry, ObjectTable},
    refs::{AccessDescriptor, ObjectIndex, ObjectRef},
    rights::Rights,
    sysobj::{PortState, ProcessState, ProcessorState, SroState, SysState, TdoState},
    MAX_ACCESS_SLOTS, MAX_PART_BYTES,
};
use serde::{Deserialize, Serialize};

/// Running counters for everything the space does; benches and the
/// reproduction harness read these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceStats {
    /// Access descriptors stored (the hardware "AD move" count).
    pub ad_stores: u64,
    /// Access descriptors loaded.
    pub ad_loads: u64,
    /// Objects shaded gray by the write barrier.
    pub barrier_shades: u64,
    /// Data-part read operations.
    pub data_reads: u64,
    /// Data-part write operations.
    pub data_writes: u64,
    /// Objects created.
    pub objects_created: u64,
    /// Objects destroyed/reclaimed.
    pub objects_destroyed: u64,
    /// Level-rule violations detected.
    pub level_faults: u64,
    /// Rights violations detected.
    pub rights_faults: u64,
}

impl SpaceStats {
    /// Field-wise accumulation (merging per-shard counters).
    pub fn merge(&mut self, other: &SpaceStats) {
        self.ad_stores += other.ad_stores;
        self.ad_loads += other.ad_loads;
        self.barrier_shades += other.barrier_shades;
        self.data_reads += other.data_reads;
        self.data_writes += other.data_writes;
        self.objects_created += other.objects_created;
        self.objects_destroyed += other.objects_destroyed;
        self.level_faults += other.level_faults;
        self.rights_faults += other.rights_faults;
    }
}

impl std::ops::Sub for SpaceStats {
    type Output = SpaceStats;

    /// Field-wise difference: `after - before` of two snapshots of
    /// monotonically increasing counters.
    fn sub(self, before: SpaceStats) -> SpaceStats {
        SpaceStats {
            ad_stores: self.ad_stores - before.ad_stores,
            ad_loads: self.ad_loads - before.ad_loads,
            barrier_shades: self.barrier_shades - before.barrier_shades,
            data_reads: self.data_reads - before.data_reads,
            data_writes: self.data_writes - before.data_writes,
            objects_created: self.objects_created - before.objects_created,
            objects_destroyed: self.objects_destroyed - before.objects_destroyed,
            level_faults: self.level_faults - before.level_faults,
            rights_faults: self.rights_faults - before.rights_faults,
        }
    }
}

/// Specification for a new object (argument of [`ObjectSpace::create_object`]).
#[derive(Debug, Clone)]
pub struct ObjectSpec {
    /// Data-part length in bytes.
    pub data_len: u32,
    /// Access-part length in slots.
    pub access_len: u32,
    /// Type identity.
    pub otype: ObjectType,
    /// Lifetime level; `None` takes the creating SRO's fixed level. Only
    /// the hardware context-creation path overrides this (contexts are one
    /// level deeper than their caller).
    pub level: Option<Level>,
    /// Interpreted state to attach.
    pub sys: SysState,
}

impl ObjectSpec {
    /// A generic object with the given part sizes.
    pub fn generic(data_len: u32, access_len: u32) -> ObjectSpec {
        ObjectSpec {
            data_len,
            access_len,
            otype: ObjectType::GENERIC,
            level: None,
            sys: SysState::Generic,
        }
    }
}

/// The checked object space: table plus both storage arenas.
///
/// Fields are public for the engine crates (`i432-gdp`, `imax-*`), which
/// play the role of microcode and the operating system; application-level
/// code in examples and tests should use only the checked methods.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectSpace {
    /// The global object table.
    pub table: ObjectTable,
    /// Data-part storage.
    pub data: DataArena,
    /// Access-part storage.
    pub access: AccessArena,
    /// Operation counters.
    pub stats: SpaceStats,
    root_sro: ObjectRef,
}

impl ObjectSpace {
    /// Builds a space with the given arena sizes and table limit, and
    /// installs the *root SRO* owning all of both arenas at level 0.
    pub fn new(data_bytes: u32, access_slots: u32, table_limit: u32) -> ObjectSpace {
        ObjectSpace::new_interleaved(data_bytes, access_slots, table_limit, 1, 0)
    }

    /// Builds one address-interleaved shard of a larger space: its table
    /// owns the global object indices `offset (mod stride)` and its
    /// arenas (with their root SRO) are private to the shard. With
    /// `stride == 1` this is exactly [`ObjectSpace::new`].
    pub fn new_interleaved(
        data_bytes: u32,
        access_slots: u32,
        table_limit: u32,
        stride: u32,
        offset: u32,
    ) -> ObjectSpace {
        let mut table = ObjectTable::new_strided(table_limit, stride, offset);
        let mut sro = SroState::new(Level::GLOBAL);
        sro.data_free = FreeList::new(0, data_bytes);
        sro.access_free = FreeList::new(0, access_slots);
        let root = table
            .install(
                ObjectDescriptor::new(
                    0,
                    0,
                    0,
                    0,
                    ObjectType::System(SystemType::StorageResource),
                    Level::GLOBAL,
                ),
                SysState::Sro(sro),
            )
            .expect("fresh table cannot be full");
        ObjectSpace {
            table,
            data: DataArena::new(data_bytes),
            access: AccessArena::new(access_slots),
            stats: SpaceStats::default(),
            root_sro: root,
        }
    }

    /// The root storage resource object (the global heap's ancestor).
    #[inline]
    pub fn root_sro(&self) -> ObjectRef {
        self.root_sro
    }

    /// Mints an access descriptor for `r` with the given rights.
    ///
    /// This is the *trusted* fabrication path, corresponding to microcode
    /// and type-manager privilege; ordinary programs only ever receive
    /// descriptors minted by object creation or derived by restriction.
    #[inline]
    pub fn mint(&self, r: ObjectRef, rights: Rights) -> AccessDescriptor {
        AccessDescriptor::new(r, rights)
    }

    /// Checks that `ad` designates a live object and conveys `needed`
    /// rights; returns the validated reference.
    ///
    /// This is the locked-path qualification step. Its result — plus the
    /// bounds/residency facts `data_window` derives — is exactly what a
    /// [`crate::SpaceAgent`] caches per processor (see
    /// [`crate::qualcache`]); the fast path may reuse it only while the
    /// shard's epoch proves none of those facts could have changed.
    pub fn qualify(&mut self, ad: AccessDescriptor, needed: Rights) -> ArchResult<ObjectRef> {
        self.table.get(ad.obj)?;
        if !ad.rights.contains(needed) {
            self.stats.rights_faults += 1;
            return Err(ArchError::RightsViolation {
                needed,
                held: ad.rights,
            });
        }
        Ok(ad.obj)
    }

    /// Checks liveness and the object's system type.
    pub fn expect_type(&self, ad: AccessDescriptor, t: SystemType) -> ArchResult<ObjectRef> {
        let e = self.table.get(ad.obj)?;
        if e.desc.otype != ObjectType::System(t) {
            return Err(ArchError::TypeMismatch { expected: t.name() });
        }
        Ok(ad.obj)
    }

    // -- Object lifecycle ---------------------------------------------------

    /// Creates an object from the given SRO (trusted path — the caller has
    /// already checked allocate rights on its SRO access descriptor).
    ///
    /// On success the new segment is zeroed, typed, leveled, and charged
    /// to the SRO. Partial failures roll back cleanly.
    pub fn create_object(&mut self, sro: ObjectRef, spec: ObjectSpec) -> ArchResult<ObjectRef> {
        if spec.data_len > MAX_PART_BYTES {
            return Err(ArchError::PartTooLarge {
                requested: spec.data_len,
                max: MAX_PART_BYTES,
            });
        }
        if spec.access_len > MAX_ACCESS_SLOTS {
            return Err(ArchError::PartTooLarge {
                requested: spec.access_len,
                max: MAX_ACCESS_SLOTS,
            });
        }
        // Carve both parts from the SRO.
        let (data_base, access_base, level) = {
            let entry = self.table.get_mut(sro)?;
            let sro_level = entry.desc.level;
            let SysState::Sro(state) = &mut entry.sys else {
                return Err(ArchError::TypeMismatch {
                    expected: "storage-resource",
                });
            };
            let level = spec.level.unwrap_or(state.level);
            // Objects cannot be longer-lived than the SRO that holds their
            // storage, except for the root SRO which is immortal anyway.
            let _ = sro_level;
            // Per-SRO table ceiling: checked before any carving so a
            // quota fault never perturbs the free lists.
            if state.table_quota != 0 && state.object_count >= state.table_quota {
                return Err(ArchError::TableExhausted);
            }
            let data_base = state.data_free.allocate(spec.data_len)?;
            let access_base = match state.access_free.allocate(spec.access_len) {
                Ok(b) => b,
                Err(e) => {
                    state
                        .data_free
                        .release(data_base, spec.data_len)
                        .expect("rollback of fresh allocation");
                    return Err(e);
                }
            };
            state.object_count += 1;
            state.created_total += 1;
            (data_base, access_base, level)
        };
        self.data
            .zero(data_base, spec.data_len)
            .expect("SRO runs lie inside the arena");
        self.access
            .zero(access_base, spec.access_len)
            .expect("SRO runs lie inside the arena");
        let mut desc = ObjectDescriptor::new(
            data_base,
            spec.data_len,
            access_base,
            spec.access_len,
            spec.otype,
            level,
        );
        desc.sro = Some(sro);
        match self.table.install(desc, spec.sys) {
            Ok(r) => {
                self.stats.objects_created += 1;
                i432_trace::emit(i432_trace::EventKind::SroAlloc, r.index.0);
                i432_trace::bump(i432_trace::Counter::SroAllocs);
                i432_trace::observe(i432_trace::Hist::AllocDataBytes, spec.data_len as u64);
                Ok(r)
            }
            Err(e) => {
                // Roll back the carve.
                let entry = self.table.get_mut(sro).expect("SRO was just used");
                if let SysState::Sro(state) = &mut entry.sys {
                    state
                        .data_free
                        .release(data_base, spec.data_len)
                        .expect("rollback");
                    state
                        .access_free
                        .release(access_base, spec.access_len)
                        .expect("rollback");
                    state.object_count -= 1;
                    state.created_total -= 1;
                }
                Err(e)
            }
        }
    }

    /// Destroys an object, returning its storage to its SRO and bumping
    /// the entry generation.
    ///
    /// The access part is nulled first so no descriptor survives in the
    /// arena. The caller (iMAX's storage manager or the garbage collector)
    /// is responsible for having established that the object is
    /// unreachable or being destroyed as part of a level-scoped bulk
    /// reclamation.
    pub fn destroy_object(&mut self, r: ObjectRef) -> ArchResult<Entry> {
        let (data_base, data_len, access_base, access_len, sro) = {
            let e = self.table.get(r)?;
            // An absent (swapped-out) segment's data run was already
            // released to its SRO at swap-out time; releasing it again
            // here would double-free. The swapping manager discards the
            // backing page when it next scrubs stale references.
            let data_len = if e.desc.absent { 0 } else { e.desc.data_len };
            (
                e.desc.data_base,
                data_len,
                e.desc.access_base,
                e.desc.access_len,
                e.desc.sro,
            )
        };
        // Destroying an SRO returns its remaining free space to its
        // parent's pool (the space was donated out of the parent). An SRO
        // that still charges live objects must be bulk-destroyed instead.
        if let SysState::Sro(state) = &self.table.get(r)?.sys {
            if state.object_count > 0 {
                return Err(ArchError::TypeMismatch {
                    expected: "empty storage-resource",
                });
            }
            let data_runs: Vec<_> = state.data_free.runs().collect();
            let access_runs: Vec<_> = state.access_free.runs().collect();
            let parent = state.parent;
            if let Some(parent) = parent {
                let pe = self.table.get_mut(parent)?;
                let SysState::Sro(pstate) = &mut pe.sys else {
                    return Err(ArchError::TypeMismatch {
                        expected: "storage-resource",
                    });
                };
                for run in data_runs {
                    pstate.data_free.release(run.base, run.len)?;
                }
                for run in access_runs {
                    pstate.access_free.release(run.base, run.len)?;
                }
            }
        }
        // Null the access part so the arena holds no stale descriptors.
        if access_len > 0 {
            self.access.zero(access_base, access_len)?;
        }
        if let Some(sro) = sro {
            let entry = self.table.get_mut(sro)?;
            let SysState::Sro(state) = &mut entry.sys else {
                return Err(ArchError::TypeMismatch {
                    expected: "storage-resource",
                });
            };
            state.data_free.release(data_base, data_len)?;
            state.access_free.release(access_base, access_len)?;
            state.object_count = state.object_count.saturating_sub(1);
            state.reclaimed_total += 1;
        } else {
            // The root SRO (and only it) has no parent; it is never
            // destroyed.
            return Err(ArchError::TypeMismatch {
                expected: "destructible object",
            });
        }
        self.stats.objects_destroyed += 1;
        self.table.reclaim(r)
    }

    // -- Data-part access ---------------------------------------------------

    fn data_window(
        &mut self,
        ad: AccessDescriptor,
        needed: Rights,
        off: u32,
        len: u32,
    ) -> ArchResult<u32> {
        let r = self.qualify(ad, needed)?;
        let e = self.table.get_mut(r)?;
        if e.desc.absent {
            return Err(ArchError::SegmentAbsent(r.index));
        }
        if off.saturating_add(len) > e.desc.data_len {
            return Err(ArchError::DataBounds {
                offset: off,
                len,
                part_len: e.desc.data_len,
            });
        }
        e.desc.accessed = true;
        if needed.contains(Rights::WRITE) {
            e.desc.dirty = true;
        }
        Ok(e.desc.data_base + off)
    }

    /// Reads bytes from an object's data part through an access descriptor.
    pub fn read_data(&mut self, ad: AccessDescriptor, off: u32, buf: &mut [u8]) -> ArchResult<()> {
        let at = self.data_window(ad, Rights::READ, off, buf.len() as u32)?;
        self.stats.data_reads += 1;
        self.data.read(at, buf)
    }

    /// Writes bytes into an object's data part through an access
    /// descriptor.
    pub fn write_data(&mut self, ad: AccessDescriptor, off: u32, buf: &[u8]) -> ArchResult<()> {
        let at = self.data_window(ad, Rights::WRITE, off, buf.len() as u32)?;
        self.stats.data_writes += 1;
        self.data.write(at, buf)
    }

    /// Reads a 64-bit little-endian word from a data part.
    pub fn read_u64(&mut self, ad: AccessDescriptor, off: u32) -> ArchResult<u64> {
        let mut b = [0u8; 8];
        self.read_data(ad, off, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a 64-bit little-endian word into a data part.
    pub fn write_u64(&mut self, ad: AccessDescriptor, off: u32, v: u64) -> ArchResult<()> {
        self.write_data(ad, off, &v.to_le_bytes())
    }

    // -- Access-part access ---------------------------------------------------

    // Access parts are always resident: iMAX's swapping manager swaps
    // only data parts, so capability topology (and therefore garbage
    // collection and the level rule) never depends on backing-store
    // state. Hence no `absent` check here, unlike `data_window`.
    fn access_slot_at(
        &mut self,
        ad: AccessDescriptor,
        needed: Rights,
        slot: u32,
    ) -> ArchResult<u32> {
        let r = self.qualify(ad, needed)?;
        let e = self.table.get(r)?;
        if slot >= e.desc.access_len {
            return Err(ArchError::AccessBounds {
                slot,
                part_len: e.desc.access_len,
            });
        }
        Ok(e.desc.access_base + slot)
    }

    /// Loads the access descriptor (possibly null) in `slot` of the
    /// container's access part. Requires read rights on the container.
    pub fn load_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        let at = self.access_slot_at(container, Rights::READ, slot)?;
        self.stats.ad_loads += 1;
        self.access.get(at)
    }

    /// Loads a slot that must be non-null.
    pub fn load_ad_required(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<AccessDescriptor> {
        self.load_ad(container, slot)?
            .ok_or(ArchError::NullAccess { slot })
    }

    /// Stores an access descriptor (or null) into `slot` of the
    /// container's access part.
    ///
    /// This is the hardware "AD move" path. It enforces:
    /// * write rights on the container;
    /// * the **level rule** — the designated object must live at least as
    ///   long as the container (paper §5);
    ///
    /// and runs the collector's **write barrier** — the designated object
    /// is shaded gray if white (paper §8.1: the hardware "implements the
    /// gray bit of that algorithm, setting it whenever access descriptors
    /// are moved").
    pub fn store_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        let (at, container_level) = self.store_ad_prepare(container, slot)?;
        if let Some(ad) = ad {
            self.store_ad_admit(ad.obj, container_level)?;
        }
        self.store_ad_commit(at, ad)
    }

    // The AD-store path is decomposed into three steps so a sharded
    // space can run the container-side steps and the target-side step on
    // *different* shards while keeping one copy of the enforcement
    // logic. Container side: rights + bounds + level of the container.
    // Target side: liveness, the level rule, and the write barrier.
    // Commit: the actual slot write, on the container's shard.

    /// Container-side checks of [`ObjectSpace::store_ad`]: write rights
    /// and slot bounds. Returns the arena address of the slot and the
    /// container's level for the target-side level-rule check.
    pub(crate) fn store_ad_prepare(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<(u32, Level)> {
        let at = self.access_slot_at(container, Rights::WRITE, slot)?;
        let container_level = self.table.get(container.obj)?.desc.level;
        Ok((at, container_level))
    }

    /// Target-side checks of [`ObjectSpace::store_ad`]: liveness, the
    /// level rule against the container's level, and the write barrier.
    /// `target` must live in this shard.
    pub(crate) fn store_ad_admit(
        &mut self,
        target: ObjectRef,
        container_level: Level,
    ) -> ArchResult<()> {
        let target_level = self.table.get(target)?.desc.level;
        if !container_level.may_hold(target_level) {
            self.stats.level_faults += 1;
            return Err(ArchError::LevelViolation {
                stored: target_level,
                container: container_level,
            });
        }
        // Dijkstra write barrier: shade the target of the new edge.
        self.shade(target)
    }

    /// Commit step of [`ObjectSpace::store_ad`]: the slot write plus the
    /// store counter, on the container's shard.
    pub(crate) fn store_ad_commit(
        &mut self,
        at: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        self.stats.ad_stores += 1;
        self.access.set(at, ad)
    }

    /// Hardware-linkage store: writes a slot of `container`'s access part
    /// without rights or level checks (bounds are still enforced, and the
    /// write barrier still runs).
    ///
    /// The 432 hardware links processes into port queues, contexts into
    /// processes and processes onto processors as part of *interpreting*
    /// those system objects — these queue/linkage writes are microcode
    /// state manipulation, not program-visible AD stores, so the level
    /// rule of §5 (which governs what *programs* may make reachable from
    /// longer-lived objects) does not apply to them. Only the interpreter
    /// and iMAX's trusted services call this.
    pub fn store_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        let at = self.store_ad_prepare_hw(container, slot)?;
        if let Some(ad) = ad {
            self.store_ad_admit_hw(ad.obj)?;
        }
        self.store_ad_commit(at, ad)
    }

    /// Container-side step of [`ObjectSpace::store_ad_hw`]: bounds check
    /// only (hardware linkage skips rights and levels).
    pub(crate) fn store_ad_prepare_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
    ) -> ArchResult<u32> {
        let e = self.table.get(container)?;
        if slot >= e.desc.access_len {
            return Err(ArchError::AccessBounds {
                slot,
                part_len: e.desc.access_len,
            });
        }
        Ok(e.desc.access_base + slot)
    }

    /// Target-side step of [`ObjectSpace::store_ad_hw`]: liveness plus
    /// the write barrier.
    pub(crate) fn store_ad_admit_hw(&mut self, target: ObjectRef) -> ArchResult<()> {
        self.table.get(target)?;
        self.shade(target)
    }

    /// Hardware-linkage load: reads a slot of `container`'s access part
    /// without a rights check (bounds still enforced).
    pub fn load_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        let e = self.table.get(container)?;
        if slot >= e.desc.access_len {
            return Err(ArchError::AccessBounds {
                slot,
                part_len: e.desc.access_len,
            });
        }
        let at = e.desc.access_base + slot;
        self.stats.ad_loads += 1;
        self.access.get(at)
    }

    // -- Garbage-collection support -------------------------------------------

    /// Shades an object gray if it is white (the hardware gray bit).
    pub fn shade(&mut self, r: ObjectRef) -> ArchResult<()> {
        let e = self.table.get_mut(r)?;
        if e.desc.color == Color::White {
            e.desc.color = Color::Gray;
            self.stats.barrier_shades += 1;
            i432_trace::emit(i432_trace::EventKind::GcShadeGray, r.index.0);
            i432_trace::bump(i432_trace::Counter::GcShadeGrays);
        }
        Ok(())
    }

    /// Reads an object's color.
    pub fn color_of(&self, r: ObjectRef) -> ArchResult<Color> {
        Ok(self.table.get(r)?.desc.color)
    }

    /// Sets an object's color (collector use only).
    pub fn set_color(&mut self, r: ObjectRef, c: Color) -> ArchResult<()> {
        self.table.get_mut(r)?.desc.color = c;
        Ok(())
    }

    /// Iterates the (possibly null) access slots of an object — the
    /// collector's scan of one object. Returns the live descriptors.
    pub fn scan_access_part(&self, r: ObjectRef) -> ArchResult<Vec<AccessDescriptor>> {
        let e = self.table.get(r)?;
        let mut out = Vec::new();
        for s in 0..e.desc.access_len {
            if let Some(ad) = self.access.get(e.desc.access_base + s)? {
                out.push(ad);
            }
        }
        Ok(out)
    }

    // -- Typed views of interpreted state --------------------------------------

    /// Immutable typed view of a port's interpreted state.
    pub fn port(&self, r: ObjectRef) -> ArchResult<&PortState> {
        match &self.table.get(r)?.sys {
            SysState::Port(p) => Ok(p),
            _ => Err(ArchError::TypeMismatch { expected: "port" }),
        }
    }

    /// Mutable typed view of a port's interpreted state.
    pub fn port_mut(&mut self, r: ObjectRef) -> ArchResult<&mut PortState> {
        match &mut self.table.get_mut(r)?.sys {
            SysState::Port(p) => Ok(p),
            _ => Err(ArchError::TypeMismatch { expected: "port" }),
        }
    }

    /// Immutable typed view of a process's interpreted state.
    pub fn process(&self, r: ObjectRef) -> ArchResult<&ProcessState> {
        match &self.table.get(r)?.sys {
            SysState::Process(p) => Ok(p),
            _ => Err(ArchError::TypeMismatch {
                expected: "process",
            }),
        }
    }

    /// Mutable typed view of a process's interpreted state.
    pub fn process_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessState> {
        match &mut self.table.get_mut(r)?.sys {
            SysState::Process(p) => Ok(p),
            _ => Err(ArchError::TypeMismatch {
                expected: "process",
            }),
        }
    }

    /// Immutable typed view of a processor's interpreted state.
    pub fn processor(&self, r: ObjectRef) -> ArchResult<&ProcessorState> {
        match &self.table.get(r)?.sys {
            SysState::Processor(p) => Ok(p),
            _ => Err(ArchError::TypeMismatch {
                expected: "processor",
            }),
        }
    }

    /// Mutable typed view of a processor's interpreted state.
    pub fn processor_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessorState> {
        match &mut self.table.get_mut(r)?.sys {
            SysState::Processor(p) => Ok(p),
            _ => Err(ArchError::TypeMismatch {
                expected: "processor",
            }),
        }
    }

    /// Immutable typed view of an SRO's interpreted state.
    pub fn sro(&self, r: ObjectRef) -> ArchResult<&SroState> {
        match &self.table.get(r)?.sys {
            SysState::Sro(s) => Ok(s),
            _ => Err(ArchError::TypeMismatch {
                expected: "storage-resource",
            }),
        }
    }

    /// Mutable typed view of an SRO's interpreted state.
    pub fn sro_mut(&mut self, r: ObjectRef) -> ArchResult<&mut SroState> {
        match &mut self.table.get_mut(r)?.sys {
            SysState::Sro(s) => Ok(s),
            _ => Err(ArchError::TypeMismatch {
                expected: "storage-resource",
            }),
        }
    }

    /// Immutable typed view of a type-definition object's state.
    pub fn tdo(&self, r: ObjectRef) -> ArchResult<&TdoState> {
        match &self.table.get(r)?.sys {
            SysState::TypeDef(t) => Ok(t),
            _ => Err(ArchError::TypeMismatch {
                expected: "type-definition",
            }),
        }
    }

    /// Mutable typed view of a type-definition object's state.
    pub fn tdo_mut(&mut self, r: ObjectRef) -> ArchResult<&mut TdoState> {
        match &mut self.table.get_mut(r)?.sys {
            SysState::TypeDef(t) => Ok(t),
            _ => Err(ArchError::TypeMismatch {
                expected: "type-definition",
            }),
        }
    }

    /// Convenience: returns every live object index (collector sweep
    /// enumeration).
    pub fn live_indices(&self) -> Vec<ObjectIndex> {
        self.table.iter_live().map(|(i, _)| i).collect()
    }

    /// Placement-independent logical digest of the whole space. Equal
    /// digests mean equal logical state regardless of allocation order;
    /// see [`crate::digest::logical_digest`].
    pub fn digest(&self) -> u64 {
        crate::digest::logical_digest(self)
    }

    /// Destroys an SRO together with every object allocated from it,
    /// recursing through child SROs.
    ///
    /// This is the level-scoped *bulk reclamation* of paper §5: because
    /// the level rule guarantees no access for a local object escaped its
    /// environment, a local heap "will be destroyed automatically when the
    /// process returns above the call depth to which it corresponds"
    /// without leaving dangling references. Returns the number of objects
    /// reclaimed (including SROs).
    pub fn bulk_destroy_sro(&mut self, sro: ObjectRef) -> ArchResult<u32> {
        // Validate target is a live SRO.
        self.sro(sro)?;
        let mut reclaimed = 0;
        // Children first (and recursively, grandchildren). Collect before
        // destroying to keep the borrow checker and iteration honest.
        let children: Vec<ObjectRef> = self
            .table
            .iter_live()
            .filter(|(_, e)| e.desc.sro.map(|s| s == sro).unwrap_or(false))
            .map(|(i, e)| ObjectRef {
                index: i,
                generation: e.generation,
            })
            .collect();
        for child in children {
            // A child may itself be an SRO: recurse so its own objects are
            // reclaimed into it before its storage goes back to us.
            let is_sro = matches!(self.table.get(child).map(|e| &e.sys), Ok(SysState::Sro(_)));
            if is_sro {
                reclaimed += self.bulk_destroy_sro(child)?;
            } else {
                self.destroy_object(child)?;
                reclaimed += 1;
            }
        }
        self.destroy_object(sro)?;
        Ok(reclaimed + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ObjectSpace {
        ObjectSpace::new(4096, 512, 256)
    }

    #[test]
    fn create_and_rw_roundtrip() {
        let mut s = space();
        let root = s.root_sro();
        let r = s.create_object(root, ObjectSpec::generic(64, 4)).unwrap();
        let ad = s.mint(r, Rights::READ | Rights::WRITE);
        s.write_u64(ad, 0, 0xabcd).unwrap();
        assert_eq!(s.read_u64(ad, 0).unwrap(), 0xabcd);
    }

    #[test]
    fn fresh_object_is_zeroed() {
        let mut s = space();
        let root = s.root_sro();
        let a = s.create_object(root, ObjectSpec::generic(16, 2)).unwrap();
        let ad_a = s.mint(a, Rights::ALL);
        s.write_u64(ad_a, 0, u64::MAX).unwrap();
        s.store_ad(ad_a, 0, Some(ad_a)).unwrap();
        s.destroy_object(a).unwrap();
        let b = s.create_object(root, ObjectSpec::generic(16, 2)).unwrap();
        let ad_b = s.mint(b, Rights::ALL);
        assert_eq!(s.read_u64(ad_b, 0).unwrap(), 0, "data part must be zeroed");
        assert_eq!(
            s.load_ad(ad_b, 0).unwrap(),
            None,
            "access part must be nulled"
        );
    }

    #[test]
    fn rights_enforced_on_data() {
        let mut s = space();
        let root = s.root_sro();
        let r = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let ro = s.mint(r, Rights::READ);
        assert!(matches!(
            s.write_u64(ro, 0, 1),
            Err(ArchError::RightsViolation { .. })
        ));
        assert!(s.read_u64(ro, 0).is_ok());
        assert_eq!(s.stats.rights_faults, 1);
    }

    #[test]
    fn bounds_enforced_on_data() {
        let mut s = space();
        let root = s.root_sro();
        let r = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let ad = s.mint(r, Rights::ALL);
        assert!(matches!(
            s.read_u64(ad, 1),
            Err(ArchError::DataBounds { .. })
        ));
    }

    #[test]
    fn level_rule_enforced_on_store() {
        let mut s = space();
        let root = s.root_sro();
        // A local object at level 2.
        let local = s
            .create_object(
                root,
                ObjectSpec {
                    level: Some(Level(2)),
                    ..ObjectSpec::generic(8, 2)
                },
            )
            .unwrap();
        // A global container at level 0.
        let global = s.create_object(root, ObjectSpec::generic(8, 2)).unwrap();
        let local_ad = s.mint(local, Rights::ALL);
        let global_ad = s.mint(global, Rights::ALL);
        // Storing the local AD into the global object violates lifetimes.
        assert!(matches!(
            s.store_ad(global_ad, 0, Some(local_ad)),
            Err(ArchError::LevelViolation { .. })
        ));
        // The converse is fine.
        s.store_ad(local_ad, 0, Some(global_ad)).unwrap();
        assert_eq!(s.stats.level_faults, 1);
    }

    #[test]
    fn write_barrier_shades_target() {
        let mut s = space();
        let root = s.root_sro();
        let a = s.create_object(root, ObjectSpec::generic(0, 2)).unwrap();
        let b = s.create_object(root, ObjectSpec::generic(0, 0)).unwrap();
        assert_eq!(s.color_of(b).unwrap(), Color::White);
        let a_ad = s.mint(a, Rights::ALL);
        let b_ad = s.mint(b, Rights::NONE);
        s.store_ad(a_ad, 0, Some(b_ad)).unwrap();
        assert_eq!(s.color_of(b).unwrap(), Color::Gray);
        assert_eq!(s.stats.barrier_shades, 1);
        // Storing again does not re-shade a gray object.
        s.store_ad(a_ad, 1, Some(b_ad)).unwrap();
        assert_eq!(s.stats.barrier_shades, 1);
    }

    #[test]
    fn destroy_returns_storage() {
        let mut s = space();
        let root = s.root_sro();
        let free_before = s.sro(root).unwrap().data_free.total_free();
        let r = s.create_object(root, ObjectSpec::generic(128, 8)).unwrap();
        assert_eq!(
            s.sro(root).unwrap().data_free.total_free(),
            free_before - 128
        );
        s.destroy_object(r).unwrap();
        assert_eq!(s.sro(root).unwrap().data_free.total_free(), free_before);
        assert_eq!(s.sro(root).unwrap().object_count, 0);
    }

    #[test]
    fn destroyed_object_is_stale() {
        let mut s = space();
        let root = s.root_sro();
        let r = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let ad = s.mint(r, Rights::ALL);
        s.destroy_object(r).unwrap();
        assert!(s.read_u64(ad, 0).is_err());
    }

    #[test]
    fn part_size_limits() {
        let mut s = ObjectSpace::new(1 << 20, 1 << 16, 64);
        let root = s.root_sro();
        assert!(matches!(
            s.create_object(root, ObjectSpec::generic(MAX_PART_BYTES + 1, 0)),
            Err(ArchError::PartTooLarge { .. })
        ));
        assert!(matches!(
            s.create_object(root, ObjectSpec::generic(0, MAX_ACCESS_SLOTS + 1)),
            Err(ArchError::PartTooLarge { .. })
        ));
    }

    #[test]
    fn exhaustion_rolls_back() {
        let mut s = ObjectSpace::new(64, 2, 64);
        let root = s.root_sro();
        // Data fits but access part cannot: allocation must roll back the
        // data carve.
        let before = s.sro(root).unwrap().data_free.total_free();
        assert!(s.create_object(root, ObjectSpec::generic(32, 100)).is_err());
        assert_eq!(s.sro(root).unwrap().data_free.total_free(), before);
        assert_eq!(s.sro(root).unwrap().object_count, 0);
    }

    #[test]
    fn null_slot_load() {
        let mut s = space();
        let root = s.root_sro();
        let r = s.create_object(root, ObjectSpec::generic(0, 2)).unwrap();
        let ad = s.mint(r, Rights::ALL);
        assert_eq!(s.load_ad(ad, 0).unwrap(), None);
        assert!(matches!(
            s.load_ad_required(ad, 0),
            Err(ArchError::NullAccess { slot: 0 })
        ));
        assert!(matches!(
            s.load_ad(ad, 5),
            Err(ArchError::AccessBounds { .. })
        ));
    }

    #[test]
    fn typed_views_reject_wrong_type() {
        let mut s = space();
        let root = s.root_sro();
        let r = s.create_object(root, ObjectSpec::generic(0, 0)).unwrap();
        assert!(s.port(r).is_err());
        assert!(s.process(r).is_err());
        assert!(s.sro(root).is_ok());
    }

    #[test]
    fn absent_segment_faults() {
        let mut s = space();
        let root = s.root_sro();
        let r = s.create_object(root, ObjectSpec::generic(8, 1)).unwrap();
        s.table.get_mut(r).unwrap().desc.absent = true;
        let ad = s.mint(r, Rights::ALL);
        assert!(matches!(
            s.read_u64(ad, 0),
            Err(ArchError::SegmentAbsent(_))
        ));
        // Access parts stay resident under data-part swapping.
        assert!(s.load_ad(ad, 0).is_ok());
    }

    #[test]
    fn accessed_and_dirty_bits_track_use() {
        let mut s = space();
        let root = s.root_sro();
        let r = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let ad = s.mint(r, Rights::ALL);
        assert!(!s.table.get(r).unwrap().desc.accessed);
        s.read_u64(ad, 0).unwrap();
        assert!(s.table.get(r).unwrap().desc.accessed);
        assert!(!s.table.get(r).unwrap().desc.dirty);
        s.write_u64(ad, 0, 7).unwrap();
        assert!(s.table.get(r).unwrap().desc.dirty);
    }
}
