//! Object descriptors: the per-segment record in the global object table.

use crate::{level::Level, refs::ObjectRef};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The system types the 432 processor recognizes and interprets.
///
/// Paper §2: "The simplest type of object is *generic* for which no
/// additional semantics exist. Other types of objects are recognized by
/// the processor and are used to control its operation. Examples of these
/// are processor, process, storage resource, and port objects."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemType {
    /// No hardware-interpreted semantics.
    Generic,
    /// A physical processor's control object.
    Processor,
    /// A schedulable process.
    Process,
    /// An activation record created by CALL.
    Context,
    /// A protection domain (maps to an Ada package).
    Domain,
    /// A segment of executable instructions.
    Instructions,
    /// A communication or dispatching port.
    Port,
    /// A storage resource object describing free memory.
    StorageResource,
    /// A type definition object backing a user-defined type.
    TypeDefinition,
}

impl SystemType {
    /// Short display name used in faults and traces.
    pub const fn name(self) -> &'static str {
        match self {
            SystemType::Generic => "generic",
            SystemType::Processor => "processor",
            SystemType::Process => "process",
            SystemType::Context => "context",
            SystemType::Domain => "domain",
            SystemType::Instructions => "instructions",
            SystemType::Port => "port",
            SystemType::StorageResource => "storage-resource",
            SystemType::TypeDefinition => "type-definition",
        }
    }
}

/// The full type identity of an object.
///
/// Hardware-recognized system types are distinguished from user-defined
/// types, which are identified by an object reference to their type
/// definition object (TDO). The type travels with the object descriptor,
/// so "no matter what path a system object follows within the 432, its
/// hardware-recognized type identity is guaranteed to be preserved and
/// checked" (paper §7.2) — and the same guarantee extends to user types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectType {
    /// A type the processor interprets directly.
    System(SystemType),
    /// A user-defined type, identified by its type definition object.
    User(ObjectRef),
}

impl ObjectType {
    /// The generic (uninterpreted) type.
    pub const GENERIC: ObjectType = ObjectType::System(SystemType::Generic);

    /// Returns the system type if this is one.
    pub const fn system(self) -> Option<SystemType> {
        match self {
            ObjectType::System(t) => Some(t),
            ObjectType::User(_) => None,
        }
    }

    /// Returns the TDO reference if this is a user-defined type.
    pub const fn user_tdo(self) -> Option<ObjectRef> {
        match self {
            ObjectType::System(_) => None,
            ObjectType::User(tdo) => Some(tdo),
        }
    }
}

impl fmt::Display for ObjectType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectType::System(t) => write!(f, "{}", t.name()),
            ObjectType::User(tdo) => write!(f, "user({tdo})"),
        }
    }
}

/// Tricolor garbage-collection state stored in the object descriptor.
///
/// The 432 hardware implements "the gray bit of that algorithm
/// \[Dijkstra et al.\], setting it whenever access descriptors are moved"
/// (paper §8.1). The emulator keeps the full tricolor state in the
/// descriptor; the *write barrier* in [`crate::ObjectSpace::store_ad`]
/// performs the hardware's shade-to-gray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Color {
    /// Not yet reached in the current collection cycle; a white object at
    /// sweep time is garbage.
    #[default]
    White,
    /// Reached but not yet scanned (the hardware gray bit).
    Gray,
    /// Reached and fully scanned.
    Black,
}

/// A segment's record in the global object table.
///
/// Paper §2: "The one object descriptor for a given segment provides the
/// physical base address and length of the segment, indicates whether the
/// segment contains data or accesses, indicates what type of object it
/// represents, and includes information needed for virtual memory
/// management and parallel garbage collection."
///
/// The emulator's segments always carry *both* parts (either may be
/// zero-length), each carved from its own arena.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectDescriptor {
    /// Base offset of the data part in the data arena.
    pub data_base: u32,
    /// Length of the data part in bytes (≤ [`crate::MAX_PART_BYTES`]).
    pub data_len: u32,
    /// Base slot of the access part in the access arena.
    pub access_base: u32,
    /// Length of the access part in slots (≤ [`crate::MAX_ACCESS_SLOTS`]).
    pub access_len: u32,
    /// Type identity of the object.
    pub otype: ObjectType,
    /// Lifetime level (see [`Level`]).
    pub level: Level,
    /// The storage resource object the segment was allocated from, if any
    /// (the root SRO and bootstrap objects have none). Used for accounting
    /// and for level-scoped bulk destruction of local heaps.
    pub sro: Option<ObjectRef>,
    /// Garbage-collection color.
    pub color: Color,
    /// Set once a destruction filter has been notified about this object,
    /// so a resurrected-then-dropped object is reclaimed without a second
    /// notification.
    pub filter_notified: bool,
    /// Virtual-memory: segment contents are currently on backing store.
    pub absent: bool,
    /// Virtual-memory: referenced since the bit was last cleared.
    pub accessed: bool,
    /// Virtual-memory: written since the bit was last cleared.
    pub dirty: bool,
}

impl ObjectDescriptor {
    /// Creates a descriptor for a segment with the given parts.
    pub fn new(
        data_base: u32,
        data_len: u32,
        access_base: u32,
        access_len: u32,
        otype: ObjectType,
        level: Level,
    ) -> ObjectDescriptor {
        ObjectDescriptor {
            data_base,
            data_len,
            access_base,
            access_len,
            otype,
            level,
            sro: None,
            color: Color::White,
            filter_notified: false,
            absent: false,
            accessed: false,
            dirty: false,
        }
    }

    /// Total footprint in data-arena bytes.
    #[inline]
    pub const fn data_bytes(&self) -> u32 {
        self.data_len
    }

    /// Total footprint in access-arena slots.
    #[inline]
    pub const fn access_slots(&self) -> u32 {
        self.access_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refs::ObjectIndex;

    #[test]
    fn object_type_projections() {
        let t = ObjectType::System(SystemType::Port);
        assert_eq!(t.system(), Some(SystemType::Port));
        assert_eq!(t.user_tdo(), None);

        let tdo = ObjectRef {
            index: ObjectIndex(9),
            generation: 0,
        };
        let u = ObjectType::User(tdo);
        assert_eq!(u.system(), None);
        assert_eq!(u.user_tdo(), Some(tdo));
    }

    #[test]
    fn descriptor_defaults_are_clean() {
        let d = ObjectDescriptor::new(0, 16, 0, 4, ObjectType::GENERIC, Level::GLOBAL);
        assert_eq!(d.color, Color::White);
        assert!(!d.absent && !d.dirty && !d.accessed && !d.filter_notified);
        assert_eq!(d.sro, None);
    }

    #[test]
    fn system_type_names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<_> = [
            SystemType::Generic,
            SystemType::Processor,
            SystemType::Process,
            SystemType::Context,
            SystemType::Domain,
            SystemType::Instructions,
            SystemType::Port,
            SystemType::StorageResource,
            SystemType::TypeDefinition,
        ]
        .iter()
        .map(|t| t.name())
        .collect();
        assert_eq!(names.len(), 9);
    }
}
