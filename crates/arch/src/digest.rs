//! Placement-independent logical digests and whole-space invariant checks.
//!
//! The conformance oracle (`crates/conform`) runs the same program on the
//! deterministic single-shard runner and on the threaded lock-striped
//! runner and demands *bit-identical logical end state*. "Logical" is the
//! operative word: object-table indices, generation counters and arena
//! base addresses are placement artifacts — they legitimately differ
//! between shard counts and between interleavings. What must **not**
//! differ is everything the paper's protection model defines: which
//! objects exist, their types, levels and part sizes, the bytes in their
//! data parts, and the rights structure of the access graph.
//!
//! [`logical_digest`] condenses exactly that into one `u64` using
//! iterative label refinement (Weisfeiler–Leman style graph hashing):
//!
//! 1. every live object gets a *local* label hashing its
//!    placement-independent fields (type tag, level, part lengths, data
//!    bytes for program-visible objects, and a stable subset of its
//!    system-object state);
//! 2. for a fixed number of rounds, each label is re-mixed with the
//!    labels of the objects its access part designates (slot position and
//!    rights included), so the *shape* of the capability graph flows into
//!    every label without ever naming an index;
//! 3. the final digest combines all labels commutatively, so table order
//!    and allocation order cannot matter.
//!
//! ## What is digested, what is not
//!
//! * **In**: system-type tag, level number, data/access part lengths;
//!   data-part bytes of generic and user-typed objects; per-slot rights
//!   and target labels; port geometry, discipline and queued-message
//!   multiset; process status / priority / level / fault code; context
//!   ip and subprogram; domain and TDO identity.
//! * **Out**: object indices, generations, arena base addresses, SRO
//!   free-list shape and allocation counters, processor idle/busy cycles,
//!   GC colors and residency bits, every `SpaceStats` counter, port wait
//!   queues and statistics, process cycle accounting. These are either
//!   placement, timing, or bookkeeping — not capability semantics.
//!
//! Storage-resource and processor objects are pure infrastructure (how
//! many exist depends on the shard and processor counts, not on the
//! program), so they are not digested as nodes; an access descriptor
//! *pointing at* one contributes a stable type-tagged token instead of a
//! full label.
//!
//! [`check_invariants`] walks the same graph and reports violations of
//! the structural invariants every space must satisfy at any quiescent
//! point: no dangling or stale access descriptors, the level rule on
//! every program-visible edge, and per-SRO object accounting.

use crate::{
    descriptor::{ObjectType, SystemType},
    refs::{AccessDescriptor, ObjectIndex, ObjectRef},
    sysobj::SysState,
    traits::SpaceMut,
    Entry,
};
use std::collections::HashMap;

/// Label-refinement rounds. Deep enough that any realistic capability
/// chain (contexts → containers → leaves) influences its roots; bounded
/// so digesting stays linear in edges.
const ROUNDS: u32 = 16;

/// Mixes one value into a running hash (splitmix64 finalizer over an
/// xor-fold; deterministic, dependency-free, well distributed).
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Folds a byte slice into a hash, 8 bytes at a time.
fn mix_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(w));
    }
    mix(h, bytes.len() as u64)
}

/// Stable tag for a system type (independent of enum layout).
const fn type_tag(t: SystemType) -> u64 {
    match t {
        SystemType::Generic => 0,
        SystemType::Processor => 1,
        SystemType::Process => 2,
        SystemType::Context => 3,
        SystemType::Domain => 4,
        SystemType::Instructions => 5,
        SystemType::Port => 6,
        SystemType::StorageResource => 7,
        SystemType::TypeDefinition => 8,
    }
}

/// True when the object is digested as a graph node. Storage-resource
/// and processor objects are infrastructure whose population varies with
/// shard/processor configuration, not with program semantics.
fn is_node(e: &Entry) -> bool {
    !matches!(
        e.desc.otype,
        ObjectType::System(SystemType::StorageResource) | ObjectType::System(SystemType::Processor)
    )
}

/// The placement-independent local label of one object (no edges yet).
fn local_label<S: SpaceMut + ?Sized>(space: &S, r: ObjectRef, e: &Entry) -> u64 {
    let mut h = 0xC0FF_EE00_D15E_A5E5u64;
    h = match e.desc.otype {
        ObjectType::System(t) => mix(h, type_tag(t)),
        // The defining TDO is itself an object; its identity flows in
        // through an extra edge during refinement, not here.
        ObjectType::User(_) => mix(h, 255),
    };
    h = mix(h, u64::from(e.desc.level.0));
    h = mix(h, u64::from(e.desc.data_len));
    h = mix(h, u64::from(e.desc.access_len));

    // Data bytes are program-visible state for generic and user-typed
    // objects. System objects keep their logical state in `sys` (their
    // data parts are interpreter scratch), so only the stable subset
    // below participates.
    let include_data = matches!(
        e.desc.otype,
        ObjectType::System(SystemType::Generic) | ObjectType::User(_)
    );
    if include_data && e.desc.data_len > 0 {
        if let Ok(arena) = space.data_arena(r) {
            let mut buf = vec![0u8; e.desc.data_len as usize];
            if arena.read(e.desc.data_base, &mut buf).is_ok() {
                h = mix_bytes(h, &buf);
            }
        }
    }

    match &e.sys {
        SysState::Generic => h,
        // Infrastructure objects never reach here (not nodes), but keep
        // the arms total for edge-token hashing.
        SysState::Processor(p) => mix(h, u64::from(p.id)),
        SysState::Sro(s) => mix(h, u64::from(s.level.0)),
        SysState::Process(p) => {
            let mut h = mix(h, p.status as u64);
            h = mix(h, u64::from(p.priority));
            h = mix(h, u64::from(p.level.0));
            h = mix(h, u64::from(p.sys_level));
            mix(h, u64::from(p.fault_code))
        }
        SysState::Context(c) => {
            let h = mix(h, u64::from(c.ip));
            mix(h, u64::from(c.subprogram))
        }
        SysState::Domain(d) => {
            let mut h = mix_bytes(h, d.name.as_bytes());
            for s in &d.subprograms {
                h = mix_bytes(h, s.name.as_bytes());
            }
            h
        }
        SysState::Instructions(code) => mix(h, u64::from(code.0)),
        SysState::Port(p) => {
            let mut h = mix(h, u64::from(p.capacity));
            h = mix(h, u64::from(p.wait_capacity));
            h = mix(h, p.discipline as u64);
            // Queue *population*, not queue position: the ring head
            // depends on interleaving history even when the multiset of
            // queued messages is identical.
            mix(h, u64::from(p.msg_count))
        }
        SysState::TypeDef(t) => {
            let h = mix_bytes(h, t.name.as_bytes());
            mix(h, u64::from(t.filter_enabled))
        }
    }
}

/// How a node's outgoing edges fold into its label.
fn slot_range(e: &Entry) -> (u32, u32, bool) {
    match (&e.desc.otype, &e.sys) {
        // A port's access part is [messages | waiters]. Message slots
        // form a ring (position = interleaving history), so they fold as
        // a multiset; the waiter region holds parked processes or
        // processors — scheduling state, not logical state — and is
        // skipped entirely.
        (ObjectType::System(SystemType::Port), SysState::Port(p)) => (0, p.capacity, false),
        // Everything else is positionally addressed (context linkage
        // slots, object fields, domain subprogram slots).
        _ => (0, e.desc.access_len, true),
    }
}

/// The label contribution of one access descriptor, given current labels.
fn edge_target_label<S: SpaceMut + ?Sized>(
    space: &S,
    labels: &HashMap<u32, u64>,
    ad: AccessDescriptor,
) -> u64 {
    match space.entry_by_index(ad.obj.index) {
        Some(te) if te.generation == ad.obj.generation => {
            if is_node(te) {
                labels.get(&ad.obj.index.0).copied().unwrap_or(0xDEAD_BEEF)
            } else {
                // Infrastructure target: a stable type-tagged token.
                match &te.sys {
                    SysState::Sro(s) => mix(0x5150_5150, u64::from(s.level.0)),
                    SysState::Processor(p) => mix(0xC19C_19C1, u64::from(p.id)),
                    _ => 0xC1C1_C1C1,
                }
            }
        }
        // Dangling or stale: still deterministic, still digested (the
        // invariant checker reports it; the digest must not panic).
        _ => 0xDA96_1E55u64,
    }
}

/// Collects the live node set: `(index, ref)` pairs, skipping
/// infrastructure objects.
fn node_set<S: SpaceMut + ?Sized>(space: &S) -> Vec<(u32, ObjectRef)> {
    let mut nodes = Vec::new();
    space.for_each_live(&mut |i: ObjectIndex, e: &Entry| {
        if is_node(e) {
            if let Ok(r) = space.ref_for(i) {
                nodes.push((i.0, r));
            }
        }
    });
    nodes
}

/// Runs label refinement over `nodes` and returns the final label map.
fn refine<S: SpaceMut + ?Sized>(space: &S, nodes: &[(u32, ObjectRef)]) -> HashMap<u32, u64> {
    let mut base = HashMap::with_capacity(nodes.len());
    for &(i, r) in nodes {
        if let Ok(e) = space.entry(r) {
            base.insert(i, local_label(space, r, e));
        }
    }
    let mut labels = base.clone();
    for _ in 0..ROUNDS {
        let mut next = HashMap::with_capacity(nodes.len());
        for &(i, r) in nodes {
            let Ok(e) = space.entry(r) else { continue };
            let mut h = base[&i];
            let (lo, hi, positional) = slot_range(e);
            let mut unordered_acc = 0u64;
            for slot in lo..hi.min(e.desc.access_len) {
                let ad = space
                    .access_arena(r)
                    .ok()
                    .and_then(|a| a.get(e.desc.access_base + slot).ok())
                    .flatten();
                if positional {
                    match ad {
                        Some(ad) => {
                            let t = edge_target_label(space, &labels, ad);
                            h = mix(h, mix(u64::from(slot), mix(u64::from(ad.rights.bits()), t)));
                        }
                        None => h = mix(h, mix(u64::from(slot), 0x4E55_4C4C)),
                    }
                } else if let Some(ad) = ad {
                    let t = edge_target_label(space, &labels, ad);
                    unordered_acc = unordered_acc.wrapping_add(mix(u64::from(ad.rights.bits()), t));
                }
            }
            if !positional {
                h = mix(h, unordered_acc);
            }
            // A user-typed object's defining TDO is an implicit edge.
            if let ObjectType::User(tdo) = e.desc.otype {
                let tdo_ad = AccessDescriptor::new(tdo, crate::Rights::NONE);
                h = mix(h, mix(0x7D0, edge_target_label(space, &labels, tdo_ad)));
            }
            next.insert(i, h);
        }
        labels = next;
    }
    labels
}

/// Commutative combination of a label collection.
fn combine(labels: impl Iterator<Item = u64>) -> u64 {
    let mut sum = 0u64;
    let mut xor = 0u64;
    let mut n = 0u64;
    for l in labels {
        sum = sum.wrapping_add(l);
        xor ^= l;
        n += 1;
    }
    mix(mix(n, sum), xor)
}

/// The placement-independent logical digest of an entire space.
///
/// Two spaces digest equal iff they hold the same logical object
/// population with the same data contents, rights structure, levels and
/// system-object state — regardless of shard count, allocation order, or
/// table placement. See the module docs for the exact in/out policy.
pub fn logical_digest<S: SpaceMut + ?Sized>(space: &S) -> u64 {
    let nodes = node_set(space);
    let labels = refine(space, &nodes);
    combine(nodes.iter().filter_map(|(i, _)| labels.get(i).copied()))
}

/// Digest of the subgraph reachable from `roots`, in root order.
///
/// Used by the conformance oracle to compare *workload-visible* state
/// while ignoring infrastructure whose population varies with the
/// processor and shard configuration (dispatch ports, per-shard root
/// SROs, processor objects). Traversal follows the same edge policy as
/// [`logical_digest`] and does not enter infrastructure objects.
pub fn digest_from_roots<S: SpaceMut + ?Sized>(space: &S, roots: &[AccessDescriptor]) -> u64 {
    // Reachability sweep over indices.
    let mut reach: Vec<(u32, ObjectRef)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut work: Vec<ObjectRef> = Vec::new();
    for ad in roots {
        work.push(ad.obj);
    }
    while let Some(r) = work.pop() {
        if !seen.insert(r.index.0) {
            continue;
        }
        let Some(e) = space.entry_by_index(r.index) else {
            continue;
        };
        if e.generation != r.generation || !is_node(e) {
            continue;
        }
        reach.push((r.index.0, r));
        let (lo, hi, _) = slot_range(e);
        for slot in lo..hi.min(e.desc.access_len) {
            if let Some(ad) = space
                .access_arena(r)
                .ok()
                .and_then(|a| a.get(e.desc.access_base + slot).ok())
                .flatten()
            {
                work.push(ad.obj);
            }
        }
        if let ObjectType::User(tdo) = e.desc.otype {
            work.push(tdo);
        }
    }

    let labels = refine(space, &reach);
    let mut h = combine(reach.iter().filter_map(|(i, _)| labels.get(i).copied()));
    // Root attachment: order and rights of the roots themselves matter
    // (they are the caller's fixed handles into the state).
    for (i, ad) in roots.iter().enumerate() {
        let t = edge_target_label(space, &labels, *ad);
        h = mix(h, mix(i as u64, mix(u64::from(ad.rights.bits()), t)));
    }
    h
}

/// Structural invariants every quiescent space must satisfy.
///
/// Returns one human-readable line per violation (empty = healthy):
///
/// * **No dangling edges** — every access descriptor stored in any live
///   access part resolves to a live entry with a matching generation.
/// * **Level rule** (paper §5) — on every *program-visible* container
///   (generic and user-typed objects), no slot holds an access
///   descriptor for a shorter-lived object. System-object linkage
///   (port queues, process slots) is written by `store_ad_hw`, which
///   the architecture exempts, so those containers are not judged.
/// * **SRO accounting** — each storage-resource object's `object_count`
///   equals the number of live objects carved from it.
pub fn check_invariants<S: SpaceMut + ?Sized>(space: &S) -> Vec<String> {
    let mut problems = Vec::new();
    let mut per_sro: HashMap<u32, u32> = HashMap::new();

    let mut live: Vec<(u32, ObjectRef)> = Vec::new();
    space.for_each_live(&mut |i: ObjectIndex, _e: &Entry| {
        if let Ok(r) = space.ref_for(i) {
            live.push((i.0, r));
        }
    });

    for &(i, r) in &live {
        let Ok(e) = space.entry(r) else { continue };
        if let Some(sro) = e.desc.sro {
            *per_sro.entry(sro.index.0).or_insert(0) += 1;
        }
        let program_visible = matches!(
            e.desc.otype,
            ObjectType::System(SystemType::Generic) | ObjectType::User(_)
        );
        for slot in 0..e.desc.access_len {
            let Some(ad) = space
                .access_arena(r)
                .ok()
                .and_then(|a| a.get(e.desc.access_base + slot).ok())
                .flatten()
            else {
                continue;
            };
            match space.entry_by_index(ad.obj.index) {
                None => problems.push(format!(
                    "dangling: object {i} slot {slot} -> dead index {}",
                    ad.obj.index.0
                )),
                Some(te) if te.generation != ad.obj.generation => problems.push(format!(
                    "stale: object {i} slot {slot} -> index {} gen {} (current {})",
                    ad.obj.index.0, ad.obj.generation, te.generation
                )),
                Some(te) => {
                    if program_visible && !e.desc.level.may_hold(te.desc.level) {
                        problems.push(format!(
                            "level rule: object {i} (level {}) slot {slot} holds level {}",
                            e.desc.level, te.desc.level
                        ));
                    }
                }
            }
        }
    }

    for &(i, r) in &live {
        let Ok(e) = space.entry(r) else { continue };
        if let SysState::Sro(s) = &e.sys {
            let counted = per_sro.get(&i).copied().unwrap_or(0);
            if counted != s.object_count {
                problems.push(format!(
                    "sro accounting: SRO {i} records {} objects, {} live objects name it",
                    s.object_count, counted
                ));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjectSpace, ObjectSpec, Rights};

    #[test]
    fn mix_is_not_identity_and_spreads() {
        assert_ne!(mix(0, 1), 0);
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(mix_bytes(0, b"abc"), mix_bytes(0, b"abd"));
    }

    #[test]
    fn empty_spaces_digest_equal() {
        let a = ObjectSpace::new(4096, 256, 64);
        let b = ObjectSpace::new(8192, 512, 128);
        // Arena sizing is placement, not logic.
        assert_eq!(logical_digest(&a), logical_digest(&b));
    }

    #[test]
    fn digest_sees_data_mutation() {
        let mut s = ObjectSpace::new(4096, 256, 64);
        let root = s.root_sro();
        let o = s.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
        let ad = s.mint(o, Rights::READ | Rights::WRITE);
        let d0 = logical_digest(&s);
        s.write_u64(ad, 0, 7).unwrap();
        assert_ne!(logical_digest(&s), d0);
    }

    #[test]
    fn invariants_clean_on_fresh_space() {
        let mut s = ObjectSpace::new(4096, 256, 64);
        let root = s.root_sro();
        let a = s.create_object(root, ObjectSpec::generic(8, 2)).unwrap();
        let b = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let a_ad = s.mint(a, Rights::READ | Rights::WRITE);
        let b_ad = s.mint(b, Rights::READ);
        s.store_ad(a_ad, 0, Some(b_ad)).unwrap();
        assert_eq!(check_invariants(&s), Vec::<String>::new());
    }
}
