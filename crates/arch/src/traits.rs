//! The capability-kernel boundary: traits through which everything
//! above the architecture layer reaches object storage.
//!
//! [`ObjectSpace`] began life as the single concrete type every crate
//! mutated directly. Splitting the space into lock-striped shards
//! (see [`crate::shard`]) forces an interface at exactly the points the
//! 432 microcode enforced anyway — rights, bounds, the level rule, and
//! the gray-bit write barrier stay one enforcement point *per shard*,
//! and callers lose the ability to poke table internals.
//!
//! Two traits split the surface by locking discipline:
//!
//! * [`SpaceAccess`] — **per-operation** access. Each call is
//!   individually atomic; a striped implementation takes and releases
//!   the affected shard lock(s) inside the call. This is all the
//!   instruction interpreter's data path needs, so independent
//!   processors proceed in parallel when they touch different shards.
//!   Multi-object read-modify-write sequences (port rendezvous,
//!   dispatching, fault delivery) enter an [`SpaceAccess::atomic`]
//!   section, which holds every shard and hands out the full
//!   [`SpaceMut`] view.
//! * [`SpaceMut`] — **exclusive** access. Adds reference-returning
//!   views (table entries, typed system-object state, arenas), which
//!   are only sound while no other thread can reach the space: either
//!   single-threaded ownership ([`ObjectSpace`],
//!   [`crate::shard::ShardedSpace`]) or inside an atomic section.
//!
//! Both traits are object-safe; trusted native services receive
//! `&mut dyn SpaceMut`. The generic conveniences (closures returning
//! values) live in the blanket extension trait [`SpaceAccessExt`].

use crate::{
    descriptor::{Color, ObjectType, SystemType},
    error::{ArchError, ArchResult},
    level::Level,
    memory::{AccessArena, DataArena},
    object_table::Entry,
    refs::{AccessDescriptor, ObjectIndex, ObjectRef},
    rights::Rights,
    space::{ObjectSpace, ObjectSpec, SpaceStats},
    sysobj::{PortState, ProcessState, ProcessorState, SroState, SysState, TdoState},
};

/// Per-operation checked access to an object space.
///
/// Every method is one atomic unit with respect to other holders of the
/// same space; implementations over shared shards lock internally. All
/// checking semantics are exactly those of the corresponding
/// [`ObjectSpace`] methods — implementations forward to them, so the
/// enforcement logic exists once.
///
/// Methods take `&mut self` even where `ObjectSpace` offers `&self`:
/// a striped implementation must be able to lock.
pub trait SpaceAccess {
    /// The root storage resource object of shard 0 (the boot shard).
    fn root_sro(&self) -> ObjectRef;

    /// The root SRO of a given shard. Objects are always created in the
    /// shard of the SRO their storage comes from, so placement policy
    /// is expressed by choosing a root.
    fn root_sro_of(&self, shard: u32) -> ObjectRef;

    /// Number of address-interleaved shards (1 for an unsharded space).
    fn shard_count(&self) -> u32;

    /// The shard an object lives in: its table index modulo
    /// [`SpaceAccess::shard_count`].
    fn shard_of(&self, r: ObjectRef) -> u32 {
        r.index.0 % self.shard_count()
    }

    /// Mints an access descriptor (trusted fabrication path).
    fn mint(&self, r: ObjectRef, rights: Rights) -> AccessDescriptor {
        AccessDescriptor::new(r, rights)
    }

    /// See [`ObjectSpace::qualify`].
    fn qualify(&mut self, ad: AccessDescriptor, needed: Rights) -> ArchResult<ObjectRef>;

    /// See [`ObjectSpace::expect_type`].
    fn expect_type(&mut self, ad: AccessDescriptor, t: SystemType) -> ArchResult<ObjectRef>;

    /// See [`ObjectSpace::create_object`].
    fn create_object(&mut self, sro: ObjectRef, spec: ObjectSpec) -> ArchResult<ObjectRef>;

    /// See [`ObjectSpace::destroy_object`].
    fn destroy_object(&mut self, r: ObjectRef) -> ArchResult<Entry>;

    /// See [`ObjectSpace::bulk_destroy_sro`].
    fn bulk_destroy_sro(&mut self, sro: ObjectRef) -> ArchResult<u32>;

    /// See [`ObjectSpace::read_data`].
    fn read_data(&mut self, ad: AccessDescriptor, off: u32, buf: &mut [u8]) -> ArchResult<()>;

    /// See [`ObjectSpace::write_data`].
    fn write_data(&mut self, ad: AccessDescriptor, off: u32, buf: &[u8]) -> ArchResult<()>;

    /// See [`ObjectSpace::read_u64`].
    fn read_u64(&mut self, ad: AccessDescriptor, off: u32) -> ArchResult<u64> {
        let mut b = [0u8; 8];
        self.read_data(ad, off, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// See [`ObjectSpace::write_u64`].
    fn write_u64(&mut self, ad: AccessDescriptor, off: u32, v: u64) -> ArchResult<()> {
        self.write_data(ad, off, &v.to_le_bytes())
    }

    /// See [`ObjectSpace::load_ad`].
    fn load_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>>;

    /// See [`ObjectSpace::load_ad_required`].
    fn load_ad_required(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<AccessDescriptor> {
        self.load_ad(container, slot)?
            .ok_or(ArchError::NullAccess { slot })
    }

    /// See [`ObjectSpace::store_ad`]. A striped implementation locks the
    /// container's and the target's shards in canonical order.
    fn store_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()>;

    /// See [`ObjectSpace::store_ad_hw`].
    fn store_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()>;

    /// See [`ObjectSpace::load_ad_hw`].
    fn load_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>>;

    /// See [`ObjectSpace::shade`].
    fn shade(&mut self, r: ObjectRef) -> ArchResult<()>;

    /// See [`ObjectSpace::color_of`].
    fn color_of(&mut self, r: ObjectRef) -> ArchResult<Color>;

    /// See [`ObjectSpace::set_color`].
    fn set_color(&mut self, r: ObjectRef, c: Color) -> ArchResult<()>;

    /// See [`ObjectSpace::scan_access_part`].
    fn scan_access_part(&mut self, r: ObjectRef) -> ArchResult<Vec<AccessDescriptor>>;

    /// The lifetime level of a live object.
    fn level_of(&mut self, r: ObjectRef) -> ArchResult<Level> {
        let mut out = Level::GLOBAL;
        self.with_entry(r, &mut |e| out = e.desc.level)?;
        Ok(out)
    }

    /// The type identity of a live object.
    fn otype_of(&mut self, r: ObjectRef) -> ArchResult<ObjectType> {
        let mut out = ObjectType::GENERIC;
        self.with_entry(r, &mut |e| out = e.desc.otype)?;
        Ok(out)
    }

    /// Every live object index, across all shards. See
    /// [`ObjectSpace::live_indices`].
    fn live_indices(&mut self) -> Vec<ObjectIndex>;

    /// Operation counters, merged across shards.
    fn stats(&mut self) -> SpaceStats;

    /// Runs `f` on the table entry of a live object (object-safe
    /// primitive; prefer [`SpaceAccessExt::entry_view`]).
    fn with_entry(&mut self, r: ObjectRef, f: &mut dyn FnMut(&Entry)) -> ArchResult<()>;

    /// Runs `f` on the mutable table entry of a live object
    /// (object-safe primitive; prefer [`SpaceAccessExt::entry_update`]).
    fn with_entry_mut(&mut self, r: ObjectRef, f: &mut dyn FnMut(&mut Entry)) -> ArchResult<()>;

    /// Runs `f` on a live object's interpreted (`sys`) state only —
    /// never its descriptor (object-safe primitive; prefer
    /// [`SpaceAccessExt::sys_update`]).
    ///
    /// This narrower contract matters to caching implementations:
    /// descriptor facts (arena base, part length, residency) cannot
    /// change here, so a striped space with qualification caches skips
    /// the epoch bump [`SpaceAccess::with_entry_mut`] must pay. The
    /// interpreter's per-step bookkeeping (instruction pointers, cycle
    /// counters, slice accounting) all routes through this.
    fn with_sys_mut(&mut self, r: ObjectRef, f: &mut dyn FnMut(&mut SysState)) -> ArchResult<()> {
        self.with_entry_mut(r, &mut |e| f(&mut e.sys))
    }

    /// Runs `f` with exclusive access to the whole space (object-safe
    /// primitive; prefer [`SpaceAccessExt::atomically`]). A striped
    /// implementation acquires every shard lock, in shard order, for the
    /// duration of `f` — this is the emulator's stand-in for the 432's
    /// indivisible microcode sequences (port rendezvous, dispatching).
    fn atomic(&mut self, f: &mut dyn FnMut(&mut dyn SpaceMut));

    /// The per-space port-ring registry backing the lock-free SEND/RECEIVE
    /// fast path, when this space has one. The default — and the unsharded
    /// [`ObjectSpace`](crate::space::ObjectSpace) — has none, so the
    /// deterministic runner always takes the locked rendezvous path.
    fn port_rings(&self) -> Option<&std::sync::Arc<crate::portring::PortRingRegistry>> {
        None
    }

    /// The current qualification epoch of the shard `r` lives in, when
    /// this space publishes one. Monomorphic inline caches key their
    /// validity on this value exactly as the per-agent qualcache does:
    /// any cache-visible mutation of the shard bumps it. The default —
    /// every space without published epochs — returns `None`, which
    /// keeps epoch-validated caches permanently cold (and therefore
    /// trivially coherent) over such spaces.
    fn qual_epoch(&self, r: ObjectRef) -> Option<u64> {
        let _ = r;
        None
    }
}

/// Generic conveniences over [`SpaceAccess`] (blanket-implemented).
pub trait SpaceAccessExt: SpaceAccess {
    /// Runs `f` on the table entry of a live object and returns its
    /// result.
    fn entry_view<R>(&mut self, r: ObjectRef, f: impl FnOnce(&Entry) -> R) -> ArchResult<R> {
        let mut f = Some(f);
        let mut out = None;
        self.with_entry(r, &mut |e| {
            if let Some(f) = f.take() {
                out = Some(f(e));
            }
        })?;
        Ok(out.expect("with_entry invokes its closure on success"))
    }

    /// Runs `f` on the mutable table entry of a live object and returns
    /// its result.
    fn entry_update<R>(&mut self, r: ObjectRef, f: impl FnOnce(&mut Entry) -> R) -> ArchResult<R> {
        let mut f = Some(f);
        let mut out = None;
        self.with_entry_mut(r, &mut |e| {
            if let Some(f) = f.take() {
                out = Some(f(e));
            }
        })?;
        Ok(out.expect("with_entry_mut invokes its closure on success"))
    }

    /// Runs `f` on a live object's interpreted (`sys`) state and
    /// returns its result. See [`SpaceAccess::with_sys_mut`] for why
    /// sys-only mutation is a distinct (cheaper) primitive.
    fn sys_update<R>(&mut self, r: ObjectRef, f: impl FnOnce(&mut SysState) -> R) -> ArchResult<R> {
        let mut f = Some(f);
        let mut out = None;
        self.with_sys_mut(r, &mut |sys| {
            if let Some(f) = f.take() {
                out = Some(f(sys));
            }
        })?;
        Ok(out.expect("with_sys_mut invokes its closure on success"))
    }

    /// Runs `f` with exclusive access to the whole space and returns its
    /// result.
    fn atomically<R>(&mut self, f: impl FnOnce(&mut dyn SpaceMut) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.atomic(&mut |s| {
            if let Some(f) = f.take() {
                out = Some(f(s));
            }
        });
        out.expect("atomic invokes its closure")
    }

    /// Reads a process's interpreted state.
    fn with_process<R>(
        &mut self,
        r: ObjectRef,
        f: impl FnOnce(&ProcessState) -> R,
    ) -> ArchResult<R> {
        self.entry_view(r, |e| match &e.sys {
            SysState::Process(p) => Ok(f(p)),
            _ => Err(ArchError::TypeMismatch {
                expected: "process",
            }),
        })?
    }

    /// Updates a process's interpreted state.
    fn with_process_mut<R>(
        &mut self,
        r: ObjectRef,
        f: impl FnOnce(&mut ProcessState) -> R,
    ) -> ArchResult<R> {
        self.sys_update(r, |sys| match sys {
            SysState::Process(p) => Ok(f(p)),
            _ => Err(ArchError::TypeMismatch {
                expected: "process",
            }),
        })?
    }

    /// Reads a processor's interpreted state.
    fn with_processor<R>(
        &mut self,
        r: ObjectRef,
        f: impl FnOnce(&ProcessorState) -> R,
    ) -> ArchResult<R> {
        self.entry_view(r, |e| match &e.sys {
            SysState::Processor(p) => Ok(f(p)),
            _ => Err(ArchError::TypeMismatch {
                expected: "processor",
            }),
        })?
    }

    /// Updates a processor's interpreted state.
    fn with_processor_mut<R>(
        &mut self,
        r: ObjectRef,
        f: impl FnOnce(&mut ProcessorState) -> R,
    ) -> ArchResult<R> {
        self.sys_update(r, |sys| match sys {
            SysState::Processor(p) => Ok(f(p)),
            _ => Err(ArchError::TypeMismatch {
                expected: "processor",
            }),
        })?
    }

    /// Reads a port's interpreted state.
    fn with_port<R>(&mut self, r: ObjectRef, f: impl FnOnce(&PortState) -> R) -> ArchResult<R> {
        self.entry_view(r, |e| match &e.sys {
            SysState::Port(p) => Ok(f(p)),
            _ => Err(ArchError::TypeMismatch { expected: "port" }),
        })?
    }

    /// Reads an SRO's interpreted state.
    fn with_sro<R>(&mut self, r: ObjectRef, f: impl FnOnce(&SroState) -> R) -> ArchResult<R> {
        self.entry_view(r, |e| match &e.sys {
            SysState::Sro(s) => Ok(f(s)),
            _ => Err(ArchError::TypeMismatch {
                expected: "storage-resource",
            }),
        })?
    }

    /// Updates a type-definition object's interpreted state.
    fn with_tdo_mut<R>(
        &mut self,
        r: ObjectRef,
        f: impl FnOnce(&mut TdoState) -> R,
    ) -> ArchResult<R> {
        self.sys_update(r, |sys| match sys {
            SysState::TypeDef(t) => Ok(f(t)),
            _ => Err(ArchError::TypeMismatch {
                expected: "type-definition",
            }),
        })?
    }
}

impl<S: SpaceAccess + ?Sized> SpaceAccessExt for S {}

/// Exclusive checked access: everything in [`SpaceAccess`], plus the
/// reference-returning views that are only sound while the holder has
/// the space to itself.
pub trait SpaceMut: SpaceAccess {
    /// Resolves a reference to its table entry. See
    /// [`crate::ObjectTable::get`].
    fn entry(&self, r: ObjectRef) -> ArchResult<&Entry>;

    /// Mutable variant of [`SpaceMut::entry`].
    fn entry_mut(&mut self, r: ObjectRef) -> ArchResult<&mut Entry>;

    /// Resolves by bare index (collector sweeps). See
    /// [`crate::ObjectTable::get_by_index`].
    fn entry_by_index(&self, i: ObjectIndex) -> Option<&Entry>;

    /// Current full reference for a live index. See
    /// [`crate::ObjectTable::ref_for`].
    fn ref_for(&self, i: ObjectIndex) -> ArchResult<ObjectRef>;

    /// One past the largest valid object index, across all shards
    /// (sweep bound). See [`crate::ObjectTable::index_space_end`].
    fn index_space_end(&self) -> u32;

    /// Number of live objects, across all shards.
    fn live_count(&self) -> u32;

    /// Visits every live entry with its global index.
    fn for_each_live(&self, f: &mut dyn FnMut(ObjectIndex, &Entry));

    /// Mutable variant of [`SpaceMut::for_each_live`].
    fn for_each_live_mut(&mut self, f: &mut dyn FnMut(ObjectIndex, &mut Entry));

    /// Leaf pages currently allocated across the space's object-table
    /// directories (see [`crate::ObjectTable::leaf_pages`]). The
    /// storage layer's memory budget watches this to notice directory
    /// growth.
    fn leaf_pages(&self) -> u32;

    /// The lowest global index `>= from` that could hold a live entry,
    /// or [`SpaceMut::index_space_end`] when none remains. Page-granular
    /// (never skips a live entry, may land on a dead one); incremental
    /// sweeps use it to jump dead directory ranges in O(pages), not
    /// O(indices). The default is the identity — correct, but with no
    /// skipping.
    fn next_possibly_live(&self, from: u32) -> u32 {
        from.min(self.index_space_end())
    }

    /// Visits every live entry with global index in `[start, end)`, in
    /// ascending index order, returning the number of directory leaf
    /// pages probed. Cost O(live-in-range + pages probed) on paged
    /// implementations; the default probes every index.
    fn for_live_in_range(
        &self,
        start: u32,
        end: u32,
        f: &mut dyn FnMut(ObjectIndex, &Entry),
    ) -> u32 {
        for idx in start..end {
            if let Some(e) = self.entry_by_index(ObjectIndex(idx)) {
                f(ObjectIndex(idx), e);
            }
        }
        end.saturating_sub(start)
            .div_ceil(crate::object_table::LEAF_ENTRIES)
    }

    /// The data arena holding `r`'s data part (the object's shard's
    /// arena; descriptor base addresses are offsets into it).
    fn data_arena(&self, r: ObjectRef) -> ArchResult<&DataArena>;

    /// Mutable variant of [`SpaceMut::data_arena`].
    fn data_arena_mut(&mut self, r: ObjectRef) -> ArchResult<&mut DataArena>;

    /// The access arena holding `r`'s access part (the object's shard's
    /// arena; descriptor base addresses are offsets into it). Used by
    /// the digest/invariant sweeps to walk raw slots without the per-op
    /// rights checks of [`SpaceAccess::load_ad`].
    fn access_arena(&self, r: ObjectRef) -> ArchResult<&AccessArena>;

    /// The stat counters charged for operations on `r`'s shard.
    fn stats_mut_of(&mut self, r: ObjectRef) -> &mut SpaceStats;

    /// See [`ObjectSpace::port`].
    fn port(&self, r: ObjectRef) -> ArchResult<&PortState>;

    /// See [`ObjectSpace::port_mut`].
    fn port_mut(&mut self, r: ObjectRef) -> ArchResult<&mut PortState>;

    /// See [`ObjectSpace::process`].
    fn process(&self, r: ObjectRef) -> ArchResult<&ProcessState>;

    /// See [`ObjectSpace::process_mut`].
    fn process_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessState>;

    /// See [`ObjectSpace::processor`].
    fn processor(&self, r: ObjectRef) -> ArchResult<&ProcessorState>;

    /// See [`ObjectSpace::processor_mut`].
    fn processor_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessorState>;

    /// See [`ObjectSpace::sro`].
    fn sro(&self, r: ObjectRef) -> ArchResult<&SroState>;

    /// See [`ObjectSpace::sro_mut`].
    fn sro_mut(&mut self, r: ObjectRef) -> ArchResult<&mut SroState>;

    /// See [`ObjectSpace::tdo`].
    fn tdo(&self, r: ObjectRef) -> ArchResult<&TdoState>;

    /// See [`ObjectSpace::tdo_mut`].
    fn tdo_mut(&mut self, r: ObjectRef) -> ArchResult<&mut TdoState>;
}

// ---------------------------------------------------------------------
// ObjectSpace: the single-shard implementation. Every method forwards
// to the inherent one, so trait-generic code and legacy direct callers
// run the identical checking path.
// ---------------------------------------------------------------------

impl SpaceAccess for ObjectSpace {
    fn root_sro(&self) -> ObjectRef {
        ObjectSpace::root_sro(self)
    }

    fn root_sro_of(&self, _shard: u32) -> ObjectRef {
        ObjectSpace::root_sro(self)
    }

    fn shard_count(&self) -> u32 {
        1
    }

    fn qualify(&mut self, ad: AccessDescriptor, needed: Rights) -> ArchResult<ObjectRef> {
        ObjectSpace::qualify(self, ad, needed)
    }

    fn expect_type(&mut self, ad: AccessDescriptor, t: SystemType) -> ArchResult<ObjectRef> {
        ObjectSpace::expect_type(self, ad, t)
    }

    fn create_object(&mut self, sro: ObjectRef, spec: ObjectSpec) -> ArchResult<ObjectRef> {
        ObjectSpace::create_object(self, sro, spec)
    }

    fn destroy_object(&mut self, r: ObjectRef) -> ArchResult<Entry> {
        ObjectSpace::destroy_object(self, r)
    }

    fn bulk_destroy_sro(&mut self, sro: ObjectRef) -> ArchResult<u32> {
        ObjectSpace::bulk_destroy_sro(self, sro)
    }

    fn read_data(&mut self, ad: AccessDescriptor, off: u32, buf: &mut [u8]) -> ArchResult<()> {
        ObjectSpace::read_data(self, ad, off, buf)
    }

    fn write_data(&mut self, ad: AccessDescriptor, off: u32, buf: &[u8]) -> ArchResult<()> {
        ObjectSpace::write_data(self, ad, off, buf)
    }

    fn load_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        ObjectSpace::load_ad(self, container, slot)
    }

    fn store_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        ObjectSpace::store_ad(self, container, slot, ad)
    }

    fn store_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        ObjectSpace::store_ad_hw(self, container, slot, ad)
    }

    fn load_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        ObjectSpace::load_ad_hw(self, container, slot)
    }

    fn shade(&mut self, r: ObjectRef) -> ArchResult<()> {
        ObjectSpace::shade(self, r)
    }

    fn color_of(&mut self, r: ObjectRef) -> ArchResult<Color> {
        ObjectSpace::color_of(self, r)
    }

    fn set_color(&mut self, r: ObjectRef, c: Color) -> ArchResult<()> {
        ObjectSpace::set_color(self, r, c)
    }

    fn scan_access_part(&mut self, r: ObjectRef) -> ArchResult<Vec<AccessDescriptor>> {
        ObjectSpace::scan_access_part(self, r)
    }

    fn live_indices(&mut self) -> Vec<ObjectIndex> {
        ObjectSpace::live_indices(self)
    }

    fn stats(&mut self) -> SpaceStats {
        self.stats
    }

    fn with_entry(&mut self, r: ObjectRef, f: &mut dyn FnMut(&Entry)) -> ArchResult<()> {
        f(self.table.get(r)?);
        Ok(())
    }

    fn with_entry_mut(&mut self, r: ObjectRef, f: &mut dyn FnMut(&mut Entry)) -> ArchResult<()> {
        f(self.table.get_mut(r)?);
        Ok(())
    }

    fn atomic(&mut self, f: &mut dyn FnMut(&mut dyn SpaceMut)) {
        f(self)
    }
}

impl SpaceMut for ObjectSpace {
    fn entry(&self, r: ObjectRef) -> ArchResult<&Entry> {
        self.table.get(r)
    }

    fn entry_mut(&mut self, r: ObjectRef) -> ArchResult<&mut Entry> {
        self.table.get_mut(r)
    }

    fn entry_by_index(&self, i: ObjectIndex) -> Option<&Entry> {
        self.table.get_by_index(i)
    }

    fn ref_for(&self, i: ObjectIndex) -> ArchResult<ObjectRef> {
        self.table.ref_for(i)
    }

    fn index_space_end(&self) -> u32 {
        self.table.index_space_end()
    }

    fn live_count(&self) -> u32 {
        self.table.live_count()
    }

    fn for_each_live(&self, f: &mut dyn FnMut(ObjectIndex, &Entry)) {
        for (i, e) in self.table.iter_live() {
            f(i, e);
        }
    }

    fn for_each_live_mut(&mut self, f: &mut dyn FnMut(ObjectIndex, &mut Entry)) {
        for (i, e) in self.table.iter_live_mut() {
            f(i, e);
        }
    }

    fn leaf_pages(&self) -> u32 {
        self.table.leaf_pages()
    }

    fn next_possibly_live(&self, from: u32) -> u32 {
        self.table.next_live_index_hint(from)
    }

    fn for_live_in_range(
        &self,
        start: u32,
        end: u32,
        f: &mut dyn FnMut(ObjectIndex, &Entry),
    ) -> u32 {
        self.table.for_live_in_range(start, end, f)
    }

    fn data_arena(&self, _r: ObjectRef) -> ArchResult<&DataArena> {
        Ok(&self.data)
    }

    fn data_arena_mut(&mut self, _r: ObjectRef) -> ArchResult<&mut DataArena> {
        Ok(&mut self.data)
    }

    fn access_arena(&self, _r: ObjectRef) -> ArchResult<&AccessArena> {
        Ok(&self.access)
    }

    fn stats_mut_of(&mut self, _r: ObjectRef) -> &mut SpaceStats {
        &mut self.stats
    }

    fn port(&self, r: ObjectRef) -> ArchResult<&PortState> {
        ObjectSpace::port(self, r)
    }

    fn port_mut(&mut self, r: ObjectRef) -> ArchResult<&mut PortState> {
        ObjectSpace::port_mut(self, r)
    }

    fn process(&self, r: ObjectRef) -> ArchResult<&ProcessState> {
        ObjectSpace::process(self, r)
    }

    fn process_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessState> {
        ObjectSpace::process_mut(self, r)
    }

    fn processor(&self, r: ObjectRef) -> ArchResult<&ProcessorState> {
        ObjectSpace::processor(self, r)
    }

    fn processor_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessorState> {
        ObjectSpace::processor_mut(self, r)
    }

    fn sro(&self, r: ObjectRef) -> ArchResult<&SroState> {
        ObjectSpace::sro(self, r)
    }

    fn sro_mut(&mut self, r: ObjectRef) -> ArchResult<&mut SroState> {
        ObjectSpace::sro_mut(self, r)
    }

    fn tdo(&self, r: ObjectRef) -> ArchResult<&TdoState> {
        ObjectSpace::tdo(self, r)
    }

    fn tdo_mut(&mut self, r: ObjectRef) -> ArchResult<&mut TdoState> {
        ObjectSpace::tdo_mut(self, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A function generic over the per-op boundary, exercised both with a
    // concrete space and with the `dyn SpaceMut` view an atomic section
    // (or a native service) receives — the latter checks that trait
    // objects of the subtrait satisfy `SpaceAccess` bounds.
    fn make_and_link<S: SpaceAccess + ?Sized>(s: &mut S) -> ArchResult<ObjectRef> {
        let root = s.root_sro();
        let a = s.create_object(root, ObjectSpec::generic(16, 2))?;
        let b = s.create_object(root, ObjectSpec::generic(8, 0))?;
        let a_ad = s.mint(a, Rights::ALL);
        s.store_ad(a_ad, 0, Some(s.mint(b, Rights::READ)))?;
        s.write_u64(a_ad, 0, 42)?;
        Ok(a)
    }

    #[test]
    fn generic_path_matches_inherent_semantics() {
        let mut s = ObjectSpace::new(4096, 512, 256);
        let a = make_and_link(&mut s).unwrap();
        let ad = AccessDescriptor::new(a, Rights::READ);
        assert_eq!(ObjectSpace::read_u64(&mut s, ad, 0).unwrap(), 42);
        let st = SpaceAccess::stats(&mut s);
        assert_eq!(st.objects_created, 2);
        assert_eq!(st.ad_stores, 1);
        assert_eq!(st.barrier_shades, 1);
    }

    #[test]
    fn atomic_section_exposes_space_mut() {
        let mut s = ObjectSpace::new(4096, 512, 256);
        let a = s.atomically(|sm| {
            let a = make_and_link(sm).unwrap();
            assert!(sm.entry(a).is_ok());
            assert_eq!(sm.live_count(), 3); // root SRO + two objects
            a
        });
        assert_eq!(s.level_of(a).unwrap(), Level::GLOBAL);
    }

    #[test]
    fn typed_closures_reject_wrong_sys_state() {
        let mut s = ObjectSpace::new(4096, 512, 256);
        let root = s.root_sro();
        let r = s.create_object(root, ObjectSpec::generic(0, 0)).unwrap();
        assert!(s.with_process(r, |_| ()).is_err());
        assert!(s.with_sro(root, |sro| sro.object_count).is_ok());
    }
}
