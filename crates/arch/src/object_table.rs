//! The global object descriptor table.
//!
//! Paper §2: "Access descriptors or capabilities name entries in a global
//! object descriptor table. Each object descriptor in this table describes
//! a segment..."
//!
//! Entries are recycled; each carries a *generation* that is bumped on
//! reclamation so stale references are detected (see
//! [`crate::refs::ObjectRef`]).

use crate::{
    descriptor::ObjectDescriptor,
    error::{ArchError, ArchResult},
    refs::{ObjectIndex, ObjectRef},
    sysobj::SysState,
};
use serde::{Deserialize, Serialize};

/// One object-table entry: descriptor plus interpreted system state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Entry {
    /// The architectural descriptor.
    pub desc: ObjectDescriptor,
    /// Hardware-interpreted state (queues, scheduling fields, free lists).
    pub sys: SysState,
    /// Generation counter for stale-reference detection.
    pub generation: u32,
    /// Whether the entry currently describes a live segment.
    pub allocated: bool,
}

/// The global object table.
///
/// A table may cover the whole object-index space (`stride == 1`) or an
/// address-interleaved *shard* of it: with stride `n` and offset `k`,
/// the table owns exactly the global indices `i` with `i % n == k`.
/// Entry storage is dense (local slot `s` holds global index
/// `s * n + k`), so sharding costs no memory and the unsharded case
/// degenerates to the identity mapping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectTable {
    entries: Vec<Entry>,
    /// Free *local* slots available for recycling.
    free: Vec<u32>,
    limit: u32,
    stride: u32,
    offset: u32,
}

impl ObjectTable {
    /// A table that may grow up to `limit` entries, covering the whole
    /// index space.
    pub fn new(limit: u32) -> ObjectTable {
        ObjectTable::new_strided(limit, 1, 0)
    }

    /// A table owning the interleaved index class `offset (mod stride)`.
    pub fn new_strided(limit: u32, stride: u32, offset: u32) -> ObjectTable {
        assert!(stride >= 1 && offset < stride, "bad shard interleave");
        ObjectTable {
            entries: Vec::new(),
            free: Vec::new(),
            limit,
            stride,
            offset,
        }
    }

    /// Maps a global object index to this table's dense local slot.
    /// `None` if the index belongs to a different shard.
    fn local(&self, i: ObjectIndex) -> Option<u32> {
        if self.stride == 1 {
            return Some(i.0);
        }
        if i.0 % self.stride == self.offset {
            Some(i.0 / self.stride)
        } else {
            None
        }
    }

    /// Maps a dense local slot back to its global object index.
    fn global(&self, slot: u32) -> ObjectIndex {
        ObjectIndex(slot * self.stride + self.offset)
    }

    /// Number of live (allocated) entries.
    pub fn live_count(&self) -> u32 {
        self.entries.len() as u32 - self.free.len() as u32
    }

    /// Total entries ever materialized (live + recyclable).
    pub fn capacity_used(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Maximum entries the table may hold.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// One past the largest global index this table can currently
    /// resolve. Sweeps that scan by bare index must use this bound
    /// rather than [`ObjectTable::capacity_used`], which counts dense
    /// local slots and is not a valid index bound once `stride > 1`.
    pub fn index_space_end(&self) -> u32 {
        match self.entries.len() as u32 {
            0 => 0,
            n => (n - 1) * self.stride + self.offset + 1,
        }
    }

    /// Installs a new entry, returning a fresh reference to it.
    pub fn install(&mut self, desc: ObjectDescriptor, sys: SysState) -> ArchResult<ObjectRef> {
        if let Some(slot) = self.free.pop() {
            let index = self.global(slot);
            let e = &mut self.entries[slot as usize];
            debug_assert!(!e.allocated);
            e.desc = desc;
            e.sys = sys;
            e.allocated = true;
            return Ok(ObjectRef {
                index,
                generation: e.generation,
            });
        }
        if self.entries.len() as u32 >= self.limit {
            return Err(ArchError::TableExhausted);
        }
        let slot = self.entries.len() as u32;
        self.entries.push(Entry {
            desc,
            sys,
            generation: 0,
            allocated: true,
        });
        Ok(ObjectRef {
            index: self.global(slot),
            generation: 0,
        })
    }

    /// Reclaims an entry, bumping its generation. The caller is
    /// responsible for having returned the segment's storage first.
    pub fn reclaim(&mut self, r: ObjectRef) -> ArchResult<Entry> {
        // Validate before mutating.
        self.get(r)?;
        let slot = self.local(r.index).expect("validated above");
        let e = &mut self.entries[slot as usize];
        let old = e.clone();
        e.allocated = false;
        e.generation = e.generation.wrapping_add(1);
        e.sys = SysState::Generic;
        self.free.push(slot);
        Ok(old)
    }

    /// Resolves a reference to its entry, checking liveness and generation.
    pub fn get(&self, r: ObjectRef) -> ArchResult<&Entry> {
        let slot = self.local(r.index).ok_or(ArchError::BadIndex(r.index))?;
        let e = self
            .entries
            .get(slot as usize)
            .ok_or(ArchError::BadIndex(r.index))?;
        if !e.allocated {
            return Err(ArchError::FreeEntry(r.index));
        }
        if e.generation != r.generation {
            return Err(ArchError::StaleRef(r.index));
        }
        Ok(e)
    }

    /// Mutable variant of [`ObjectTable::get`].
    pub fn get_mut(&mut self, r: ObjectRef) -> ArchResult<&mut Entry> {
        let slot = self.local(r.index).ok_or(ArchError::BadIndex(r.index))?;
        let e = self
            .entries
            .get_mut(slot as usize)
            .ok_or(ArchError::BadIndex(r.index))?;
        if !e.allocated {
            return Err(ArchError::FreeEntry(r.index));
        }
        if e.generation != r.generation {
            return Err(ArchError::StaleRef(r.index));
        }
        Ok(e)
    }

    /// Resolves by bare index (used by the garbage collector's sweep,
    /// which scans the whole table rather than holding references).
    /// Indices belonging to another shard resolve to `None`.
    pub fn get_by_index(&self, i: ObjectIndex) -> Option<&Entry> {
        let slot = self.local(i)?;
        self.entries.get(slot as usize).filter(|e| e.allocated)
    }

    /// Returns the current full reference for a live index.
    pub fn ref_for(&self, i: ObjectIndex) -> ArchResult<ObjectRef> {
        let slot = self.local(i).ok_or(ArchError::BadIndex(i))?;
        let e = self
            .entries
            .get(slot as usize)
            .ok_or(ArchError::BadIndex(i))?;
        if !e.allocated {
            return Err(ArchError::FreeEntry(i));
        }
        Ok(ObjectRef {
            index: i,
            generation: e.generation,
        })
    }

    /// Iterates all live entries with their (global) indices.
    pub fn iter_live(&self) -> impl Iterator<Item = (ObjectIndex, &Entry)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.allocated)
            .map(|(s, e)| (self.global(s as u32), e))
    }

    /// Mutable iteration over all live entries (collector sweep).
    pub fn iter_live_mut(&mut self) -> impl Iterator<Item = (ObjectIndex, &mut Entry)> + '_ {
        let stride = self.stride;
        let offset = self.offset;
        self.entries
            .iter_mut()
            .enumerate()
            .filter(|(_, e)| e.allocated)
            .map(move |(s, e)| (ObjectIndex(s as u32 * stride + offset), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{descriptor::ObjectType, level::Level};

    fn desc() -> ObjectDescriptor {
        ObjectDescriptor::new(0, 8, 0, 2, ObjectType::GENERIC, Level::GLOBAL)
    }

    #[test]
    fn install_get_reclaim_cycle() {
        let mut t = ObjectTable::new(16);
        let r = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(t.live_count(), 1);
        assert!(t.get(r).is_ok());
        t.reclaim(r).unwrap();
        assert_eq!(t.live_count(), 0);
        assert!(matches!(t.get(r), Err(ArchError::FreeEntry(_))));
    }

    #[test]
    fn stale_reference_detected_after_reuse() {
        let mut t = ObjectTable::new(16);
        let r1 = t.install(desc(), SysState::Generic).unwrap();
        t.reclaim(r1).unwrap();
        let r2 = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(r1.index, r2.index, "entry should be recycled");
        assert!(matches!(t.get(r1), Err(ArchError::StaleRef(_))));
        assert!(t.get(r2).is_ok());
    }

    #[test]
    fn table_limit_enforced() {
        let mut t = ObjectTable::new(2);
        t.install(desc(), SysState::Generic).unwrap();
        t.install(desc(), SysState::Generic).unwrap();
        assert!(matches!(
            t.install(desc(), SysState::Generic),
            Err(ArchError::TableExhausted)
        ));
    }

    #[test]
    fn reclaim_frees_capacity_under_limit() {
        let mut t = ObjectTable::new(1);
        let r = t.install(desc(), SysState::Generic).unwrap();
        t.reclaim(r).unwrap();
        assert!(t.install(desc(), SysState::Generic).is_ok());
    }

    #[test]
    fn iter_live_skips_reclaimed() {
        let mut t = ObjectTable::new(8);
        let a = t.install(desc(), SysState::Generic).unwrap();
        let _b = t.install(desc(), SysState::Generic).unwrap();
        t.reclaim(a).unwrap();
        assert_eq!(t.iter_live().count(), 1);
    }

    #[test]
    fn ref_for_tracks_generation() {
        let mut t = ObjectTable::new(8);
        let a = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(t.ref_for(a.index).unwrap(), a);
        t.reclaim(a).unwrap();
        assert!(t.ref_for(a.index).is_err());
        let b = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(t.ref_for(b.index).unwrap().generation, b.generation);
    }

    #[test]
    fn bad_index_reported() {
        let t = ObjectTable::new(8);
        let bogus = ObjectRef {
            index: ObjectIndex(99),
            generation: 0,
        };
        assert!(matches!(t.get(bogus), Err(ArchError::BadIndex(_))));
    }

    #[test]
    fn strided_table_owns_interleaved_indices() {
        let mut t = ObjectTable::new_strided(8, 4, 3);
        let a = t.install(desc(), SysState::Generic).unwrap();
        let b = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(a.index.0, 3);
        assert_eq!(b.index.0, 7);
        assert!(t.get(a).is_ok() && t.get(b).is_ok());
        assert_eq!(t.index_space_end(), 8);
        // Foreign-shard indices are rejected, not misresolved.
        let foreign = ObjectRef {
            index: ObjectIndex(4),
            generation: 0,
        };
        assert!(matches!(t.get(foreign), Err(ArchError::BadIndex(_))));
        assert!(t.get_by_index(ObjectIndex(4)).is_none());
        assert!(t.get_by_index(ObjectIndex(7)).is_some());
        let live: Vec<u32> = t.iter_live().map(|(i, _)| i.0).collect();
        assert_eq!(live, vec![3, 7]);
    }

    #[test]
    fn strided_recycling_preserves_global_index() {
        let mut t = ObjectTable::new_strided(8, 2, 1);
        let a = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(a.index.0, 1);
        t.reclaim(a).unwrap();
        let b = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(b.index, a.index, "slot recycled at same global index");
        assert_ne!(b.generation, a.generation);
        assert_eq!(t.ref_for(b.index).unwrap(), b);
    }
}
