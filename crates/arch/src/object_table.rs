//! The global object descriptor table.
//!
//! Paper §2: "Access descriptors or capabilities name entries in a global
//! object descriptor table. Each object descriptor in this table describes
//! a segment..."
//!
//! Entries are recycled; each carries a *generation* that is bumped on
//! reclamation so stale references are detected (see
//! [`crate::refs::ObjectRef`]).

use crate::{
    descriptor::ObjectDescriptor,
    error::{ArchError, ArchResult},
    refs::{ObjectIndex, ObjectRef},
    sysobj::SysState,
};
use serde::{Deserialize, Serialize};

/// One object-table entry: descriptor plus interpreted system state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Entry {
    /// The architectural descriptor.
    pub desc: ObjectDescriptor,
    /// Hardware-interpreted state (queues, scheduling fields, free lists).
    pub sys: SysState,
    /// Generation counter for stale-reference detection.
    pub generation: u32,
    /// Whether the entry currently describes a live segment.
    pub allocated: bool,
}

/// The global object table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectTable {
    entries: Vec<Entry>,
    free: Vec<u32>,
    limit: u32,
}

impl ObjectTable {
    /// A table that may grow up to `limit` entries.
    pub fn new(limit: u32) -> ObjectTable {
        ObjectTable {
            entries: Vec::new(),
            free: Vec::new(),
            limit,
        }
    }

    /// Number of live (allocated) entries.
    pub fn live_count(&self) -> u32 {
        self.entries.len() as u32 - self.free.len() as u32
    }

    /// Total entries ever materialized (live + recyclable).
    pub fn capacity_used(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Maximum entries the table may hold.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Installs a new entry, returning a fresh reference to it.
    pub fn install(&mut self, desc: ObjectDescriptor, sys: SysState) -> ArchResult<ObjectRef> {
        if let Some(idx) = self.free.pop() {
            let e = &mut self.entries[idx as usize];
            debug_assert!(!e.allocated);
            e.desc = desc;
            e.sys = sys;
            e.allocated = true;
            return Ok(ObjectRef {
                index: ObjectIndex(idx),
                generation: e.generation,
            });
        }
        if self.entries.len() as u32 >= self.limit {
            return Err(ArchError::TableExhausted);
        }
        let idx = self.entries.len() as u32;
        self.entries.push(Entry {
            desc,
            sys,
            generation: 0,
            allocated: true,
        });
        Ok(ObjectRef {
            index: ObjectIndex(idx),
            generation: 0,
        })
    }

    /// Reclaims an entry, bumping its generation. The caller is
    /// responsible for having returned the segment's storage first.
    pub fn reclaim(&mut self, r: ObjectRef) -> ArchResult<Entry> {
        // Validate before mutating.
        self.get(r)?;
        let e = &mut self.entries[r.index.0 as usize];
        let old = e.clone();
        e.allocated = false;
        e.generation = e.generation.wrapping_add(1);
        e.sys = SysState::Generic;
        self.free.push(r.index.0);
        Ok(old)
    }

    /// Resolves a reference to its entry, checking liveness and generation.
    pub fn get(&self, r: ObjectRef) -> ArchResult<&Entry> {
        let e = self
            .entries
            .get(r.index.0 as usize)
            .ok_or(ArchError::BadIndex(r.index))?;
        if !e.allocated {
            return Err(ArchError::FreeEntry(r.index));
        }
        if e.generation != r.generation {
            return Err(ArchError::StaleRef(r.index));
        }
        Ok(e)
    }

    /// Mutable variant of [`ObjectTable::get`].
    pub fn get_mut(&mut self, r: ObjectRef) -> ArchResult<&mut Entry> {
        let e = self
            .entries
            .get_mut(r.index.0 as usize)
            .ok_or(ArchError::BadIndex(r.index))?;
        if !e.allocated {
            return Err(ArchError::FreeEntry(r.index));
        }
        if e.generation != r.generation {
            return Err(ArchError::StaleRef(r.index));
        }
        Ok(e)
    }

    /// Resolves by bare index (used by the garbage collector's sweep,
    /// which scans the whole table rather than holding references).
    pub fn get_by_index(&self, i: ObjectIndex) -> Option<&Entry> {
        self.entries.get(i.0 as usize).filter(|e| e.allocated)
    }

    /// Returns the current full reference for a live index.
    pub fn ref_for(&self, i: ObjectIndex) -> ArchResult<ObjectRef> {
        let e = self
            .entries
            .get(i.0 as usize)
            .ok_or(ArchError::BadIndex(i))?;
        if !e.allocated {
            return Err(ArchError::FreeEntry(i));
        }
        Ok(ObjectRef {
            index: i,
            generation: e.generation,
        })
    }

    /// Iterates all live entries with their indices.
    pub fn iter_live(&self) -> impl Iterator<Item = (ObjectIndex, &Entry)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.allocated)
            .map(|(i, e)| (ObjectIndex(i as u32), e))
    }

    /// Mutable iteration over all live entries (collector sweep).
    pub fn iter_live_mut(&mut self) -> impl Iterator<Item = (ObjectIndex, &mut Entry)> + '_ {
        self.entries
            .iter_mut()
            .enumerate()
            .filter(|(_, e)| e.allocated)
            .map(|(i, e)| (ObjectIndex(i as u32), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{descriptor::ObjectType, level::Level};

    fn desc() -> ObjectDescriptor {
        ObjectDescriptor::new(0, 8, 0, 2, ObjectType::GENERIC, Level::GLOBAL)
    }

    #[test]
    fn install_get_reclaim_cycle() {
        let mut t = ObjectTable::new(16);
        let r = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(t.live_count(), 1);
        assert!(t.get(r).is_ok());
        t.reclaim(r).unwrap();
        assert_eq!(t.live_count(), 0);
        assert!(matches!(t.get(r), Err(ArchError::FreeEntry(_))));
    }

    #[test]
    fn stale_reference_detected_after_reuse() {
        let mut t = ObjectTable::new(16);
        let r1 = t.install(desc(), SysState::Generic).unwrap();
        t.reclaim(r1).unwrap();
        let r2 = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(r1.index, r2.index, "entry should be recycled");
        assert!(matches!(t.get(r1), Err(ArchError::StaleRef(_))));
        assert!(t.get(r2).is_ok());
    }

    #[test]
    fn table_limit_enforced() {
        let mut t = ObjectTable::new(2);
        t.install(desc(), SysState::Generic).unwrap();
        t.install(desc(), SysState::Generic).unwrap();
        assert!(matches!(
            t.install(desc(), SysState::Generic),
            Err(ArchError::TableExhausted)
        ));
    }

    #[test]
    fn reclaim_frees_capacity_under_limit() {
        let mut t = ObjectTable::new(1);
        let r = t.install(desc(), SysState::Generic).unwrap();
        t.reclaim(r).unwrap();
        assert!(t.install(desc(), SysState::Generic).is_ok());
    }

    #[test]
    fn iter_live_skips_reclaimed() {
        let mut t = ObjectTable::new(8);
        let a = t.install(desc(), SysState::Generic).unwrap();
        let _b = t.install(desc(), SysState::Generic).unwrap();
        t.reclaim(a).unwrap();
        assert_eq!(t.iter_live().count(), 1);
    }

    #[test]
    fn ref_for_tracks_generation() {
        let mut t = ObjectTable::new(8);
        let a = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(t.ref_for(a.index).unwrap(), a);
        t.reclaim(a).unwrap();
        assert!(t.ref_for(a.index).is_err());
        let b = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(t.ref_for(b.index).unwrap().generation, b.generation);
    }

    #[test]
    fn bad_index_reported() {
        let t = ObjectTable::new(8);
        let bogus = ObjectRef {
            index: ObjectIndex(99),
            generation: 0,
        };
        assert!(matches!(t.get(bogus), Err(ArchError::BadIndex(_))));
    }
}
