//! The global object descriptor table.
//!
//! Paper §2: "Access descriptors or capabilities name entries in a global
//! object descriptor table. Each object descriptor in this table describes
//! a segment..."
//!
//! Entries are recycled; each carries a *generation* that is bumped on
//! reclamation so stale references are detected (see
//! [`crate::refs::ObjectRef`]).
//!
//! # Two-level demand-grown directory
//!
//! Entry storage is a two-level directory rather than a flat vector: a
//! *root page* of [`AtomicPtr`] leaf pointers, one per
//! [`LEAF_ENTRIES`]-entry *leaf page*, with leaves allocated on first
//! touch. Lookup is O(1) (`slot >> LEAF_SHIFT` into the root, `slot &
//! LEAF_MASK` into the leaf), `ObjectIndex` values are stable (a leaf is
//! never moved or freed while the table lives), and the capacity ceiling
//! is still `limit` — but a table with a million-entry ceiling and a
//! thousand live objects holds exactly one leaf page, not a
//! million-entry vector.
//!
//! Leaf pointers are published with `Release` stores and read with
//! `Acquire` loads so a reader that reaches a leaf through the root page
//! always observes its initialized contents; all *mutation* of entries
//! still happens under whatever exclusion the embedding space provides
//! (the per-shard locks of `SharedSpace`), exactly as with the flat
//! vector — the directory changes the storage shape, not the locking
//! protocol. The per-processor qualification cache is likewise
//! untouched: its probes are exact on `(index, generation)` and its fast
//! path never reads the table, so generation-tagged slot reuse keeps
//! stale hits impossible across directory growth.
//!
//! Every leaf tracks its own live-entry count, so iteration and the
//! collector's sweep skip all-free and unallocated pages in O(1) each:
//! [`ObjectTable::iter_live`] is O(live + touched pages), never
//! O(limit).

use crate::{
    descriptor::{ObjectDescriptor, ObjectType},
    error::{ArchError, ArchResult},
    level::Level,
    refs::{ObjectIndex, ObjectRef},
    sysobj::SysState,
};
use std::sync::atomic::{AtomicPtr, Ordering};

/// Log2 of the entries per leaf page.
pub const LEAF_SHIFT: u32 = 10;
/// Entries per leaf page of the two-level directory.
pub const LEAF_ENTRIES: u32 = 1 << LEAF_SHIFT;
/// Mask extracting the within-leaf slot.
pub const LEAF_MASK: u32 = LEAF_ENTRIES - 1;

/// One object-table entry: descriptor plus interpreted system state.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The architectural descriptor.
    pub desc: ObjectDescriptor,
    /// Hardware-interpreted state (queues, scheduling fields, free lists).
    pub sys: SysState,
    /// Generation counter for stale-reference detection.
    pub generation: u32,
    /// Whether the entry currently describes a live segment.
    pub allocated: bool,
}

impl Entry {
    /// A never-allocated placeholder entry, used to pre-fill the tail of
    /// a freshly touched leaf page. Placeholders are unobservable: every
    /// resolution path checks the slot against the dense materialized
    /// bound first, and iteration filters on `allocated`.
    fn vacant() -> Entry {
        Entry {
            desc: ObjectDescriptor::new(0, 0, 0, 0, ObjectType::GENERIC, Level::GLOBAL),
            sys: SysState::Generic,
            generation: 0,
            allocated: false,
        }
    }
}

/// One leaf page: a fixed block of entries plus its live count, so
/// sweeps and iteration can skip an all-free page in O(1).
#[derive(Debug)]
struct Leaf {
    entries: Vec<Entry>,
    /// Allocated entries on this page.
    live: u32,
}

impl Leaf {
    fn new() -> Leaf {
        Leaf {
            entries: (0..LEAF_ENTRIES).map(|_| Entry::vacant()).collect(),
            live: 0,
        }
    }
}

/// The global object table.
///
/// A table may cover the whole object-index space (`stride == 1`) or an
/// address-interleaved *shard* of it: with stride `n` and offset `k`,
/// the table owns exactly the global indices `i` with `i % n == k`.
/// Entry storage is dense (local slot `s` holds global index
/// `s * n + k`) behind the two-level directory described in the module
/// docs, so sharding costs no memory and the unsharded case degenerates
/// to the identity mapping.
#[derive(Debug)]
pub struct ObjectTable {
    /// Root page: one pointer per leaf page, null until first touch.
    root: Vec<AtomicPtr<Leaf>>,
    /// Free *local* slots available for recycling.
    free: Vec<u32>,
    /// Dense local slots ever materialized (the flat table's
    /// `entries.len()`): fresh installs always take slot `used`.
    used: u32,
    /// Maintained live-entry count (`used - free.len()`, kept
    /// incrementally so it is O(1), reconciled by
    /// [`ObjectTable::debug_validate`]).
    live: u32,
    /// Leaf pages currently allocated.
    leaf_pages: u32,
    limit: u32,
    stride: u32,
    offset: u32,
}

// SAFETY: the raw leaf pointers are owned exclusively by this table (set
// only while `&mut self`, freed only on drop), and `Entry` is itself
// Send + Sync-safe data. `AtomicPtr` already implements both; these
// impls assert the same for the pointed-to leaves.
unsafe impl Send for ObjectTable {}
unsafe impl Sync for ObjectTable {}

impl Drop for ObjectTable {
    fn drop(&mut self) {
        for p in &self.root {
            let leaf = p.load(Ordering::Acquire);
            if !leaf.is_null() {
                // SAFETY: non-null root pointers were created by
                // Box::into_raw in ensure_leaf and never freed elsewhere.
                drop(unsafe { Box::from_raw(leaf) });
            }
        }
    }
}

impl Clone for ObjectTable {
    fn clone(&self) -> ObjectTable {
        let root = self
            .root
            .iter()
            .map(|p| {
                let leaf = p.load(Ordering::Acquire);
                if leaf.is_null() {
                    AtomicPtr::new(std::ptr::null_mut())
                } else {
                    // SAFETY: non-null pointers reference live leaves
                    // owned by `self`.
                    let copy = unsafe { (*leaf).entries.clone() };
                    let live = unsafe { (*leaf).live };
                    AtomicPtr::new(Box::into_raw(Box::new(Leaf {
                        entries: copy,
                        live,
                    })))
                }
            })
            .collect();
        ObjectTable {
            root,
            free: self.free.clone(),
            used: self.used,
            live: self.live,
            leaf_pages: self.leaf_pages,
            limit: self.limit,
            stride: self.stride,
            offset: self.offset,
        }
    }
}

impl ObjectTable {
    /// A table that may grow up to `limit` entries, covering the whole
    /// index space.
    pub fn new(limit: u32) -> ObjectTable {
        ObjectTable::new_strided(limit, 1, 0)
    }

    /// A table owning the interleaved index class `offset (mod stride)`.
    pub fn new_strided(limit: u32, stride: u32, offset: u32) -> ObjectTable {
        assert!(stride >= 1 && offset < stride, "bad shard interleave");
        let root_len = (limit as usize).div_ceil(LEAF_ENTRIES as usize);
        ObjectTable {
            root: (0..root_len)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            free: Vec::new(),
            used: 0,
            live: 0,
            leaf_pages: 0,
            limit,
            stride,
            offset,
        }
    }

    /// Maps a global object index to this table's dense local slot.
    /// `None` if the index belongs to a different shard.
    fn local(&self, i: ObjectIndex) -> Option<u32> {
        if self.stride == 1 {
            return Some(i.0);
        }
        if i.0 % self.stride == self.offset {
            Some(i.0 / self.stride)
        } else {
            None
        }
    }

    /// Maps a dense local slot back to its global object index.
    fn global(&self, slot: u32) -> ObjectIndex {
        ObjectIndex(slot * self.stride + self.offset)
    }

    /// The leaf holding `slot`, if that page has been touched.
    fn leaf(&self, page: u32) -> Option<&Leaf> {
        let p = self.root.get(page as usize)?.load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // SAFETY: non-null root pointers reference leaves owned by
            // this table; shared access is covered by `&self`.
            Some(unsafe { &*p })
        }
    }

    /// Mutable variant of [`ObjectTable::leaf`].
    fn leaf_mut(&mut self, page: u32) -> Option<&mut Leaf> {
        let p = self.root.get(page as usize)?.load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // SAFETY: exclusive access through `&mut self`.
            Some(unsafe { &mut *p })
        }
    }

    /// Allocates (on first touch) and returns the leaf page for `slot`.
    fn ensure_leaf(&mut self, page: u32) -> &mut Leaf {
        let cell = &self.root[page as usize];
        if cell.load(Ordering::Acquire).is_null() {
            let fresh = Box::into_raw(Box::new(Leaf::new()));
            cell.store(fresh, Ordering::Release);
            self.leaf_pages += 1;
            i432_trace::bump(i432_trace::Counter::TableLeafPages);
        }
        self.leaf_mut(page).expect("just ensured")
    }

    /// Resolves a materialized dense slot to its entry. `None` when the
    /// slot has never been handed out (`slot >= used`).
    fn slot_entry(&self, slot: u32) -> Option<&Entry> {
        if slot >= self.used {
            return None;
        }
        self.leaf(slot >> LEAF_SHIFT)
            .map(|l| &l.entries[(slot & LEAF_MASK) as usize])
    }

    /// Mutable variant of [`ObjectTable::slot_entry`].
    fn slot_entry_mut(&mut self, slot: u32) -> Option<&mut Entry> {
        if slot >= self.used {
            return None;
        }
        self.leaf_mut(slot >> LEAF_SHIFT)
            .map(|l| &mut l.entries[(slot & LEAF_MASK) as usize])
    }

    /// Number of live (allocated) entries. O(1): maintained on
    /// install/reclaim rather than scanned.
    pub fn live_count(&self) -> u32 {
        self.live
    }

    /// Total entries ever materialized (live + recyclable). O(1).
    pub fn capacity_used(&self) -> u32 {
        self.used
    }

    /// Maximum entries the table may hold.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Leaf pages currently allocated in the directory.
    pub fn leaf_pages(&self) -> u32 {
        self.leaf_pages
    }

    /// One past the largest global index this table can currently
    /// resolve. Sweeps that scan by bare index must use this bound
    /// rather than [`ObjectTable::capacity_used`], which counts dense
    /// local slots and is not a valid index bound once `stride > 1`.
    pub fn index_space_end(&self) -> u32 {
        match self.used {
            0 => 0,
            n => (n - 1) * self.stride + self.offset + 1,
        }
    }

    /// Reconciles the maintained counters against a full directory scan.
    /// Debug/test-only sanity check — O(used), which is exactly what the
    /// maintained counters exist to avoid on hot paths.
    pub fn debug_validate(&self) {
        let mut live = 0u32;
        let mut pages = 0u32;
        for page in 0..self.root.len() as u32 {
            let Some(l) = self.leaf(page) else { continue };
            pages += 1;
            let scanned = l.entries.iter().filter(|e| e.allocated).count() as u32;
            assert_eq!(
                scanned, l.live,
                "leaf {page}: live counter {} != scanned {scanned}",
                l.live
            );
            live += scanned;
        }
        assert_eq!(live, self.live, "table live counter diverged from scan");
        assert_eq!(pages, self.leaf_pages, "leaf-page counter diverged");
        assert_eq!(
            self.used as usize - self.free.len(),
            self.live as usize,
            "used/free/live accounting diverged"
        );
    }

    /// Installs a new entry, returning a fresh reference to it.
    pub fn install(&mut self, desc: ObjectDescriptor, sys: SysState) -> ArchResult<ObjectRef> {
        if let Some(slot) = self.free.pop() {
            let index = self.global(slot);
            let leaf = self
                .leaf_mut(slot >> LEAF_SHIFT)
                .expect("freed slot lies on a touched page");
            leaf.live += 1;
            let e = &mut leaf.entries[(slot & LEAF_MASK) as usize];
            debug_assert!(!e.allocated);
            e.desc = desc;
            e.sys = sys;
            e.allocated = true;
            let generation = e.generation;
            self.live += 1;
            i432_trace::bump_max(
                i432_trace::Counter::TableOccupancyPeak,
                u64::from(self.live),
            );
            return Ok(ObjectRef { index, generation });
        }
        if self.used >= self.limit {
            return Err(ArchError::TableExhausted);
        }
        let slot = self.used;
        let leaf = self.ensure_leaf(slot >> LEAF_SHIFT);
        leaf.live += 1;
        let e = &mut leaf.entries[(slot & LEAF_MASK) as usize];
        e.desc = desc;
        e.sys = sys;
        e.generation = 0;
        e.allocated = true;
        self.used += 1;
        self.live += 1;
        i432_trace::bump_max(
            i432_trace::Counter::TableOccupancyPeak,
            u64::from(self.live),
        );
        Ok(ObjectRef {
            index: self.global(slot),
            generation: 0,
        })
    }

    /// Reclaims an entry, bumping its generation. The caller is
    /// responsible for having returned the segment's storage first.
    pub fn reclaim(&mut self, r: ObjectRef) -> ArchResult<Entry> {
        // Validate before mutating.
        self.get(r)?;
        let slot = self.local(r.index).expect("validated above");
        let leaf = self
            .leaf_mut(slot >> LEAF_SHIFT)
            .expect("validated slot lies on a touched page");
        leaf.live -= 1;
        let e = &mut leaf.entries[(slot & LEAF_MASK) as usize];
        let old = e.clone();
        e.allocated = false;
        e.generation = e.generation.wrapping_add(1);
        e.sys = SysState::Generic;
        self.free.push(slot);
        self.live -= 1;
        Ok(old)
    }

    /// Resolves a reference to its entry, checking liveness and generation.
    pub fn get(&self, r: ObjectRef) -> ArchResult<&Entry> {
        let slot = self.local(r.index).ok_or(ArchError::BadIndex(r.index))?;
        let e = self.slot_entry(slot).ok_or(ArchError::BadIndex(r.index))?;
        if !e.allocated {
            return Err(ArchError::FreeEntry(r.index));
        }
        if e.generation != r.generation {
            return Err(ArchError::StaleRef(r.index));
        }
        Ok(e)
    }

    /// Mutable variant of [`ObjectTable::get`].
    pub fn get_mut(&mut self, r: ObjectRef) -> ArchResult<&mut Entry> {
        let slot = self.local(r.index).ok_or(ArchError::BadIndex(r.index))?;
        let e = self
            .slot_entry_mut(slot)
            .ok_or(ArchError::BadIndex(r.index))?;
        if !e.allocated {
            return Err(ArchError::FreeEntry(r.index));
        }
        if e.generation != r.generation {
            return Err(ArchError::StaleRef(r.index));
        }
        Ok(e)
    }

    /// Resolves by bare index (used by the garbage collector's sweep,
    /// which scans the whole table rather than holding references).
    /// Indices belonging to another shard resolve to `None`.
    pub fn get_by_index(&self, i: ObjectIndex) -> Option<&Entry> {
        let slot = self.local(i)?;
        self.slot_entry(slot).filter(|e| e.allocated)
    }

    /// Returns the current full reference for a live index.
    pub fn ref_for(&self, i: ObjectIndex) -> ArchResult<ObjectRef> {
        let slot = self.local(i).ok_or(ArchError::BadIndex(i))?;
        let e = self.slot_entry(slot).ok_or(ArchError::BadIndex(i))?;
        if !e.allocated {
            return Err(ArchError::FreeEntry(i));
        }
        Ok(ObjectRef {
            index: i,
            generation: e.generation,
        })
    }

    /// The lowest materialized local slot `>= slot` that could hold a
    /// live entry, skipping all-free and unallocated leaf pages in O(1)
    /// each; `used` when no later page holds one. Sweeps use this to
    /// jump dead directory ranges instead of probing every index.
    pub fn next_live_slot_hint(&self, slot: u32) -> u32 {
        let mut s = slot;
        while s < self.used {
            match self.leaf(s >> LEAF_SHIFT) {
                Some(l) if l.live > 0 => return s,
                _ => s = (s >> LEAF_SHIFT).wrapping_add(1) << LEAF_SHIFT,
            }
        }
        self.used
    }

    /// The lowest *global* index `>= from` owned by this table that
    /// could hold a live entry, or [`ObjectTable::index_space_end`] when
    /// none remains. Page-granular: the hint never skips a live entry
    /// but may land on a dead one within a live page.
    pub fn next_live_index_hint(&self, from: u32) -> u32 {
        // Smallest owned slot whose global index is >= from.
        let slot = if from <= self.offset {
            0
        } else {
            (from - self.offset).div_ceil(self.stride)
        };
        let hint = self.next_live_slot_hint(slot);
        if hint >= self.used {
            self.index_space_end()
        } else {
            self.global(hint).0
        }
    }

    /// Visits every live entry whose global index lies in
    /// `[start, end)`, in ascending index order. Returns the number of
    /// leaf pages probed — O(live-in-range + pages), never O(range).
    pub fn for_live_in_range(
        &self,
        start: u32,
        end: u32,
        f: &mut dyn FnMut(ObjectIndex, &Entry),
    ) -> u32 {
        if end <= start || self.used == 0 {
            return 0;
        }
        // Owned dense slots covering [start, end).
        let lo = if start <= self.offset {
            0
        } else {
            (start - self.offset).div_ceil(self.stride)
        };
        let hi = if end <= self.offset {
            0
        } else {
            ((end - 1 - self.offset) / self.stride + 1).min(self.used)
        };
        let mut pages_probed = 0;
        let mut s = lo;
        while s < hi {
            let page = s >> LEAF_SHIFT;
            let page_end = ((page + 1) << LEAF_SHIFT).min(hi);
            pages_probed += 1;
            match self.leaf(page) {
                Some(l) if l.live > 0 => {
                    for slot in s..page_end {
                        let e = &l.entries[(slot & LEAF_MASK) as usize];
                        if e.allocated {
                            f(self.global(slot), e);
                        }
                    }
                }
                _ => {}
            }
            s = page_end;
        }
        pages_probed
    }

    /// Iterates all live entries with their (global) indices. Cost is
    /// O(live + touched pages): all-free leaf pages are skipped via
    /// their live counts and unallocated pages via their null pointers.
    pub fn iter_live(&self) -> impl Iterator<Item = (ObjectIndex, &Entry)> + '_ {
        let pages = (self.used as usize).div_ceil(LEAF_ENTRIES as usize) as u32;
        (0..pages)
            .filter_map(move |page| self.leaf(page).filter(|l| l.live > 0).map(|l| (page, l)))
            .flat_map(move |(page, l)| {
                let base = page << LEAF_SHIFT;
                let len = (self.used - base).min(LEAF_ENTRIES);
                l.entries[..len as usize]
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.allocated)
                    .map(move |(i, e)| (self.global(base + i as u32), e))
            })
    }

    /// Mutable iteration over all live entries (collector sweep). Same
    /// page-skipping cost shape as [`ObjectTable::iter_live`].
    pub fn iter_live_mut(&mut self) -> impl Iterator<Item = (ObjectIndex, &mut Entry)> + '_ {
        let stride = self.stride;
        let offset = self.offset;
        let used = self.used;
        let pages = (used as usize).div_ceil(LEAF_ENTRIES as usize) as u32;
        let root = &self.root;
        (0..pages)
            .filter_map(move |page| {
                let p = root[page as usize].load(Ordering::Acquire);
                // SAFETY: exclusive access through `&mut self` (the
                // borrow is threaded through the returned iterator);
                // each page is visited exactly once, so the &mut
                // entries handed out never alias.
                let l = unsafe { p.as_mut()? };
                if l.live > 0 {
                    Some((page, l))
                } else {
                    None
                }
            })
            .flat_map(move |(page, l)| {
                let base = page << LEAF_SHIFT;
                let len = (used - base).min(LEAF_ENTRIES);
                l.entries[..len as usize]
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, e)| e.allocated)
                    .map(move |(i, e)| (ObjectIndex((base + i as u32) * stride + offset), e))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{descriptor::ObjectType, level::Level};

    fn desc() -> ObjectDescriptor {
        ObjectDescriptor::new(0, 8, 0, 2, ObjectType::GENERIC, Level::GLOBAL)
    }

    #[test]
    fn install_get_reclaim_cycle() {
        let mut t = ObjectTable::new(16);
        let r = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(t.live_count(), 1);
        assert!(t.get(r).is_ok());
        t.reclaim(r).unwrap();
        assert_eq!(t.live_count(), 0);
        assert!(matches!(t.get(r), Err(ArchError::FreeEntry(_))));
        t.debug_validate();
    }

    #[test]
    fn stale_reference_detected_after_reuse() {
        let mut t = ObjectTable::new(16);
        let r1 = t.install(desc(), SysState::Generic).unwrap();
        t.reclaim(r1).unwrap();
        let r2 = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(r1.index, r2.index, "entry should be recycled");
        assert!(matches!(t.get(r1), Err(ArchError::StaleRef(_))));
        assert!(t.get(r2).is_ok());
    }

    #[test]
    fn table_limit_enforced() {
        let mut t = ObjectTable::new(2);
        t.install(desc(), SysState::Generic).unwrap();
        t.install(desc(), SysState::Generic).unwrap();
        assert!(matches!(
            t.install(desc(), SysState::Generic),
            Err(ArchError::TableExhausted)
        ));
    }

    #[test]
    fn reclaim_frees_capacity_under_limit() {
        let mut t = ObjectTable::new(1);
        let r = t.install(desc(), SysState::Generic).unwrap();
        t.reclaim(r).unwrap();
        assert!(t.install(desc(), SysState::Generic).is_ok());
    }

    #[test]
    fn iter_live_skips_reclaimed() {
        let mut t = ObjectTable::new(8);
        let a = t.install(desc(), SysState::Generic).unwrap();
        let _b = t.install(desc(), SysState::Generic).unwrap();
        t.reclaim(a).unwrap();
        assert_eq!(t.iter_live().count(), 1);
    }

    #[test]
    fn ref_for_tracks_generation() {
        let mut t = ObjectTable::new(8);
        let a = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(t.ref_for(a.index).unwrap(), a);
        t.reclaim(a).unwrap();
        assert!(t.ref_for(a.index).is_err());
        let b = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(t.ref_for(b.index).unwrap().generation, b.generation);
    }

    #[test]
    fn bad_index_reported() {
        let t = ObjectTable::new(8);
        let bogus = ObjectRef {
            index: ObjectIndex(99),
            generation: 0,
        };
        assert!(matches!(t.get(bogus), Err(ArchError::BadIndex(_))));
    }

    #[test]
    fn strided_table_owns_interleaved_indices() {
        let mut t = ObjectTable::new_strided(8, 4, 3);
        let a = t.install(desc(), SysState::Generic).unwrap();
        let b = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(a.index.0, 3);
        assert_eq!(b.index.0, 7);
        assert!(t.get(a).is_ok() && t.get(b).is_ok());
        assert_eq!(t.index_space_end(), 8);
        // Foreign-shard indices are rejected, not misresolved.
        let foreign = ObjectRef {
            index: ObjectIndex(4),
            generation: 0,
        };
        assert!(matches!(t.get(foreign), Err(ArchError::BadIndex(_))));
        assert!(t.get_by_index(ObjectIndex(4)).is_none());
        assert!(t.get_by_index(ObjectIndex(7)).is_some());
        let live: Vec<u32> = t.iter_live().map(|(i, _)| i.0).collect();
        assert_eq!(live, vec![3, 7]);
    }

    #[test]
    fn strided_recycling_preserves_global_index() {
        let mut t = ObjectTable::new_strided(8, 2, 1);
        let a = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(a.index.0, 1);
        t.reclaim(a).unwrap();
        let b = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(b.index, a.index, "slot recycled at same global index");
        assert_ne!(b.generation, a.generation);
        assert_eq!(t.ref_for(b.index).unwrap(), b);
    }

    #[test]
    fn directory_grows_by_leaf_pages_on_demand() {
        let mut t = ObjectTable::new(4 * LEAF_ENTRIES);
        assert_eq!(t.leaf_pages(), 0, "no pages before first install");
        let mut refs = Vec::new();
        for _ in 0..LEAF_ENTRIES {
            refs.push(t.install(desc(), SysState::Generic).unwrap());
        }
        assert_eq!(t.leaf_pages(), 1, "one full page");
        let over = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(t.leaf_pages(), 2, "crossing the boundary grows a page");
        assert_eq!(over.index.0, LEAF_ENTRIES);
        // Indices stay stable and resolvable across growth.
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(t.get(*r).unwrap().desc.data_len, 8, "slot {i}");
        }
        t.debug_validate();
    }

    #[test]
    fn maintained_counters_survive_churn() {
        let mut t = ObjectTable::new_strided(8 * LEAF_ENTRIES, 4, 1);
        let mut refs = Vec::new();
        for _ in 0..(2 * LEAF_ENTRIES + 17) {
            refs.push(t.install(desc(), SysState::Generic).unwrap());
        }
        assert_eq!(t.capacity_used(), 2 * LEAF_ENTRIES + 17);
        assert_eq!(t.live_count(), 2 * LEAF_ENTRIES + 17);
        assert_eq!(t.leaf_pages(), 3);
        // Reclaim every third entry, then reconcile against a full scan.
        for r in refs.iter().step_by(3) {
            t.reclaim(*r).unwrap();
        }
        let reclaimed = refs.len().div_ceil(3) as u32;
        assert_eq!(t.live_count(), refs.len() as u32 - reclaimed);
        assert_eq!(t.capacity_used(), refs.len() as u32, "used never shrinks");
        t.debug_validate();
        // LIFO reuse: the most recently freed slot comes back first.
        let last_freed = refs[refs.len() - 1 - (refs.len() - 1) % 3];
        let back = t.install(desc(), SysState::Generic).unwrap();
        assert_eq!(back.index, last_freed.index);
        assert_eq!(back.generation, last_freed.generation.wrapping_add(1));
        t.debug_validate();
    }

    #[test]
    fn dead_page_ranges_are_skipped() {
        let mut t = ObjectTable::new(8 * LEAF_ENTRIES);
        let mut refs = Vec::new();
        for _ in 0..(5 * LEAF_ENTRIES) {
            refs.push(t.install(desc(), SysState::Generic).unwrap());
        }
        // Kill pages 1..4 entirely; keep a handful on pages 0 and 4.
        for (i, r) in refs.iter().enumerate() {
            let page = i as u32 >> LEAF_SHIFT;
            let keep = (page == 0 && i < 10) || (page == 4 && (i as u32 & LEAF_MASK) < 3);
            if !keep {
                t.reclaim(*r).unwrap();
            }
        }
        assert_eq!(t.live_count(), 13);
        assert_eq!(t.leaf_pages(), 5, "pages persist after mass reclaim");
        // Within a live page the hint is page-granular (returns the
        // probe itself)...
        assert_eq!(t.next_live_slot_hint(10), 10);
        // ...but from the start of the dead run it jumps all three dead
        // pages in O(1) each.
        assert_eq!(t.next_live_slot_hint(LEAF_ENTRIES), LEAF_ENTRIES * 4);
        assert_eq!(t.next_live_index_hint(LEAF_ENTRIES), LEAF_ENTRIES * 4);
        // Iteration visits exactly the live set, in ascending order.
        let live: Vec<u32> = t.iter_live().map(|(i, _)| i.0).collect();
        let expected: Vec<u32> = (0..10)
            .chain(4 * LEAF_ENTRIES..4 * LEAF_ENTRIES + 3)
            .collect();
        assert_eq!(live, expected);
        // Range visitation probes only the pages the range touches.
        let mut seen = Vec::new();
        let pages = t.for_live_in_range(0, 5 * LEAF_ENTRIES, &mut |i, _| seen.push(i.0));
        assert_eq!(seen, expected);
        assert_eq!(pages, 5, "one probe per materialized page");
        t.debug_validate();
    }

    #[test]
    fn clone_deep_copies_the_directory() {
        let mut t = ObjectTable::new(4 * LEAF_ENTRIES);
        let a = t.install(desc(), SysState::Generic).unwrap();
        let t2 = t.clone();
        t.reclaim(a).unwrap();
        assert!(t.get(a).is_err());
        assert!(t2.get(a).is_ok(), "clone owns independent leaf pages");
        t2.debug_validate();
    }
}
