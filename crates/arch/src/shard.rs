//! Lock-striped sharding of the object space.
//!
//! The object table and both arenas are partitioned into `N`
//! address-interleaved shards: object index `i` lives in shard
//! `i % N`, each shard has its own [`ObjectSpace`] (table slice, data
//! arena, access arena, stat counters, and root SRO). Since an object's
//! storage always comes from an SRO in its own shard, allocation,
//! destruction and SRO free-list traffic are shard-local; the only
//! genuinely cross-shard operation is storing an access descriptor
//! whose target lives elsewhere, which runs the decomposed
//! container-side / target-side steps of [`ObjectSpace::store_ad`] on
//! the two shards involved.
//!
//! Two types expose the partition:
//!
//! * [`ShardedSpace`] — exclusive ownership, no locks. The
//!   deterministic simulator uses this; with one shard every operation
//!   forwards to the identical [`ObjectSpace`] code path, so
//!   single-shard runs are bit-identical to the unsharded space.
//! * [`SharedSpace`] — the same [`ShardedSpace`] behind one mutex per
//!   shard, shared by reference across host threads. Each thread works
//!   through a [`SpaceAgent`], whose per-operation locking takes the
//!   affected shard (or, for cross-shard AD stores, both shards in
//!   canonical index order — lowest first — so lock acquisition cannot
//!   deadlock). Multi-object sequences take every lock via
//!   [`SpaceAccess::atomic`].

use crate::{
    descriptor::{Color, SystemType},
    error::ArchResult,
    memory::{AccessArena, DataArena},
    object_table::Entry,
    portring::PortRingRegistry,
    qualcache::{QualCache, QualLine},
    refs::{AccessDescriptor, ObjectIndex, ObjectRef},
    rights::Rights,
    space::{ObjectSpace, ObjectSpec, SpaceStats},
    sysobj::{PortState, ProcessState, ProcessorState, SroState, SysState, TdoState},
    traits::{SpaceAccess, SpaceMut},
};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// An object space partitioned into address-interleaved shards, owned
/// exclusively (no internal locking).
#[derive(Debug)]
pub struct ShardedSpace {
    shards: Vec<ObjectSpace>,
    /// Port-ring registry for the lock-free SEND/RECEIVE fast path
    /// (see [`crate::portring`]). Created disabled — the deterministic
    /// runner never consults it; the threaded runner switches it on.
    port_rings: Arc<PortRingRegistry>,
}

impl Clone for ShardedSpace {
    /// Clones the shards only: the clone gets its own fresh, disabled
    /// ring registry, since rings name objects by table index and
    /// generation within one space's lifetime.
    fn clone(&self) -> ShardedSpace {
        ShardedSpace {
            shards: self.shards.clone(),
            port_rings: Arc::new(PortRingRegistry::new()),
        }
    }
}

impl ShardedSpace {
    /// Builds `n` shards splitting the given arena budget and table
    /// limit evenly. `n == 1` produces a space whose behavior (and
    /// operation-by-operation statistics) is identical to
    /// `ObjectSpace::new(data_bytes, access_slots, table_limit)`.
    pub fn new(data_bytes: u32, access_slots: u32, table_limit: u32, n: u32) -> ShardedSpace {
        assert!(n >= 1, "at least one shard");
        let shards = (0..n)
            .map(|k| {
                ObjectSpace::new_interleaved(
                    data_bytes / n,
                    access_slots / n,
                    table_limit / n,
                    n,
                    k,
                )
            })
            .collect();
        ShardedSpace {
            shards,
            port_rings: Arc::new(PortRingRegistry::new()),
        }
    }

    /// The space's port-ring registry (disabled unless a runner enabled
    /// it). Runners hold their own `Arc` clone to flip the switch and
    /// flush rings without borrowing the space.
    #[inline]
    pub fn port_ring_registry(&self) -> &Arc<PortRingRegistry> {
        &self.port_rings
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard holding object index `i`.
    #[inline]
    fn shard_for(&self, r: ObjectRef) -> usize {
        (r.index.0 as usize) % self.shards.len()
    }

    /// Direct access to one shard (collector per-shard passes).
    pub fn shard(&self, k: u32) -> &ObjectSpace {
        &self.shards[k as usize]
    }

    /// Mutable access to one shard.
    pub fn shard_mut(&mut self, k: u32) -> &mut ObjectSpace {
        &mut self.shards[k as usize]
    }

    /// Splits two distinct shards into simultaneous mutable borrows.
    fn two_shards(&mut self, a: usize, b: usize) -> (&mut ObjectSpace, &mut ObjectSpace) {
        debug_assert_ne!(a, b);
        if a < b {
            let (lo, hi) = self.shards.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = self.shards.split_at_mut(a);
            (&mut hi[0], &mut lo[b])
        }
    }

    /// The root SRO of shard 0 (the boot shard).
    #[inline]
    pub fn root_sro(&self) -> ObjectRef {
        self.shards[0].root_sro()
    }

    /// The root SRO of shard `k`.
    #[inline]
    pub fn root_sro_of(&self, k: u32) -> ObjectRef {
        self.shards[k as usize].root_sro()
    }

    /// See [`ObjectSpace::mint`].
    #[inline]
    pub fn mint(&self, r: ObjectRef, rights: Rights) -> AccessDescriptor {
        AccessDescriptor::new(r, rights)
    }

    /// See [`ObjectSpace::qualify`].
    pub fn qualify(&mut self, ad: AccessDescriptor, needed: Rights) -> ArchResult<ObjectRef> {
        let k = self.shard_for(ad.obj);
        self.shards[k].qualify(ad, needed)
    }

    /// See [`ObjectSpace::expect_type`].
    pub fn expect_type(&self, ad: AccessDescriptor, t: SystemType) -> ArchResult<ObjectRef> {
        let k = self.shard_for(ad.obj);
        self.shards[k].expect_type(ad, t)
    }

    /// See [`ObjectSpace::create_object`]. The object is created in the
    /// SRO's shard.
    pub fn create_object(&mut self, sro: ObjectRef, spec: ObjectSpec) -> ArchResult<ObjectRef> {
        let k = self.shard_for(sro);
        self.shards[k].create_object(sro, spec)
    }

    /// See [`ObjectSpace::destroy_object`]. An object's SRO lives in its
    /// own shard, so destruction is shard-local.
    pub fn destroy_object(&mut self, r: ObjectRef) -> ArchResult<Entry> {
        let k = self.shard_for(r);
        self.shards[k].destroy_object(r)
    }

    /// See [`ObjectSpace::bulk_destroy_sro`].
    pub fn bulk_destroy_sro(&mut self, sro: ObjectRef) -> ArchResult<u32> {
        let k = self.shard_for(sro);
        self.shards[k].bulk_destroy_sro(sro)
    }

    /// See [`ObjectSpace::read_data`].
    pub fn read_data(&mut self, ad: AccessDescriptor, off: u32, buf: &mut [u8]) -> ArchResult<()> {
        let k = self.shard_for(ad.obj);
        self.shards[k].read_data(ad, off, buf)
    }

    /// See [`ObjectSpace::write_data`].
    pub fn write_data(&mut self, ad: AccessDescriptor, off: u32, buf: &[u8]) -> ArchResult<()> {
        let k = self.shard_for(ad.obj);
        self.shards[k].write_data(ad, off, buf)
    }

    /// See [`ObjectSpace::read_u64`].
    pub fn read_u64(&mut self, ad: AccessDescriptor, off: u32) -> ArchResult<u64> {
        let mut b = [0u8; 8];
        self.read_data(ad, off, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// See [`ObjectSpace::write_u64`].
    pub fn write_u64(&mut self, ad: AccessDescriptor, off: u32, v: u64) -> ArchResult<()> {
        self.write_data(ad, off, &v.to_le_bytes())
    }

    /// See [`ObjectSpace::load_ad`].
    pub fn load_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        let k = self.shard_for(container.obj);
        self.shards[k].load_ad(container, slot)
    }

    /// See [`ObjectSpace::load_ad_required`].
    pub fn load_ad_required(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<AccessDescriptor> {
        let k = self.shard_for(container.obj);
        self.shards[k].load_ad_required(container, slot)
    }

    /// See [`ObjectSpace::store_ad`]. Same-shard stores run the
    /// unsharded path verbatim; cross-shard stores run its decomposed
    /// container-side and target-side steps on the two shards.
    pub fn store_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        let a = self.shard_for(container.obj);
        match ad {
            Some(t) if self.shard_for(t.obj) != a => {
                let b = self.shard_for(t.obj);
                let (ca, tb) = self.two_shards(a, b);
                let (at, container_level) = ca.store_ad_prepare(container, slot)?;
                tb.store_ad_admit(t.obj, container_level)?;
                ca.store_ad_commit(at, ad)
            }
            _ => self.shards[a].store_ad(container, slot, ad),
        }
    }

    /// See [`ObjectSpace::store_ad_hw`].
    pub fn store_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        let a = self.shard_for(container);
        match ad {
            Some(t) if self.shard_for(t.obj) != a => {
                let b = self.shard_for(t.obj);
                let (ca, tb) = self.two_shards(a, b);
                let at = ca.store_ad_prepare_hw(container, slot)?;
                tb.store_ad_admit_hw(t.obj)?;
                ca.store_ad_commit(at, ad)
            }
            _ => self.shards[a].store_ad_hw(container, slot, ad),
        }
    }

    /// See [`ObjectSpace::load_ad_hw`].
    pub fn load_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        let k = self.shard_for(container);
        self.shards[k].load_ad_hw(container, slot)
    }

    /// See [`ObjectSpace::shade`].
    pub fn shade(&mut self, r: ObjectRef) -> ArchResult<()> {
        let k = self.shard_for(r);
        self.shards[k].shade(r)
    }

    /// See [`ObjectSpace::color_of`].
    pub fn color_of(&self, r: ObjectRef) -> ArchResult<Color> {
        let k = self.shard_for(r);
        self.shards[k].color_of(r)
    }

    /// See [`ObjectSpace::set_color`].
    pub fn set_color(&mut self, r: ObjectRef, c: Color) -> ArchResult<()> {
        let k = self.shard_for(r);
        self.shards[k].set_color(r, c)
    }

    /// See [`ObjectSpace::scan_access_part`].
    pub fn scan_access_part(&self, r: ObjectRef) -> ArchResult<Vec<AccessDescriptor>> {
        let k = self.shard_for(r);
        self.shards[k].scan_access_part(r)
    }

    /// Resolves a reference to its table entry (shard-routed
    /// [`crate::ObjectTable::get`]).
    pub fn entry(&self, r: ObjectRef) -> ArchResult<&Entry> {
        let k = self.shard_for(r);
        self.shards[k].table.get(r)
    }

    /// Mutable variant of [`ShardedSpace::entry`].
    pub fn entry_mut(&mut self, r: ObjectRef) -> ArchResult<&mut Entry> {
        let k = self.shard_for(r);
        self.shards[k].table.get_mut(r)
    }

    /// Shard-routed [`crate::ObjectTable::get_by_index`].
    pub fn entry_by_index(&self, i: ObjectIndex) -> Option<&Entry> {
        let k = (i.0 as usize) % self.shards.len();
        self.shards[k].table.get_by_index(i)
    }

    /// Shard-routed [`crate::ObjectTable::ref_for`].
    pub fn ref_for(&self, i: ObjectIndex) -> ArchResult<ObjectRef> {
        let k = (i.0 as usize) % self.shards.len();
        self.shards[k].table.ref_for(i)
    }

    /// One past the largest valid object index across all shards.
    pub fn index_space_end(&self) -> u32 {
        self.shards
            .iter()
            .map(|s| s.table.index_space_end())
            .max()
            .unwrap_or(0)
    }

    /// Live objects across all shards.
    pub fn live_count(&self) -> u32 {
        self.shards.iter().map(|s| s.table.live_count()).sum()
    }

    /// Every live object index, shard-major (shard 0's objects first).
    pub fn live_indices(&self) -> Vec<ObjectIndex> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.table.iter_live().map(|(i, _)| i));
        }
        out
    }

    /// Operation counters merged across shards.
    pub fn stats(&self) -> SpaceStats {
        let mut total = SpaceStats::default();
        for s in &self.shards {
            total.merge(&s.stats);
        }
        total
    }

    /// Per-shard counters (diagnostics; `stats()` is the merged view).
    pub fn stats_of_shard(&self, k: u32) -> SpaceStats {
        self.shards[k as usize].stats
    }

    /// Placement-independent logical digest of the whole space. Equal
    /// digests mean equal logical state regardless of shard count or
    /// allocation order; see [`crate::digest::logical_digest`].
    pub fn digest(&self) -> u64 {
        crate::digest::logical_digest(self)
    }

    /// See [`ObjectSpace::port`].
    pub fn port(&self, r: ObjectRef) -> ArchResult<&PortState> {
        let k = self.shard_for(r);
        self.shards[k].port(r)
    }

    /// See [`ObjectSpace::port_mut`].
    pub fn port_mut(&mut self, r: ObjectRef) -> ArchResult<&mut PortState> {
        let k = self.shard_for(r);
        self.shards[k].port_mut(r)
    }

    /// See [`ObjectSpace::process`].
    pub fn process(&self, r: ObjectRef) -> ArchResult<&ProcessState> {
        let k = self.shard_for(r);
        self.shards[k].process(r)
    }

    /// See [`ObjectSpace::process_mut`].
    pub fn process_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessState> {
        let k = self.shard_for(r);
        self.shards[k].process_mut(r)
    }

    /// See [`ObjectSpace::processor`].
    pub fn processor(&self, r: ObjectRef) -> ArchResult<&ProcessorState> {
        let k = self.shard_for(r);
        self.shards[k].processor(r)
    }

    /// See [`ObjectSpace::processor_mut`].
    pub fn processor_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessorState> {
        let k = self.shard_for(r);
        self.shards[k].processor_mut(r)
    }

    /// See [`ObjectSpace::sro`].
    pub fn sro(&self, r: ObjectRef) -> ArchResult<&SroState> {
        let k = self.shard_for(r);
        self.shards[k].sro(r)
    }

    /// See [`ObjectSpace::sro_mut`].
    pub fn sro_mut(&mut self, r: ObjectRef) -> ArchResult<&mut SroState> {
        let k = self.shard_for(r);
        self.shards[k].sro_mut(r)
    }

    /// See [`ObjectSpace::tdo`].
    pub fn tdo(&self, r: ObjectRef) -> ArchResult<&TdoState> {
        let k = self.shard_for(r);
        self.shards[k].tdo(r)
    }

    /// See [`ObjectSpace::tdo_mut`].
    pub fn tdo_mut(&mut self, r: ObjectRef) -> ArchResult<&mut TdoState> {
        let k = self.shard_for(r);
        self.shards[k].tdo_mut(r)
    }
}

impl SpaceAccess for ShardedSpace {
    fn root_sro(&self) -> ObjectRef {
        ShardedSpace::root_sro(self)
    }

    fn root_sro_of(&self, shard: u32) -> ObjectRef {
        ShardedSpace::root_sro_of(self, shard)
    }

    fn shard_count(&self) -> u32 {
        ShardedSpace::shard_count(self)
    }

    fn qualify(&mut self, ad: AccessDescriptor, needed: Rights) -> ArchResult<ObjectRef> {
        ShardedSpace::qualify(self, ad, needed)
    }

    fn expect_type(&mut self, ad: AccessDescriptor, t: SystemType) -> ArchResult<ObjectRef> {
        ShardedSpace::expect_type(self, ad, t)
    }

    fn create_object(&mut self, sro: ObjectRef, spec: ObjectSpec) -> ArchResult<ObjectRef> {
        ShardedSpace::create_object(self, sro, spec)
    }

    fn destroy_object(&mut self, r: ObjectRef) -> ArchResult<Entry> {
        ShardedSpace::destroy_object(self, r)
    }

    fn bulk_destroy_sro(&mut self, sro: ObjectRef) -> ArchResult<u32> {
        ShardedSpace::bulk_destroy_sro(self, sro)
    }

    fn read_data(&mut self, ad: AccessDescriptor, off: u32, buf: &mut [u8]) -> ArchResult<()> {
        ShardedSpace::read_data(self, ad, off, buf)
    }

    fn write_data(&mut self, ad: AccessDescriptor, off: u32, buf: &[u8]) -> ArchResult<()> {
        ShardedSpace::write_data(self, ad, off, buf)
    }

    fn load_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        ShardedSpace::load_ad(self, container, slot)
    }

    fn store_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        ShardedSpace::store_ad(self, container, slot, ad)
    }

    fn store_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        ShardedSpace::store_ad_hw(self, container, slot, ad)
    }

    fn load_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        ShardedSpace::load_ad_hw(self, container, slot)
    }

    fn shade(&mut self, r: ObjectRef) -> ArchResult<()> {
        ShardedSpace::shade(self, r)
    }

    fn color_of(&mut self, r: ObjectRef) -> ArchResult<Color> {
        ShardedSpace::color_of(self, r)
    }

    fn set_color(&mut self, r: ObjectRef, c: Color) -> ArchResult<()> {
        ShardedSpace::set_color(self, r, c)
    }

    fn scan_access_part(&mut self, r: ObjectRef) -> ArchResult<Vec<AccessDescriptor>> {
        ShardedSpace::scan_access_part(self, r)
    }

    fn live_indices(&mut self) -> Vec<ObjectIndex> {
        ShardedSpace::live_indices(self)
    }

    fn stats(&mut self) -> SpaceStats {
        ShardedSpace::stats(self)
    }

    fn with_entry(&mut self, r: ObjectRef, f: &mut dyn FnMut(&Entry)) -> ArchResult<()> {
        f(self.entry(r)?);
        Ok(())
    }

    fn with_entry_mut(&mut self, r: ObjectRef, f: &mut dyn FnMut(&mut Entry)) -> ArchResult<()> {
        f(self.entry_mut(r)?);
        Ok(())
    }

    fn atomic(&mut self, f: &mut dyn FnMut(&mut dyn SpaceMut)) {
        f(self)
    }

    fn port_rings(&self) -> Option<&Arc<PortRingRegistry>> {
        Some(&self.port_rings)
    }
}

impl SpaceMut for ShardedSpace {
    fn entry(&self, r: ObjectRef) -> ArchResult<&Entry> {
        ShardedSpace::entry(self, r)
    }

    fn entry_mut(&mut self, r: ObjectRef) -> ArchResult<&mut Entry> {
        ShardedSpace::entry_mut(self, r)
    }

    fn entry_by_index(&self, i: ObjectIndex) -> Option<&Entry> {
        ShardedSpace::entry_by_index(self, i)
    }

    fn ref_for(&self, i: ObjectIndex) -> ArchResult<ObjectRef> {
        ShardedSpace::ref_for(self, i)
    }

    fn index_space_end(&self) -> u32 {
        ShardedSpace::index_space_end(self)
    }

    fn live_count(&self) -> u32 {
        ShardedSpace::live_count(self)
    }

    fn for_each_live(&self, f: &mut dyn FnMut(ObjectIndex, &Entry)) {
        for s in &self.shards {
            for (i, e) in s.table.iter_live() {
                f(i, e);
            }
        }
    }

    fn for_each_live_mut(&mut self, f: &mut dyn FnMut(ObjectIndex, &mut Entry)) {
        for s in &mut self.shards {
            for (i, e) in s.table.iter_live_mut() {
                f(i, e);
            }
        }
    }

    fn leaf_pages(&self) -> u32 {
        self.shards.iter().map(|s| s.table.leaf_pages()).sum()
    }

    fn next_possibly_live(&self, from: u32) -> u32 {
        // Each shard reports its own page-granular hint in global index
        // terms; the earliest hint wins. A shard with nothing left
        // reports its own index_space_end, which min() naturally prunes
        // against livelier shards.
        self.shards
            .iter()
            .map(|s| s.table.next_live_index_hint(from))
            .min()
            .unwrap_or(from)
            .min(self.index_space_end())
            .max(from)
    }

    fn for_live_in_range(
        &self,
        start: u32,
        end: u32,
        f: &mut dyn FnMut(ObjectIndex, &Entry),
    ) -> u32 {
        // Each shard walks only its own pages overlapping the window;
        // the merged visitation is then re-sorted so order stays
        // ascending by global index, exactly as an unsharded sweep
        // would see it.
        let mut pages = 0;
        let mut indices: Vec<u32> = Vec::new();
        for s in &self.shards {
            pages += s
                .table
                .for_live_in_range(start, end, &mut |i, _| indices.push(i.0));
        }
        indices.sort_unstable();
        for i in indices {
            if let Some(e) = self.entry_by_index(ObjectIndex(i)) {
                f(ObjectIndex(i), e);
            }
        }
        pages
    }

    fn data_arena(&self, r: ObjectRef) -> ArchResult<&DataArena> {
        let k = self.shard_for(r);
        Ok(&self.shards[k].data)
    }

    fn data_arena_mut(&mut self, r: ObjectRef) -> ArchResult<&mut DataArena> {
        let k = self.shard_for(r);
        Ok(&mut self.shards[k].data)
    }

    fn access_arena(&self, r: ObjectRef) -> ArchResult<&AccessArena> {
        let k = self.shard_for(r);
        Ok(&self.shards[k].access)
    }

    fn stats_mut_of(&mut self, r: ObjectRef) -> &mut SpaceStats {
        let k = self.shard_for(r);
        &mut self.shards[k].stats
    }

    fn port(&self, r: ObjectRef) -> ArchResult<&PortState> {
        ShardedSpace::port(self, r)
    }

    fn port_mut(&mut self, r: ObjectRef) -> ArchResult<&mut PortState> {
        ShardedSpace::port_mut(self, r)
    }

    fn process(&self, r: ObjectRef) -> ArchResult<&ProcessState> {
        ShardedSpace::process(self, r)
    }

    fn process_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessState> {
        ShardedSpace::process_mut(self, r)
    }

    fn processor(&self, r: ObjectRef) -> ArchResult<&ProcessorState> {
        ShardedSpace::processor(self, r)
    }

    fn processor_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessorState> {
        ShardedSpace::processor_mut(self, r)
    }

    fn sro(&self, r: ObjectRef) -> ArchResult<&SroState> {
        ShardedSpace::sro(self, r)
    }

    fn sro_mut(&mut self, r: ObjectRef) -> ArchResult<&mut SroState> {
        ShardedSpace::sro_mut(self, r)
    }

    fn tdo(&self, r: ObjectRef) -> ArchResult<&TdoState> {
        ShardedSpace::tdo(self, r)
    }

    fn tdo_mut(&mut self, r: ObjectRef) -> ArchResult<&mut TdoState> {
        ShardedSpace::tdo_mut(self, r)
    }
}

// ---------------------------------------------------------------------
// Shared (lock-striped) form
// ---------------------------------------------------------------------

/// A [`ShardedSpace`] shared across host threads behind one mutex per
/// shard.
///
/// # Safety invariants
///
/// * `base` points at the first element of the inner space's shard
///   vector, which is heap storage fixed at construction — no method
///   adds or removes shards, so the pointer stays valid even as the
///   `SharedSpace` value itself moves.
/// * A shard's `ObjectSpace` is only dereferenced while that shard's
///   mutex is held; the whole `ShardedSpace` is only reborrowed (for
///   [`SpaceAccess::atomic`]) while *every* mutex is held. Multi-lock
///   acquisitions always take mutexes in ascending shard order, so two
///   agents cannot deadlock.
/// * The one sanctioned *lock-free* access is the agent's
///   qualification-cache fast path: it reads and writes **data-arena
///   bytes only**, through the per-shard [`ArenaView`] captured at
///   construction, and every byte of every data arena is a relaxed
///   [`AtomicU8`] on both the locked and lock-free paths (see
///   [`DataArena`]), so racing accesses are never data races in the
///   language sense. Logical staleness is excluded by the per-shard
///   **epoch**: every mutation that can move, resize, or reclaim a
///   data part bumps the shard's epoch (release-fenced, under the
///   lock) *before* mutating, and the fast path revalidates the epoch
///   after copying bytes — the seqlock protocol of
///   [`crate::qualcache`].
pub struct SharedSpace {
    inner: UnsafeCell<ShardedSpace>,
    base: *mut ObjectSpace,
    locks: Box<[Mutex<()>]>,
    roots: Box<[ObjectRef]>,
    /// Per-shard invalidation epochs (see [`crate::qualcache`]).
    epochs: Box<[AtomicU64]>,
    /// Per-shard data-arena views for the lock-free fast path.
    arenas: Box<[ArenaView]>,
    /// Clone of the inner space's port-ring registry, reachable without
    /// touching the `UnsafeCell` (agents consult it before any lock).
    port_rings: Arc<PortRingRegistry>,
}

/// A captured pointer to one shard's data-arena cells. The arena's
/// backing `Box<[AtomicU8]>` is allocated once and never resized, so
/// the pointer stays valid for the `SharedSpace`'s lifetime.
struct ArenaView {
    ptr: *const AtomicU8,
    len: usize,
}

// SAFETY: all shard state is reached only under the per-shard mutexes
// (see type-level invariants); the raw pointer is derived from owned
// heap storage and never escapes.
unsafe impl Send for SharedSpace {}
unsafe impl Sync for SharedSpace {}

impl SharedSpace {
    /// Wraps an exclusively owned space for cross-thread sharing.
    pub fn new(space: ShardedSpace) -> SharedSpace {
        let n = space.shard_count() as usize;
        let roots = (0..n as u32).map(|k| space.root_sro_of(k)).collect();
        let locks = (0..n).map(|_| Mutex::new(())).collect();
        let epochs = (0..n).map(|_| AtomicU64::new(0)).collect();
        let port_rings = Arc::clone(space.port_ring_registry());
        let mut shared = SharedSpace {
            inner: UnsafeCell::new(space),
            base: std::ptr::null_mut(),
            locks,
            roots,
            epochs,
            arenas: Box::new([]),
            port_rings,
        };
        // Capture the shard base pointer and per-shard arena views once,
        // while we still hold the space exclusively. Neither the shard
        // Vec nor any arena is resized afterwards.
        shared.base = shared.inner.get_mut().shards.as_mut_ptr();
        shared.arenas = shared
            .inner
            .get_mut()
            .shards
            .iter()
            .map(|s| {
                let cells = s.data.cells();
                ArenaView {
                    ptr: cells.as_ptr(),
                    len: cells.len(),
                }
            })
            .collect();
        shared
    }

    /// Unwraps back to exclusive ownership (threads must have exited).
    pub fn into_inner(self) -> ShardedSpace {
        self.inner.into_inner()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.locks.len() as u32
    }

    /// A per-thread handle implementing [`SpaceAccess`], with the
    /// descriptor qualification cache enabled.
    pub fn agent(&self) -> SpaceAgent<'_> {
        self.agent_with_cache(true)
    }

    /// A per-thread handle with the qualification cache disabled —
    /// every operation takes the locked path. The conform harness runs
    /// both kinds and diffs digests bit-for-bit.
    pub fn agent_uncached(&self) -> SpaceAgent<'_> {
        self.agent_with_cache(false)
    }

    fn agent_with_cache(&self, cache_enabled: bool) -> SpaceAgent<'_> {
        let n = self.locks.len();
        SpaceAgent {
            shared: self,
            cache: QualCache::new(),
            cache_enabled,
            reads_delta: vec![0; n].into_boxed_slice(),
            writes_delta: vec![0; n].into_boxed_slice(),
        }
    }

    /// Current invalidation epoch of shard `k`.
    #[inline]
    pub fn epoch(&self, k: u32) -> u64 {
        self.epochs[k as usize].load(Ordering::Acquire)
    }

    /// Bumps shard `k`'s epoch *before* a cache-visible mutation. Must
    /// be called with shard `k`'s lock held; the release fence orders
    /// the bump before the mutation's stores, so a fast-path reader
    /// that misses the bump on revalidation cannot have observed the
    /// mutation either.
    #[inline]
    fn bump_epoch(&self, k: usize) {
        self.epochs[k].fetch_add(1, Ordering::Relaxed);
        fence(Ordering::Release);
        i432_trace::emit(i432_trace::EventKind::QualInval, k as u32);
        i432_trace::bump(i432_trace::Counter::QualInvalidations);
    }

    /// Bumps every shard's epoch (entry to an atomic section, which may
    /// mutate anything). Caller holds every shard lock.
    fn bump_all_epochs(&self) {
        for e in self.epochs.iter() {
            e.fetch_add(1, Ordering::Relaxed);
        }
        fence(Ordering::Release);
    }

    /// Test hook: pins shard `k`'s epoch to an arbitrary value (e.g.
    /// near `u64::MAX` to exercise wraparound).
    #[doc(hidden)]
    pub fn force_epoch(&self, k: u32, v: u64) {
        self.epochs[k as usize].store(v, Ordering::Release);
    }

    /// Shard `k`'s data-arena cells, readable without the shard lock.
    #[inline]
    fn data_cells(&self, k: usize) -> &[AtomicU8] {
        let view = &self.arenas[k];
        // SAFETY: the pointer was captured from the shard's
        // `Box<[AtomicU8]>`, which lives exactly as long as `self` and
        // is never resized; `AtomicU8` tolerates concurrent access by
        // construction.
        unsafe { std::slice::from_raw_parts(view.ptr, view.len) }
    }

    #[inline]
    fn shard_for(&self, r: ObjectRef) -> usize {
        (r.index.0 as usize) % self.locks.len()
    }

    /// Runs `f` on one shard under its lock.
    fn with_shard<R>(&self, k: usize, f: impl FnOnce(&mut ObjectSpace) -> R) -> R {
        let _g = self.locks[k].lock();
        i432_trace::emit(i432_trace::EventKind::ShardLock, k as u32);
        i432_trace::bump(i432_trace::Counter::ShardLocks);
        // SAFETY: shard k is only touched under lock k (see type-level
        // invariants), which we hold for the duration of `f`.
        f(unsafe { &mut *self.base.add(k) })
    }

    /// Runs `f` on two distinct shards, locking in ascending shard
    /// order. Arguments reach `f` in the order given, not lock order.
    fn with_two_shards<R>(
        &self,
        a: usize,
        b: usize,
        f: impl FnOnce(&mut ObjectSpace, &mut ObjectSpace) -> R,
    ) -> R {
        debug_assert_ne!(a, b);
        let (lo, hi) = (a.min(b), a.max(b));
        let _g1 = self.locks[lo].lock();
        let _g2 = self.locks[hi].lock();
        i432_trace::emit(i432_trace::EventKind::ShardLockPair, lo as u32);
        i432_trace::bump(i432_trace::Counter::ShardLockPairs);
        // SAFETY: both locks held; a != b so the borrows are disjoint.
        f(unsafe { &mut *self.base.add(a) }, unsafe {
            &mut *self.base.add(b)
        })
    }

    /// Runs `f` with every shard locked (ascending order) — the
    /// indivisible multi-object sequences of the interpreter.
    fn with_all<R>(&self, f: impl FnOnce(&mut ShardedSpace) -> R) -> R {
        let _guards: Vec<_> = self.locks.iter().map(|l| l.lock()).collect();
        i432_trace::emit(i432_trace::EventKind::ShardLockAll, 0);
        i432_trace::bump(i432_trace::Counter::ShardLockAll);
        // SAFETY: holding every shard lock excludes all other access to
        // the space, so a unique reborrow of the whole is sound.
        f(unsafe { &mut *self.inner.get() })
    }

    /// Collector entry: runs `f` on shard `k` under its lock, exposing
    /// the shard's [`ObjectSpace`] directly so a per-shard marker or
    /// sweeper can walk live leaf pages ([`ObjectSpace::for_live_in_range`])
    /// and flip colors in bulk without per-object agent round trips.
    ///
    /// Epoch contract: `f` may *read* anything in the shard and may
    /// mutate **color state only** (shade / blacken / whiten) — colors
    /// do not participate in descriptor qualification, so color flips
    /// are invisible to the lock-free qualification cache and need **no
    /// epoch bump**. Anything cache-visible — destroying objects,
    /// moving storage, touching access parts — must instead go through
    /// a [`SpaceAgent`] (whose `destroy_object`/`atomic` paths bump
    /// shard epochs before mutating).
    pub fn with_shard_gc<R>(&self, k: u32, f: impl FnOnce(&mut ObjectSpace) -> R) -> R {
        self.with_shard(k as usize, f)
    }
}

/// One thread's handle onto a [`SharedSpace`]. Implements
/// [`SpaceAccess`]: each operation locks the shard(s) it touches and
/// releases them before returning — except data reads and writes that
/// hit the agent's private descriptor qualification cache, which go
/// straight to the arena under the epoch seqlock protocol of
/// [`crate::qualcache`] and take **no lock at all**.
pub struct SpaceAgent<'a> {
    shared: &'a SharedSpace,
    /// This agent's (this emulated processor's) qualification cache.
    cache: QualCache,
    cache_enabled: bool,
    /// Data reads/writes served by the fast path, not yet folded into
    /// the owning shard's `SpaceStats` (flushed by `stats()`/`Drop`).
    reads_delta: Box<[u64]>,
    writes_delta: Box<[u64]>,
}

impl SpaceAgent<'_> {
    /// Whether the qualification cache is consulted on this agent.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Valid lines currently held (diagnostics/tests).
    pub fn cache_occupancy(&self) -> usize {
        self.cache.occupancy()
    }

    /// Installs a line for `r` after a successful locked operation on
    /// its shard. Called with the shard lock held (the epoch read is
    /// therefore stable: bumps only happen under this lock).
    fn prime(cache: &mut QualCache, shared: &SharedSpace, k: usize, s: &ObjectSpace, r: ObjectRef) {
        let Ok(e) = s.table.get(r) else { return };
        if e.desc.absent {
            return;
        }
        cache.fill(QualLine {
            obj: r,
            epoch: shared.epoch(k as u32),
            data_base: e.desc.data_base,
            data_len: e.desc.data_len,
            accessed: e.desc.accessed,
            dirty: e.desc.dirty,
            valid: true,
        });
    }

    /// Lock-free read attempt. Returns `true` only when `buf` holds a
    /// consistent copy; any doubt (cold line, stale epoch, rights or
    /// bounds that the locked path must adjudicate, torn read) returns
    /// `false` and the caller falls through to the locked path.
    fn fast_read(&mut self, ad: AccessDescriptor, off: u32, buf: &mut [u8]) -> bool {
        let Some(line) = self.cache.probe(ad.obj) else {
            return false;
        };
        let line = *line;
        // The locked path owns every fault: rights and bounds misses
        // fall through so `rights_faults` and error values stay exact.
        // A read would also set the descriptor's `accessed` bit, so the
        // fast path requires it to be set already.
        if !line.accessed || !ad.rights.contains(Rights::READ) {
            return false;
        }
        let Some(end) = off.checked_add(buf.len() as u32) else {
            return false;
        };
        if end > line.data_len {
            return false;
        }
        let k = self.shared.shard_for(ad.obj);
        let e1 = self.shared.epoch(k as u32);
        if e1 != line.epoch {
            self.cache.evict(ad.obj);
            return false;
        }
        let cells = self.shared.data_cells(k);
        let base = line.data_base as usize + off as usize;
        let Some(window) = cells.get(base..base + buf.len()) else {
            return false;
        };
        for (dst, cell) in buf.iter_mut().zip(window) {
            *dst = cell.load(Ordering::Relaxed);
        }
        // Seqlock revalidation: if the epoch moved while we copied, the
        // bytes may be torn — discard and retry under the lock.
        fence(Ordering::Acquire);
        if self.shared.epoch(k as u32) != e1 {
            self.cache.evict(ad.obj);
            return false;
        }
        self.reads_delta[k] += 1;
        true
    }

    /// Lock-free write attempt; mirror of [`SpaceAgent::fast_read`]
    /// (requiring the `dirty` bit so no descriptor update is lost). If
    /// revalidation fails the write is redone through the locked path —
    /// the locked redo either lands the same bytes or faults on the
    /// stale reference. See DESIGN.md §7 for the residual
    /// write-vs-destroy caveat this inherits from the 432.
    fn fast_write(&mut self, ad: AccessDescriptor, off: u32, buf: &[u8]) -> bool {
        let Some(line) = self.cache.probe(ad.obj) else {
            return false;
        };
        let line = *line;
        if !line.accessed || !line.dirty || !ad.rights.contains(Rights::WRITE) {
            return false;
        }
        let Some(end) = off.checked_add(buf.len() as u32) else {
            return false;
        };
        if end > line.data_len {
            return false;
        }
        let k = self.shared.shard_for(ad.obj);
        let e1 = self.shared.epoch(k as u32);
        if e1 != line.epoch {
            self.cache.evict(ad.obj);
            return false;
        }
        let cells = self.shared.data_cells(k);
        let base = line.data_base as usize + off as usize;
        let Some(window) = cells.get(base..base + buf.len()) else {
            return false;
        };
        for (src, cell) in buf.iter().zip(window) {
            cell.store(*src, Ordering::Relaxed);
        }
        // A full barrier before revalidating: the stores above must be
        // globally visible before we conclude no mutation raced them.
        fence(Ordering::SeqCst);
        if self.shared.epoch(k as u32) != e1 {
            self.cache.evict(ad.obj);
            return false;
        }
        self.writes_delta[k] += 1;
        true
    }

    /// Folds fast-path operation counts into the owning shards' stats.
    fn flush_stat_deltas(&mut self) {
        for k in 0..self.shared.locks.len() {
            let (r, w) = (self.reads_delta[k], self.writes_delta[k]);
            if r == 0 && w == 0 {
                continue;
            }
            self.reads_delta[k] = 0;
            self.writes_delta[k] = 0;
            self.shared.with_shard(k, |s| {
                s.stats.data_reads += r;
                s.stats.data_writes += w;
            });
        }
    }
}

impl Drop for SpaceAgent<'_> {
    fn drop(&mut self) {
        self.flush_stat_deltas();
    }
}

impl SpaceAccess for SpaceAgent<'_> {
    fn root_sro(&self) -> ObjectRef {
        self.shared.roots[0]
    }

    fn root_sro_of(&self, shard: u32) -> ObjectRef {
        self.shared.roots[shard as usize]
    }

    fn shard_count(&self) -> u32 {
        self.shared.shard_count()
    }

    fn qualify(&mut self, ad: AccessDescriptor, needed: Rights) -> ArchResult<ObjectRef> {
        self.shared
            .with_shard(self.shared.shard_for(ad.obj), |s| s.qualify(ad, needed))
    }

    fn qual_epoch(&self, r: ObjectRef) -> Option<u64> {
        Some(self.shared.epoch(self.shared.shard_for(r) as u32))
    }

    fn expect_type(&mut self, ad: AccessDescriptor, t: SystemType) -> ArchResult<ObjectRef> {
        self.shared
            .with_shard(self.shared.shard_for(ad.obj), |s| s.expect_type(ad, t))
    }

    fn create_object(&mut self, sro: ObjectRef, spec: ObjectSpec) -> ArchResult<ObjectRef> {
        self.shared
            .with_shard(self.shared.shard_for(sro), |s| s.create_object(sro, spec))
    }

    fn destroy_object(&mut self, r: ObjectRef) -> ArchResult<Entry> {
        self.cache.evict(r);
        let shared = self.shared;
        let k = shared.shard_for(r);
        shared.with_shard(k, |s| {
            // Bump-before-mutate: a fast path elsewhere that fails to
            // see this bump cannot have seen the reclamation either.
            shared.bump_epoch(k);
            s.destroy_object(r)
        })
    }

    fn bulk_destroy_sro(&mut self, sro: ObjectRef) -> ArchResult<u32> {
        self.cache.clear();
        let shared = self.shared;
        let k = shared.shard_for(sro);
        shared.with_shard(k, |s| {
            shared.bump_epoch(k);
            s.bulk_destroy_sro(sro)
        })
    }

    fn read_data(&mut self, ad: AccessDescriptor, off: u32, buf: &mut [u8]) -> ArchResult<()> {
        if self.cache_enabled && self.fast_read(ad, off, buf) {
            i432_trace::emit(i432_trace::EventKind::QualHit, ad.obj.index.0);
            i432_trace::bump(i432_trace::Counter::QualHits);
            return Ok(());
        }
        if self.cache_enabled {
            i432_trace::emit(i432_trace::EventKind::QualMiss, ad.obj.index.0);
            i432_trace::bump(i432_trace::Counter::QualMisses);
        }
        let shared = self.shared;
        let k = shared.shard_for(ad.obj);
        let enabled = self.cache_enabled;
        let cache = &mut self.cache;
        shared.with_shard(k, |s| {
            let out = s.read_data(ad, off, buf);
            if enabled && out.is_ok() {
                Self::prime(cache, shared, k, s, ad.obj);
            }
            out
        })
    }

    fn write_data(&mut self, ad: AccessDescriptor, off: u32, buf: &[u8]) -> ArchResult<()> {
        if self.cache_enabled && self.fast_write(ad, off, buf) {
            i432_trace::emit(i432_trace::EventKind::QualHit, ad.obj.index.0);
            i432_trace::bump(i432_trace::Counter::QualHits);
            return Ok(());
        }
        if self.cache_enabled {
            i432_trace::emit(i432_trace::EventKind::QualMiss, ad.obj.index.0);
            i432_trace::bump(i432_trace::Counter::QualMisses);
        }
        let shared = self.shared;
        let k = shared.shard_for(ad.obj);
        let enabled = self.cache_enabled;
        let cache = &mut self.cache;
        shared.with_shard(k, |s| {
            let out = s.write_data(ad, off, buf);
            if enabled && out.is_ok() {
                Self::prime(cache, shared, k, s, ad.obj);
            }
            out
        })
    }

    fn load_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        self.shared
            .with_shard(self.shared.shard_for(container.obj), |s| {
                s.load_ad(container, slot)
            })
    }

    fn store_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        let a = self.shared.shard_for(container.obj);
        match ad {
            Some(t) if self.shared.shard_for(t.obj) != a => {
                let b = self.shared.shard_for(t.obj);
                self.shared.with_two_shards(a, b, |ca, tb| {
                    let (at, container_level) = ca.store_ad_prepare(container, slot)?;
                    tb.store_ad_admit(t.obj, container_level)?;
                    ca.store_ad_commit(at, ad)
                })
            }
            _ => self
                .shared
                .with_shard(a, |s| s.store_ad(container, slot, ad)),
        }
    }

    fn store_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        let a = self.shared.shard_for(container);
        match ad {
            Some(t) if self.shared.shard_for(t.obj) != a => {
                let b = self.shared.shard_for(t.obj);
                self.shared.with_two_shards(a, b, |ca, tb| {
                    let at = ca.store_ad_prepare_hw(container, slot)?;
                    tb.store_ad_admit_hw(t.obj)?;
                    ca.store_ad_commit(at, ad)
                })
            }
            _ => self
                .shared
                .with_shard(a, |s| s.store_ad_hw(container, slot, ad)),
        }
    }

    fn load_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        self.shared
            .with_shard(self.shared.shard_for(container), |s| {
                s.load_ad_hw(container, slot)
            })
    }

    fn shade(&mut self, r: ObjectRef) -> ArchResult<()> {
        self.shared
            .with_shard(self.shared.shard_for(r), |s| s.shade(r))
    }

    fn color_of(&mut self, r: ObjectRef) -> ArchResult<Color> {
        self.shared
            .with_shard(self.shared.shard_for(r), |s| s.color_of(r))
    }

    fn set_color(&mut self, r: ObjectRef, c: Color) -> ArchResult<()> {
        self.shared
            .with_shard(self.shared.shard_for(r), |s| s.set_color(r, c))
    }

    fn scan_access_part(&mut self, r: ObjectRef) -> ArchResult<Vec<AccessDescriptor>> {
        self.shared
            .with_shard(self.shared.shard_for(r), |s| s.scan_access_part(r))
    }

    fn live_indices(&mut self) -> Vec<ObjectIndex> {
        let mut out = Vec::new();
        for k in 0..self.shared.locks.len() {
            self.shared.with_shard(k, |s| {
                out.extend(s.table.iter_live().map(|(i, _)| i));
            });
        }
        out
    }

    fn stats(&mut self) -> SpaceStats {
        self.flush_stat_deltas();
        let mut total = SpaceStats::default();
        for k in 0..self.shared.locks.len() {
            self.shared.with_shard(k, |s| total.merge(&s.stats));
        }
        total
    }

    fn with_entry(&mut self, r: ObjectRef, f: &mut dyn FnMut(&Entry)) -> ArchResult<()> {
        self.shared.with_shard(self.shared.shard_for(r), |s| {
            f(s.table.get(r)?);
            Ok(())
        })
    }

    fn with_entry_mut(&mut self, r: ObjectRef, f: &mut dyn FnMut(&mut Entry)) -> ArchResult<()> {
        let shared = self.shared;
        let k = shared.shard_for(r);
        shared.with_shard(k, |s| {
            // A raw entry mutation may change anything a line caches
            // (descriptor base/len, residency, usage bits).
            shared.bump_epoch(k);
            f(s.table.get_mut(r)?);
            Ok(())
        })
    }

    fn with_sys_mut(&mut self, r: ObjectRef, f: &mut dyn FnMut(&mut SysState)) -> ArchResult<()> {
        // Interpreted sys state (process/processor/context/port fields)
        // is never cached, so this mutation does NOT bump the epoch —
        // the interpreter's per-step bookkeeping must not evict its own
        // hot lines.
        self.shared.with_shard(self.shared.shard_for(r), |s| {
            f(&mut s.table.get_mut(r)?.sys);
            Ok(())
        })
    }

    fn atomic(&mut self, f: &mut dyn FnMut(&mut dyn SpaceMut)) {
        let shared = self.shared;
        shared.with_all(|space| {
            // The section gets the full SpaceMut view and may mutate
            // any shard, so every epoch bumps (all locks are held).
            shared.bump_all_epochs();
            f(space)
        })
    }

    fn port_rings(&self) -> Option<&Arc<PortRingRegistry>> {
        Some(&self.shared.port_rings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ArchError;
    use crate::level::Level;
    use crate::traits::SpaceAccessExt;

    /// A fixed op sequence run against any per-op space.
    fn script<S: SpaceAccess + ?Sized>(s: &mut S) -> Vec<u64> {
        let root = s.root_sro();
        let a = s.create_object(root, ObjectSpec::generic(32, 4)).unwrap();
        let b = s.create_object(root, ObjectSpec::generic(16, 2)).unwrap();
        let a_ad = s.mint(a, Rights::ALL);
        let b_ad = s.mint(b, Rights::ALL);
        s.write_u64(a_ad, 0, 7).unwrap();
        s.write_u64(b_ad, 8, 9).unwrap();
        s.store_ad(a_ad, 0, Some(b_ad)).unwrap();
        s.store_ad_hw(b, 0, Some(a_ad)).unwrap();
        let x = s.read_u64(a_ad, 0).unwrap();
        let y = s.read_u64(b_ad, 8).unwrap();
        s.destroy_object(a).unwrap();
        let st = s.stats();
        vec![
            x,
            y,
            st.objects_created,
            st.objects_destroyed,
            st.ad_stores,
            st.ad_loads,
            st.barrier_shades,
            st.data_reads,
            st.data_writes,
        ]
    }

    #[test]
    fn single_shard_matches_object_space_exactly() {
        let mut plain = ObjectSpace::new(65536, 1024, 512);
        let mut sharded = ShardedSpace::new(65536, 1024, 512, 1);
        assert_eq!(script(&mut plain), script(&mut sharded));
        // Same object indices were handed out, too.
        assert_eq!(
            SpaceAccess::live_indices(&mut plain),
            SpaceAccess::live_indices(&mut sharded)
        );
    }

    #[test]
    fn shards_isolate_storage_but_share_index_space() {
        let mut s = ShardedSpace::new(65536, 1024, 512, 4);
        let roots: Vec<ObjectRef> = (0..4).map(|k| s.root_sro_of(k)).collect();
        // Root SROs occupy interleaved indices 0..4.
        for (k, r) in roots.iter().enumerate() {
            assert_eq!(r.index.0, k as u32);
        }
        // Objects land in their SRO's shard.
        for (k, &root) in roots.iter().enumerate() {
            let r = s.create_object(root, ObjectSpec::generic(8, 1)).unwrap();
            assert_eq!(r.index.0 % 4, k as u32);
        }
        assert_eq!(s.live_count(), 8);
    }

    #[test]
    fn cross_shard_store_enforces_level_rule_and_barrier() {
        let mut s = ShardedSpace::new(65536, 1024, 512, 4);
        let container = s
            .create_object(s.root_sro_of(0), ObjectSpec::generic(0, 2))
            .unwrap();
        let target = s
            .create_object(s.root_sro_of(1), ObjectSpec::generic(8, 0))
            .unwrap();
        let deep = s
            .create_object(
                s.root_sro_of(2),
                ObjectSpec {
                    level: Some(Level(3)),
                    ..ObjectSpec::generic(8, 0)
                },
            )
            .unwrap();
        let c_ad = s.mint(container, Rights::ALL);
        // Legal cross-shard store runs the write barrier on the target's
        // shard.
        s.store_ad(c_ad, 0, Some(s.mint(target, Rights::READ)))
            .unwrap();
        assert_eq!(s.color_of(target).unwrap(), Color::Gray);
        assert_eq!(s.stats_of_shard(1).barrier_shades, 1);
        // Illegal (shorter-lived target) cross-shard store faults and
        // charges the target's shard.
        assert!(matches!(
            s.store_ad(c_ad, 1, Some(s.mint(deep, Rights::READ))),
            Err(ArchError::LevelViolation { .. })
        ));
        assert_eq!(s.stats_of_shard(2).level_faults, 1);
        assert_eq!(s.stats().level_faults, 1);
        // The failed store must not have written the slot.
        assert_eq!(s.load_ad(c_ad, 1).unwrap(), None);
    }

    #[test]
    fn shared_space_agents_run_the_script() {
        let shared = SharedSpace::new(ShardedSpace::new(65536, 1024, 512, 4));
        // Agents see the same semantics as exclusive owners. (Scoped so
        // the agent's Drop flushes its stat deltas before into_inner.)
        let out = {
            let mut agent = shared.agent();
            script(&mut agent)
        };
        assert_eq!(out[2], 2, "two objects created");
        let space = shared.into_inner();
        assert_eq!(space.stats().objects_destroyed, 1);
    }

    #[test]
    fn parallel_agents_allocate_without_interference() {
        let shared = SharedSpace::new(ShardedSpace::new(1 << 20, 8192, 4096, 4));
        std::thread::scope(|scope| {
            for k in 0..4u32 {
                let shared = &shared;
                scope.spawn(move || {
                    let mut agent = shared.agent();
                    let root = agent.root_sro_of(k);
                    let mut objs = Vec::new();
                    for i in 0..200u64 {
                        let r = agent
                            .create_object(root, ObjectSpec::generic(16, 2))
                            .unwrap();
                        let ad = agent.mint(r, Rights::ALL);
                        agent.write_u64(ad, 0, i).unwrap();
                        objs.push((r, i));
                    }
                    // Cross-shard linkage: store an AD to a neighbor
                    // shard's root into our objects.
                    let neighbor = agent.root_sro_of((k + 1) % 4);
                    for (r, _) in &objs {
                        let ad = agent.mint(*r, Rights::ALL);
                        agent
                            .store_ad(ad, 0, Some(agent.mint(neighbor, Rights::NONE)))
                            .unwrap();
                    }
                    for (r, i) in &objs {
                        let ad = agent.mint(*r, Rights::READ);
                        assert_eq!(agent.read_u64(ad, 0).unwrap(), *i);
                    }
                    // And an atomic section sees a consistent whole.
                    let live = agent.atomically(|sm| sm.live_count());
                    assert!(live >= 200);
                });
            }
        });
        let space = shared.into_inner();
        assert_eq!(space.stats().objects_created, 800);
        assert_eq!(space.live_count(), 4 + 800);
    }

    /// The `with_shard_gc` epoch contract: color flips are invisible to
    /// the qualification cache and must not bump the shard epoch, while
    /// cache-visible mutations (destroys, atomic sections) must.
    #[test]
    fn gc_color_flips_do_not_bump_epochs_but_destroys_do() {
        let shared = SharedSpace::new(ShardedSpace::new(65536, 1024, 512, 2));
        let victim = {
            let mut agent = shared.agent();
            let root = agent.root_sro_of(1);
            agent
                .create_object(root, ObjectSpec::generic(16, 1))
                .unwrap()
        };
        let before = (shared.epoch(0), shared.epoch(1));
        // A collector pass over shard 1: walk the live entries and flip
        // every color, twice over — pure color traffic.
        shared.with_shard_gc(1, |s| {
            let mut refs = Vec::new();
            s.for_each_live(&mut |i, e| {
                refs.push(ObjectRef {
                    index: i,
                    generation: e.generation,
                })
            });
            for r in &refs {
                s.shade(*r).unwrap();
                s.set_color(*r, Color::Black).unwrap();
                s.set_color(*r, Color::White).unwrap();
            }
        });
        assert_eq!(
            (shared.epoch(0), shared.epoch(1)),
            before,
            "color-only mutation must leave every shard epoch untouched"
        );
        // A cache-visible mutation through the agent invalidates.
        shared.agent().destroy_object(victim).unwrap();
        assert!(
            shared.epoch(1) > before.1,
            "destroying an object must bump its shard's epoch"
        );
    }
}
