//! Lock-striped sharding of the object space.
//!
//! The object table and both arenas are partitioned into `N`
//! address-interleaved shards: object index `i` lives in shard
//! `i % N`, each shard has its own [`ObjectSpace`] (table slice, data
//! arena, access arena, stat counters, and root SRO). Since an object's
//! storage always comes from an SRO in its own shard, allocation,
//! destruction and SRO free-list traffic are shard-local; the only
//! genuinely cross-shard operation is storing an access descriptor
//! whose target lives elsewhere, which runs the decomposed
//! container-side / target-side steps of [`ObjectSpace::store_ad`] on
//! the two shards involved.
//!
//! Two types expose the partition:
//!
//! * [`ShardedSpace`] — exclusive ownership, no locks. The
//!   deterministic simulator uses this; with one shard every operation
//!   forwards to the identical [`ObjectSpace`] code path, so
//!   single-shard runs are bit-identical to the unsharded space.
//! * [`SharedSpace`] — the same [`ShardedSpace`] behind one mutex per
//!   shard, shared by reference across host threads. Each thread works
//!   through a [`SpaceAgent`], whose per-operation locking takes the
//!   affected shard (or, for cross-shard AD stores, both shards in
//!   canonical index order — lowest first — so lock acquisition cannot
//!   deadlock). Multi-object sequences take every lock via
//!   [`SpaceAccess::atomic`].

use crate::{
    descriptor::{Color, SystemType},
    error::ArchResult,
    memory::{AccessArena, DataArena},
    object_table::Entry,
    refs::{AccessDescriptor, ObjectIndex, ObjectRef},
    rights::Rights,
    space::{ObjectSpace, ObjectSpec, SpaceStats},
    sysobj::{PortState, ProcessState, ProcessorState, SroState, TdoState},
    traits::{SpaceAccess, SpaceMut},
};
use parking_lot::Mutex;
use std::cell::UnsafeCell;

/// An object space partitioned into address-interleaved shards, owned
/// exclusively (no internal locking).
#[derive(Debug, Clone)]
pub struct ShardedSpace {
    shards: Vec<ObjectSpace>,
}

impl ShardedSpace {
    /// Builds `n` shards splitting the given arena budget and table
    /// limit evenly. `n == 1` produces a space whose behavior (and
    /// operation-by-operation statistics) is identical to
    /// `ObjectSpace::new(data_bytes, access_slots, table_limit)`.
    pub fn new(data_bytes: u32, access_slots: u32, table_limit: u32, n: u32) -> ShardedSpace {
        assert!(n >= 1, "at least one shard");
        let shards = (0..n)
            .map(|k| {
                ObjectSpace::new_interleaved(
                    data_bytes / n,
                    access_slots / n,
                    table_limit / n,
                    n,
                    k,
                )
            })
            .collect();
        ShardedSpace { shards }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard holding object index `i`.
    #[inline]
    fn shard_for(&self, r: ObjectRef) -> usize {
        (r.index.0 as usize) % self.shards.len()
    }

    /// Direct access to one shard (collector per-shard passes).
    pub fn shard(&self, k: u32) -> &ObjectSpace {
        &self.shards[k as usize]
    }

    /// Mutable access to one shard.
    pub fn shard_mut(&mut self, k: u32) -> &mut ObjectSpace {
        &mut self.shards[k as usize]
    }

    /// Splits two distinct shards into simultaneous mutable borrows.
    fn two_shards(&mut self, a: usize, b: usize) -> (&mut ObjectSpace, &mut ObjectSpace) {
        debug_assert_ne!(a, b);
        if a < b {
            let (lo, hi) = self.shards.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = self.shards.split_at_mut(a);
            (&mut hi[0], &mut lo[b])
        }
    }

    /// The root SRO of shard 0 (the boot shard).
    #[inline]
    pub fn root_sro(&self) -> ObjectRef {
        self.shards[0].root_sro()
    }

    /// The root SRO of shard `k`.
    #[inline]
    pub fn root_sro_of(&self, k: u32) -> ObjectRef {
        self.shards[k as usize].root_sro()
    }

    /// See [`ObjectSpace::mint`].
    #[inline]
    pub fn mint(&self, r: ObjectRef, rights: Rights) -> AccessDescriptor {
        AccessDescriptor::new(r, rights)
    }

    /// See [`ObjectSpace::qualify`].
    pub fn qualify(&mut self, ad: AccessDescriptor, needed: Rights) -> ArchResult<ObjectRef> {
        let k = self.shard_for(ad.obj);
        self.shards[k].qualify(ad, needed)
    }

    /// See [`ObjectSpace::expect_type`].
    pub fn expect_type(&self, ad: AccessDescriptor, t: SystemType) -> ArchResult<ObjectRef> {
        let k = self.shard_for(ad.obj);
        self.shards[k].expect_type(ad, t)
    }

    /// See [`ObjectSpace::create_object`]. The object is created in the
    /// SRO's shard.
    pub fn create_object(&mut self, sro: ObjectRef, spec: ObjectSpec) -> ArchResult<ObjectRef> {
        let k = self.shard_for(sro);
        self.shards[k].create_object(sro, spec)
    }

    /// See [`ObjectSpace::destroy_object`]. An object's SRO lives in its
    /// own shard, so destruction is shard-local.
    pub fn destroy_object(&mut self, r: ObjectRef) -> ArchResult<Entry> {
        let k = self.shard_for(r);
        self.shards[k].destroy_object(r)
    }

    /// See [`ObjectSpace::bulk_destroy_sro`].
    pub fn bulk_destroy_sro(&mut self, sro: ObjectRef) -> ArchResult<u32> {
        let k = self.shard_for(sro);
        self.shards[k].bulk_destroy_sro(sro)
    }

    /// See [`ObjectSpace::read_data`].
    pub fn read_data(&mut self, ad: AccessDescriptor, off: u32, buf: &mut [u8]) -> ArchResult<()> {
        let k = self.shard_for(ad.obj);
        self.shards[k].read_data(ad, off, buf)
    }

    /// See [`ObjectSpace::write_data`].
    pub fn write_data(&mut self, ad: AccessDescriptor, off: u32, buf: &[u8]) -> ArchResult<()> {
        let k = self.shard_for(ad.obj);
        self.shards[k].write_data(ad, off, buf)
    }

    /// See [`ObjectSpace::read_u64`].
    pub fn read_u64(&mut self, ad: AccessDescriptor, off: u32) -> ArchResult<u64> {
        let mut b = [0u8; 8];
        self.read_data(ad, off, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// See [`ObjectSpace::write_u64`].
    pub fn write_u64(&mut self, ad: AccessDescriptor, off: u32, v: u64) -> ArchResult<()> {
        self.write_data(ad, off, &v.to_le_bytes())
    }

    /// See [`ObjectSpace::load_ad`].
    pub fn load_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        let k = self.shard_for(container.obj);
        self.shards[k].load_ad(container, slot)
    }

    /// See [`ObjectSpace::load_ad_required`].
    pub fn load_ad_required(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<AccessDescriptor> {
        let k = self.shard_for(container.obj);
        self.shards[k].load_ad_required(container, slot)
    }

    /// See [`ObjectSpace::store_ad`]. Same-shard stores run the
    /// unsharded path verbatim; cross-shard stores run its decomposed
    /// container-side and target-side steps on the two shards.
    pub fn store_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        let a = self.shard_for(container.obj);
        match ad {
            Some(t) if self.shard_for(t.obj) != a => {
                let b = self.shard_for(t.obj);
                let (ca, tb) = self.two_shards(a, b);
                let (at, container_level) = ca.store_ad_prepare(container, slot)?;
                tb.store_ad_admit(t.obj, container_level)?;
                ca.store_ad_commit(at, ad)
            }
            _ => self.shards[a].store_ad(container, slot, ad),
        }
    }

    /// See [`ObjectSpace::store_ad_hw`].
    pub fn store_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        let a = self.shard_for(container);
        match ad {
            Some(t) if self.shard_for(t.obj) != a => {
                let b = self.shard_for(t.obj);
                let (ca, tb) = self.two_shards(a, b);
                let at = ca.store_ad_prepare_hw(container, slot)?;
                tb.store_ad_admit_hw(t.obj)?;
                ca.store_ad_commit(at, ad)
            }
            _ => self.shards[a].store_ad_hw(container, slot, ad),
        }
    }

    /// See [`ObjectSpace::load_ad_hw`].
    pub fn load_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        let k = self.shard_for(container);
        self.shards[k].load_ad_hw(container, slot)
    }

    /// See [`ObjectSpace::shade`].
    pub fn shade(&mut self, r: ObjectRef) -> ArchResult<()> {
        let k = self.shard_for(r);
        self.shards[k].shade(r)
    }

    /// See [`ObjectSpace::color_of`].
    pub fn color_of(&self, r: ObjectRef) -> ArchResult<Color> {
        let k = self.shard_for(r);
        self.shards[k].color_of(r)
    }

    /// See [`ObjectSpace::set_color`].
    pub fn set_color(&mut self, r: ObjectRef, c: Color) -> ArchResult<()> {
        let k = self.shard_for(r);
        self.shards[k].set_color(r, c)
    }

    /// See [`ObjectSpace::scan_access_part`].
    pub fn scan_access_part(&self, r: ObjectRef) -> ArchResult<Vec<AccessDescriptor>> {
        let k = self.shard_for(r);
        self.shards[k].scan_access_part(r)
    }

    /// Resolves a reference to its table entry (shard-routed
    /// [`crate::ObjectTable::get`]).
    pub fn entry(&self, r: ObjectRef) -> ArchResult<&Entry> {
        let k = self.shard_for(r);
        self.shards[k].table.get(r)
    }

    /// Mutable variant of [`ShardedSpace::entry`].
    pub fn entry_mut(&mut self, r: ObjectRef) -> ArchResult<&mut Entry> {
        let k = self.shard_for(r);
        self.shards[k].table.get_mut(r)
    }

    /// Shard-routed [`crate::ObjectTable::get_by_index`].
    pub fn entry_by_index(&self, i: ObjectIndex) -> Option<&Entry> {
        let k = (i.0 as usize) % self.shards.len();
        self.shards[k].table.get_by_index(i)
    }

    /// Shard-routed [`crate::ObjectTable::ref_for`].
    pub fn ref_for(&self, i: ObjectIndex) -> ArchResult<ObjectRef> {
        let k = (i.0 as usize) % self.shards.len();
        self.shards[k].table.ref_for(i)
    }

    /// One past the largest valid object index across all shards.
    pub fn index_space_end(&self) -> u32 {
        self.shards
            .iter()
            .map(|s| s.table.index_space_end())
            .max()
            .unwrap_or(0)
    }

    /// Live objects across all shards.
    pub fn live_count(&self) -> u32 {
        self.shards.iter().map(|s| s.table.live_count()).sum()
    }

    /// Every live object index, shard-major (shard 0's objects first).
    pub fn live_indices(&self) -> Vec<ObjectIndex> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.table.iter_live().map(|(i, _)| i));
        }
        out
    }

    /// Operation counters merged across shards.
    pub fn stats(&self) -> SpaceStats {
        let mut total = SpaceStats::default();
        for s in &self.shards {
            total.merge(&s.stats);
        }
        total
    }

    /// Per-shard counters (diagnostics; `stats()` is the merged view).
    pub fn stats_of_shard(&self, k: u32) -> SpaceStats {
        self.shards[k as usize].stats
    }

    /// Placement-independent logical digest of the whole space. Equal
    /// digests mean equal logical state regardless of shard count or
    /// allocation order; see [`crate::digest::logical_digest`].
    pub fn digest(&self) -> u64 {
        crate::digest::logical_digest(self)
    }

    /// See [`ObjectSpace::port`].
    pub fn port(&self, r: ObjectRef) -> ArchResult<&PortState> {
        let k = self.shard_for(r);
        self.shards[k].port(r)
    }

    /// See [`ObjectSpace::port_mut`].
    pub fn port_mut(&mut self, r: ObjectRef) -> ArchResult<&mut PortState> {
        let k = self.shard_for(r);
        self.shards[k].port_mut(r)
    }

    /// See [`ObjectSpace::process`].
    pub fn process(&self, r: ObjectRef) -> ArchResult<&ProcessState> {
        let k = self.shard_for(r);
        self.shards[k].process(r)
    }

    /// See [`ObjectSpace::process_mut`].
    pub fn process_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessState> {
        let k = self.shard_for(r);
        self.shards[k].process_mut(r)
    }

    /// See [`ObjectSpace::processor`].
    pub fn processor(&self, r: ObjectRef) -> ArchResult<&ProcessorState> {
        let k = self.shard_for(r);
        self.shards[k].processor(r)
    }

    /// See [`ObjectSpace::processor_mut`].
    pub fn processor_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessorState> {
        let k = self.shard_for(r);
        self.shards[k].processor_mut(r)
    }

    /// See [`ObjectSpace::sro`].
    pub fn sro(&self, r: ObjectRef) -> ArchResult<&SroState> {
        let k = self.shard_for(r);
        self.shards[k].sro(r)
    }

    /// See [`ObjectSpace::sro_mut`].
    pub fn sro_mut(&mut self, r: ObjectRef) -> ArchResult<&mut SroState> {
        let k = self.shard_for(r);
        self.shards[k].sro_mut(r)
    }

    /// See [`ObjectSpace::tdo`].
    pub fn tdo(&self, r: ObjectRef) -> ArchResult<&TdoState> {
        let k = self.shard_for(r);
        self.shards[k].tdo(r)
    }

    /// See [`ObjectSpace::tdo_mut`].
    pub fn tdo_mut(&mut self, r: ObjectRef) -> ArchResult<&mut TdoState> {
        let k = self.shard_for(r);
        self.shards[k].tdo_mut(r)
    }
}

impl SpaceAccess for ShardedSpace {
    fn root_sro(&self) -> ObjectRef {
        ShardedSpace::root_sro(self)
    }

    fn root_sro_of(&self, shard: u32) -> ObjectRef {
        ShardedSpace::root_sro_of(self, shard)
    }

    fn shard_count(&self) -> u32 {
        ShardedSpace::shard_count(self)
    }

    fn qualify(&mut self, ad: AccessDescriptor, needed: Rights) -> ArchResult<ObjectRef> {
        ShardedSpace::qualify(self, ad, needed)
    }

    fn expect_type(&mut self, ad: AccessDescriptor, t: SystemType) -> ArchResult<ObjectRef> {
        ShardedSpace::expect_type(self, ad, t)
    }

    fn create_object(&mut self, sro: ObjectRef, spec: ObjectSpec) -> ArchResult<ObjectRef> {
        ShardedSpace::create_object(self, sro, spec)
    }

    fn destroy_object(&mut self, r: ObjectRef) -> ArchResult<Entry> {
        ShardedSpace::destroy_object(self, r)
    }

    fn bulk_destroy_sro(&mut self, sro: ObjectRef) -> ArchResult<u32> {
        ShardedSpace::bulk_destroy_sro(self, sro)
    }

    fn read_data(&mut self, ad: AccessDescriptor, off: u32, buf: &mut [u8]) -> ArchResult<()> {
        ShardedSpace::read_data(self, ad, off, buf)
    }

    fn write_data(&mut self, ad: AccessDescriptor, off: u32, buf: &[u8]) -> ArchResult<()> {
        ShardedSpace::write_data(self, ad, off, buf)
    }

    fn load_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        ShardedSpace::load_ad(self, container, slot)
    }

    fn store_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        ShardedSpace::store_ad(self, container, slot, ad)
    }

    fn store_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        ShardedSpace::store_ad_hw(self, container, slot, ad)
    }

    fn load_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        ShardedSpace::load_ad_hw(self, container, slot)
    }

    fn shade(&mut self, r: ObjectRef) -> ArchResult<()> {
        ShardedSpace::shade(self, r)
    }

    fn color_of(&mut self, r: ObjectRef) -> ArchResult<Color> {
        ShardedSpace::color_of(self, r)
    }

    fn set_color(&mut self, r: ObjectRef, c: Color) -> ArchResult<()> {
        ShardedSpace::set_color(self, r, c)
    }

    fn scan_access_part(&mut self, r: ObjectRef) -> ArchResult<Vec<AccessDescriptor>> {
        ShardedSpace::scan_access_part(self, r)
    }

    fn live_indices(&mut self) -> Vec<ObjectIndex> {
        ShardedSpace::live_indices(self)
    }

    fn stats(&mut self) -> SpaceStats {
        ShardedSpace::stats(self)
    }

    fn with_entry(&mut self, r: ObjectRef, f: &mut dyn FnMut(&Entry)) -> ArchResult<()> {
        f(self.entry(r)?);
        Ok(())
    }

    fn with_entry_mut(&mut self, r: ObjectRef, f: &mut dyn FnMut(&mut Entry)) -> ArchResult<()> {
        f(self.entry_mut(r)?);
        Ok(())
    }

    fn atomic(&mut self, f: &mut dyn FnMut(&mut dyn SpaceMut)) {
        f(self)
    }
}

impl SpaceMut for ShardedSpace {
    fn entry(&self, r: ObjectRef) -> ArchResult<&Entry> {
        ShardedSpace::entry(self, r)
    }

    fn entry_mut(&mut self, r: ObjectRef) -> ArchResult<&mut Entry> {
        ShardedSpace::entry_mut(self, r)
    }

    fn entry_by_index(&self, i: ObjectIndex) -> Option<&Entry> {
        ShardedSpace::entry_by_index(self, i)
    }

    fn ref_for(&self, i: ObjectIndex) -> ArchResult<ObjectRef> {
        ShardedSpace::ref_for(self, i)
    }

    fn index_space_end(&self) -> u32 {
        ShardedSpace::index_space_end(self)
    }

    fn live_count(&self) -> u32 {
        ShardedSpace::live_count(self)
    }

    fn for_each_live(&self, f: &mut dyn FnMut(ObjectIndex, &Entry)) {
        for s in &self.shards {
            for (i, e) in s.table.iter_live() {
                f(i, e);
            }
        }
    }

    fn for_each_live_mut(&mut self, f: &mut dyn FnMut(ObjectIndex, &mut Entry)) {
        for s in &mut self.shards {
            for (i, e) in s.table.iter_live_mut() {
                f(i, e);
            }
        }
    }

    fn data_arena(&self, r: ObjectRef) -> ArchResult<&DataArena> {
        let k = self.shard_for(r);
        Ok(&self.shards[k].data)
    }

    fn data_arena_mut(&mut self, r: ObjectRef) -> ArchResult<&mut DataArena> {
        let k = self.shard_for(r);
        Ok(&mut self.shards[k].data)
    }

    fn access_arena(&self, r: ObjectRef) -> ArchResult<&AccessArena> {
        let k = self.shard_for(r);
        Ok(&self.shards[k].access)
    }

    fn stats_mut_of(&mut self, r: ObjectRef) -> &mut SpaceStats {
        let k = self.shard_for(r);
        &mut self.shards[k].stats
    }

    fn port(&self, r: ObjectRef) -> ArchResult<&PortState> {
        ShardedSpace::port(self, r)
    }

    fn port_mut(&mut self, r: ObjectRef) -> ArchResult<&mut PortState> {
        ShardedSpace::port_mut(self, r)
    }

    fn process(&self, r: ObjectRef) -> ArchResult<&ProcessState> {
        ShardedSpace::process(self, r)
    }

    fn process_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessState> {
        ShardedSpace::process_mut(self, r)
    }

    fn processor(&self, r: ObjectRef) -> ArchResult<&ProcessorState> {
        ShardedSpace::processor(self, r)
    }

    fn processor_mut(&mut self, r: ObjectRef) -> ArchResult<&mut ProcessorState> {
        ShardedSpace::processor_mut(self, r)
    }

    fn sro(&self, r: ObjectRef) -> ArchResult<&SroState> {
        ShardedSpace::sro(self, r)
    }

    fn sro_mut(&mut self, r: ObjectRef) -> ArchResult<&mut SroState> {
        ShardedSpace::sro_mut(self, r)
    }

    fn tdo(&self, r: ObjectRef) -> ArchResult<&TdoState> {
        ShardedSpace::tdo(self, r)
    }

    fn tdo_mut(&mut self, r: ObjectRef) -> ArchResult<&mut TdoState> {
        ShardedSpace::tdo_mut(self, r)
    }
}

// ---------------------------------------------------------------------
// Shared (lock-striped) form
// ---------------------------------------------------------------------

/// A [`ShardedSpace`] shared across host threads behind one mutex per
/// shard.
///
/// # Safety invariants
///
/// * `base` points at the first element of the inner space's shard
///   vector, which is heap storage fixed at construction — no method
///   adds or removes shards, so the pointer stays valid even as the
///   `SharedSpace` value itself moves.
/// * A shard's `ObjectSpace` is only dereferenced while that shard's
///   mutex is held; the whole `ShardedSpace` is only reborrowed (for
///   [`SpaceAccess::atomic`]) while *every* mutex is held. Multi-lock
///   acquisitions always take mutexes in ascending shard order, so two
///   agents cannot deadlock.
pub struct SharedSpace {
    inner: UnsafeCell<ShardedSpace>,
    base: *mut ObjectSpace,
    locks: Box<[Mutex<()>]>,
    roots: Box<[ObjectRef]>,
}

// SAFETY: all shard state is reached only under the per-shard mutexes
// (see type-level invariants); the raw pointer is derived from owned
// heap storage and never escapes.
unsafe impl Send for SharedSpace {}
unsafe impl Sync for SharedSpace {}

impl SharedSpace {
    /// Wraps an exclusively owned space for cross-thread sharing.
    pub fn new(space: ShardedSpace) -> SharedSpace {
        let n = space.shard_count() as usize;
        let roots = (0..n as u32).map(|k| space.root_sro_of(k)).collect();
        let locks = (0..n).map(|_| Mutex::new(())).collect();
        let mut shared = SharedSpace {
            inner: UnsafeCell::new(space),
            base: std::ptr::null_mut(),
            locks,
            roots,
        };
        // Capture the shard base pointer once, while we still hold the
        // space exclusively. The Vec is never resized afterwards.
        shared.base = shared.inner.get_mut().shards.as_mut_ptr();
        shared
    }

    /// Unwraps back to exclusive ownership (threads must have exited).
    pub fn into_inner(self) -> ShardedSpace {
        self.inner.into_inner()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.locks.len() as u32
    }

    /// A per-thread handle implementing [`SpaceAccess`].
    pub fn agent(&self) -> SpaceAgent<'_> {
        SpaceAgent { shared: self }
    }

    #[inline]
    fn shard_for(&self, r: ObjectRef) -> usize {
        (r.index.0 as usize) % self.locks.len()
    }

    /// Runs `f` on one shard under its lock.
    fn with_shard<R>(&self, k: usize, f: impl FnOnce(&mut ObjectSpace) -> R) -> R {
        let _g = self.locks[k].lock();
        // SAFETY: shard k is only touched under lock k (see type-level
        // invariants), which we hold for the duration of `f`.
        f(unsafe { &mut *self.base.add(k) })
    }

    /// Runs `f` on two distinct shards, locking in ascending shard
    /// order. Arguments reach `f` in the order given, not lock order.
    fn with_two_shards<R>(
        &self,
        a: usize,
        b: usize,
        f: impl FnOnce(&mut ObjectSpace, &mut ObjectSpace) -> R,
    ) -> R {
        debug_assert_ne!(a, b);
        let (lo, hi) = (a.min(b), a.max(b));
        let _g1 = self.locks[lo].lock();
        let _g2 = self.locks[hi].lock();
        // SAFETY: both locks held; a != b so the borrows are disjoint.
        f(unsafe { &mut *self.base.add(a) }, unsafe {
            &mut *self.base.add(b)
        })
    }

    /// Runs `f` with every shard locked (ascending order) — the
    /// indivisible multi-object sequences of the interpreter.
    fn with_all<R>(&self, f: impl FnOnce(&mut ShardedSpace) -> R) -> R {
        let _guards: Vec<_> = self.locks.iter().map(|l| l.lock()).collect();
        // SAFETY: holding every shard lock excludes all other access to
        // the space, so a unique reborrow of the whole is sound.
        f(unsafe { &mut *self.inner.get() })
    }
}

/// One thread's handle onto a [`SharedSpace`]. Implements
/// [`SpaceAccess`]: each operation locks the shard(s) it touches and
/// releases them before returning.
pub struct SpaceAgent<'a> {
    shared: &'a SharedSpace,
}

impl SpaceAccess for SpaceAgent<'_> {
    fn root_sro(&self) -> ObjectRef {
        self.shared.roots[0]
    }

    fn root_sro_of(&self, shard: u32) -> ObjectRef {
        self.shared.roots[shard as usize]
    }

    fn shard_count(&self) -> u32 {
        self.shared.shard_count()
    }

    fn qualify(&mut self, ad: AccessDescriptor, needed: Rights) -> ArchResult<ObjectRef> {
        self.shared
            .with_shard(self.shared.shard_for(ad.obj), |s| s.qualify(ad, needed))
    }

    fn expect_type(&mut self, ad: AccessDescriptor, t: SystemType) -> ArchResult<ObjectRef> {
        self.shared
            .with_shard(self.shared.shard_for(ad.obj), |s| s.expect_type(ad, t))
    }

    fn create_object(&mut self, sro: ObjectRef, spec: ObjectSpec) -> ArchResult<ObjectRef> {
        self.shared
            .with_shard(self.shared.shard_for(sro), |s| s.create_object(sro, spec))
    }

    fn destroy_object(&mut self, r: ObjectRef) -> ArchResult<Entry> {
        self.shared
            .with_shard(self.shared.shard_for(r), |s| s.destroy_object(r))
    }

    fn bulk_destroy_sro(&mut self, sro: ObjectRef) -> ArchResult<u32> {
        self.shared
            .with_shard(self.shared.shard_for(sro), |s| s.bulk_destroy_sro(sro))
    }

    fn read_data(&mut self, ad: AccessDescriptor, off: u32, buf: &mut [u8]) -> ArchResult<()> {
        self.shared
            .with_shard(self.shared.shard_for(ad.obj), |s| s.read_data(ad, off, buf))
    }

    fn write_data(&mut self, ad: AccessDescriptor, off: u32, buf: &[u8]) -> ArchResult<()> {
        self.shared.with_shard(self.shared.shard_for(ad.obj), |s| {
            s.write_data(ad, off, buf)
        })
    }

    fn load_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        self.shared
            .with_shard(self.shared.shard_for(container.obj), |s| {
                s.load_ad(container, slot)
            })
    }

    fn store_ad(
        &mut self,
        container: AccessDescriptor,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        let a = self.shared.shard_for(container.obj);
        match ad {
            Some(t) if self.shared.shard_for(t.obj) != a => {
                let b = self.shared.shard_for(t.obj);
                self.shared.with_two_shards(a, b, |ca, tb| {
                    let (at, container_level) = ca.store_ad_prepare(container, slot)?;
                    tb.store_ad_admit(t.obj, container_level)?;
                    ca.store_ad_commit(at, ad)
                })
            }
            _ => self
                .shared
                .with_shard(a, |s| s.store_ad(container, slot, ad)),
        }
    }

    fn store_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
        ad: Option<AccessDescriptor>,
    ) -> ArchResult<()> {
        let a = self.shared.shard_for(container);
        match ad {
            Some(t) if self.shared.shard_for(t.obj) != a => {
                let b = self.shared.shard_for(t.obj);
                self.shared.with_two_shards(a, b, |ca, tb| {
                    let at = ca.store_ad_prepare_hw(container, slot)?;
                    tb.store_ad_admit_hw(t.obj)?;
                    ca.store_ad_commit(at, ad)
                })
            }
            _ => self
                .shared
                .with_shard(a, |s| s.store_ad_hw(container, slot, ad)),
        }
    }

    fn load_ad_hw(
        &mut self,
        container: ObjectRef,
        slot: u32,
    ) -> ArchResult<Option<AccessDescriptor>> {
        self.shared
            .with_shard(self.shared.shard_for(container), |s| {
                s.load_ad_hw(container, slot)
            })
    }

    fn shade(&mut self, r: ObjectRef) -> ArchResult<()> {
        self.shared
            .with_shard(self.shared.shard_for(r), |s| s.shade(r))
    }

    fn color_of(&mut self, r: ObjectRef) -> ArchResult<Color> {
        self.shared
            .with_shard(self.shared.shard_for(r), |s| s.color_of(r))
    }

    fn set_color(&mut self, r: ObjectRef, c: Color) -> ArchResult<()> {
        self.shared
            .with_shard(self.shared.shard_for(r), |s| s.set_color(r, c))
    }

    fn scan_access_part(&mut self, r: ObjectRef) -> ArchResult<Vec<AccessDescriptor>> {
        self.shared
            .with_shard(self.shared.shard_for(r), |s| s.scan_access_part(r))
    }

    fn live_indices(&mut self) -> Vec<ObjectIndex> {
        let mut out = Vec::new();
        for k in 0..self.shared.locks.len() {
            self.shared.with_shard(k, |s| {
                out.extend(s.table.iter_live().map(|(i, _)| i));
            });
        }
        out
    }

    fn stats(&mut self) -> SpaceStats {
        let mut total = SpaceStats::default();
        for k in 0..self.shared.locks.len() {
            self.shared.with_shard(k, |s| total.merge(&s.stats));
        }
        total
    }

    fn with_entry(&mut self, r: ObjectRef, f: &mut dyn FnMut(&Entry)) -> ArchResult<()> {
        self.shared.with_shard(self.shared.shard_for(r), |s| {
            f(s.table.get(r)?);
            Ok(())
        })
    }

    fn with_entry_mut(&mut self, r: ObjectRef, f: &mut dyn FnMut(&mut Entry)) -> ArchResult<()> {
        self.shared.with_shard(self.shared.shard_for(r), |s| {
            f(s.table.get_mut(r)?);
            Ok(())
        })
    }

    fn atomic(&mut self, f: &mut dyn FnMut(&mut dyn SpaceMut)) {
        self.shared.with_all(|space| f(space))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ArchError;
    use crate::level::Level;
    use crate::traits::SpaceAccessExt;

    /// A fixed op sequence run against any per-op space.
    fn script<S: SpaceAccess + ?Sized>(s: &mut S) -> Vec<u64> {
        let root = s.root_sro();
        let a = s.create_object(root, ObjectSpec::generic(32, 4)).unwrap();
        let b = s.create_object(root, ObjectSpec::generic(16, 2)).unwrap();
        let a_ad = s.mint(a, Rights::ALL);
        let b_ad = s.mint(b, Rights::ALL);
        s.write_u64(a_ad, 0, 7).unwrap();
        s.write_u64(b_ad, 8, 9).unwrap();
        s.store_ad(a_ad, 0, Some(b_ad)).unwrap();
        s.store_ad_hw(b, 0, Some(a_ad)).unwrap();
        let x = s.read_u64(a_ad, 0).unwrap();
        let y = s.read_u64(b_ad, 8).unwrap();
        s.destroy_object(a).unwrap();
        let st = s.stats();
        vec![
            x,
            y,
            st.objects_created,
            st.objects_destroyed,
            st.ad_stores,
            st.ad_loads,
            st.barrier_shades,
            st.data_reads,
            st.data_writes,
        ]
    }

    #[test]
    fn single_shard_matches_object_space_exactly() {
        let mut plain = ObjectSpace::new(65536, 1024, 512);
        let mut sharded = ShardedSpace::new(65536, 1024, 512, 1);
        assert_eq!(script(&mut plain), script(&mut sharded));
        // Same object indices were handed out, too.
        assert_eq!(
            SpaceAccess::live_indices(&mut plain),
            SpaceAccess::live_indices(&mut sharded)
        );
    }

    #[test]
    fn shards_isolate_storage_but_share_index_space() {
        let mut s = ShardedSpace::new(65536, 1024, 512, 4);
        let roots: Vec<ObjectRef> = (0..4).map(|k| s.root_sro_of(k)).collect();
        // Root SROs occupy interleaved indices 0..4.
        for (k, r) in roots.iter().enumerate() {
            assert_eq!(r.index.0, k as u32);
        }
        // Objects land in their SRO's shard.
        for (k, &root) in roots.iter().enumerate() {
            let r = s.create_object(root, ObjectSpec::generic(8, 1)).unwrap();
            assert_eq!(r.index.0 % 4, k as u32);
        }
        assert_eq!(s.live_count(), 8);
    }

    #[test]
    fn cross_shard_store_enforces_level_rule_and_barrier() {
        let mut s = ShardedSpace::new(65536, 1024, 512, 4);
        let container = s
            .create_object(s.root_sro_of(0), ObjectSpec::generic(0, 2))
            .unwrap();
        let target = s
            .create_object(s.root_sro_of(1), ObjectSpec::generic(8, 0))
            .unwrap();
        let deep = s
            .create_object(
                s.root_sro_of(2),
                ObjectSpec {
                    level: Some(Level(3)),
                    ..ObjectSpec::generic(8, 0)
                },
            )
            .unwrap();
        let c_ad = s.mint(container, Rights::ALL);
        // Legal cross-shard store runs the write barrier on the target's
        // shard.
        s.store_ad(c_ad, 0, Some(s.mint(target, Rights::READ)))
            .unwrap();
        assert_eq!(s.color_of(target).unwrap(), Color::Gray);
        assert_eq!(s.stats_of_shard(1).barrier_shades, 1);
        // Illegal (shorter-lived target) cross-shard store faults and
        // charges the target's shard.
        assert!(matches!(
            s.store_ad(c_ad, 1, Some(s.mint(deep, Rights::READ))),
            Err(ArchError::LevelViolation { .. })
        ));
        assert_eq!(s.stats_of_shard(2).level_faults, 1);
        assert_eq!(s.stats().level_faults, 1);
        // The failed store must not have written the slot.
        assert_eq!(s.load_ad(c_ad, 1).unwrap(), None);
    }

    #[test]
    fn shared_space_agents_run_the_script() {
        let shared = SharedSpace::new(ShardedSpace::new(65536, 1024, 512, 4));
        let mut agent = shared.agent();
        // Agents see the same semantics as exclusive owners.
        let out = script(&mut agent);
        assert_eq!(out[2], 2, "two objects created");
        let space = shared.into_inner();
        assert_eq!(space.stats().objects_destroyed, 1);
    }

    #[test]
    fn parallel_agents_allocate_without_interference() {
        let shared = SharedSpace::new(ShardedSpace::new(1 << 20, 8192, 4096, 4));
        std::thread::scope(|scope| {
            for k in 0..4u32 {
                let shared = &shared;
                scope.spawn(move || {
                    let mut agent = shared.agent();
                    let root = agent.root_sro_of(k);
                    let mut objs = Vec::new();
                    for i in 0..200u64 {
                        let r = agent
                            .create_object(root, ObjectSpec::generic(16, 2))
                            .unwrap();
                        let ad = agent.mint(r, Rights::ALL);
                        agent.write_u64(ad, 0, i).unwrap();
                        objs.push((r, i));
                    }
                    // Cross-shard linkage: store an AD to a neighbor
                    // shard's root into our objects.
                    let neighbor = agent.root_sro_of((k + 1) % 4);
                    for (r, _) in &objs {
                        let ad = agent.mint(*r, Rights::ALL);
                        agent
                            .store_ad(ad, 0, Some(agent.mint(neighbor, Rights::NONE)))
                            .unwrap();
                    }
                    for (r, i) in &objs {
                        let ad = agent.mint(*r, Rights::READ);
                        assert_eq!(agent.read_u64(ad, 0).unwrap(), *i);
                    }
                    // And an atomic section sees a consistent whole.
                    let live = agent.atomically(|sm| sm.live_count());
                    assert!(live >= 200);
                });
            }
        });
        let space = shared.into_inner();
        assert_eq!(space.stats().objects_created, 800);
        assert_eq!(space.live_count(), 4 + 800);
    }
}
