//! Structured state for hardware-interpreted system objects.
//!
//! On the real 432 the processor interprets fields at fixed offsets inside
//! process, port, context, domain, processor, SRO and type-definition
//! segments. The emulator stores those interpreted fields as structured
//! Rust data attached to the object-table entry, which is behaviourally
//! equivalent and keeps the interpreter readable.
//!
//! One deliberate exception: **every access descriptor a system object
//! holds lives in the object's ordinary access part**, at the well-known
//! slot indices defined here (`PROC_SLOT_*`, `CTX_SLOT_*`, ...). Port
//! message queues are rings of slots in the port's access part, exactly as
//! on the 432. This uniformity is what lets the garbage collector scan
//! *all* reachable capabilities by walking access parts alone.

use crate::{
    level::Level,
    memory::FreeList,
    refs::{CodeRef, NativeId, ObjectRef},
};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Well-known access-part slot assignments.
// ---------------------------------------------------------------------------

/// Context slot 0: the domain the context executes in.
pub const CTX_SLOT_DOMAIN: u32 = 0;
/// Context slot 1: the caller's context (dynamic link); null in a process's
/// root context.
pub const CTX_SLOT_CALLER: u32 = 1;
/// Context slot 2: the SRO used for allocations at this depth.
pub const CTX_SLOT_SRO: u32 = 2;
/// Context slot 3: the argument/message access passed by CALL.
pub const CTX_SLOT_ARG: u32 = 3;
/// First context slot free for program use.
pub const CTX_SLOT_FIRST_FREE: u32 = 4;

/// Process slot 0: the current (top) context.
pub const PROC_SLOT_CONTEXT: u32 = 0;
/// Process slot 1: the fault port iMAX delivers this process to on faults.
pub const PROC_SLOT_FAULT_PORT: u32 = 1;
/// Process slot 2: the scheduler port that receives the process at
/// scheduling events (time-slice end, start/stop transitions).
pub const PROC_SLOT_SCHED_PORT: u32 = 2;
/// Process slot 3: the dispatching port the process is dispatched from.
pub const PROC_SLOT_DISPATCH_PORT: u32 = 3;
/// Process slot 4: the process's default storage resource object.
pub const PROC_SLOT_SRO: u32 = 4;
/// Process slot 5: the parent process (null for top-level processes).
pub const PROC_SLOT_PARENT: u32 = 5;
/// Process slot 6: the carried message (a blocked sender's pending
/// message, or the most recently received message during dispatch).
pub const PROC_SLOT_MSG: u32 = 6;
/// Process slot 7: the current local-heap SRO, if one is active.
pub const PROC_SLOT_LOCAL_HEAP: u32 = 7;
/// First process slot used for the children list maintained by the basic
/// process manager.
pub const PROC_CHILD_BASE: u32 = 8;
/// Number of child slots in a standard process object.
pub const PROC_CHILD_SLOTS: u32 = 24;
/// Total access-part slots in a standard process object.
pub const PROC_ACCESS_SLOTS: u32 = PROC_CHILD_BASE + PROC_CHILD_SLOTS;

/// Processor slot 0: the dispatching port this processor serves.
pub const CPU_SLOT_DISPATCH_PORT: u32 = 0;
/// Processor slot 1: the process currently bound to this processor.
pub const CPU_SLOT_PROCESS: u32 = 1;
/// Processor slot 2: the port receiving processor-level fault reports.
pub const CPU_SLOT_FAULT_PORT: u32 = 2;
/// Processor slot 3: the system root directory. Garbage-collection roots
/// are exactly the processor objects; everything the system must keep —
/// global domains, iMAX services — is reachable from the root directory,
/// so there is no central "table of everything" (paper §7.1).
pub const CPU_SLOT_ROOT: u32 = 3;
/// Total access-part slots in a processor object.
pub const CPU_ACCESS_SLOTS: u32 = 4;

/// Type-definition slot 0: the destruction-filter port, when enabled
/// (paper §8.2).
pub const TDO_SLOT_FILTER_PORT: u32 = 0;
/// Total access-part slots in a type-definition object.
pub const TDO_ACCESS_SLOTS: u32 = 2;

// ---------------------------------------------------------------------------
// Port state.
// ---------------------------------------------------------------------------

/// Queueing discipline of a communication port (Figure 1's
/// `q_discipline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PortDiscipline {
    /// First-in first-out (the default in Figure 1).
    #[default]
    Fifo,
    /// Receive the lowest-priority-value message first.
    Priority,
    /// Receive the earliest-deadline message first.
    Deadline,
}

/// Which kind of process, if any, is queued at the port.
///
/// Blocked senders and blocked receivers can never coexist: receivers
/// block only on an empty queue, senders only on a full one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WaiterKind {
    /// No process is waiting.
    #[default]
    None,
    /// Senders are waiting for queue space; their pending messages are in
    /// their [`PROC_SLOT_MSG`] slots.
    Senders,
    /// Receivers are waiting for messages.
    Receivers,
}

/// Running counters kept per port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PortStats {
    /// Completed sends.
    pub sends: u64,
    /// Completed receives.
    pub receives: u64,
    /// Sends that blocked before completing.
    pub blocked_sends: u64,
    /// Receives that blocked before completing.
    pub blocked_receives: u64,
}

/// Hardware-interpreted state of a port object.
///
/// Layout of the port's access part:
/// * slots `[0, capacity)` — the message area, kept compact: live
///   messages occupy `[0, msg_count)`;
/// * slots `[capacity, capacity + wait_capacity)` — the waiting-process
///   area, compact in FIFO order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortState {
    /// Maximum queued messages (Figure 1's `message_count`).
    pub capacity: u32,
    /// Maximum queued waiting processes.
    pub wait_capacity: u32,
    /// Queueing discipline for the message area.
    pub discipline: PortDiscipline,
    /// Live messages in slots `[0, msg_count)`.
    pub msg_count: u32,
    /// Sort keys parallel to the message area (priority or deadline
    /// values; unused under FIFO). `msg_keys[i]` belongs to slot `i`.
    pub msg_keys: Vec<u64>,
    /// Waiting processes in slots `[capacity, capacity + wait_count)`.
    pub wait_count: u32,
    /// What kind of processes are waiting.
    pub waiters: WaiterKind,
    /// Counters.
    pub stats: PortStats,
}

impl PortState {
    /// Fresh empty port state.
    pub fn new(capacity: u32, wait_capacity: u32, discipline: PortDiscipline) -> PortState {
        PortState {
            capacity,
            wait_capacity,
            discipline,
            msg_count: 0,
            msg_keys: vec![0; capacity as usize],
            wait_count: 0,
            waiters: WaiterKind::None,
            stats: PortStats::default(),
        }
    }

    /// Access-part slots a port with this geometry needs.
    pub const fn access_slots(capacity: u32, wait_capacity: u32) -> u32 {
        capacity + wait_capacity
    }

    /// True when the message area is full (senders will block).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.msg_count >= self.capacity
    }

    /// True when no messages are queued (receivers will block).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.msg_count == 0
    }
}

// ---------------------------------------------------------------------------
// Process state.
// ---------------------------------------------------------------------------

/// Scheduling-relevant status of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ProcessStatus {
    /// Queued at a dispatching port (or about to be).
    #[default]
    Ready,
    /// Bound to a processor and executing.
    Running,
    /// Waiting at a port to send.
    BlockedSend,
    /// Waiting at a port to receive.
    BlockedReceive,
    /// Removed from the dispatching mix by stop requests.
    Stopped,
    /// Suspended after a fault, awaiting its fault port's service.
    Faulted,
    /// Finished; awaiting reclamation.
    Terminated,
}

/// Hardware/iMAX-interpreted state of a process object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessState {
    /// Current status.
    pub status: ProcessStatus,
    /// Dispatching priority (lower value = more urgent).
    pub priority: u8,
    /// Deadline used by deadline-discipline dispatching ports.
    pub deadline: u64,
    /// Time-slice length in cycles.
    pub timeslice: u64,
    /// Cycles remaining in the current slice.
    pub slice_remaining: u64,
    /// Outstanding stop count maintained by the basic process manager
    /// (paper §6.1); the process may run only when it is zero.
    pub stop_count: u32,
    /// Total cycles consumed (accounting).
    pub total_cycles: u64,
    /// The lifetime level the process was created at.
    pub level: Level,
    /// iMAX *system level* (paper §7.3): processes at system level 1 may
    /// not fault at all, level 2 may take only timeout faults, level 3 and
    /// above may fault freely. Ordinary application processes are level 3.
    pub sys_level: u8,
    /// Machine-readable code of the most recent fault (0 = none).
    pub fault_code: u16,
    /// Human-readable description of the most recent fault.
    pub fault_detail: String,
    /// Auxiliary datum of the most recent fault (e.g. the absent
    /// object's table index for swap faults).
    pub fault_aux: u64,
    /// While blocked on RECEIVE: the context access slot the message must
    /// be delivered into when a sender completes the rendezvous.
    pub pending_receive_dst: Option<u32>,
    /// While blocked at a port: the port holding this process in its
    /// waiting area (the hardware carrier back-link).
    pub blocked_port: Option<ObjectRef>,
    /// While blocked on a timed RECEIVE: the absolute simulated cycle at
    /// which the wait expires with a timeout fault (0 = no timeout).
    pub timeout_at: u64,
    /// While blocked on SEND: the queueing key of the pending message
    /// (held in [`PROC_SLOT_MSG`]).
    pub pending_send_key: u64,
}

impl ProcessState {
    /// A runnable process with default scheduling parameters.
    pub fn new(level: Level) -> ProcessState {
        ProcessState {
            status: ProcessStatus::Ready,
            priority: 128,
            deadline: u64::MAX,
            timeslice: 50_000,
            slice_remaining: 50_000,
            stop_count: 0,
            total_cycles: 0,
            level,
            sys_level: 3,
            fault_code: 0,
            fault_detail: String::new(),
            fault_aux: 0,
            pending_receive_dst: None,
            blocked_port: None,
            timeout_at: 0,
            pending_send_key: 0,
        }
    }

    /// True when stop/start bookkeeping permits dispatching.
    #[inline]
    pub fn is_started(&self) -> bool {
        self.stop_count == 0
    }
}

// ---------------------------------------------------------------------------
// Processor state.
// ---------------------------------------------------------------------------

/// Execution status of a processor object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ProcessorStatus {
    /// No process bound; polling its dispatching port.
    #[default]
    Idle,
    /// Executing a bound process.
    Running,
    /// Permanently stopped (system shutdown or double fault).
    Halted,
}

/// Hardware state of a processor object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorState {
    /// Small integer identity (diagnostics only; software never branches
    /// on it — paper §3 requires multiprocessing transparency).
    pub id: u32,
    /// Execution status.
    pub status: ProcessorStatus,
    /// Cycles this processor has spent idle (no process bound).
    pub idle_cycles: u64,
    /// Cycles this processor has spent executing processes.
    pub busy_cycles: u64,
}

impl ProcessorState {
    /// A fresh idle processor.
    pub fn new(id: u32) -> ProcessorState {
        ProcessorState {
            id,
            status: ProcessorStatus::Idle,
            idle_cycles: 0,
            busy_cycles: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Context, domain, SRO, TDO state.
// ---------------------------------------------------------------------------

/// The body of a domain subprogram: interpreted 432 code or a registered
/// native (Rust) service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodeBody {
    /// Interpreted instructions held in the code store.
    Interpreted(CodeRef),
    /// A native service body (how the emulator realizes iMAX services).
    Native(NativeId),
}

/// Hardware-interpreted state of a context (activation record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextState {
    /// The code this context executes.
    pub body: CodeBody,
    /// Instruction pointer (index into the instruction segment).
    pub ip: u32,
    /// Caller access slot that receives the access returned by RETURN,
    /// if the caller asked for one.
    pub ret_ad_slot: Option<u32>,
    /// Caller data-part offset that receives the 64-bit scalar returned by
    /// RETURN, if the caller asked for one.
    pub ret_val_off: Option<u32>,
    /// Index of the subprogram within its domain (diagnostics).
    pub subprogram: u32,
}

/// One entry in a domain's subprogram table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subprogram {
    /// Name for traces and faults.
    pub name: String,
    /// The executable body.
    pub body: CodeBody,
    /// Data-part bytes each activation (context) of this subprogram needs.
    pub ctx_data_len: u32,
    /// Access-part slots each activation needs (including the fixed
    /// `CTX_SLOT_*` slots).
    pub ctx_access_len: u32,
}

/// Hardware-interpreted state of a domain object.
///
/// The domain's access part holds the package's owned objects (its
/// "package body state"); the subprogram table is interpreted state.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DomainState {
    /// Externally callable subprograms, in declaration order.
    pub subprograms: Vec<Subprogram>,
    /// Name of the package this domain realizes (diagnostics).
    pub name: String,
}

/// Hardware/iMAX-interpreted state of a storage resource object.
///
/// The free lists carve the *global* arenas; a child SRO's runs are
/// donated out of its parent's runs, so the SRO tree partitions storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SroState {
    /// Free byte runs in the data arena.
    pub data_free: FreeList,
    /// Free slot runs in the access arena.
    pub access_free: FreeList,
    /// Lifetime level of objects this SRO creates (paper §5: "Each SRO
    /// creates objects with a fixed level number").
    pub level: Level,
    /// Parent SRO, if this is a sub-resource.
    pub parent: Option<ObjectRef>,
    /// Objects currently allocated from this SRO.
    pub object_count: u32,
    /// Object-table quota: the most objects this SRO may have live at
    /// once (0 = unlimited). Creating past it faults with
    /// `TableExhausted` — the SRO's slice of the directory is full even
    /// if the global table is not.
    pub table_quota: u32,
    /// Lifetime totals.
    pub created_total: u64,
    /// Lifetime totals.
    pub reclaimed_total: u64,
}

impl SroState {
    /// An SRO with empty free lists at the given level.
    pub fn new(level: Level) -> SroState {
        SroState {
            data_free: FreeList::empty(),
            access_free: FreeList::empty(),
            level,
            parent: None,
            object_count: 0,
            table_quota: 0,
            created_total: 0,
            reclaimed_total: 0,
        }
    }
}

/// iMAX-interpreted state of a type definition object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TdoState {
    /// Type name (diagnostics and filing).
    pub name: String,
    /// Whether the garbage collector must route garbage instances to the
    /// destruction-filter port in slot [`TDO_SLOT_FILTER_PORT`].
    pub filter_enabled: bool,
    /// Instances created so far.
    pub instances_created: u64,
    /// Instances reclaimed so far.
    pub instances_reclaimed: u64,
}

impl TdoState {
    /// A TDO with no destruction filter.
    pub fn new(name: impl Into<String>) -> TdoState {
        TdoState {
            name: name.into(),
            filter_enabled: false,
            instances_created: 0,
            instances_reclaimed: 0,
        }
    }
}

/// The union of hardware-interpreted states, attached to each object-table
/// entry. `Generic` covers both generic objects and user-typed objects
/// (whose semantics live entirely in their type manager).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SysState {
    /// No interpreted state.
    Generic,
    /// Processor object.
    Processor(ProcessorState),
    /// Process object.
    Process(ProcessState),
    /// Context object.
    Context(ContextState),
    /// Domain object.
    Domain(DomainState),
    /// Instruction segment; the code body lives in the processor's code
    /// store under this reference.
    Instructions(CodeRef),
    /// Communication or dispatching port.
    Port(PortState),
    /// Storage resource object.
    Sro(SroState),
    /// Type definition object.
    TypeDef(TdoState),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_geometry() {
        let p = PortState::new(4, 8, PortDiscipline::Fifo);
        assert!(p.is_empty());
        assert!(!p.is_full());
        assert_eq!(PortState::access_slots(4, 8), 12);
        assert_eq!(p.msg_keys.len(), 4);
    }

    #[test]
    fn process_defaults() {
        let p = ProcessState::new(Level(2));
        assert!(p.is_started());
        assert_eq!(p.status, ProcessStatus::Ready);
        assert_eq!(p.sys_level, 3);
        assert_eq!(p.level, Level(2));
    }

    #[test]
    fn slot_constants_do_not_collide() {
        let slots = [
            PROC_SLOT_CONTEXT,
            PROC_SLOT_FAULT_PORT,
            PROC_SLOT_SCHED_PORT,
            PROC_SLOT_DISPATCH_PORT,
            PROC_SLOT_SRO,
            PROC_SLOT_PARENT,
            PROC_SLOT_MSG,
            PROC_SLOT_LOCAL_HEAP,
        ];
        for (i, a) in slots.iter().enumerate() {
            for b in &slots[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert!(slots.iter().all(|&s| s < PROC_CHILD_BASE));
    }

    #[test]
    fn sro_starts_empty() {
        let s = SroState::new(Level(1));
        assert_eq!(s.data_free.total_free(), 0);
        assert_eq!(s.object_count, 0);
        assert_eq!(s.level, Level(1));
    }
}
