//! # i432-arch — the iAPX 432 architectural object model
//!
//! This crate emulates the *addressing structure* of the Intel iAPX 432 as
//! described in the SOSP'81 iMAX paper (Kahn et al.) and the 432 Architecture
//! Reference Manual it cites:
//!
//! * every segment is named by an **object descriptor** in a single global
//!   **object table** ([`ObjectTable`]);
//! * programs hold **access descriptors** ([`AccessDescriptor`], the 432's
//!   term for capabilities) that pair an object-table index with a set of
//!   **rights** ([`Rights`]);
//! * an object has two parts — a *data part* (bytes, up to 64 KiB) and an
//!   *access part* (access-descriptor slots, up to 64 KiB worth); the parts
//!   are carved out of two flat arenas ([`DataArena`], [`AccessArena`]);
//! * every object carries a **level number** ([`Level`]) encoding relative
//!   lifetime; the hardware refuses to store an access descriptor into an
//!   object whose level is lower (more global) than the target's;
//! * object descriptors carry the tricolor **GC state** ([`Color`]) used by
//!   the on-the-fly collector, including the *gray bit* the hardware sets
//!   whenever access descriptors are moved.
//!
//! The combined, checked view of table + arenas is [`ObjectSpace`]; all
//! higher layers (the GDP interpreter, iMAX itself) perform every memory and
//! capability operation through it, so the protection checks here are the
//! single enforcement point — exactly the property the paper attributes to
//! the 432 hardware.
//!
//! This crate is deliberately free of any notion of *processors*, *cycles*
//! or *instructions*; those live in `i432-gdp`.

#![warn(missing_docs)]

pub mod descriptor;
pub mod digest;
pub mod error;
pub mod level;
pub mod memory;
pub mod object_table;
pub mod portring;
pub mod qualcache;
pub mod refs;
pub mod rights;
pub mod shard;
pub mod space;
pub mod sysobj;
pub mod traits;

pub use descriptor::{Color, ObjectDescriptor, ObjectType, SystemType};
pub use digest::{check_invariants, digest_from_roots, logical_digest};
pub use error::{ArchError, ArchResult};
pub use level::Level;
pub use memory::{AccessArena, DataArena, FreeList, Run};
pub use object_table::{Entry, ObjectTable};
pub use portring::{PortRing, PortRingRegistry, RingEntry, RingRefusal};
pub use qualcache::{QualCache, QualLine, QUAL_CACHE_LINES};
pub use refs::{AccessDescriptor, CodeRef, NativeId, ObjectIndex, ObjectRef};
pub use rights::Rights;
pub use shard::{ShardedSpace, SharedSpace, SpaceAgent};
pub use space::{ObjectSpace, ObjectSpec, SpaceStats};
pub use traits::{SpaceAccess, SpaceAccessExt, SpaceMut};

pub use sysobj::{
    CodeBody, ContextState, DomainState, PortDiscipline, PortState, PortStats, ProcessState,
    ProcessStatus, ProcessorState, ProcessorStatus, SroState, Subprogram, SysState, TdoState,
    WaiterKind,
};

/// Maximum length of either part of a segment, in bytes (paper §2: "each
/// part may be up to 64K bytes in length").
pub const MAX_PART_BYTES: u32 = 64 * 1024;

/// An access-descriptor slot models the 432's 4-byte access descriptor, so
/// the 64 KiB access-part limit translates to this many slots.
pub const MAX_ACCESS_SLOTS: u32 = MAX_PART_BYTES / 4;
