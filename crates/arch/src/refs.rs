//! Reference types: object indices, generation-checked references, and
//! access descriptors (the 432's capabilities).

use crate::rights::Rights;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An index into the global object table.
///
/// On the 432 this is the "directory index / segment index" pair packed in
/// an access descriptor; the emulator flattens it to one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectIndex(pub u32);

impl fmt::Display for ObjectIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A generation-checked reference to an object-table entry.
///
/// Real 432 access descriptors carry only the index; reclamation safety is
/// guaranteed because segments are reclaimed only when provably
/// unreachable (garbage collection, or level-scoped bulk destruction).
/// The emulator additionally carries a *generation* so that any software
/// bug that violates that guarantee is detected as [`crate::ArchError::StaleRef`]
/// rather than silently addressing a recycled descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectRef {
    /// Index of the entry in the object table.
    pub index: ObjectIndex,
    /// Generation of the entry at the time the reference was minted.
    pub generation: u32,
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}g{}", self.index, self.generation)
    }
}

/// An access descriptor: the 432's capability.
///
/// Paper §2: "Access descriptors or capabilities name entries in a global
/// object descriptor table ... Each access descriptor (there may be many)
/// for a given object contains rights flags that control the access
/// available via that access descriptor."
///
/// Access descriptors are *data* to the emulator — they can be copied
/// freely — but they can only ever be fabricated by the object-creation
/// path or derived (with equal or fewer rights) from an existing one, and
/// they can only be *stored into objects* through the checked
/// [`crate::ObjectSpace::store_ad`] path which enforces the level rule and
/// runs the garbage collector's write barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessDescriptor {
    /// The object this descriptor designates.
    pub obj: ObjectRef,
    /// The rights this descriptor conveys.
    pub rights: Rights,
}

impl AccessDescriptor {
    /// Creates a descriptor for `obj` conveying `rights`.
    #[inline]
    pub const fn new(obj: ObjectRef, rights: Rights) -> AccessDescriptor {
        AccessDescriptor { obj, rights }
    }

    /// Returns a copy of this descriptor with rights restricted to `keep`.
    /// Restriction can only remove rights (see [`Rights::restrict`]).
    #[inline]
    pub const fn restricted(self, keep: Rights) -> AccessDescriptor {
        AccessDescriptor {
            obj: self.obj,
            rights: self.rights.restrict(keep),
        }
    }

    /// True when this descriptor conveys all rights in `needed`.
    #[inline]
    pub const fn allows(self, needed: Rights) -> bool {
        self.rights.contains(needed)
    }
}

impl fmt::Display for AccessDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AD({} {})", self.obj, self.rights)
    }
}

/// A handle naming an instruction segment's code body in the processor's
/// code store (`i432-gdp`). The architectural layer treats it as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeRef(pub u32);

/// A handle naming a registered native (Rust-implemented) subprogram body.
///
/// iMAX services are native bodies invoked through the same CALL machinery
/// as interpreted code, preserving the paper's "no difference whatsoever
/// between calling an operating system subprogram and calling some
/// user-defined subprogram".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NativeId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;

    fn some_ref() -> ObjectRef {
        ObjectRef {
            index: ObjectIndex(7),
            generation: 2,
        }
    }

    #[test]
    fn restriction_preserves_target() {
        let ad = AccessDescriptor::new(some_ref(), Rights::ALL);
        let r = ad.restricted(Rights::READ | Rights::SEND);
        assert_eq!(r.obj, ad.obj);
        assert!(r.allows(Rights::READ));
        assert!(r.allows(Rights::SEND));
        assert!(!r.allows(Rights::WRITE));
    }

    #[test]
    fn allows_checks_conjunction() {
        let ad = AccessDescriptor::new(some_ref(), Rights::READ | Rights::WRITE);
        assert!(ad.allows(Rights::READ | Rights::WRITE));
        assert!(!ad.allows(Rights::READ | Rights::SEND));
    }

    #[test]
    fn display_formats() {
        let ad = AccessDescriptor::new(some_ref(), Rights::READ);
        assert_eq!(ad.to_string(), "AD(#7g2 {R})");
    }
}
