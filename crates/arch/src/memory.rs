//! Physical storage arenas and the free-list primitive used to carve them.
//!
//! The emulator models the 432's physical memory as two flat arenas: a byte
//! arena for data parts and a slot arena for access parts. Keeping access
//! descriptors in their own typed arena reproduces the hardware guarantee
//! that capabilities can never be forged from raw bytes, while preserving
//! real allocation behaviour (fragmentation, coalescing, compaction) in
//! both arenas.
//!
//! [`FreeList`] is the carving primitive shared by storage resource
//! objects; iMAX's storage managers (`imax-storage`) build allocation
//! policy on top of it.

use crate::{error::ArchError, error::ArchResult, refs::AccessDescriptor};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};

/// A contiguous run of free space: `[base, base + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Run {
    /// First free unit.
    pub base: u32,
    /// Number of free units.
    pub len: u32,
}

impl Run {
    /// End of the run (exclusive).
    #[inline]
    pub const fn end(self) -> u32 {
        self.base + self.len
    }
}

/// Allocation fit policy for a free list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FitPolicy {
    /// Take the first run large enough (fast, the 432's SRO behaviour).
    #[default]
    FirstFit,
    /// Take the smallest run large enough (less external fragmentation,
    /// more search).
    BestFit,
}

/// An ordered, coalescing free list over an abstract unit space.
///
/// Invariants (checked by `debug_assert` and by property tests):
/// * runs are sorted by base and non-overlapping;
/// * adjacent runs are always coalesced (no two runs touch);
/// * every run has non-zero length.
///
/// # Examples
///
/// ```
/// use i432_arch::FreeList;
///
/// let mut fl = FreeList::new(0, 100);
/// let a = fl.allocate(30).unwrap();
/// let b = fl.allocate(30).unwrap();
/// fl.release(a, 30).unwrap();
/// fl.release(b, 30).unwrap();
/// assert_eq!(fl.largest_free(), 100); // fully coalesced again
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreeList {
    runs: Vec<Run>,
    policy: FitPolicy,
    total_free: u32,
}

impl FreeList {
    /// A free list covering `[base, base + len)`.
    pub fn new(base: u32, len: u32) -> FreeList {
        let runs = if len == 0 {
            Vec::new()
        } else {
            vec![Run { base, len }]
        };
        FreeList {
            runs,
            policy: FitPolicy::FirstFit,
            total_free: len,
        }
    }

    /// An empty free list (everything allocated / nothing owned).
    pub fn empty() -> FreeList {
        FreeList::new(0, 0)
    }

    /// Sets the fit policy used by [`FreeList::allocate`].
    pub fn with_policy(mut self, policy: FitPolicy) -> FreeList {
        self.policy = policy;
        self
    }

    /// Total free units.
    #[inline]
    pub fn total_free(&self) -> u32 {
        self.total_free
    }

    /// Size of the largest single run (0 when empty). Allocation of `n`
    /// succeeds iff `n <= largest_free()` — external fragmentation can make
    /// this smaller than [`FreeList::total_free`].
    pub fn largest_free(&self) -> u32 {
        self.runs.iter().map(|r| r.len).max().unwrap_or(0)
    }

    /// Number of distinct free runs (a fragmentation indicator).
    #[inline]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Iterates the free runs in address order.
    pub fn runs(&self) -> impl Iterator<Item = Run> + '_ {
        self.runs.iter().copied()
    }

    /// Allocates `len` contiguous units, returning their base.
    ///
    /// Zero-length allocations succeed and return base 0 without consuming
    /// space (zero-length segment parts are legal on the 432).
    pub fn allocate(&mut self, len: u32) -> ArchResult<u32> {
        if len == 0 {
            return Ok(0);
        }
        let pick = match self.policy {
            FitPolicy::FirstFit => self.runs.iter().position(|r| r.len >= len),
            FitPolicy::BestFit => self
                .runs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.len >= len)
                .min_by_key(|(_, r)| r.len)
                .map(|(i, _)| i),
        };
        let Some(i) = pick else {
            return Err(ArchError::ArenaExhausted { requested: len });
        };
        let run = self.runs[i];
        let base = run.base;
        if run.len == len {
            self.runs.remove(i);
        } else {
            self.runs[i] = Run {
                base: run.base + len,
                len: run.len - len,
            };
        }
        self.total_free -= len;
        self.check_invariants();
        Ok(base)
    }

    /// Returns `[base, base + len)` to the free list, coalescing with
    /// neighbours. Zero-length releases are no-ops.
    ///
    /// Releasing a range that overlaps free space indicates a double free;
    /// it is reported as [`ArchError::ArenaExhausted`]'s dual — we reuse
    /// `DataBounds` to flag the inconsistent range.
    pub fn release(&mut self, base: u32, len: u32) -> ArchResult<()> {
        if len == 0 {
            return Ok(());
        }
        // Find insertion point by base.
        let pos = self.runs.partition_point(|r| r.base < base);
        // Overlap checks against neighbours.
        if pos > 0 && self.runs[pos - 1].end() > base {
            return Err(ArchError::DataBounds {
                offset: base,
                len,
                part_len: self.runs[pos - 1].end(),
            });
        }
        if pos < self.runs.len() && base + len > self.runs[pos].base {
            return Err(ArchError::DataBounds {
                offset: base,
                len,
                part_len: self.runs[pos].base,
            });
        }
        // Coalesce with left and/or right neighbour.
        let merges_left = pos > 0 && self.runs[pos - 1].end() == base;
        let merges_right = pos < self.runs.len() && base + len == self.runs[pos].base;
        match (merges_left, merges_right) {
            (true, true) => {
                self.runs[pos - 1].len += len + self.runs[pos].len;
                self.runs.remove(pos);
            }
            (true, false) => self.runs[pos - 1].len += len,
            (false, true) => {
                self.runs[pos].base = base;
                self.runs[pos].len += len;
            }
            (false, false) => self.runs.insert(pos, Run { base, len }),
        }
        self.total_free += len;
        self.check_invariants();
        Ok(())
    }

    /// Donates a fresh region to the free list (used when an SRO is given
    /// a slice of its parent's space).
    pub fn donate(&mut self, base: u32, len: u32) -> ArchResult<()> {
        self.release(base, len)
    }

    fn check_invariants(&self) {
        debug_assert!(self.runs.iter().all(|r| r.len > 0));
        debug_assert!(self
            .runs
            .windows(2)
            .all(|w| w[0].end() < w[1].base || (w[0].end() <= w[1].base)));
        debug_assert!(
            self.runs.windows(2).all(|w| w[0].end() < w[1].base),
            "adjacent runs must be coalesced: {:?}",
            self.runs
        );
        debug_assert_eq!(
            self.total_free,
            self.runs.iter().map(|r| r.len).sum::<u32>()
        );
    }
}

/// The flat byte arena holding every data part.
///
/// Backed by relaxed [`AtomicU8`] cells rather than plain bytes so the
/// qualification-cache fast path in [`crate::SharedSpace`] can read and
/// write data words *without* holding the shard lock. Every access — locked
/// or lock-free — goes through the same relaxed atomic ops, so a racing
/// reader can observe a torn multi-byte value (which the epoch seqlock
/// detects and retries) but never undefined behaviour. On mainstream
/// hardware a relaxed byte access compiles to a plain load/store.
pub struct DataArena {
    bytes: Box<[AtomicU8]>,
}

impl DataArena {
    /// An arena of `size` bytes, zero-initialized.
    pub fn new(size: u32) -> DataArena {
        DataArena {
            bytes: (0..size).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    fn from_bytes(bytes: &[u8]) -> DataArena {
        DataArena {
            bytes: bytes.iter().map(|&b| AtomicU8::new(b)).collect(),
        }
    }

    /// Arena capacity in bytes.
    #[inline]
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// The raw atomic backing store. The allocation is stable for the
    /// arena's lifetime (the arena never resizes), which is what lets
    /// [`crate::SharedSpace`] capture a pointer to it at construction and
    /// service cache hits without locking the owning shard.
    #[inline]
    pub fn cells(&self) -> &[AtomicU8] {
        &self.bytes
    }

    /// Copies the arena out as plain bytes (serialization, cloning).
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Reads `buf.len()` bytes starting at absolute offset `at`.
    pub fn read(&self, at: u32, buf: &mut [u8]) -> ArchResult<()> {
        let end = at as usize + buf.len();
        if end > self.bytes.len() {
            return Err(ArchError::DataBounds {
                offset: at,
                len: buf.len() as u32,
                part_len: self.size(),
            });
        }
        for (dst, cell) in buf.iter_mut().zip(&self.bytes[at as usize..end]) {
            *dst = cell.load(Ordering::Relaxed);
        }
        Ok(())
    }

    /// Writes `buf` starting at absolute offset `at`.
    pub fn write(&mut self, at: u32, buf: &[u8]) -> ArchResult<()> {
        let end = at as usize + buf.len();
        if end > self.bytes.len() {
            return Err(ArchError::DataBounds {
                offset: at,
                len: buf.len() as u32,
                part_len: self.size(),
            });
        }
        for (src, cell) in buf.iter().zip(&self.bytes[at as usize..end]) {
            cell.store(*src, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Reads a little-endian 64-bit word at absolute offset `at`.
    pub fn read_u64(&self, at: u32) -> ArchResult<u64> {
        let mut b = [0u8; 8];
        self.read(at, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian 64-bit word at absolute offset `at`.
    pub fn write_u64(&mut self, at: u32, v: u64) -> ArchResult<()> {
        self.write(at, &v.to_le_bytes())
    }

    /// Zero-fills `[at, at + len)` — used when a fresh segment is carved
    /// (the 432 creation instruction delivers zeroed segments).
    pub fn zero(&mut self, at: u32, len: u32) -> ArchResult<()> {
        let end = at as usize + len as usize;
        if end > self.bytes.len() {
            return Err(ArchError::DataBounds {
                offset: at,
                len,
                part_len: self.size(),
            });
        }
        for cell in &self.bytes[at as usize..end] {
            cell.store(0, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` (used by compaction and by
    /// the swapping manager). Ranges may not overlap.
    pub fn copy_within(&mut self, src: u32, dst: u32, len: u32) -> ArchResult<()> {
        let (src, dst, len) = (src as usize, dst as usize, len as usize);
        if src + len > self.bytes.len() || dst + len > self.bytes.len() {
            return Err(ArchError::DataBounds {
                offset: src.max(dst) as u32,
                len: len as u32,
                part_len: self.size(),
            });
        }
        for i in 0..len {
            let b = self.bytes[src + i].load(Ordering::Relaxed);
            self.bytes[dst + i].store(b, Ordering::Relaxed);
        }
        Ok(())
    }
}

impl std::fmt::Debug for DataArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataArena")
            .field("size", &self.size())
            .finish()
    }
}

impl Clone for DataArena {
    fn clone(&self) -> DataArena {
        DataArena::from_bytes(&self.snapshot())
    }
}

/// The flat slot arena holding every access part.
///
/// Each slot holds `Option<AccessDescriptor>`; `None` is the null access
/// descriptor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccessArena {
    slots: Vec<Option<AccessDescriptor>>,
}

impl AccessArena {
    /// An arena of `size` slots, all null.
    pub fn new(size: u32) -> AccessArena {
        AccessArena {
            slots: vec![None; size as usize],
        }
    }

    /// Arena capacity in slots.
    #[inline]
    pub fn size(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Reads the slot at absolute index `at` (may be null).
    pub fn get(&self, at: u32) -> ArchResult<Option<AccessDescriptor>> {
        self.slots
            .get(at as usize)
            .copied()
            .ok_or(ArchError::AccessBounds {
                slot: at,
                part_len: self.size(),
            })
    }

    /// Writes the slot at absolute index `at`.
    pub fn set(&mut self, at: u32, ad: Option<AccessDescriptor>) -> ArchResult<()> {
        let size = self.size();
        match self.slots.get_mut(at as usize) {
            Some(slot) => {
                *slot = ad;
                Ok(())
            }
            None => Err(ArchError::AccessBounds {
                slot: at,
                part_len: size,
            }),
        }
    }

    /// Nulls `[at, at + len)` — fresh access parts start all-null.
    pub fn zero(&mut self, at: u32, len: u32) -> ArchResult<()> {
        let end = at as usize + len as usize;
        if end > self.slots.len() {
            return Err(ArchError::AccessBounds {
                slot: at + len,
                part_len: self.size(),
            });
        }
        self.slots[at as usize..end].fill(None);
        Ok(())
    }

    /// Copies `len` slots from `src` to `dst` (compaction support).
    pub fn copy_within(&mut self, src: u32, dst: u32, len: u32) -> ArchResult<()> {
        let (src, dst, len) = (src as usize, dst as usize, len as usize);
        if src + len > self.slots.len() || dst + len > self.slots.len() {
            return Err(ArchError::AccessBounds {
                slot: src.max(dst) as u32,
                part_len: self.size(),
            });
        }
        self.slots.copy_within(src..src + len, dst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn freelist_allocates_and_exhausts() {
        let mut fl = FreeList::new(0, 10);
        assert_eq!(fl.allocate(4).unwrap(), 0);
        assert_eq!(fl.allocate(6).unwrap(), 4);
        assert!(matches!(
            fl.allocate(1),
            Err(ArchError::ArenaExhausted { requested: 1 })
        ));
    }

    #[test]
    fn freelist_zero_len_is_free() {
        let mut fl = FreeList::new(0, 0);
        assert_eq!(fl.allocate(0).unwrap(), 0);
        assert!(fl.allocate(1).is_err());
    }

    #[test]
    fn freelist_coalesces_both_sides() {
        let mut fl = FreeList::new(0, 30);
        let a = fl.allocate(10).unwrap();
        let b = fl.allocate(10).unwrap();
        let c = fl.allocate(10).unwrap();
        fl.release(a, 10).unwrap();
        fl.release(c, 10).unwrap();
        assert_eq!(fl.run_count(), 2);
        fl.release(b, 10).unwrap();
        assert_eq!(fl.run_count(), 1);
        assert_eq!(fl.largest_free(), 30);
    }

    #[test]
    fn freelist_detects_double_free() {
        let mut fl = FreeList::new(0, 10);
        let a = fl.allocate(4).unwrap();
        fl.release(a, 4).unwrap();
        assert!(fl.release(a, 4).is_err());
    }

    #[test]
    fn freelist_best_fit_prefers_small_run() {
        let mut fl = FreeList::new(0, 100).with_policy(FitPolicy::BestFit);
        let a = fl.allocate(10).unwrap(); // [0,10)
        let _b = fl.allocate(5).unwrap(); // [10,15)
        let c = fl.allocate(20).unwrap(); // [15,35)
        fl.release(a, 10).unwrap(); // hole of 10 at 0
        fl.release(c, 20).unwrap(); // hole of 20 at 15
                                    // Best fit for 8 should use the 10-run at 0, not the larger hole.
        assert_eq!(fl.allocate(8).unwrap(), 0);
    }

    #[test]
    fn freelist_first_fit_takes_earliest() {
        let mut fl = FreeList::new(0, 100);
        let a = fl.allocate(10).unwrap();
        let _b = fl.allocate(10).unwrap();
        fl.release(a, 10).unwrap();
        // First fit for 5 reuses the early hole even though the tail is
        // larger.
        assert_eq!(fl.allocate(5).unwrap(), 0);
    }

    #[test]
    fn data_arena_rw_and_bounds() {
        let mut a = DataArena::new(16);
        a.write(4, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        a.read(4, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        assert!(a.write(14, &[0; 4]).is_err());
        assert!(a.read(16, &mut [0u8; 1]).is_err());
    }

    #[test]
    fn data_arena_words() {
        let mut a = DataArena::new(16);
        a.write_u64(8, 0xdead_beef_0102_0304).unwrap();
        assert_eq!(a.read_u64(8).unwrap(), 0xdead_beef_0102_0304);
        assert!(a.write_u64(9, 0).is_err());
    }

    #[test]
    fn access_arena_rw_and_zero() {
        use crate::{refs::ObjectIndex, refs::ObjectRef, rights::Rights};
        let mut a = AccessArena::new(4);
        let ad = AccessDescriptor::new(
            ObjectRef {
                index: ObjectIndex(1),
                generation: 0,
            },
            Rights::READ,
        );
        a.set(2, Some(ad)).unwrap();
        assert_eq!(a.get(2).unwrap(), Some(ad));
        a.zero(0, 4).unwrap();
        assert_eq!(a.get(2).unwrap(), None);
        assert!(a.set(4, None).is_err());
        assert!(a.get(9).is_err());
    }

    #[test]
    fn copy_within_moves_data() {
        let mut a = DataArena::new(16);
        a.write(0, &[9, 9, 9, 9]).unwrap();
        a.copy_within(0, 8, 4).unwrap();
        let mut buf = [0u8; 4];
        a.read(8, &mut buf).unwrap();
        assert_eq!(buf, [9, 9, 9, 9]);
    }

    proptest! {
        /// Random alloc/free sequences preserve the accounting invariant:
        /// total_free equals capacity minus live allocations, runs never
        /// overlap, and everything can be freed back to one run.
        #[test]
        fn freelist_random_ops(ops in proptest::collection::vec((1u32..50, any::<bool>()), 1..120)) {
            let cap = 4096u32;
            let mut fl = FreeList::new(0, cap);
            let mut live: Vec<(u32, u32)> = Vec::new();
            for (len, free_one) in ops {
                if free_one && !live.is_empty() {
                    let (base, len) = live.swap_remove(live.len() / 2);
                    fl.release(base, len).unwrap();
                } else if let Ok(base) = fl.allocate(len) {
                    live.push((base, len));
                }
                let live_total: u32 = live.iter().map(|&(_, l)| l).sum();
                prop_assert_eq!(fl.total_free() + live_total, cap);
                // No live allocation overlaps any free run.
                for &(b, l) in &live {
                    for r in fl.runs() {
                        prop_assert!(b + l <= r.base || r.end() <= b);
                    }
                }
            }
            for (base, len) in live.drain(..) {
                fl.release(base, len).unwrap();
            }
            prop_assert_eq!(fl.run_count(), 1);
            prop_assert_eq!(fl.largest_free(), cap);
        }
    }
}
