//! Per-port submission rings: the lock-free fast path for SEND/RECEIVE.
//!
//! Modeled on io_uring-style kernel IPC queues (Norost-b's
//! `SubmissionEntry`/`CompletionEntry` rings with atomic head indices):
//! each FIFO port can own one MPMC ring of cache-line-aligned 64-byte
//! entries with atomic head/tail positions. The ring is consulted
//! *before any shard lock*: a send claims a slot with one CAS and
//! publishes the message descriptor; a receive claims the head entry the
//! same way. Everything the ring cannot express — a full ring, an empty
//! ring, blocking, rendezvous with a parked process, non-FIFO
//! disciplines — falls back to the locked rendezvous path, which owns
//! the port's message area under the shard locks exactly as before.
//!
//! # The LOCK bit and the FAST-mode invariant
//!
//! Bit 63 of both the head and the tail position doubles as a LOCK flag.
//! Fast-path claims CAS an unlocked position to its successor, so
//! setting the bit (one `fetch_or` each on tail and head, in that
//! order) atomically freezes the claim set: every in-flight claim either
//! completed before the freeze or fails its CAS after it. The locked
//! path begins every port operation by freezing the ring and draining
//! the frozen entries into the port's message area (spinning out the
//! handful of instructions an in-flight publisher needs to finish), so
//! the locked rendezvous always sees the complete queue state. It
//! re-opens the ring (clearing both bits) only when the port is back in
//! *FAST mode*:
//!
//! > **FAST ⟺ the message area is empty and no process waits at the
//! > port.**
//!
//! While any message sits in the area or any process is parked, the
//! ring stays frozen and every operation takes the locked path — which
//! is what makes the fast path rendezvous-equivalent: a fast send can
//! only ever observe "no waiting receiver, queue space available", the
//! one case where the locked path's answer is unconditionally
//! `Queued`, and a fast receive only "messages queued, no waiting
//! sender", where the locked answer is unconditionally the FIFO head.
//! The ring's logical capacity equals the port's message capacity, so
//! draining always fits the area and a blocked sender's end state is
//! identical in both worlds.
//!
//! The LOCK bit is also the ABA guard: a stale fast-path CAS prepared
//! before a freeze can only succeed after the ring has been re-opened —
//! at which point the port is provably back in FAST mode and the claim
//! is simply a valid post-reopen operation.

use crate::level::Level;
use crate::refs::{AccessDescriptor, ObjectRef};
use crate::rights::Rights;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Bit 63 of a head/tail word: the ring is frozen by the locked path.
pub const LOCK: u64 = 1 << 63;
/// Low 63 bits: the wrapping queue position.
pub const POS_MASK: u64 = LOCK - 1;

/// Wrapping position arithmetic (mod 2^63, below the LOCK bit).
#[inline]
const fn wadd(pos: u64, n: u64) -> u64 {
    pos.wrapping_add(n) & POS_MASK
}

/// Positions `b..a` distance (mod 2^63).
#[inline]
const fn wsub(a: u64, b: u64) -> u64 {
    a.wrapping_sub(b) & POS_MASK
}

/// One queued message as the ring carries it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingEntry {
    /// The message access descriptor.
    pub msg: AccessDescriptor,
    /// The sender's queueing key (unused under FIFO but preserved).
    pub key: u64,
}

/// One ring slot: a Vyukov sequence word plus the published payload,
/// padded to its own cache line so concurrent claims never false-share.
#[repr(align(64))]
struct Slot {
    /// Vyukov sequence: `pos` = free for the producer claiming `pos`,
    /// `pos + 1` = published, `pos + nslots` = consumed.
    seq: AtomicU64,
    /// Message object index (low 32) and generation (high 32).
    obj: AtomicU64,
    /// Rights bits (low 8) of the message descriptor.
    rights: AtomicU64,
    /// Queueing key.
    key: AtomicU64,
}

/// Why a fast-path ring operation could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingRefusal {
    /// The ring is frozen: the port is not in FAST mode.
    Locked,
    /// Push: the ring holds `capacity` messages (the port is full).
    Full,
    /// Pop: no published entry at the head (the port is empty).
    Empty,
    /// A concurrent claim won the race repeatedly; take the locked path
    /// rather than spin unboundedly.
    Contended,
}

/// Bounded CAS retries before a fast op gives up to the locked path.
const CLAIM_RETRIES: u32 = 8;

/// A lock-free submission ring owned by one port for its lifetime.
pub struct PortRing {
    /// The owning port (generation-exact: a recycled index never
    /// matches).
    port: ObjectRef,
    /// The port's lifetime level, immutable for the port's lifetime —
    /// cached here so the fast path can enforce the level rule (a
    /// message must outlive the port) without reading the port's entry.
    port_level: Level,
    /// Logical capacity == the port's message capacity.
    capacity: u32,
    /// Physical slots (capacity rounded up to a power of two).
    slots: Box<[Slot]>,
    /// Head position | LOCK. Consumers claim here.
    head: AtomicU64,
    /// Tail position | LOCK. Producers claim here.
    tail: AtomicU64,
    /// Completed fast sends not yet folded into the port's statistics.
    pending_sends: AtomicU64,
    /// Completed fast receives not yet folded into the port's
    /// statistics.
    pending_receives: AtomicU64,
    /// Set when the owning port was destroyed: entries are garbage and
    /// the ring never reopens.
    dead: AtomicBool,
}

impl std::fmt::Debug for PortRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortRing")
            .field("port", &self.port)
            .field("capacity", &self.capacity)
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .finish()
    }
}

impl PortRing {
    /// A fresh ring for `port`, created **frozen**: the first locked
    /// operation drains (nothing) and re-opens it only once the port is
    /// observably in FAST mode, so a ring attached to a port with queued
    /// messages or waiters can never race ahead of the area.
    pub fn new(port: ObjectRef, capacity: u32, port_level: Level) -> PortRing {
        Self::with_start(port, capacity, port_level, 0)
    }

    /// Test hook: a frozen ring whose positions start at `start`
    /// (mod 2^63) — used to exercise head/tail wraparound.
    pub fn with_start(port: ObjectRef, capacity: u32, port_level: Level, start: u64) -> PortRing {
        let nslots = capacity.max(1).next_power_of_two() as usize;
        let start = start & POS_MASK;
        // Slot `pos & (nslots-1)` must carry seq == pos for the first
        // nslots positions from `start` (which need not be 0, and need
        // not be slot-aligned — the wraparound tests start near 2^63).
        let mut seqs = vec![0u64; nslots];
        for i in 0..nslots {
            let pos = wadd(start, i as u64);
            seqs[(pos as usize) & (nslots - 1)] = pos;
        }
        let slots: Box<[Slot]> = seqs
            .into_iter()
            .map(|seq| Slot {
                seq: AtomicU64::new(seq),
                obj: AtomicU64::new(0),
                rights: AtomicU64::new(0),
                key: AtomicU64::new(0),
            })
            .collect();
        PortRing {
            port,
            port_level,
            capacity: capacity.max(1),
            slots,
            head: AtomicU64::new(start | LOCK),
            tail: AtomicU64::new(start | LOCK),
            pending_sends: AtomicU64::new(0),
            pending_receives: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        }
    }

    /// The owning port reference (generation-exact).
    #[inline]
    pub fn port(&self) -> ObjectRef {
        self.port
    }

    /// The owning port's lifetime level (immutable while the port
    /// lives).
    #[inline]
    pub fn port_level(&self) -> Level {
        self.port_level
    }

    /// The ring's logical capacity (== the port's message capacity).
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// True when the owning port has been observed dead.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    #[inline]
    fn slot(&self, pos: u64) -> &Slot {
        &self.slots[(pos as usize) & (self.slots.len() - 1)]
    }

    /// Published entries currently in the ring (racy snapshot count).
    pub fn occupancy(&self) -> u64 {
        let t = self.tail.load(Ordering::Acquire) & POS_MASK;
        let h = self.head.load(Ordering::Acquire) & POS_MASK;
        wsub(t, h).min(self.capacity as u64)
    }

    /// Fast-path push: claim the tail slot and publish `entry`.
    ///
    /// Never blocks and never touches a shard lock. The claim CAS
    /// fails whenever the ring is frozen, full, or the slot is still
    /// being recycled by a lagging consumer.
    pub fn push(&self, entry: RingEntry) -> Result<(), RingRefusal> {
        for _ in 0..CLAIM_RETRIES {
            let t = self.tail.load(Ordering::Acquire);
            if t & LOCK != 0 {
                return Err(RingRefusal::Locked);
            }
            let h = self.head.load(Ordering::Acquire);
            if h & LOCK != 0 {
                return Err(RingRefusal::Locked);
            }
            if wsub(t, h) >= self.capacity as u64 {
                return Err(RingRefusal::Full);
            }
            let slot = self.slot(t);
            if slot.seq.load(Ordering::Acquire) != t {
                // The slot at `t` is still published or mid-recycle; a
                // competing producer will already have moved the tail.
                continue;
            }
            if self
                .tail
                .compare_exchange_weak(t, wadd(t, 1), Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            // The slot is ours: publish payload, then the sequence.
            let obj =
                (u64::from(entry.msg.obj.generation) << 32) | u64::from(entry.msg.obj.index.0);
            slot.obj.store(obj, Ordering::Relaxed);
            slot.rights
                .store(u64::from(entry.msg.rights.bits()), Ordering::Relaxed);
            slot.key.store(entry.key, Ordering::Relaxed);
            slot.seq.store(wadd(t, 1), Ordering::Release);
            self.pending_sends.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        Err(RingRefusal::Contended)
    }

    /// Fast-path pop: claim the head entry.
    pub fn pop(&self) -> Result<RingEntry, RingRefusal> {
        for _ in 0..CLAIM_RETRIES {
            let h = self.head.load(Ordering::Acquire);
            if h & LOCK != 0 {
                return Err(RingRefusal::Locked);
            }
            let slot = self.slot(h);
            if slot.seq.load(Ordering::Acquire) != wadd(h, 1) {
                return Err(RingRefusal::Empty);
            }
            if self
                .head
                .compare_exchange_weak(h, wadd(h, 1), Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let entry = Self::read_slot(slot);
            // Recycle for the producer claiming `h + nslots`.
            slot.seq
                .store(wadd(h, self.slots.len() as u64), Ordering::Release);
            self.pending_receives.fetch_add(1, Ordering::Relaxed);
            return Ok(entry);
        }
        Err(RingRefusal::Contended)
    }

    fn read_slot(slot: &Slot) -> RingEntry {
        let obj = slot.obj.load(Ordering::Relaxed);
        let rights = slot.rights.load(Ordering::Relaxed);
        let key = slot.key.load(Ordering::Relaxed);
        RingEntry {
            msg: AccessDescriptor {
                obj: ObjectRef {
                    index: crate::refs::ObjectIndex(obj as u32),
                    generation: (obj >> 32) as u32,
                },
                rights: Rights::from_bits(rights as u8),
            },
            key,
        }
    }

    /// Freezes the ring (both LOCK bits set; tail first so no new claim
    /// set can form) and hands every frozen entry, oldest first, to `f`.
    ///
    /// Called by the locked path at the top of every port operation,
    /// under the port's shard locks. Spins out in-flight publishers —
    /// a claim that beat the freeze is a handful of relaxed stores from
    /// its sequence release.
    ///
    /// Returns the number of entries drained.
    pub fn freeze_and_drain(&self, mut f: impl FnMut(RingEntry)) -> u64 {
        let t = self.tail.fetch_or(LOCK, Ordering::AcqRel) & POS_MASK;
        let h = self.head.fetch_or(LOCK, Ordering::AcqRel) & POS_MASK;
        let n = wsub(t, h);
        let mut pos = h;
        for _ in 0..n {
            let slot = self.slot(pos);
            // Wait for an in-flight publisher to finish its store.
            while slot.seq.load(Ordering::Acquire) != wadd(pos, 1) {
                std::hint::spin_loop();
            }
            let entry = Self::read_slot(slot);
            slot.seq
                .store(wadd(pos, self.slots.len() as u64), Ordering::Release);
            f(entry);
            pos = wadd(pos, 1);
        }
        self.head.store(t | LOCK, Ordering::Release);
        n
    }

    /// Freezes the ring without draining (used for rings whose port
    /// generation no longer matches: their entries belong to a dead
    /// port and must not leak into a recycled port's message area).
    pub fn freeze(&self) {
        self.tail.fetch_or(LOCK, Ordering::AcqRel);
        self.head.fetch_or(LOCK, Ordering::AcqRel);
    }

    /// True when the ring is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.tail.load(Ordering::Acquire) & LOCK != 0
    }

    /// Re-opens a frozen, drained ring. The caller (the locked path,
    /// under the shard locks) asserts the FAST-mode invariant: message
    /// area empty, no waiters, port alive.
    pub fn reopen(&self) {
        if self.dead.load(Ordering::Acquire) {
            return;
        }
        let t = self.tail.load(Ordering::Acquire) & POS_MASK;
        debug_assert_eq!(
            self.head.load(Ordering::Acquire) & POS_MASK,
            t,
            "reopen requires a drained ring"
        );
        self.tail.store(t, Ordering::Release);
        self.head.store(t, Ordering::Release);
    }

    /// Marks the ring dead (owning port destroyed): freezes it, discards
    /// any queued entries, and prevents all future reopens. Idempotent.
    pub fn retire(&self) {
        self.dead.store(true, Ordering::Release);
        self.freeze_and_drain(|_| {});
    }

    /// Takes the fast-op completion counts accumulated since the last
    /// call (folded into the port's statistics by the locked path).
    pub fn take_pending_stats(&self) -> (u64, u64) {
        (
            self.pending_sends.swap(0, Ordering::Relaxed),
            self.pending_receives.swap(0, Ordering::Relaxed),
        )
    }

    /// A racy snapshot of the message references currently published in
    /// the ring — the collector's root view. Entries are validated with
    /// a seqlock-style double check so a torn read is never returned;
    /// an entry mid-publish or mid-consume is simply skipped (its
    /// message is still reachable through the sender's or receiver's
    /// context at that instant, so the collector loses nothing).
    pub fn snapshot_refs(&self) -> Vec<ObjectRef> {
        let t = self.tail.load(Ordering::Acquire) & POS_MASK;
        let h = self.head.load(Ordering::Acquire) & POS_MASK;
        let n = wsub(t, h).min(self.slots.len() as u64);
        let mut out = Vec::new();
        let mut pos = h;
        for _ in 0..n {
            let slot = self.slot(pos);
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == wadd(pos, 1) {
                let entry = Self::read_slot(slot);
                if slot.seq.load(Ordering::Acquire) == seq1 {
                    out.push(entry.msg.obj);
                }
            }
            pos = wadd(pos, 1);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Registry: object index -> ring, lock-free, demand grown.
// ---------------------------------------------------------------------------

/// Rings per registry leaf.
const RING_LEAF: usize = 256;

struct RingLeaf {
    rings: [OnceLock<Arc<PortRing>>; RING_LEAF],
}

impl RingLeaf {
    fn new() -> Box<RingLeaf> {
        Box::new(RingLeaf {
            rings: [const { OnceLock::new() }; RING_LEAF],
        })
    }
}

/// The per-space port-ring directory: a two-level lock-free map from
/// object index to [`PortRing`], grown on demand like the object table's
/// leaf pages. One ring exists per port *lifetime* — a recycled index
/// whose generation no longer matches the ring simply keeps the locked
/// path (the registry never rebinds a slot).
pub struct PortRingRegistry {
    /// Master switch: the threaded runner turns the fast path on; the
    /// deterministic runner leaves it off so C1/C2 cycles stay
    /// bit-identical by construction.
    enabled: AtomicBool,
    /// Root of leaf pointers, sized at construction.
    roots: Box<[AtomicPtr<RingLeaf>]>,
}

impl std::fmt::Debug for PortRingRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortRingRegistry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for PortRingRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl PortRingRegistry {
    /// An empty, disabled registry (1024 leaves x 256 rings = the
    /// table's full index space).
    pub fn new() -> PortRingRegistry {
        PortRingRegistry {
            enabled: AtomicBool::new(false),
            roots: (0..1024)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    /// Turns the fast path on or off. Existing rings stay frozen/open as
    /// they are; disabling only stops lookups, so in-ring messages must
    /// be flushed (see `i432_gdp::port::flush_rings`) before a disabled
    /// space is inspected.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// True when the fast path is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    fn leaf(&self, index: u32) -> Option<&RingLeaf> {
        let root = self.roots.get((index as usize) / RING_LEAF)?;
        let p = root.load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // Safety: leaves are published once with a release store and
            // never freed while the registry lives.
            Some(unsafe { &*p })
        }
    }

    fn leaf_or_insert(&self, index: u32) -> Option<&RingLeaf> {
        let root = self.roots.get((index as usize) / RING_LEAF)?;
        let p = root.load(Ordering::Acquire);
        if !p.is_null() {
            return Some(unsafe { &*p });
        }
        let fresh = Box::into_raw(RingLeaf::new());
        match root.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Some(unsafe { &*fresh }),
            Err(winner) => {
                // Safety: ours never escaped.
                drop(unsafe { Box::from_raw(fresh) });
                Some(unsafe { &*winner })
            }
        }
    }

    /// The ring bound to `index`, if one exists (regardless of
    /// generation — the caller compares [`PortRing::port`]).
    pub fn lookup_index(&self, index: u32) -> Option<Arc<PortRing>> {
        self.leaf(index)?.rings[(index as usize) % RING_LEAF]
            .get()
            .cloned()
    }

    /// The ring owned by exactly this port (generation-checked), if the
    /// fast path is enabled.
    pub fn lookup(&self, port: ObjectRef) -> Option<Arc<PortRing>> {
        if !self.is_enabled() {
            return None;
        }
        let ring = self.lookup_index(port.index.0)?;
        if ring.port() == port && !ring.is_dead() {
            Some(ring)
        } else {
            None
        }
    }

    /// Binds a ring to `port` on first use (frozen until the locked
    /// path observes FAST mode). Returns the winning ring, which may
    /// belong to an earlier lifetime of the index — the caller must
    /// generation-check it.
    pub fn get_or_create(
        &self,
        port: ObjectRef,
        capacity: u32,
        port_level: Level,
    ) -> Option<Arc<PortRing>> {
        let leaf = self.leaf_or_insert(port.index.0)?;
        Some(
            leaf.rings[(port.index.0 as usize) % RING_LEAF]
                .get_or_init(|| Arc::new(PortRing::new(port, capacity, port_level)))
                .clone(),
        )
    }

    /// Every ring ever created (for collector scans and final flushes).
    pub fn for_each(&self, mut f: impl FnMut(&Arc<PortRing>)) {
        for root in self.roots.iter() {
            let p = root.load(Ordering::Acquire);
            if p.is_null() {
                continue;
            }
            let leaf = unsafe { &*p };
            for slot in leaf.rings.iter() {
                if let Some(ring) = slot.get() {
                    f(ring);
                }
            }
        }
    }
}

impl Drop for PortRingRegistry {
    fn drop(&mut self) {
        for root in self.roots.iter() {
            let p = root.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // Safety: exclusive at drop; leaves were Box-allocated.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Level;
    use crate::refs::ObjectIndex;

    fn port_ref(i: u32) -> ObjectRef {
        ObjectRef {
            index: ObjectIndex(i),
            generation: 1,
        }
    }

    fn entry(tag: u32) -> RingEntry {
        RingEntry {
            msg: AccessDescriptor {
                obj: ObjectRef {
                    index: ObjectIndex(tag),
                    generation: tag.wrapping_mul(7) | 1,
                },
                rights: Rights::READ,
            },
            key: u64::from(tag) * 3,
        }
    }

    fn open_ring(cap: u32) -> PortRing {
        let r = PortRing::new(port_ref(9), cap, Level::GLOBAL);
        r.freeze_and_drain(|_| {});
        r.reopen();
        r
    }

    #[test]
    fn rings_start_frozen_until_the_locked_path_reopens() {
        let r = PortRing::new(port_ref(1), 4, Level::GLOBAL);
        assert!(r.is_frozen());
        assert_eq!(r.push(entry(1)), Err(RingRefusal::Locked));
        assert_eq!(r.pop(), Err(RingRefusal::Locked));
        assert_eq!(r.freeze_and_drain(|_| {}), 0);
        r.reopen();
        assert!(!r.is_frozen());
        r.push(entry(1)).unwrap();
        assert_eq!(r.pop().unwrap(), entry(1));
    }

    #[test]
    fn fifo_order_and_payload_roundtrip() {
        let r = open_ring(8);
        for i in 0..5 {
            r.push(entry(i)).unwrap();
        }
        assert_eq!(r.occupancy(), 5);
        for i in 0..5 {
            assert_eq!(r.pop().unwrap(), entry(i));
        }
        assert_eq!(r.pop(), Err(RingRefusal::Empty));
    }

    #[test]
    fn logical_capacity_bounds_admission_exactly() {
        // Capacity 5 rounds up to 8 physical slots; admission must stop
        // at 5 anyway or a drain would overflow the port's message area.
        let r = open_ring(5);
        for i in 0..5 {
            r.push(entry(i)).unwrap();
        }
        assert_eq!(r.push(entry(99)), Err(RingRefusal::Full));
        assert_eq!(r.pop().unwrap(), entry(0));
        r.push(entry(5)).unwrap();
        assert_eq!(r.push(entry(100)), Err(RingRefusal::Full));
    }

    #[test]
    fn head_tail_wrap_at_position_overflow() {
        // Start the positions a few claims below the 63-bit wrap point:
        // pushes and pops must stream straight across it.
        let start = POS_MASK - 2; // wraps after 3 claims
        let r = PortRing::with_start(port_ref(3), 4, Level::GLOBAL, start);
        r.freeze_and_drain(|_| {});
        r.reopen();
        for round in 0..4u32 {
            for i in 0..4 {
                r.push(entry(round * 16 + i)).unwrap();
            }
            assert_eq!(r.push(entry(999)), Err(RingRefusal::Full));
            for i in 0..4 {
                assert_eq!(r.pop().unwrap(), entry(round * 16 + i));
            }
            assert_eq!(r.pop(), Err(RingRefusal::Empty));
        }
        // Positions really did pass the wrap point (and stayed clear of
        // the LOCK bit).
        let t = r.tail.load(Ordering::Relaxed);
        assert_eq!(t & LOCK, 0);
        assert!(t & POS_MASK < start, "tail wrapped around 2^63");
    }

    #[test]
    fn freeze_drains_oldest_first_and_blocks_new_claims() {
        let r = open_ring(8);
        for i in 0..6 {
            r.push(entry(i)).unwrap();
        }
        let mut drained = Vec::new();
        let n = r.freeze_and_drain(|e| drained.push(e));
        assert_eq!(n, 6);
        assert_eq!(drained, (0..6).map(entry).collect::<Vec<_>>());
        assert_eq!(r.push(entry(7)), Err(RingRefusal::Locked));
        r.reopen();
        r.push(entry(7)).unwrap();
        assert_eq!(r.pop().unwrap(), entry(7));
    }

    #[test]
    fn retired_ring_never_reopens() {
        let r = open_ring(4);
        r.push(entry(1)).unwrap();
        r.retire();
        assert!(r.is_dead());
        r.reopen();
        assert!(r.is_frozen());
        assert_eq!(r.push(entry(2)), Err(RingRefusal::Locked));
    }

    #[test]
    fn snapshot_sees_published_entries_only() {
        let r = open_ring(8);
        r.push(entry(4)).unwrap();
        r.push(entry(5)).unwrap();
        let refs = r.snapshot_refs();
        assert_eq!(refs, vec![entry(4).msg.obj, entry(5).msg.obj]);
        r.pop().unwrap();
        assert_eq!(r.snapshot_refs(), vec![entry(5).msg.obj]);
    }

    #[test]
    fn pending_stats_accumulate_and_drain() {
        let r = open_ring(8);
        r.push(entry(1)).unwrap();
        r.push(entry(2)).unwrap();
        r.pop().unwrap();
        assert_eq!(r.take_pending_stats(), (2, 1));
        assert_eq!(r.take_pending_stats(), (0, 0));
    }

    #[test]
    fn concurrent_producers_consumers_conserve_messages() {
        // 4 producers x 4 consumers over a small ring; every pushed tag
        // is popped exactly once, across claim contention and Full/Empty
        // refusals.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let r = Arc::new(open_ring(4));
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let popped = Arc::new(AtomicU64::new(0));
        const PER: u32 = 500;
        std::thread::scope(|s| {
            for p in 0..4u32 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..PER {
                        let tag = p * PER + i + 1;
                        loop {
                            match r.push(entry(tag)) {
                                Ok(()) => break,
                                Err(_) => std::hint::spin_loop(),
                            }
                        }
                    }
                });
            }
            for _ in 0..4 {
                let r = Arc::clone(&r);
                let seen = Arc::clone(&seen);
                let popped = Arc::clone(&popped);
                s.spawn(move || loop {
                    if popped.load(Ordering::Acquire) >= u64::from(4 * PER) {
                        break;
                    }
                    if let Ok(e) = r.pop() {
                        assert!(seen.lock().unwrap().insert(e.msg.obj.index.0));
                        popped.fetch_add(1, Ordering::AcqRel);
                    } else {
                        std::hint::spin_loop();
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 4 * PER as usize);
    }

    #[test]
    fn drain_while_emitting_never_loses_or_duplicates() {
        // Producers hammer the ring while a "locked path" thread
        // repeatedly freezes, drains, and reopens: the union of drained
        // and popped tags must be exactly the pushed set.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let r = Arc::new(open_ring(8));
        let collected = Arc::new(Mutex::new(HashSet::new()));
        const PER: u32 = 400;
        let stop = AtomicBool::new(false);
        let stop = &stop;
        std::thread::scope(|s| {
            for p in 0..3u32 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..PER {
                        let tag = p * PER + i + 1;
                        loop {
                            match r.push(entry(tag)) {
                                Ok(()) => break,
                                Err(RingRefusal::Locked) | Err(RingRefusal::Contended) => {
                                    std::hint::spin_loop()
                                }
                                Err(RingRefusal::Full) => std::thread::yield_now(),
                                Err(RingRefusal::Empty) => unreachable!(),
                            }
                        }
                    }
                });
            }
            {
                let r = Arc::clone(&r);
                let collected = Arc::clone(&collected);
                s.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let mut got = Vec::new();
                        r.freeze_and_drain(|e| got.push(e.msg.obj.index.0));
                        r.reopen();
                        let mut set = collected.lock().unwrap();
                        for tag in got {
                            assert!(set.insert(tag), "tag {tag} drained twice");
                        }
                        if set.len() == 3 * PER as usize {
                            break;
                        }
                        std::thread::yield_now();
                    }
                });
            }
            // Consumers also race pops against the drains.
            for _ in 0..2 {
                let r = Arc::clone(&r);
                let collected = Arc::clone(&collected);
                s.spawn(move || loop {
                    {
                        let set = collected.lock().unwrap();
                        if set.len() == 3 * PER as usize {
                            break;
                        }
                    }
                    if let Ok(e) = r.pop() {
                        let mut set = collected.lock().unwrap();
                        assert!(
                            set.insert(e.msg.obj.index.0),
                            "tag {} popped twice",
                            e.msg.obj.index.0
                        );
                    } else {
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(collected.lock().unwrap().len(), 3 * PER as usize);
    }

    #[test]
    fn retire_races_drain_and_fast_ops_without_resurrection() {
        // The retirement race: lock-free producers and consumers hammer
        // the ring while the locked path cycles freeze/drain/reopen and
        // a destructor retires it mid-traffic. As in the real system,
        // drain and retire are serialized by the port's shard locks
        // (modeled by `locked` here); the fast ops race both for real.
        // Invariants: no tag is ever handed out twice across pops and
        // drains, a retired ring refuses every operation forever (the
        // drainer's reopen must not resurrect it), and it ends drained.
        use std::collections::HashSet;
        use std::sync::Mutex;
        for round in 0..32u32 {
            let r = Arc::new(open_ring(8));
            let locked = Arc::new(Mutex::new(()));
            let collected = Arc::new(Mutex::new(HashSet::new()));
            let pushed = Arc::new(AtomicU64::new(0));
            std::thread::scope(|s| {
                for p in 0..2u32 {
                    let r = Arc::clone(&r);
                    let pushed = Arc::clone(&pushed);
                    s.spawn(move || {
                        for i in 0..300 {
                            match r.push(entry(p * 1000 + i + 1)) {
                                Ok(()) => {
                                    pushed.fetch_add(1, Ordering::SeqCst);
                                }
                                // Dead rings stay locked forever; a
                                // transient freeze deserves a retry.
                                Err(RingRefusal::Locked) if r.is_dead() => break,
                                Err(_) => std::thread::yield_now(),
                            }
                        }
                    });
                }
                {
                    let r = Arc::clone(&r);
                    let collected = Arc::clone(&collected);
                    s.spawn(move || loop {
                        if let Ok(e) = r.pop() {
                            assert!(
                                collected.lock().unwrap().insert(e.msg.obj.index.0),
                                "popped twice"
                            );
                        } else if r.is_dead() {
                            break;
                        } else {
                            std::thread::yield_now();
                        }
                    });
                }
                {
                    let r = Arc::clone(&r);
                    let locked = Arc::clone(&locked);
                    let collected = Arc::clone(&collected);
                    s.spawn(move || {
                        while !r.is_dead() {
                            {
                                let _shard = locked.lock().unwrap();
                                let mut got = Vec::new();
                                r.freeze_and_drain(|e| got.push(e.msg.obj.index.0));
                                // A reopen after the retirer won must be
                                // a no-op, never a resurrection.
                                r.reopen();
                                let mut set = collected.lock().unwrap();
                                for tag in got {
                                    assert!(set.insert(tag), "tag {tag} drained twice");
                                }
                            }
                            std::thread::yield_now();
                        }
                    });
                }
                {
                    let r = Arc::clone(&r);
                    let locked = Arc::clone(&locked);
                    s.spawn(move || {
                        for _ in 0..(round % 5) {
                            std::thread::yield_now();
                        }
                        let _shard = locked.lock().unwrap();
                        r.retire();
                    });
                }
            });
            assert!(r.is_dead(), "round {round}");
            assert!(r.is_frozen(), "round {round}: retired rings stay frozen");
            assert_eq!(r.push(entry(7777)), Err(RingRefusal::Locked));
            assert_eq!(r.pop(), Err(RingRefusal::Locked));
            r.reopen();
            assert_eq!(
                r.push(entry(8888)),
                Err(RingRefusal::Locked),
                "round {round}: reopen after retire must not resurrect"
            );
            assert_eq!(r.occupancy(), 0, "round {round}: retire drained the ring");
            let seen = collected.lock().unwrap().len() as u64;
            assert!(
                seen <= pushed.load(Ordering::SeqCst),
                "round {round}: handed out more than was pushed"
            );
        }
    }

    #[test]
    fn registry_binds_one_ring_per_index_lifetime() {
        let reg = PortRingRegistry::new();
        assert!(reg.lookup(port_ref(7)).is_none(), "disabled registry");
        reg.set_enabled(true);
        assert!(reg.lookup(port_ref(7)).is_none(), "no ring yet");
        let r1 = reg.get_or_create(port_ref(7), 4, Level::GLOBAL).unwrap();
        let r2 = reg.get_or_create(port_ref(7), 8, Level::GLOBAL).unwrap();
        assert!(Arc::ptr_eq(&r1, &r2), "one ring per index");
        assert_eq!(r2.capacity(), 4, "first binding wins");
        // A recycled index (new generation) never rebinds the slot.
        let newer = ObjectRef {
            index: ObjectIndex(7),
            generation: 2,
        };
        assert!(reg.lookup(newer).is_none());
        let r3 = reg.get_or_create(newer, 4, Level::GLOBAL).unwrap();
        assert!(Arc::ptr_eq(&r1, &r3));
        assert_ne!(r3.port(), newer);
        // The original still resolves.
        assert!(reg.lookup(port_ref(7)).is_some());
        let mut count = 0;
        reg.for_each(|_| count += 1);
        assert_eq!(count, 1);
    }
}
