//! Access-descriptor rights.
//!
//! Each access descriptor carries a small set of rights flags that control
//! what its holder may do with the object it designates (paper §2: "Each
//! access descriptor ... contains rights flags that control the access
//! available via that access descriptor").
//!
//! Following the 432, there are two *generic* rights (read and write, which
//! govern the data part) and three *type* rights whose meaning depends on
//! the system type of the object — e.g. for a port object the first two
//! type rights are interpreted as *send* and *receive* rights. A further
//! *delete* right governs explicit destruction requests made to iMAX.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr, Not, Sub};

/// A set of rights flags carried by an access descriptor.
///
/// Rights form a lattice under union/intersection; restriction
/// ([`Rights::restrict`]) can only remove rights, never add them — the
/// hardware invariant that makes capability amplification impossible
/// outside a type manager.
///
/// # Examples
///
/// ```
/// use i432_arch::Rights;
///
/// let rw = Rights::READ | Rights::WRITE;
/// assert!(rw.contains(Rights::READ));
/// let ro = rw.restrict(Rights::READ);
/// assert!(!ro.contains(Rights::WRITE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rights(u8);

impl Rights {
    /// No rights at all.
    pub const NONE: Rights = Rights(0);
    /// Permission to read the data part.
    pub const READ: Rights = Rights(1 << 0);
    /// Permission to write the data part (and to store into the access
    /// part, subject to the level rule).
    pub const WRITE: Rights = Rights(1 << 1);
    /// First type-dependent right.
    pub const TYPE1: Rights = Rights(1 << 2);
    /// Second type-dependent right.
    pub const TYPE2: Rights = Rights(1 << 3);
    /// Third type-dependent right.
    pub const TYPE3: Rights = Rights(1 << 4);
    /// Permission to request explicit destruction from iMAX.
    pub const DELETE: Rights = Rights(1 << 5);
    /// Every right.
    pub const ALL: Rights = Rights(0x3f);

    // Type-right aliases, named per system type for readability at call
    // sites. The bit patterns are what the hardware checks.

    /// Port: permission to send messages (alias of [`Rights::TYPE1`]).
    pub const SEND: Rights = Rights::TYPE1;
    /// Port: permission to receive messages (alias of [`Rights::TYPE2`]).
    pub const RECEIVE: Rights = Rights::TYPE2;
    /// SRO: permission to allocate objects (alias of [`Rights::TYPE1`]).
    pub const ALLOCATE: Rights = Rights::TYPE1;
    /// SRO: permission to return storage (alias of [`Rights::TYPE2`]).
    pub const RECLAIM: Rights = Rights::TYPE2;
    /// Type definition: permission to amplify rights on instances (alias of
    /// [`Rights::TYPE1`]).
    pub const AMPLIFY: Rights = Rights::TYPE1;
    /// Type definition: permission to create instances (alias of
    /// [`Rights::TYPE2`]).
    pub const CREATE_INSTANCE: Rights = Rights::TYPE2;
    /// Process: permission to control (start/stop/inspect) the process
    /// (alias of [`Rights::TYPE1`]).
    pub const CONTROL: Rights = Rights::TYPE1;
    /// Domain: permission to call through the domain (alias of
    /// [`Rights::TYPE1`]).
    pub const CALL: Rights = Rights::TYPE1;

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs a rights set from raw bits, masking unknown bits.
    #[inline]
    pub const fn from_bits(bits: u8) -> Rights {
        Rights(bits & Rights::ALL.0)
    }

    /// Returns true when every right in `needed` is present in `self`.
    #[inline]
    pub const fn contains(self, needed: Rights) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// Returns true when no rights are present.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Intersects with a keep-mask: the result never has a right that
    /// `self` lacked. This is the only rights transformation ordinary code
    /// can perform; only a type manager holding amplify rights can add
    /// rights back (see `imax-typemgr`).
    #[inline]
    pub const fn restrict(self, keep: Rights) -> Rights {
        Rights(self.0 & keep.0)
    }

    /// Union of two rights sets. Used only by type managers during
    /// amplification; the interpreter never calls it on user paths.
    #[inline]
    pub const fn union(self, other: Rights) -> Rights {
        Rights(self.0 | other.0)
    }
}

impl BitOr for Rights {
    type Output = Rights;
    #[inline]
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl BitAnd for Rights {
    type Output = Rights;
    #[inline]
    fn bitand(self, rhs: Rights) -> Rights {
        Rights(self.0 & rhs.0)
    }
}

impl Sub for Rights {
    type Output = Rights;
    #[inline]
    fn sub(self, rhs: Rights) -> Rights {
        Rights(self.0 & !rhs.0)
    }
}

impl Not for Rights {
    type Output = Rights;
    #[inline]
    fn not(self) -> Rights {
        Rights(!self.0 & Rights::ALL.0)
    }
}

impl fmt::Display for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "{{}}");
        }
        let names = [
            (Rights::READ, "R"),
            (Rights::WRITE, "W"),
            (Rights::TYPE1, "T1"),
            (Rights::TYPE2, "T2"),
            (Rights::TYPE3, "T3"),
            (Rights::DELETE, "D"),
        ];
        let mut first = true;
        write!(f, "{{")?;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contains_requires_all_bits() {
        let rw = Rights::READ | Rights::WRITE;
        assert!(rw.contains(Rights::READ));
        assert!(rw.contains(Rights::WRITE));
        assert!(rw.contains(rw));
        assert!(!rw.contains(Rights::TYPE1));
        assert!(!Rights::READ.contains(rw));
    }

    #[test]
    fn everything_contains_none() {
        assert!(Rights::NONE.contains(Rights::NONE));
        assert!(Rights::ALL.contains(Rights::NONE));
    }

    #[test]
    fn restrict_removes() {
        let all = Rights::ALL;
        let sendonly = all.restrict(Rights::SEND);
        assert!(sendonly.contains(Rights::SEND));
        assert!(!sendonly.contains(Rights::RECEIVE));
        assert!(!sendonly.contains(Rights::READ));
    }

    #[test]
    fn aliases_map_to_type_bits() {
        assert_eq!(Rights::SEND, Rights::TYPE1);
        assert_eq!(Rights::RECEIVE, Rights::TYPE2);
        assert_eq!(Rights::AMPLIFY, Rights::TYPE1);
        assert_eq!(Rights::CONTROL, Rights::TYPE1);
    }

    #[test]
    fn from_bits_masks_unknown() {
        assert_eq!(Rights::from_bits(0xff), Rights::ALL);
    }

    #[test]
    fn display_round_trip_names() {
        let r = Rights::READ | Rights::TYPE2 | Rights::DELETE;
        assert_eq!(r.to_string(), "{R,T2,D}");
        assert_eq!(Rights::NONE.to_string(), "{}");
    }

    #[test]
    fn subtraction_removes_only_named() {
        let r = Rights::ALL - Rights::WRITE;
        assert!(!r.contains(Rights::WRITE));
        assert!(r.contains(Rights::READ));
        assert!(r.contains(Rights::DELETE));
    }

    proptest! {
        /// Restriction never adds a right (monotonicity of the lattice).
        #[test]
        fn restriction_is_monotone(bits in 0u8..=0x3f, keep in 0u8..=0x3f) {
            let r = Rights::from_bits(bits);
            let k = Rights::from_bits(keep);
            let restricted = r.restrict(k);
            prop_assert!(r.contains(restricted));
            prop_assert!(k.contains(restricted));
        }

        /// Union is the least upper bound: contains both operands.
        #[test]
        fn union_is_upper_bound(a in 0u8..=0x3f, b in 0u8..=0x3f) {
            let (a, b) = (Rights::from_bits(a), Rights::from_bits(b));
            let u = a.union(b);
            prop_assert!(u.contains(a));
            prop_assert!(u.contains(b));
        }

        /// De Morgan-ish sanity: `r - k` and `r & k` partition `r`.
        #[test]
        fn sub_and_and_partition(r in 0u8..=0x3f, k in 0u8..=0x3f) {
            let (r, k) = (Rights::from_bits(r), Rights::from_bits(k));
            let kept = r & k;
            let removed = r - k;
            prop_assert_eq!(kept | removed, r);
            prop_assert!((kept & removed).is_empty());
        }
    }
}
