//! Level numbers: the 432's encoding of relative object lifetime.
//!
//! Paper §5: "Each object in the 432 has associated with it a level number
//! which indicates the dynamic depth at which it is logically defined. ...
//! The hardware ensures that an access for an object may never be stored
//! into an object with a lower (more global) level number. The level
//! numbers may be viewed as an indication of relative lifetime, where
//! objects at level 0 are called *global* and exist forever while objects
//! with higher level numbers are called *local* and have progressively
//! shorter lifetimes."
//!
//! This single rule is what lets iMAX destroy a local heap (and every
//! object allocated from it) at scope exit *without leaving dangling
//! references*: no access descriptor for a local object can have escaped
//! into a longer-lived object.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The lifetime level of an object.
///
/// Level 0 is *global* (infinite lifetime); each deeper dynamic scope gets
/// a level one higher than its caller. Ordering follows the numeric value:
/// `Level(0) < Level(1)` means level 0 is *more global / longer lived*.
///
/// # Examples
///
/// ```
/// use i432_arch::Level;
///
/// // A global container may hold accesses only for global objects.
/// assert!(Level::GLOBAL.may_hold(Level::GLOBAL));
/// assert!(!Level::GLOBAL.may_hold(Level(3)));
/// // A deep frame may hold accesses for anything at least as long-lived.
/// assert!(Level(5).may_hold(Level(2)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Level(pub u16);

impl Level {
    /// The global level: objects that exist forever (until unreachable).
    pub const GLOBAL: Level = Level(0);

    /// True when an object at this level may *hold* (store in its access
    /// part) an access descriptor for an object at `target` level.
    ///
    /// Storing is legal exactly when the target is at least as long-lived
    /// as the container: `target <= self`.
    #[inline]
    pub const fn may_hold(self, target: Level) -> bool {
        target.0 <= self.0
    }

    /// The level of a callee's context given this caller level (paper §5:
    /// "Each context object ... has a level one greater than that of its
    /// caller"). Saturates at `u16::MAX`, which in practice means call
    /// depth has long since exhausted storage.
    #[inline]
    pub const fn deeper(self) -> Level {
        Level(self.0.saturating_add(1))
    }

    /// True for level 0.
    #[inline]
    pub const fn is_global(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn global_holds_only_global() {
        assert!(Level::GLOBAL.may_hold(Level::GLOBAL));
        assert!(!Level::GLOBAL.may_hold(Level(1)));
    }

    #[test]
    fn local_holds_global_and_peers() {
        let l3 = Level(3);
        assert!(l3.may_hold(Level::GLOBAL));
        assert!(l3.may_hold(Level(3)));
        assert!(l3.may_hold(Level(1)));
        assert!(!l3.may_hold(Level(4)));
    }

    #[test]
    fn deeper_increments_and_saturates() {
        assert_eq!(Level(0).deeper(), Level(1));
        assert_eq!(Level(u16::MAX).deeper(), Level(u16::MAX));
    }

    #[test]
    fn ordering_matches_numeric() {
        assert!(Level(0) < Level(1));
        assert!(Level(7) > Level(2));
    }

    proptest! {
        /// may_hold is exactly the `<=` relation on levels, hence a total
        /// preorder: reflexive and transitive.
        #[test]
        fn may_hold_is_reflexive_transitive(a in 0u16..100, b in 0u16..100, c in 0u16..100) {
            let (a, b, c) = (Level(a), Level(b), Level(c));
            prop_assert!(a.may_hold(a));
            if a.may_hold(b) && b.may_hold(c) {
                prop_assert!(a.may_hold(c));
            }
        }

        /// A deeper frame can hold everything its caller could.
        #[test]
        fn deeper_frames_hold_superset(container in 0u16..1000, target in 0u16..1000) {
            let (container, target) = (Level(container), Level(target));
            if container.may_hold(target) {
                prop_assert!(container.deeper().may_hold(target));
            }
        }
    }
}
