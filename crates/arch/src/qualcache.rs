//! Per-processor descriptor qualification cache.
//!
//! The 432 kept qualified object descriptors in an on-chip cache so the
//! common case — an instruction touching an object it just touched —
//! paid no object-table walk. This module is the emulator's analogue:
//! each [`crate::SpaceAgent`] (one per host thread, i.e. per emulated
//! processor) keeps a small **direct-mapped** cache from object index to
//! the qualified descriptor fields the data path needs (arena base,
//! part length, residency and usage bits), consulted *before* taking
//! any shard lock.
//!
//! ## Invalidation protocol (epoch seqlock)
//!
//! Each shard of a [`crate::SharedSpace`] carries a generation counter
//! (its *epoch*). Every operation that can change a cached fact — object
//! destruction, bulk reclamation, raw table-entry mutation, and any
//! all-shards atomic section — bumps the epoch **before mutating**,
//! while holding the shard lock, and publishes the bump with a release
//! fence. A cache line records the epoch observed (under the lock) when
//! it was primed; a hit is only *used* when the shard's current epoch
//! still equals the line's. Readers re-check the epoch *after* copying
//! bytes out of the arena (the classic seqlock read protocol), so a
//! validate–mutate race is detected and the access retries through the
//! locked path. Mutations that cannot change any cached fact — data
//! writes, AD stores, GC coloring, and interpreted-`sys`-state updates
//! via [`crate::SpaceAccess::with_sys_mut`] — do **not** bump, which is
//! what keeps the interpreter's per-step bookkeeping from evicting its
//! own hot context line.
//!
//! Epochs compare by equality, so `u64` wraparound is harmless: a stale
//! line is revalidated only if the epoch returns to the *exact* value it
//! was primed at, which after a bump requires 2^64 further bumps.

use crate::refs::{ObjectIndex, ObjectRef};

/// Number of lines in the direct-mapped cache. Power of two; the line
/// for object index `i` is `i & (LINES - 1)`. 64 lines cover the
/// working set of one emulated processor (context + a handful of
/// operand objects) while keeping the probe a single indexed load.
pub const QUAL_CACHE_LINES: usize = 64;

/// One cached qualification: the descriptor facts the lock-free data
/// path needs, plus the identity and epoch that validate them.
#[derive(Debug, Clone, Copy)]
pub struct QualLine {
    /// Full identity (index *and* generation) of the cached object.
    pub obj: ObjectRef,
    /// Shard epoch observed, under the shard lock, when this line was
    /// primed.
    pub epoch: u64,
    /// Data-part base offset in the shard's arena.
    pub data_base: u32,
    /// Data-part length in bytes (the bounds check).
    pub data_len: u32,
    /// The descriptor's `accessed` bit was already set when primed; a
    /// lock-free read would otherwise lose the residency-bit update.
    pub accessed: bool,
    /// The descriptor's `dirty` bit was already set when primed; a
    /// lock-free write would otherwise lose the dirty-bit update.
    pub dirty: bool,
    /// Whether this line holds anything at all.
    pub valid: bool,
}

impl QualLine {
    const EMPTY: QualLine = QualLine {
        obj: ObjectRef {
            index: ObjectIndex(0),
            generation: 0,
        },
        epoch: 0,
        data_base: 0,
        data_len: 0,
        accessed: false,
        dirty: false,
        valid: false,
    };
}

/// A direct-mapped qualification cache (one per agent/thread; never
/// shared, so probes and fills are plain loads and stores).
#[derive(Debug, Clone)]
pub struct QualCache {
    lines: [QualLine; QUAL_CACHE_LINES],
}

impl Default for QualCache {
    fn default() -> QualCache {
        QualCache::new()
    }
}

impl QualCache {
    /// An empty cache.
    pub fn new() -> QualCache {
        QualCache {
            lines: [QualLine::EMPTY; QUAL_CACHE_LINES],
        }
    }

    /// The line index object `r` maps to.
    #[inline]
    pub fn slot_of(r: ObjectRef) -> usize {
        (r.index.0 as usize) & (QUAL_CACHE_LINES - 1)
    }

    /// Probes for `r`. Returns the line only on an identity match
    /// (index and generation) of a valid line; epoch validation is the
    /// caller's job (it owns the shard epoch).
    #[inline]
    pub fn probe(&self, r: ObjectRef) -> Option<&QualLine> {
        let line = &self.lines[QualCache::slot_of(r)];
        (line.valid && line.obj == r).then_some(line)
    }

    /// Installs (or replaces) the line for `line.obj`.
    #[inline]
    pub fn fill(&mut self, line: QualLine) {
        self.lines[QualCache::slot_of(line.obj)] = QualLine {
            valid: true,
            ..line
        };
    }

    /// Drops the line currently mapping `r`'s slot (on epoch mismatch
    /// or failed revalidation). Harmless if the slot holds another
    /// object or nothing.
    #[inline]
    pub fn evict(&mut self, r: ObjectRef) {
        self.lines[QualCache::slot_of(r)].valid = false;
    }

    /// Drops every line.
    pub fn clear(&mut self) {
        self.lines = [QualLine::EMPTY; QUAL_CACHE_LINES];
    }

    /// Number of valid lines (diagnostics/tests).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(index: u32, generation: u32) -> ObjectRef {
        ObjectRef {
            index: ObjectIndex(index),
            generation,
        }
    }

    fn line(o: ObjectRef) -> QualLine {
        QualLine {
            obj: o,
            epoch: 7,
            data_base: 32,
            data_len: 16,
            accessed: true,
            dirty: false,
            valid: true,
        }
    }

    #[test]
    fn probe_hits_only_exact_identity() {
        let mut c = QualCache::new();
        let a = obj(3, 1);
        c.fill(line(a));
        assert!(c.probe(a).is_some());
        // Same index, different generation: a reused table slot must
        // never hit.
        assert!(c.probe(obj(3, 2)).is_none());
        assert!(c.probe(obj(4, 1)).is_none());
    }

    #[test]
    fn direct_mapping_aliases_evict_each_other() {
        let mut c = QualCache::new();
        let a = obj(5, 1);
        let b = obj(5 + QUAL_CACHE_LINES as u32, 1);
        assert_eq!(QualCache::slot_of(a), QualCache::slot_of(b));
        c.fill(line(a));
        c.fill(line(b));
        assert!(c.probe(a).is_none(), "aliased fill replaces the line");
        assert!(c.probe(b).is_some());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn evict_clears_only_the_mapped_slot() {
        let mut c = QualCache::new();
        let a = obj(1, 1);
        let b = obj(2, 1);
        c.fill(line(a));
        c.fill(line(b));
        c.evict(a);
        assert!(c.probe(a).is_none());
        assert!(c.probe(b).is_some());
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }
}
