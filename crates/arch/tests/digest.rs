//! Satellite: `Space::digest()` unit suite.
//!
//! The digest must be *placement-independent* — equal for logically
//! equal spaces regardless of shard count or allocation order — and
//! *semantics-sensitive* — different whenever rights, levels, part
//! bounds or data bytes differ.

use i432_arch::{digest_from_roots, AccessDescriptor, Level, ObjectSpec, Rights, ShardedSpace};

/// Builds the same logical population on an `n`-shard space: `k`
/// interlinked generic objects with patterned data, one stored AD per
/// object (restricted rights), spread round-robin over the shard root
/// SROs.
fn build(n: u32, k: u32, data_len: u32) -> (ShardedSpace, Vec<AccessDescriptor>) {
    let mut s = ShardedSpace::new(64 * 1024, 4 * 1024, 512, n);
    let mut ads = Vec::new();
    for j in 0..k {
        let root = s.root_sro_of(j % n);
        let o = s
            .create_object(root, ObjectSpec::generic(data_len, 2))
            .unwrap();
        let ad = s.mint(o, Rights::READ | Rights::WRITE);
        for w in 0..(data_len / 8) {
            s.write_u64(ad, w * 8, u64::from(j) * 1000 + u64::from(w))
                .unwrap();
        }
        ads.push(ad);
    }
    // Link each object to its successor with restricted rights: the
    // rights on the *edge* are part of the logical state.
    for j in 0..k as usize {
        let target = ads[(j + 1) % k as usize];
        let restricted = AccessDescriptor::new(target.obj, target.rights.restrict(Rights::READ));
        s.store_ad(ads[j], 0, Some(restricted)).unwrap();
    }
    (s, ads)
}

#[test]
fn digest_equal_across_shard_counts() {
    let (one, _) = build(1, 12, 32);
    let reference = one.digest();
    for n in [2u32, 4, 8, 16] {
        let (s, _) = build(n, 12, 32);
        assert_eq!(
            s.digest(),
            reference,
            "{n}-shard space must digest equal to the single-shard space"
        );
    }
}

#[test]
fn digest_equal_regardless_of_allocation_order() {
    // Same population, different creation order: indices and arena
    // bases differ, logic does not.
    let mut a = ShardedSpace::new(64 * 1024, 4 * 1024, 512, 1);
    let mut b = ShardedSpace::new(64 * 1024, 4 * 1024, 512, 1);
    let root_a = a.root_sro();
    let root_b = b.root_sro();

    let xa = a.create_object(root_a, ObjectSpec::generic(16, 0)).unwrap();
    let ya = a.create_object(root_a, ObjectSpec::generic(24, 0)).unwrap();
    // Opposite order in b.
    let yb = b.create_object(root_b, ObjectSpec::generic(24, 0)).unwrap();
    let xb = b.create_object(root_b, ObjectSpec::generic(16, 0)).unwrap();

    for (s, x, y) in [(&mut a, xa, ya), (&mut b, xb, yb)] {
        let x_ad = s.mint(x, Rights::READ | Rights::WRITE);
        let y_ad = s.mint(y, Rights::READ | Rights::WRITE);
        s.write_u64(x_ad, 0, 0xAB).unwrap();
        s.write_u64(y_ad, 8, 0xCD).unwrap();
    }
    assert_eq!(a.digest(), b.digest());
}

#[test]
fn digest_differs_on_rights_mutation() {
    let (s, _) = build(1, 6, 32);
    let reference = s.digest();
    let (mut m, ads) = build(1, 6, 32);
    // Weaken the rights on one stored edge — nothing else changes.
    let target = ads[1];
    let weakened = AccessDescriptor::new(target.obj, Rights::NONE);
    m.store_ad(ads[0], 0, Some(weakened)).unwrap();
    assert_ne!(m.digest(), reference, "rights are logical state");
}

#[test]
fn digest_differs_on_level_mutation() {
    let (s, _) = build(1, 6, 32);
    let reference = s.digest();
    let (mut m, ads) = build(1, 6, 32);
    m.entry_mut(ads[3].obj).unwrap().desc.level = Level(5);
    assert_ne!(m.digest(), reference, "level numbers are logical state");
}

#[test]
fn digest_differs_on_bounds_mutation() {
    let (a, _) = build(1, 6, 32);
    let (b, _) = build(1, 6, 40);
    assert_ne!(a.digest(), b.digest(), "part sizes are logical state");
}

#[test]
fn digest_differs_on_data_mutation() {
    let (s, _) = build(1, 6, 32);
    let reference = s.digest();
    let (mut m, ads) = build(1, 6, 32);
    s_write_one(&mut m, ads[2]);
    assert_ne!(m.digest(), reference, "data bytes are logical state");
}

fn s_write_one(s: &mut ShardedSpace, ad: AccessDescriptor) {
    s.write_u64(ad, 16, 0xFFFF_FFFF).unwrap();
}

#[test]
fn root_digest_ignores_unreachable_garbage() {
    let (s, ads) = build(1, 6, 32);
    let reference = digest_from_roots(&s, &ads);
    let whole_reference = s.digest();

    let (mut m, ads2) = build(1, 6, 32);
    let root = m.root_sro();
    // An extra object nothing reachable points at.
    let o = m.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
    let o_ad = m.mint(o, Rights::READ | Rights::WRITE);
    m.write_u64(o_ad, 0, 999).unwrap();

    assert_eq!(
        digest_from_roots(&m, &ads2),
        reference,
        "from-roots digest sees only the reachable subgraph"
    );
    assert_ne!(
        m.digest(),
        whole_reference,
        "whole-space digest sees the garbage"
    );
}

#[test]
fn root_digest_sensitive_to_root_rights() {
    let (s, ads) = build(1, 4, 16);
    let reference = digest_from_roots(&s, &ads);
    let weakened: Vec<_> = ads
        .iter()
        .map(|ad| AccessDescriptor::new(ad.obj, ad.rights.restrict(Rights::READ)))
        .collect();
    assert_ne!(digest_from_roots(&s, &weakened), reference);
}
