//! Integration tests for the per-agent descriptor qualification cache,
//! driven entirely through the public `SharedSpace`/`SpaceAgent` API.
//!
//! The unit tests in `qualcache.rs` cover the direct-mapped array in
//! isolation; these cover the invalidation protocol end to end: one
//! agent's cached line must never let it observe an object another
//! agent has destroyed, even across epoch-counter wraparound and
//! object-table slot reuse.

use i432_arch::{
    ArchError, ObjectIndex, ObjectRef, ObjectSpec, QualCache, Rights, ShardedSpace, SharedSpace,
    SpaceAccess, QUAL_CACHE_LINES,
};

const SHARDS: u32 = 4;

fn shared() -> SharedSpace {
    SharedSpace::new(ShardedSpace::new(65536, 1024, 512, SHARDS))
}

/// Entries per object-directory leaf page (shard-local slots).
const LEAF: u32 = i432_arch::object_table::LEAF_ENTRIES;

/// A space whose per-shard table limit spans four leaf pages, so tests
/// can push allocation across leaf-page boundaries.
fn shared_big() -> SharedSpace {
    SharedSpace::new(ShardedSpace::new(256 * 1024, 4096, 16 * 1024, SHARDS))
}

/// Agent A caches a line for an object; agent B destroys the object.
/// A's next access must fault through the locked path, never serve the
/// reclaimed bytes from its stale line.
#[test]
fn cross_agent_destroy_invalidates_cached_line() {
    let shared = shared();
    let mut a = shared.agent();
    let mut b = shared.agent();

    let root = a.root_sro();
    let obj = a.create_object(root, ObjectSpec::generic(32, 0)).unwrap();
    let ad = a.mint(obj, Rights::READ | Rights::WRITE);

    a.write_u64(ad, 0, 0xDEAD_BEEF).unwrap();
    assert_eq!(a.read_u64(ad, 0).unwrap(), 0xDEAD_BEEF);
    assert_eq!(a.cache_occupancy(), 1, "locked read primes a line");
    // A second read is served by the fast path off the primed line.
    assert_eq!(a.read_u64(ad, 0).unwrap(), 0xDEAD_BEEF);

    b.destroy_object(obj).unwrap();

    // The destroy bumped the shard epoch, so A's line fails
    // revalidation and the locked path reports the reclamation.
    let err = a.read_u64(ad, 0).unwrap_err();
    assert!(
        matches!(err, ArchError::FreeEntry(_) | ArchError::StaleRef(_)),
        "stale cached line must fault, got {err:?}"
    );
}

/// Destroying an object and recreating one in the reused table slot
/// (same index, bumped generation) must fault an old AD even though the
/// index — and therefore the cache slot — collides.
#[test]
fn stale_ad_faults_after_slot_reuse() {
    let shared = shared();
    let mut a = shared.agent();

    let root = a.root_sro();
    let old = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    let old_ad = a.mint(old, Rights::READ | Rights::WRITE);
    a.write_u64(old_ad, 0, 1).unwrap();
    assert_eq!(a.read_u64(old_ad, 0).unwrap(), 1);
    assert_eq!(a.cache_occupancy(), 1);

    a.destroy_object(old).unwrap();
    let new = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    assert_eq!(new.index, old.index, "free list reuses the table slot");
    assert_ne!(new.generation, old.generation, "reclaim bumps generation");

    let new_ad = a.mint(new, Rights::READ | Rights::WRITE);
    a.write_u64(new_ad, 0, 2).unwrap();
    assert_eq!(a.read_u64(new_ad, 0).unwrap(), 2);

    // The probe is generation-exact: the old AD misses the (re-primed)
    // line for the same slot and the locked path raises StaleRef.
    assert!(
        matches!(a.read_u64(old_ad, 0), Err(ArchError::StaleRef(_))),
        "an AD from before the reuse must fault"
    );
    assert_eq!(a.read_u64(new_ad, 0).unwrap(), 2);
}

/// Invalidation survives epoch-counter wraparound: a line primed at
/// `u64::MAX` must be discarded when a destroy wraps the shard epoch
/// to 0, exactly as for any other bump.
#[test]
fn epoch_wraparound_still_invalidates() {
    let shared = shared();
    let mut a = shared.agent();
    let mut b = shared.agent();

    let root = a.root_sro();
    let obj = a.create_object(root, ObjectSpec::generic(32, 0)).unwrap();
    let ad = a.mint(obj, Rights::READ | Rights::WRITE);
    let k = obj.index.0 % SHARDS;

    shared.force_epoch(k, u64::MAX);
    a.write_u64(ad, 0, 77).unwrap();
    assert_eq!(a.read_u64(ad, 0).unwrap(), 77, "line primed at u64::MAX");
    assert_eq!(a.cache_occupancy(), 1);
    assert_eq!(
        a.read_u64(ad, 0).unwrap(),
        77,
        "fast path at epoch u64::MAX"
    );

    b.destroy_object(obj).unwrap();
    assert_eq!(shared.epoch(k), 0, "the bump wrapped the counter");

    // 0 != u64::MAX: equality comparison makes the wrap harmless.
    let err = a.read_u64(ad, 0).unwrap_err();
    assert!(
        matches!(err, ArchError::FreeEntry(_) | ArchError::StaleRef(_)),
        "wrapped epoch must still invalidate, got {err:?}"
    );
}

/// An epoch forced *between* prime and reuse: even if the shard epoch is
/// pinned back to the primed value (simulating an exact 2^64-bump
/// return), the generation in the line's identity still rejects a
/// reused slot.
#[test]
fn generation_guards_against_exact_epoch_reuse() {
    let shared = shared();
    let mut a = shared.agent();

    let root = a.root_sro();
    let old = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    let old_ad = a.mint(old, Rights::READ | Rights::WRITE);
    let k = old.index.0 % SHARDS;

    a.write_u64(old_ad, 0, 5).unwrap();
    assert_eq!(a.read_u64(old_ad, 0).unwrap(), 5);
    let primed_epoch = shared.epoch(k);

    a.destroy_object(old).unwrap();
    let new = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    assert_eq!(new.index, old.index);
    let new_ad = a.mint(new, Rights::READ | Rights::WRITE);
    a.write_u64(new_ad, 0, 6).unwrap();

    // Pin the epoch back to the exact value A's (evicted-by-reuse) line
    // was primed at. Identity still differs by generation, so nothing
    // stale can revalidate.
    shared.force_epoch(k, primed_epoch);
    assert!(matches!(a.read_u64(old_ad, 0), Err(ArchError::StaleRef(_))));
    assert_eq!(a.read_u64(new_ad, 0).unwrap(), 6);
}

/// Two live objects whose indices collide modulo the line count evict
/// each other from the direct-mapped cache; accesses stay correct
/// (the loser just re-primes through the locked path).
#[test]
fn direct_mapped_aliasing_stays_correct() {
    let shared = shared();
    let mut a = shared.agent();
    let root = a.root_sro();

    // Objects created from one SRO take interleaved indices in its
    // shard (stride SHARDS), so allocating past QUAL_CACHE_LINES
    // guarantees an aliasing pair: index and index + QUAL_CACHE_LINES.
    let objs: Vec<_> = (0..(QUAL_CACHE_LINES as u32 / SHARDS + 4))
        .map(|_| a.create_object(root, ObjectSpec::generic(16, 0)).unwrap())
        .collect();
    let (x, y) = objs
        .iter()
        .flat_map(|&x| objs.iter().map(move |&y| (x, y)))
        .find(|(x, y)| x != y && QualCache::slot_of(*x) == QualCache::slot_of(*y))
        .expect("an aliasing pair exists");

    let ad_x = a.mint(x, Rights::READ | Rights::WRITE);
    let ad_y = a.mint(y, Rights::READ | Rights::WRITE);
    a.write_u64(ad_x, 0, 0x1111).unwrap();
    a.write_u64(ad_y, 0, 0x2222).unwrap();

    // Ping-pong across the shared line: every read must return the
    // right object's bytes regardless of who owns the line.
    for _ in 0..4 {
        assert_eq!(a.read_u64(ad_x, 0).unwrap(), 0x1111);
        assert_eq!(a.read_u64(ad_y, 0).unwrap(), 0x2222);
    }
    // Both objects map to one line, so they can never be cached at once.
    assert!(a.cache_occupancy() < objs.len());
}

/// A line primed while the directory held a single leaf page must keep
/// hitting — and keep *invalidating* — after later allocations grow the
/// directory by whole pages. Directory growth publishes new leaves; it
/// must never disturb existing entries or the seqlock epochs guarding
/// them.
#[test]
fn cached_hit_survives_directory_growth() {
    let shared = shared_big();
    let mut a = shared.agent();
    let root = a.root_sro();

    // Prime a line while the shard's table still fits in leaf page 0.
    let early = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    let ad = a.mint(early, Rights::READ | Rights::WRITE);
    a.write_u64(ad, 0, 0xCAFE).unwrap();
    assert_eq!(a.read_u64(ad, 0).unwrap(), 0xCAFE);
    assert_eq!(a.cache_occupancy(), 1);

    // Grow the directory past a leaf boundary (allocations from one SRO
    // stay in its shard, so ~LEAF creates guarantee a second page).
    let mut last = early;
    for _ in 0..(LEAF + 8) {
        last = a.create_object(root, ObjectSpec::generic(0, 0)).unwrap();
    }
    assert!(
        last.index.0 >= LEAF * SHARDS,
        "the shard's table crossed into leaf page 1 (index {})",
        last.index.0
    );

    // The old line still serves the right bytes...
    assert_eq!(a.read_u64(ad, 0).unwrap(), 0xCAFE);
    assert!(a.cache_occupancy() >= 1);

    // ...and still invalidates: growth must not have detached the entry
    // from its shard epoch.
    let mut b = shared.agent();
    b.destroy_object(early).unwrap();
    assert!(matches!(
        a.read_u64(ad, 0),
        Err(ArchError::FreeEntry(_) | ArchError::StaleRef(_))
    ));
}

/// Slot reuse beyond the first leaf page: the generation-exact probe
/// must reject a stale AD for an entry that lives on a demand-grown
/// page, exactly as it does for page-0 entries.
#[test]
fn slot_reuse_on_grown_page_faults_stale_ads() {
    let shared = shared_big();
    let mut a = shared.agent();
    let root = a.root_sro();

    for _ in 0..(LEAF + 8) {
        a.create_object(root, ObjectSpec::generic(0, 0)).unwrap();
    }
    let old = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    assert!(
        old.index.0 >= LEAF * SHARDS,
        "the object must land on leaf page 1 (index {})",
        old.index.0
    );
    let old_ad = a.mint(old, Rights::READ | Rights::WRITE);
    a.write_u64(old_ad, 0, 41).unwrap();
    assert_eq!(a.read_u64(old_ad, 0).unwrap(), 41);

    a.destroy_object(old).unwrap();
    let new = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    assert_eq!(new.index, old.index, "LIFO free list reuses the slot");
    assert_ne!(new.generation, old.generation);
    let new_ad = a.mint(new, Rights::READ | Rights::WRITE);
    a.write_u64(new_ad, 0, 42).unwrap();

    assert!(matches!(a.read_u64(old_ad, 0), Err(ArchError::StaleRef(_))));
    assert_eq!(a.read_u64(new_ad, 0).unwrap(), 42);
}

/// An AD probing an index whose leaf page does not exist yet must take
/// the locked path and fault `BadIndex`; once allocation grows the
/// directory to that index, the same stale AD must fault `StaleRef` on
/// the generation guard — never read the newcomer's bytes.
#[test]
fn generation_guard_covers_leaves_allocated_after_a_stale_probe() {
    let shared = shared_big();
    let mut a = shared.agent();
    let root = a.root_sro();

    // Park allocation just short of the page-1 boundary.
    for _ in 0..(LEAF - 8) {
        a.create_object(root, ObjectSpec::generic(0, 0)).unwrap();
    }
    let base = a.create_object(root, ObjectSpec::generic(0, 0)).unwrap();

    // Forge a reference 12 shard-slots ahead — past `used`, on a leaf
    // page that does not exist yet — with a generation no fresh slot
    // will ever have.
    let target = ObjectIndex(base.index.0 + 12 * SHARDS);
    let stale_ad = a.mint(
        ObjectRef {
            index: target,
            generation: 5,
        },
        Rights::READ,
    );
    assert!(
        matches!(a.read_u64(stale_ad, 0), Err(ArchError::BadIndex(i)) if i == target),
        "an index past `used` is out of range, grown leaf or not"
    );
    assert_eq!(a.cache_occupancy(), 0, "failed probes must not prime");

    // Grow the directory until a real object occupies the target index.
    let mut real = None;
    for _ in 0..16 {
        let r = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
        if r.index == target {
            real = Some(r);
        }
    }
    let real = real.expect("allocation reached the forged index");
    assert!(
        real.index.0 >= LEAF * SHARDS,
        "the target slot sits on the demand-grown page"
    );
    let real_ad = a.mint(real, Rights::READ | Rights::WRITE);
    a.write_u64(real_ad, 0, 99).unwrap();

    assert!(
        matches!(a.read_u64(stale_ad, 0), Err(ArchError::StaleRef(i)) if i == target),
        "the generation guard must reject the stale AD once the leaf exists"
    );
    assert_eq!(a.read_u64(real_ad, 0).unwrap(), 99);
}

/// A fast-path (lock-free) write must be visible to a different agent's
/// locked read — the arena bytes are the single store, not a private
/// copy.
#[test]
fn fast_write_visible_to_other_agents() {
    let shared = shared();
    let mut a = shared.agent();
    let mut b = shared.agent_uncached();

    let root = a.root_sro();
    let obj = a.create_object(root, ObjectSpec::generic(32, 0)).unwrap();
    let ad = a.mint(obj, Rights::READ | Rights::WRITE);

    // First locked write sets the dirty bit and primes A's line; the
    // second write goes through the fast path.
    a.write_u64(ad, 0, 10).unwrap();
    assert_eq!(a.cache_occupancy(), 1);
    a.write_u64(ad, 0, 11).unwrap();

    assert_eq!(b.read_u64(ad, 0).unwrap(), 11);
    assert_eq!(b.cache_occupancy(), 0, "uncached agents never prime");
}

/// `agent_uncached` takes the locked path for everything and must
/// behave identically to a caching agent, byte for byte.
#[test]
fn cached_and_uncached_agents_agree() {
    let shared = shared();
    let mut a = shared.agent();
    let mut b = shared.agent_uncached();

    let root = a.root_sro();
    let obj = a.create_object(root, ObjectSpec::generic(64, 0)).unwrap();
    let ad_a = a.mint(obj, Rights::READ | Rights::WRITE);
    let ad_b = b.mint(obj, Rights::READ | Rights::WRITE);

    for i in 0..8u64 {
        a.write_u64(ad_a, (i as u32) * 8, i * 3).unwrap();
    }
    for i in 0..8u64 {
        assert_eq!(a.read_u64(ad_a, (i as u32) * 8).unwrap(), i * 3);
        assert_eq!(b.read_u64(ad_b, (i as u32) * 8).unwrap(), i * 3);
    }
    assert!(a.cache_enabled() && !b.cache_enabled());
}
