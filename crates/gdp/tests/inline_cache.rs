//! Integration tests for the monomorphic inline caches on the fused
//! fast path, structurally mirroring `arch/tests/qualcache.rs`: the IC
//! keeps the same invalidation contract as the per-agent qualification
//! cache — epoch-validated lines, generation-exact descriptor identity,
//! direct-mapped aliasing that only ever costs a refill — plus one
//! contract of its own: any processor rebinding flushes every line.
//!
//! The cache is driven two ways: directly (`InlineCache` against live
//! `SharedSpace` shard epochs, as the executor drives it) and
//! end-to-end through a fused [`Gdp`] running call loops.

use i432_arch::{
    sysobj::{CTX_SLOT_DOMAIN, PROC_SLOT_CONTEXT},
    AccessDescriptor, CodeBody, CodeRef, DomainState, Level, ObjectSpec, ObjectType,
    PortDiscipline, PortRing, PortState, Rights, ShardedSpace, SharedSpace, SpaceAccess,
    SpaceAccessExt, Subprogram, SysState, SystemType,
};
use i432_gdp::{
    exec::{Env, Gdp, StepEvent},
    port,
    process::{make_process, make_processor, ProcessSpec},
    AluOp, CodeStore, CostModel, DataDst, DataRef, InlineCache, Instruction, NativeRegistry,
    NullInterconnect, Site, IC_LINES,
};
use std::sync::Arc;

const SHARDS: u32 = 4;

fn shared() -> SharedSpace {
    SharedSpace::new(ShardedSpace::new(65536, 1024, 512, SHARDS))
}

fn leaf_sub() -> Subprogram {
    Subprogram {
        name: "leaf".into(),
        body: CodeBody::Interpreted(CodeRef(1)),
        ctx_data_len: 64,
        ctx_access_len: 8,
    }
}

/// A monomorphic site hits after one fill — and only for the exact
/// descriptor and epoch it was filled with.
#[test]
fn hit_after_monomorphic_warmup() {
    let shared = shared();
    let mut a = shared.agent();
    let root = a.root_sro();
    let dom = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    let dom_ad = a.mint(dom, Rights::CALL);
    let site: Site = (CodeRef(0), 3);

    let mut ic = InlineCache::new();
    let epoch = a
        .qual_epoch(dom)
        .expect("shared-space agents expose shard epochs");
    assert!(
        ic.probe_call(site, 1, dom_ad, Some(epoch)).is_none(),
        "cold cache misses"
    );
    ic.fill_call(site, 1, dom_ad, epoch, leaf_sub());
    assert_eq!(ic.occupancy(), 1);
    assert!(
        ic.probe_call(site, 1, dom_ad, a.qual_epoch(dom)).is_some(),
        "warm monomorphic site hits"
    );
    // Same line, re-probed many times: still hot (no self-eviction).
    for _ in 0..8 {
        assert!(ic.probe_call(site, 1, dom_ad, a.qual_epoch(dom)).is_some());
    }
}

/// Any epoch movement in the target's shard invalidates the line; a
/// refill at the new epoch restores the hit.
#[test]
fn miss_and_refill_on_epoch_bump() {
    let shared = shared();
    let mut a = shared.agent();
    let root = a.root_sro();
    let dom = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    let dom_ad = a.mint(dom, Rights::CALL);
    let site: Site = (CodeRef(0), 3);
    let k = dom.index.0 % SHARDS;

    let mut ic = InlineCache::new();
    let e0 = a.qual_epoch(dom).unwrap();
    ic.fill_call(site, 1, dom_ad, e0, leaf_sub());
    assert!(ic.probe_call(site, 1, dom_ad, a.qual_epoch(dom)).is_some());

    // A mutation in the shard bumps the epoch the agent reads: the line
    // fails revalidation exactly like a qualcache line.
    shared.force_epoch(k, e0 + 1);
    assert!(
        ic.probe_call(site, 1, dom_ad, a.qual_epoch(dom)).is_none(),
        "epoch bump must miss"
    );

    // Miss-and-refill: the executor re-qualifies on the locked path and
    // fills at the *new* epoch; the site is hot again.
    let e1 = a.qual_epoch(dom).unwrap();
    ic.fill_call(site, 1, dom_ad, e1, leaf_sub());
    assert!(ic.probe_call(site, 1, dom_ad, a.qual_epoch(dom)).is_some());
}

/// Agent A fills a line; agent B destroys the target object. A's next
/// probe (with a fresh epoch read, as the executor always does) must
/// miss — never serve a subprogram of a destroyed domain.
#[test]
fn cross_agent_destroy_invalidates_line() {
    let shared = shared();
    let mut a = shared.agent();
    let mut b = shared.agent();
    let root = a.root_sro();
    let dom = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    let dom_ad = a.mint(dom, Rights::CALL);
    let site: Site = (CodeRef(0), 5);

    let mut ic = InlineCache::new();
    ic.fill_call(site, 0, dom_ad, a.qual_epoch(dom).unwrap(), leaf_sub());
    assert!(ic.probe_call(site, 0, dom_ad, a.qual_epoch(dom)).is_some());

    b.destroy_object(dom).unwrap();

    assert!(
        ic.probe_call(site, 0, dom_ad, a.qual_epoch(dom)).is_none(),
        "the destroy bumped the shard epoch; the line must fail revalidation"
    );
}

/// Slot reuse: destroy + recreate hands out the same table index with a
/// bumped generation. The reused slot's new descriptor must miss a line
/// filled for the old lifetime even when the epoch counter is pinned
/// back to the fill-time value — identity is generation-exact.
#[test]
fn slot_reuse_generation_guard() {
    let shared = shared();
    let mut a = shared.agent();
    let root = a.root_sro();
    let old = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    let old_ad = a.mint(old, Rights::CALL);
    let site: Site = (CodeRef(2), 9);
    let k = old.index.0 % SHARDS;

    let mut ic = InlineCache::new();
    let primed_epoch = a.qual_epoch(old).unwrap();
    ic.fill_call(site, 0, old_ad, primed_epoch, leaf_sub());

    a.destroy_object(old).unwrap();
    let new = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    assert_eq!(new.index, old.index, "free list reuses the table slot");
    assert_ne!(new.generation, old.generation, "reclaim bumps generation");
    let new_ad = a.mint(new, Rights::CALL);

    // Pin the epoch back to the exact fill-time value (simulating an
    // exact 2^64-bump return): the new lifetime's descriptor still
    // misses on generation.
    shared.force_epoch(k, primed_epoch);
    assert!(
        ic.probe_call(site, 0, new_ad, a.qual_epoch(new)).is_none(),
        "a reused slot's new descriptor must miss the old lifetime's line"
    );
}

/// Epoch wraparound: a line filled at `u64::MAX` misses after the next
/// bump wraps the counter to 0 — equality, not ordering.
#[test]
fn epoch_wraparound_still_invalidates() {
    let shared = shared();
    let mut a = shared.agent();
    let mut b = shared.agent();
    let root = a.root_sro();
    let dom = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    let dom_ad = a.mint(dom, Rights::CALL);
    let site: Site = (CodeRef(0), 1);
    let k = dom.index.0 % SHARDS;

    shared.force_epoch(k, u64::MAX);
    let mut ic = InlineCache::new();
    ic.fill_call(site, 0, dom_ad, a.qual_epoch(dom).unwrap(), leaf_sub());
    assert!(ic.probe_call(site, 0, dom_ad, a.qual_epoch(dom)).is_some());

    b.destroy_object(dom).unwrap();
    assert_eq!(shared.epoch(k), 0, "the bump wrapped the counter");
    assert!(
        ic.probe_call(site, 0, dom_ad, a.qual_epoch(dom)).is_none(),
        "wrapped epoch must still invalidate"
    );
}

/// A restricted descriptor is a *different* descriptor: rights are part
/// of line identity, so a weaker AD re-qualifies on the locked path.
#[test]
fn rights_are_part_of_line_identity() {
    let shared = shared();
    let mut a = shared.agent();
    let root = a.root_sro();
    let dom = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    let dom_ad = a.mint(dom, Rights::CALL | Rights::READ);
    let site: Site = (CodeRef(0), 2);

    let mut ic = InlineCache::new();
    ic.fill_call(site, 0, dom_ad, a.qual_epoch(dom).unwrap(), leaf_sub());

    let weaker = AccessDescriptor::new(dom_ad.obj, Rights::READ);
    assert!(
        ic.probe_call(site, 0, weaker, a.qual_epoch(dom)).is_none(),
        "a restricted descriptor must not inherit the stronger line"
    );
}

/// Two sites that collide modulo `IC_LINES` evict each other; probes
/// stay correct (the loser refills), exactly like qualcache aliasing.
#[test]
fn direct_mapped_aliasing_stays_correct() {
    let shared = shared();
    let mut a = shared.agent();
    let root = a.root_sro();
    let dom = a.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
    let dom_ad = a.mint(dom, Rights::CALL);

    // Sites on one code segment alias exactly IC_LINES apart.
    let s1: Site = (CodeRef(0), 4);
    let s2: Site = (CodeRef(0), 4 + IC_LINES as u32);

    let mut ic = InlineCache::new();
    let e = a.qual_epoch(dom).unwrap();
    ic.fill_call(s1, 0, dom_ad, e, leaf_sub());
    assert!(ic.probe_call(s1, 0, dom_ad, Some(e)).is_some());

    ic.fill_call(s2, 0, dom_ad, e, leaf_sub());
    assert!(ic.probe_call(s2, 0, dom_ad, Some(e)).is_some());
    assert!(
        ic.probe_call(s1, 0, dom_ad, Some(e)).is_none(),
        "the aliasing fill evicted s1's line"
    );
    assert_eq!(ic.occupancy(), 1, "both sites share one line");
}

/// Port lines keep the same validity rule and never cross payload
/// kinds with call lines at the same slot.
#[test]
fn port_lines_follow_the_same_contract() {
    let shared = shared();
    let mut a = shared.agent();
    let root = a.root_sro();
    let p = a
        .create_object(
            root,
            ObjectSpec {
                data_len: 0,
                access_len: PortState::access_slots(4, 4),
                otype: ObjectType::System(SystemType::Port),
                level: None,
                sys: SysState::Port(PortState::new(4, 4, PortDiscipline::Fifo)),
            },
        )
        .unwrap();
    let port_ad = a.mint(p, Rights::SEND | Rights::RECEIVE);
    let site: Site = (CodeRef(0), 6);
    let ring = Arc::new(PortRing::new(p, 4, Level::GLOBAL));

    let mut ic = InlineCache::new();
    let e = a.qual_epoch(p).unwrap();
    ic.fill_port(site, port_ad, e, Arc::clone(&ring));
    assert!(ic.probe_port(site, port_ad, Some(e)).is_some());
    assert!(
        ic.probe_call(site, 0, port_ad, Some(e)).is_none(),
        "a port line never answers a call probe"
    );
    assert!(
        ic.probe_port(site, port_ad, Some(e + 1)).is_none(),
        "epoch bump invalidates port lines too"
    );
}

// ---------------------------------------------------------------------------
// End-to-end: a fused GDP's cache across process rebinding
// ---------------------------------------------------------------------------

/// The IC is populated while the caller runs and *flushed* when the
/// processor rebinds to the second process — while the context switches
/// *within* the caller (call/return) keep the lines live, so the call
/// loop goes monomorphic after one miss.
///
/// One layout subtlety makes the test interesting: objects allocate in
/// their SRO's shard, and RET destroys the callee context, bumping its
/// shard's qualification epoch. Per-shard epochs false-share — exactly
/// like the qualcache — so a caller whose contexts recycle in the
/// *domain's* shard would (correctly but uselessly) invalidate the call
/// line on every iteration. The caller is therefore homed on shard 1's
/// root SRO while the domain lives in shard 0: the real-world layout
/// where call-site caching pays.
#[test]
fn rebinding_flushes_the_inline_cache() {
    let shared = SharedSpace::new(ShardedSpace::new(256 * 1024, 8 * 1024, 2048, SHARDS));

    let mut code = CodeStore::new();
    // Subprogram 0: a call loop (fills the call-site IC).
    let caller = code.install(vec![
        Instruction::Mov {
            src: DataRef::Imm(4),
            dst: DataDst::Local(0),
        },
        Instruction::Call {
            domain: CTX_SLOT_DOMAIN as u16,
            subprogram: 1,
            arg: None,
            ret_ad: None,
            ret_val: None,
        },
        Instruction::Alu {
            op: AluOp::Sub,
            a: DataRef::Local(0),
            b: DataRef::Imm(1),
            dst: DataDst::Local(0),
        },
        Instruction::JumpIf {
            cond: DataRef::Local(0),
            when: true,
            target: 1,
        },
        Instruction::Halt,
    ]);
    let leaf = code.install(vec![
        Instruction::Work { cycles: 3 },
        Instruction::Return {
            ad: None,
            value: None,
        },
    ]);
    // A call-free second program.
    let plain = code.install(vec![
        Instruction::Work { cycles: 11 },
        Instruction::Work { cycles: 11 },
        Instruction::Halt,
    ]);
    assert_eq!((caller, leaf, plain), (CodeRef(0), CodeRef(1), CodeRef(2)));

    let (p0, p1, cpu) = {
        let mut agent = shared.agent();
        let space: &mut dyn SpaceAccess = &mut agent;
        let root = space.root_sro();
        let dispatch = {
            let p = space
                .create_object(
                    root,
                    ObjectSpec {
                        data_len: 0,
                        access_len: PortState::access_slots(8, 8),
                        otype: ObjectType::System(SystemType::Port),
                        level: None,
                        sys: SysState::Port(PortState::new(8, 8, PortDiscipline::Fifo)),
                    },
                )
                .unwrap();
            space.mint(p, Rights::SEND | Rights::RECEIVE)
        };
        let sub = |name: &str, r: CodeRef| Subprogram {
            name: name.into(),
            body: CodeBody::Interpreted(r),
            ctx_data_len: 64,
            ctx_access_len: 16,
        };
        let dom = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: 2,
                    otype: ObjectType::System(SystemType::Domain),
                    level: None,
                    sys: SysState::Domain(DomainState {
                        name: "ic-flush".into(),
                        subprograms: vec![
                            sub("caller", caller),
                            sub("leaf", leaf),
                            sub("plain", plain),
                        ],
                    }),
                },
            )
            .unwrap();
        let dom_ad = space.mint(dom, Rights::CALL);
        // Home the caller — and therefore every callee context it
        // creates and RET destroys — on shard 1's root SRO, away from
        // the domain in shard 0 (see the doc comment above).
        let caller_sro = space.root_sro_of(1);
        assert_ne!(
            caller_sro.index.0 % SHARDS,
            dom.index.0 % SHARDS,
            "the caller's SRO must not share the domain's shard"
        );
        let p0 = make_process(
            space,
            caller_sro,
            dom_ad,
            0,
            None,
            ProcessSpec::new(dispatch),
        )
        .unwrap();
        let p1 = make_process(space, root, dom_ad, 2, None, ProcessSpec::new(dispatch)).unwrap();
        space.atomically(|sm| port::make_ready(sm, p0)).unwrap();
        space.atomically(|sm| port::make_ready(sm, p1)).unwrap();
        let cpu = make_processor(space, root, 0, dispatch).unwrap();
        (p0, p1, cpu)
    };

    let mut gdp = Gdp::new_fused(cpu);
    let natives = NativeRegistry::new();
    let mut bus = NullInterconnect;
    let mut agent = shared.agent();
    let mut env = Env {
        space: &mut agent,
        code: &code,
        natives: &natives,
        bus: &mut bus,
        cost: CostModel::default(),
    };

    let hits_before = if i432_trace::ENABLED {
        i432_trace::snapshot().get(i432_trace::Counter::IcHits)
    } else {
        0
    };
    let mut exited = Vec::new();
    let mut occupancy_at_first_exit = None;
    for _ in 0..200_000 {
        match gdp.step(&mut env) {
            StepEvent::ProcessExited(p) => {
                if occupancy_at_first_exit.is_none() {
                    occupancy_at_first_exit = Some(gdp.ic_occupancy());
                }
                exited.push(p);
                if exited.len() == 2 {
                    break;
                }
            }
            StepEvent::ProcessFaulted { kind, .. } => panic!("unexpected fault: {kind:?}"),
            StepEvent::SystemError { fault, .. } => panic!("system error: {fault}"),
            _ => {}
        }
    }
    assert_eq!(exited.len(), 2, "both processes must run to completion");
    assert_eq!(exited[0], p0, "FIFO dispatch runs the caller first");
    let _ = p1;
    assert!(
        occupancy_at_first_exit.unwrap() >= 1,
        "the call loop must have filled at least one line"
    );
    // The second process executed no calls or port ops: its binding
    // flushed the caller's lines and nothing refilled them.
    assert_eq!(
        gdp.ic_occupancy(),
        0,
        "rebinding to the second process must flush the cache"
    );
    if i432_trace::ENABLED {
        let hits = i432_trace::snapshot().get(i432_trace::Counter::IcHits) - hits_before;
        assert!(
            hits >= 3,
            "monomorphic call loop must hit after warm-up (got {hits})"
        );
    }
}

/// Deterministic spaces expose no qualification epochs, so a fused GDP
/// over one stays permanently IC-cold — same programs, zero lines.
#[test]
fn deterministic_spaces_never_fill() {
    use i432_arch::ObjectSpace;
    let mut space = ObjectSpace::new(256 * 1024, 8 * 1024, 2048);
    let mut code = CodeStore::new();
    let main = code.install(vec![
        Instruction::Call {
            domain: CTX_SLOT_DOMAIN as u16,
            subprogram: 1,
            arg: None,
            ret_ad: None,
            ret_val: None,
        },
        Instruction::Halt,
    ]);
    let leaf = code.install(vec![Instruction::Return {
        ad: None,
        value: None,
    }]);
    assert_eq!((main, leaf), (CodeRef(0), CodeRef(1)));

    let root = space.root_sro();
    let dispatch = {
        let p = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: PortState::access_slots(8, 8),
                    otype: ObjectType::System(SystemType::Port),
                    level: None,
                    sys: SysState::Port(PortState::new(8, 8, PortDiscipline::Fifo)),
                },
            )
            .unwrap();
        space.mint(p, Rights::SEND | Rights::RECEIVE)
    };
    let dom = space
        .create_object(
            root,
            ObjectSpec {
                data_len: 0,
                access_len: 2,
                otype: ObjectType::System(SystemType::Domain),
                level: None,
                sys: SysState::Domain(DomainState {
                    name: "cold".into(),
                    subprograms: vec![
                        Subprogram {
                            name: "main".into(),
                            body: CodeBody::Interpreted(main),
                            ctx_data_len: 64,
                            ctx_access_len: 8,
                        },
                        Subprogram {
                            name: "leaf".into(),
                            body: CodeBody::Interpreted(leaf),
                            ctx_data_len: 64,
                            ctx_access_len: 8,
                        },
                    ],
                }),
            },
        )
        .unwrap();
    let dom_ad = space.mint(dom, Rights::CALL);
    let proc_ref = make_process(
        &mut space,
        root,
        dom_ad,
        0,
        None,
        ProcessSpec::new(dispatch),
    )
    .unwrap();
    space
        .atomically(|sm| port::make_ready(sm, proc_ref))
        .unwrap();
    let cpu = make_processor(&mut space, root, 0, dispatch).unwrap();

    let mut gdp = Gdp::new_fused(cpu);
    let natives = NativeRegistry::new();
    let mut bus = NullInterconnect;
    let mut env = Env {
        space: &mut space,
        code: &code,
        natives: &natives,
        bus: &mut bus,
        cost: CostModel::default(),
    };
    for _ in 0..50_000 {
        match gdp.step(&mut env) {
            StepEvent::ProcessExited(p) => {
                assert_eq!(p, proc_ref);
                assert_eq!(
                    gdp.ic_occupancy(),
                    0,
                    "no epochs, no fills: the IC stays cold on deterministic spaces"
                );
                assert!(gdp.block_cache_occupancy() >= 1, "blocks still pre-decode");
                return;
            }
            StepEvent::ProcessFaulted { kind, .. } => panic!("unexpected fault: {kind:?}"),
            StepEvent::SystemError { fault, .. } => panic!("system error: {fault}"),
            _ => {}
        }
    }
    panic!("program did not finish");
}

/// `load_ad_hw`-level sanity used by the executor: the context the
/// processes run in is reachable, so the harness assumptions above hold.
#[test]
fn harness_contexts_are_reachable() {
    let shared = shared();
    let mut a = shared.agent();
    let root = a.root_sro();
    let dispatch = {
        let p = a
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: PortState::access_slots(4, 4),
                    otype: ObjectType::System(SystemType::Port),
                    level: None,
                    sys: SysState::Port(PortState::new(4, 4, PortDiscipline::Fifo)),
                },
            )
            .unwrap();
        a.mint(p, Rights::SEND | Rights::RECEIVE)
    };
    let mut code = CodeStore::new();
    code.install(vec![Instruction::Halt]);
    let dom = a
        .create_object(
            root,
            ObjectSpec {
                data_len: 0,
                access_len: 2,
                otype: ObjectType::System(SystemType::Domain),
                level: None,
                sys: SysState::Domain(DomainState {
                    name: "h".into(),
                    subprograms: vec![Subprogram {
                        name: "main".into(),
                        body: CodeBody::Interpreted(CodeRef(0)),
                        ctx_data_len: 64,
                        ctx_access_len: 8,
                    }],
                }),
            },
        )
        .unwrap();
    let dom_ad = a.mint(dom, Rights::CALL);
    let proc_ref = make_process(&mut a, root, dom_ad, 0, None, ProcessSpec::new(dispatch)).unwrap();
    let ctx = a.load_ad_hw(proc_ref, PROC_SLOT_CONTEXT).unwrap();
    assert!(ctx.is_some(), "a fresh process carries its root context");
}
