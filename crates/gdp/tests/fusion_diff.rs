//! Satellite: the fusion differential battery.
//!
//! Superinstruction fusion, the pre-decoded block cache and the
//! call/port-site inline caches are pure dispatch specializations — the
//! architecturally visible outcome of a program (object-graph digest,
//! cycle counts, fault verdicts, fault *positions*) must be bit-identical
//! whether a GDP runs locked, cached-unfused, or cached-fused. Every
//! test here runs the same program in all three modes over the same
//! fixture and diffs everything observable.
//!
//! The fault battery walks a faulting instruction across *every* pair
//! alignment: at even ips the faulting instruction leads a
//! superinstruction, at odd ips it lands mid-superinstruction as the
//! fused partner — and in both positions the fault must report the
//! original instruction boundary, not the pair head.

use i432_arch::{
    digest_from_roots,
    sysobj::{CTX_SLOT_DOMAIN, CTX_SLOT_FIRST_FREE, PROC_SLOT_CONTEXT},
    AccessDescriptor, CodeBody, CodeRef, DomainState, ObjectSpec, ObjectType, PortDiscipline,
    PortState, Rights, ShardedSpace, SharedSpace, SpaceAccess, SpaceAccessExt, Subprogram,
    SysState, SystemType,
};
use i432_gdp::{
    context::context_state,
    exec::{Env, Gdp, StepEvent},
    port,
    process::{make_process, make_processor, ProcessSpec},
    AluOp, CodeStore, CostModel, DataDst, DataRef, FaultKind, Instruction, NativeRegistry,
    NullInterconnect,
};

/// Context access slot the harness pokes the output object's AD into.
const S_OUT: u16 = CTX_SLOT_FIRST_FREE as u16; // 4
/// Context access slot carrying the rendezvous port's AD (port tests).
const S_PORT: u16 = S_OUT + 1; // 5
/// A slot the harness leaves null (NullAccess battery).
const S_NULL: u16 = 14;
/// Data words in the output object.
const OUT_WORDS: u32 = 16;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Locked,
    Cached,
    Fused,
}

const ALL_MODES: [Mode; 3] = [Mode::Locked, Mode::Cached, Mode::Fused];

/// Everything architecturally observable about one run, plus the step
/// count (dispatch-level, *allowed* to differ — fused steps retire up to
/// two instructions) and the specialization caches' occupancy.
#[derive(Debug)]
struct RunOut {
    exited: bool,
    /// `(kind, recorded code, context ip)` when the process faulted.
    fault: Option<(FaultKind, u16, u32)>,
    clock: u64,
    total_cycles: u64,
    steps: u64,
    digest: u64,
    ic_occupancy: usize,
    block_occupancy: usize,
}

/// Builds the fixture (dispatch + fault ports, rendezvous port, output
/// object, a two-subprogram domain), runs `code_v` as subprogram 0 on
/// one GDP in `mode`, and captures the outcome.
fn run(code_v: Vec<Instruction>, leaf_v: Vec<Instruction>, mode: Mode) -> RunOut {
    let sharded = ShardedSpace::new(256 * 1024, 8 * 1024, 2048, 4);
    sharded.port_ring_registry().set_enabled(true);
    let shared = SharedSpace::new(sharded);

    let mut code = CodeStore::new();
    let main_ref = code.install(code_v);
    let leaf_ref = code.install(leaf_v);
    assert_eq!(main_ref, CodeRef(0));

    let (proc_ref, cpu, fault_port, out_ad) = {
        let mut agent = shared.agent();
        let space: &mut dyn SpaceAccess = &mut agent;
        let root = space.root_sro();
        let mk_port = |space: &mut dyn SpaceAccess, cap: u32| -> AccessDescriptor {
            let p = space
                .create_object(
                    root,
                    ObjectSpec {
                        data_len: 0,
                        access_len: PortState::access_slots(8, 8),
                        otype: ObjectType::System(SystemType::Port),
                        level: None,
                        sys: SysState::Port(PortState::new(cap, 8, PortDiscipline::Fifo)),
                    },
                )
                .unwrap();
            space.mint(p, Rights::SEND | Rights::RECEIVE)
        };
        let dispatch = mk_port(space, 8);
        let fault_port = mk_port(space, 8);
        let rendezvous = mk_port(space, 8);

        let out = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: OUT_WORDS * 8,
                    access_len: 0,
                    otype: ObjectType::GENERIC,
                    level: None,
                    sys: SysState::Generic,
                },
            )
            .unwrap();
        let out_mint = space.mint(out, Rights::READ | Rights::WRITE | Rights::SEND);

        let dom = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: 2,
                    otype: ObjectType::System(SystemType::Domain),
                    level: None,
                    sys: SysState::Domain(DomainState {
                        name: "fusion-diff".into(),
                        subprograms: vec![
                            Subprogram {
                                name: "main".into(),
                                body: CodeBody::Interpreted(main_ref),
                                ctx_data_len: 64,
                                ctx_access_len: 16,
                            },
                            Subprogram {
                                name: "leaf".into(),
                                body: CodeBody::Interpreted(leaf_ref),
                                ctx_data_len: 64,
                                ctx_access_len: 16,
                            },
                        ],
                    }),
                },
            )
            .unwrap();
        let dom_ad = space.mint(dom, Rights::CALL);

        let mut spec = ProcessSpec::new(dispatch);
        spec.fault_port = Some(fault_port);
        let proc_ref = make_process(space, root, dom_ad, 0, None, spec).unwrap();

        let ctx = space
            .load_ad_hw(proc_ref, PROC_SLOT_CONTEXT)
            .unwrap()
            .unwrap()
            .obj;
        space
            .store_ad_hw(ctx, u32::from(S_OUT), Some(out_mint))
            .unwrap();
        space
            .store_ad_hw(ctx, u32::from(S_PORT), Some(rendezvous))
            .unwrap();

        space
            .atomically(|sm| port::make_ready(sm, proc_ref))
            .unwrap();
        let cpu = make_processor(space, root, 0, dispatch).unwrap();
        (proc_ref, cpu, fault_port, out_mint)
    };

    let mut gdp = match mode {
        Mode::Locked => Gdp::new(cpu),
        Mode::Cached => Gdp::new_cached(cpu),
        Mode::Fused => Gdp::new_fused(cpu),
    };
    let natives = NativeRegistry::new();
    let mut bus = NullInterconnect;
    let mut agent = shared.agent();
    let mut env = Env {
        space: &mut agent,
        code: &code,
        natives: &natives,
        bus: &mut bus,
        cost: CostModel::default(),
    };

    let mut steps = 0u64;
    let mut exited = false;
    let mut fault = None;
    for _ in 0..400_000 {
        match gdp.step(&mut env) {
            StepEvent::Executed { .. } => steps += 1,
            StepEvent::ProcessExited(p) => {
                assert_eq!(p, proc_ref);
                exited = true;
                break;
            }
            StepEvent::ProcessFaulted { process, kind } => {
                assert_eq!(process, proc_ref);
                let recorded = env
                    .space
                    .with_process(proc_ref, |ps| ps.fault_code)
                    .unwrap();
                let ctx = env
                    .space
                    .load_ad_hw(proc_ref, PROC_SLOT_CONTEXT)
                    .unwrap()
                    .unwrap()
                    .obj;
                let ip = context_state(env.space, ctx).unwrap().ip;
                assert_eq!(
                    env.space
                        .with_port(fault_port.obj, |p| p.msg_count)
                        .unwrap(),
                    1,
                    "faulted process must reach its fault port"
                );
                fault = Some((kind, recorded, ip));
                break;
            }
            StepEvent::SystemError { fault, .. } => panic!("system error: {fault}"),
            _ => {}
        }
    }
    assert!(
        exited || fault.is_some(),
        "program did not finish within the step budget ({mode:?})"
    );

    let total_cycles = {
        let mut agent2 = shared.agent();
        agent2.with_process(proc_ref, |ps| ps.total_cycles).unwrap()
    };
    let (ic_occupancy, block_occupancy) = (gdp.ic_occupancy(), gdp.block_cache_occupancy());
    drop(agent);
    let inner = shared.into_inner();
    let digest = digest_from_roots(&inner, &[out_ad]);

    RunOut {
        exited,
        fault,
        clock: gdp.clock,
        total_cycles,
        steps,
        digest,
        ic_occupancy,
        block_occupancy,
    }
}

/// Runs all three modes and asserts every architecturally visible
/// observation is bit-identical; returns the per-mode outcomes
/// (locked, cached, fused) for extra mode-specific assertions.
fn diff_modes(tag: &str, main: &[Instruction], leaf: &[Instruction]) -> Vec<RunOut> {
    let outs: Vec<RunOut> = ALL_MODES
        .iter()
        .map(|m| run(main.to_vec(), leaf.to_vec(), *m))
        .collect();
    let base = &outs[0];
    for (mode, o) in ALL_MODES.iter().zip(&outs).skip(1) {
        assert_eq!(
            o.exited, base.exited,
            "{tag}: exit verdict differs ({mode:?})"
        );
        assert_eq!(
            o.fault, base.fault,
            "{tag}: fault verdict differs ({mode:?})"
        );
        assert_eq!(o.clock, base.clock, "{tag}: clock differs ({mode:?})");
        assert_eq!(
            o.total_cycles, base.total_cycles,
            "{tag}: process cycle accounting differs ({mode:?})"
        );
        assert_eq!(
            o.digest, base.digest,
            "{tag}: object-graph digest differs ({mode:?})"
        );
    }
    outs
}

// ---------------------------------------------------------------------------
// Seeded program generation (straight-line + forward jumps over the
// fast-path ISA subset, terminating by construction).
// ---------------------------------------------------------------------------

fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x
}

/// A seeded program over the fast-path instruction set: data movement,
/// ALU work, abstract work, output-field writes and *forward* jumps
/// (conditional and unconditional), so every program terminates at the
/// trailing halt. Rich in linear→fast pairs — the fusion table's food.
fn gen_program(seed: u64) -> Vec<Instruction> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    const N: u64 = 48;
    let mut v = Vec::new();
    for i in 0..N {
        let r = xorshift(&mut s);
        let local = |r: u64| DataRef::Local(((r % 8) * 8) as u32);
        let dst = |r: u64| DataDst::Local(((r % 8) * 8) as u32);
        let fwd = |r: u64| ((i + 1 + r % 4).min(N)) as u32;
        v.push(match r % 12 {
            0 | 1 => Instruction::Mov {
                src: DataRef::Imm(r >> 8),
                dst: dst(r >> 3),
            },
            2 => Instruction::Mov {
                src: local(r >> 3),
                dst: dst(r >> 7),
            },
            3 => Instruction::Alu {
                op: AluOp::Add,
                a: local(r >> 3),
                b: DataRef::Imm(r >> 40),
                dst: dst(r >> 11),
            },
            4 => Instruction::Alu {
                op: AluOp::Mul,
                a: local(r >> 3),
                b: local(r >> 7),
                dst: dst(r >> 11),
            },
            5 => Instruction::Alu {
                op: AluOp::Xor,
                a: local(r >> 3),
                b: DataRef::Imm(0x5555_5555),
                dst: dst(r >> 11),
            },
            6 | 7 => Instruction::Work {
                cycles: 1 + (r >> 16) as u32 % 13,
            },
            8 | 9 => Instruction::Mov {
                src: local(r >> 3),
                dst: DataDst::Field(S_OUT, (((r >> 7) as u32) % OUT_WORDS) * 8),
            },
            10 => Instruction::Jump(fwd(r >> 5)),
            _ => Instruction::JumpIf {
                cond: local(r >> 3),
                when: r & 2 != 0,
                target: fwd(r >> 5),
            },
        });
    }
    v.push(Instruction::Halt);
    v
}

// ---------------------------------------------------------------------------
// The batteries
// ---------------------------------------------------------------------------

/// Seeded generated programs: digests, cycle counts and verdicts must
/// be bit-identical across locked / cached / fused — and the fused run
/// must actually fuse (strictly fewer dispatch steps).
#[test]
fn generated_programs_bit_identical_across_modes() {
    for seed in 0..8u64 {
        let main = gen_program(seed);
        let outs = diff_modes(&format!("seed {seed}"), &main, &[Instruction::Halt]);
        assert!(
            outs.iter().all(|o| o.exited),
            "seed {seed}: must run to halt"
        );
        assert!(
            outs[2].steps < outs[1].steps,
            "seed {seed}: fused dispatch must retire pairs (fused {} vs cached {} steps)",
            outs[2].steps,
            outs[1].steps
        );
        assert!(
            outs[2].block_occupancy >= 1,
            "seed {seed}: block cache used"
        );
        assert_eq!(
            outs[1].block_occupancy, 0,
            "unfused GDP never decodes blocks"
        );
    }
}

/// The canonical c3 hot-loop shape — mov/work/alu/jump_if — where
/// nearly every dynamic pair fuses.
#[test]
fn hot_loop_bit_identical_and_fuses() {
    let main = vec![
        Instruction::Mov {
            src: DataRef::Imm(64),
            dst: DataDst::Local(0),
        },
        // loop:
        Instruction::Work { cycles: 7 },
        Instruction::Alu {
            op: AluOp::Sub,
            a: DataRef::Local(0),
            b: DataRef::Imm(1),
            dst: DataDst::Local(0),
        },
        Instruction::Mov {
            src: DataRef::Local(0),
            dst: DataDst::Field(S_OUT, 0),
        },
        Instruction::JumpIf {
            cond: DataRef::Local(0),
            when: true,
            target: 1,
        },
        Instruction::Halt,
    ];
    let outs = diff_modes("hot-loop", &main, &[Instruction::Halt]);
    assert!(
        outs[2].steps * 2 <= outs[1].steps + 2,
        "pairs dominate the hot loop"
    );
}

/// Walks a div-by-zero across every pair alignment: the faulting
/// instruction must report its own ip — the original instruction
/// boundary — whether it leads a superinstruction (even ip) or lands
/// mid-superinstruction as the fused partner (odd ip).
#[test]
fn fault_reports_original_boundary_at_every_pair_alignment() {
    for k in 0..7u32 {
        let mut main = Vec::new();
        for i in 0..k {
            main.push(Instruction::Mov {
                src: DataRef::Imm(u64::from(i)),
                dst: DataDst::Local(0),
            });
        }
        main.push(Instruction::Alu {
            op: AluOp::Div,
            a: DataRef::Imm(7),
            b: DataRef::Imm(0),
            dst: DataDst::Local(8),
        });
        // A fusible tail, so the faulting div also *leads* a pair.
        main.push(Instruction::Mov {
            src: DataRef::Imm(1),
            dst: DataDst::Local(16),
        });
        main.push(Instruction::Halt);

        let outs = diff_modes(&format!("div@{k}"), &main, &[Instruction::Halt]);
        let (kind, code, ip) = outs[2].fault.expect("fused run faulted");
        assert_eq!(kind, FaultKind::DivideByZero, "div@{k}");
        assert_eq!(code, FaultKind::DivideByZero.code(), "div@{k}");
        assert_eq!(ip, k, "div@{k}: fault must name the faulting instruction");
    }
}

/// Same battery with a NullAccess fault (an empty access slot) — a
/// different fault path through the same pair alignments.
#[test]
fn null_access_fault_reports_original_boundary() {
    for k in 0..5u32 {
        let mut main = Vec::new();
        for i in 0..k {
            main.push(Instruction::Mov {
                src: DataRef::Imm(u64::from(i)),
                dst: DataDst::Local(0),
            });
        }
        main.push(Instruction::Mov {
            src: DataRef::Imm(9),
            dst: DataDst::Field(S_NULL, 0),
        });
        main.push(Instruction::Work { cycles: 3 });
        main.push(Instruction::Halt);

        let outs = diff_modes(&format!("null@{k}"), &main, &[Instruction::Halt]);
        let (kind, _, ip) = outs[2].fault.expect("fused run faulted");
        assert_eq!(kind, FaultKind::NullAccess, "null@{k}");
        assert_eq!(ip, k, "null@{k}: fault must name the faulting instruction");
    }
}

/// A call loop through the two-subprogram domain: exercises the
/// call-site inline cache (fused mode) without changing anything the
/// oracle can see.
#[test]
fn call_loop_bit_identical_and_fills_call_ic() {
    let main = vec![
        Instruction::Mov {
            src: DataRef::Imm(6),
            dst: DataDst::Local(0),
        },
        // loop: call leaf, decrement, repeat.
        Instruction::Call {
            domain: CTX_SLOT_DOMAIN as u16,
            subprogram: 1,
            arg: None,
            ret_ad: None,
            ret_val: None,
        },
        Instruction::Alu {
            op: AluOp::Sub,
            a: DataRef::Local(0),
            b: DataRef::Imm(1),
            dst: DataDst::Local(0),
        },
        Instruction::JumpIf {
            cond: DataRef::Local(0),
            when: true,
            target: 1,
        },
        Instruction::Mov {
            src: DataRef::Imm(0xCA11),
            dst: DataDst::Field(S_OUT, 0),
        },
        Instruction::Halt,
    ];
    let leaf = vec![
        Instruction::Work { cycles: 5 },
        Instruction::Return {
            ad: None,
            value: None,
        },
    ];
    let outs = diff_modes("call-loop", &main, &leaf);
    assert!(outs.iter().all(|o| o.exited));
    assert!(
        outs[2].ic_occupancy >= 1,
        "fused run must hold a call-site IC line after a monomorphic loop"
    );
    assert_eq!(outs[1].ic_occupancy, 0, "unfused GDP never fills ICs");
}

/// A send/receive self-rendezvous loop over a FIFO port with the ring
/// registry on: exercises the port-site inline cache on both the send
/// and the receive site.
#[test]
fn port_loop_bit_identical_and_fills_port_ic() {
    let main = vec![
        Instruction::Mov {
            src: DataRef::Imm(5),
            dst: DataDst::Local(0),
        },
        // loop: send the out object to the port, receive it back.
        Instruction::Send {
            port: S_PORT,
            msg: S_OUT,
            key: DataRef::Imm(0),
        },
        Instruction::Receive {
            port: S_PORT,
            dst: S_OUT,
        },
        Instruction::Alu {
            op: AluOp::Sub,
            a: DataRef::Local(0),
            b: DataRef::Imm(1),
            dst: DataDst::Local(0),
        },
        Instruction::Mov {
            src: DataRef::Local(0),
            dst: DataDst::Field(S_OUT, 8),
        },
        Instruction::JumpIf {
            cond: DataRef::Local(0),
            when: true,
            target: 1,
        },
        Instruction::Halt,
    ];
    let outs = diff_modes("port-loop", &main, &[Instruction::Halt]);
    assert!(outs.iter().all(|o| o.exited));
    assert!(
        outs[2].ic_occupancy >= 1,
        "fused run must hold port-site IC lines after a monomorphic loop"
    );
}

/// The fused executor's pair admission must stay a subset of the fast
/// path: a RaiseFault (never fast) both as potential head and partner
/// must run on the locked path with identical verdicts everywhere.
#[test]
fn slow_instructions_never_fuse() {
    let main = vec![
        Instruction::Mov {
            src: DataRef::Imm(1),
            dst: DataDst::Local(0),
        },
        Instruction::RaiseFault { code: 7 },
        Instruction::Halt,
    ];
    let outs = diff_modes("raise", &main, &[Instruction::Halt]);
    let (kind, code, ip) = outs[2].fault.expect("fused run faulted");
    assert_eq!(kind, FaultKind::Explicit(7));
    assert_eq!(code, FaultKind::Explicit(7).code());
    assert_eq!(ip, 1);
}
