//! Satellite: table-driven fault-path conformance.
//!
//! Every ISA-level protection violation must map to the *documented*
//! fault classification — and must map to the **same** one whether the
//! program runs over the deterministic single-space (`ObjectSpace`) or
//! over the lock-striped `SharedSpace` agents used by the threaded
//! runner. Each table row is one minimal program engineered to trip
//! exactly one fault.

use i432_arch::{
    sysobj::{CTX_SLOT_DOMAIN, CTX_SLOT_FIRST_FREE, CTX_SLOT_SRO, PROC_SLOT_CONTEXT},
    AccessDescriptor, CodeBody, CodeRef, DomainState, Level, ObjectRef, ObjectSpace, ObjectSpec,
    ObjectType, PortDiscipline, PortState, Rights, ShardedSpace, SharedSpace, SpaceAccess,
    SpaceAccessExt, Subprogram, SysState, SystemType,
};
use i432_gdp::{
    exec::{Env, Gdp, StepEvent},
    port,
    process::{make_process, make_processor, ProcessSpec},
    AluOp, CodeStore, CostModel, DataDst, DataRef, FaultKind, Instruction, NativeRegistry,
    NullInterconnect, ProgramBuilder,
};

/// Program-visible context slots the cases use.
const S_A: u16 = CTX_SLOT_FIRST_FREE as u16; // 4
const S_B: u16 = S_A + 1; // 5
/// A slot the harness leaves null.
const S_NULL: u16 = 14;
/// Where the Level case's deep-level AD is poked by the harness.
const S_DEEP: u16 = S_A + 2; // 6

/// One fault-path conformance case.
struct Case {
    name: &'static str,
    expected: FaultKind,
    /// Emits the program that must fault with `expected`.
    program: fn(&mut ProgramBuilder),
    /// Whether the harness must poke a deep-level AD into `S_DEEP` of
    /// the root context before the program runs.
    needs_deep_ad: bool,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "bounds:data-write-past-object-end",
            expected: FaultKind::Bounds,
            program: |p| {
                p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(8), DataRef::Imm(0), S_A)
                    .mov(DataRef::Imm(1), DataDst::Field(S_A, 100))
                    .halt();
            },
            needs_deep_ad: false,
        },
        Case {
            name: "bounds:context-local-out-of-range",
            expected: FaultKind::Bounds,
            program: |p| {
                p.mov(DataRef::Imm(1), DataDst::Local(1 << 16)).halt();
            },
            needs_deep_ad: false,
        },
        Case {
            name: "rights:write-through-read-only-ad",
            expected: FaultKind::Rights,
            program: |p| {
                p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(32), DataRef::Imm(0), S_A)
                    .restrict(S_A, Rights::READ)
                    .mov(DataRef::Imm(1), DataDst::Field(S_A, 0))
                    .halt();
            },
            needs_deep_ad: false,
        },
        Case {
            name: "rights:store-ad-without-write",
            expected: FaultKind::Rights,
            program: |p| {
                p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(0), DataRef::Imm(4), S_A)
                    .create_object(CTX_SLOT_SRO as u16, DataRef::Imm(0), DataRef::Imm(4), S_B)
                    .restrict(S_A, Rights::READ)
                    .store_ad(S_B, S_A, DataRef::Imm(0))
                    .halt();
            },
            needs_deep_ad: false,
        },
        Case {
            name: "level:store-deep-ad-into-global-container",
            expected: FaultKind::Level,
            program: |p| {
                p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(0), DataRef::Imm(4), S_A)
                    .store_ad(S_DEEP, S_A, DataRef::Imm(0))
                    .halt();
            },
            needs_deep_ad: true,
        },
        Case {
            name: "null-access:use-of-empty-slot",
            expected: FaultKind::NullAccess,
            program: |p| {
                p.mov(DataRef::Imm(1), DataDst::Field(S_NULL, 0)).halt();
            },
            needs_deep_ad: false,
        },
        Case {
            name: "type-mismatch:send-on-non-port",
            expected: FaultKind::TypeMismatch,
            program: |p| {
                p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(8), DataRef::Imm(0), S_A)
                    .send(S_A, S_A)
                    .halt();
            },
            needs_deep_ad: false,
        },
        Case {
            name: "divide-by-zero",
            expected: FaultKind::DivideByZero,
            program: |p| {
                p.alu(
                    AluOp::Div,
                    DataRef::Imm(7),
                    DataRef::Imm(0),
                    DataDst::Local(0),
                )
                .halt();
            },
            needs_deep_ad: false,
        },
        Case {
            name: "bad-ip:jump-past-segment-end",
            expected: FaultKind::BadIp,
            program: |p| {
                p.push(Instruction::Jump(1000)).halt();
            },
            needs_deep_ad: false,
        },
        Case {
            name: "bad-subprogram:call-index-out-of-table",
            expected: FaultKind::BadSubprogram,
            program: |p| {
                p.call(CTX_SLOT_DOMAIN as u16, 99, None, None, None).halt();
            },
            needs_deep_ad: false,
        },
        Case {
            name: "explicit:software-raised",
            expected: FaultKind::Explicit(7),
            program: |p| {
                p.raise_fault(7).halt();
            },
            needs_deep_ad: false,
        },
    ]
}

/// What a run produced: the step event's fault kind plus the code the
/// process object recorded.
struct Outcome {
    kind: FaultKind,
    recorded_code: u16,
    delivered_to_fault_port: bool,
}

/// Builds the fixture (dispatch + fault ports, domain, process,
/// processor) in `space`, pokes the deep AD if the case needs it, then
/// steps a GDP until the process faults.
fn run_case<S: SpaceAccess + ?Sized>(space: &mut S, code: &CodeStore, case: &Case) -> Outcome {
    let root = space.root_sro();
    let mk_port = |space: &mut S, cap: u32| -> AccessDescriptor {
        let p = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: PortState::access_slots(8, 8),
                    otype: ObjectType::System(SystemType::Port),
                    level: None,
                    sys: SysState::Port(PortState::new(cap, 8, PortDiscipline::Fifo)),
                },
            )
            .unwrap();
        space.mint(p, Rights::SEND | Rights::RECEIVE)
    };
    let dispatch = mk_port(space, 8);
    let fault_port = mk_port(space, 8);

    let mut pb = ProgramBuilder::new();
    (case.program)(&mut pb);
    // The code store is pre-installed with each case's body at the
    // index matching its table position; `case.code_ref` is implicit in
    // the caller, so here we locate it by convention: the caller
    // installs exactly one body per CodeStore.
    let code_ref = CodeRef(0);

    let dom = space
        .create_object(
            root,
            ObjectSpec {
                data_len: 0,
                access_len: 2,
                otype: ObjectType::System(SystemType::Domain),
                level: None,
                sys: SysState::Domain(DomainState {
                    name: "conform".into(),
                    subprograms: vec![Subprogram {
                        name: "case".into(),
                        body: CodeBody::Interpreted(code_ref),
                        ctx_data_len: 64,
                        ctx_access_len: 16,
                    }],
                }),
            },
        )
        .unwrap();
    let dom_ad = space.mint(dom, Rights::CALL);

    let mut spec = ProcessSpec::new(dispatch);
    spec.fault_port = Some(fault_port);
    let proc_ref = make_process(space, root, dom_ad, 0, None, spec).unwrap();

    if case.needs_deep_ad {
        // A deep-lifetime object the program will try to smuggle into a
        // GLOBAL container. `create_object` honours explicit levels, so
        // the harness can forge one the ISA itself could not make here.
        let deep = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 8,
                    access_len: 0,
                    otype: ObjectType::GENERIC,
                    level: Some(Level(5)),
                    sys: SysState::Generic,
                },
            )
            .unwrap();
        let deep_ad = space.mint(deep, Rights::READ | Rights::WRITE);
        let ctx = space
            .load_ad_hw(proc_ref, PROC_SLOT_CONTEXT)
            .unwrap()
            .unwrap()
            .obj;
        space
            .store_ad_hw(ctx, u32::from(S_DEEP), Some(deep_ad))
            .unwrap();
    }

    space
        .atomically(|sm| port::make_ready(sm, proc_ref))
        .unwrap();
    let cpu = make_processor(space, root, 0, dispatch).unwrap();

    let mut gdp = Gdp::new(cpu);
    let natives = NativeRegistry::new();
    let mut bus = NullInterconnect;
    let mut env = Env {
        space,
        code,
        natives: &natives,
        bus: &mut bus,
        cost: CostModel::default(),
    };
    for _ in 0..10_000 {
        match gdp.step(&mut env) {
            StepEvent::ProcessFaulted { process, kind } => {
                assert_eq!(process, proc_ref);
                let recorded_code = env
                    .space
                    .with_process(proc_ref, |ps| ps.fault_code)
                    .unwrap();
                let delivered = count_port_msgs(env.space, fault_port.obj) == 1;
                return Outcome {
                    kind,
                    recorded_code,
                    delivered_to_fault_port: delivered,
                };
            }
            StepEvent::ProcessExited(_) => {
                panic!("case {:?} ran to completion without faulting", case.name)
            }
            StepEvent::SystemError { fault, .. } => {
                panic!("case {:?} escalated to a system error: {fault}", case.name)
            }
            _ => {}
        }
    }
    panic!("case {:?} did not fault within the step budget", case.name);
}

fn count_port_msgs<S: SpaceAccess + ?Sized>(space: &mut S, port: ObjectRef) -> u32 {
    space.with_port(port, |p| p.msg_count).unwrap()
}

fn check(case: &Case, runner: &str, got: Outcome) {
    assert_eq!(
        got.kind, case.expected,
        "{runner}/{}: wrong fault kind",
        case.name
    );
    assert_eq!(
        got.recorded_code,
        case.expected.code(),
        "{runner}/{}: process object recorded the wrong fault code",
        case.name
    );
    assert!(
        got.delivered_to_fault_port,
        "{runner}/{}: faulted process was not delivered to its fault port",
        case.name
    );
}

/// Every case on the deterministic single-space runner.
#[test]
fn fault_table_deterministic_runner() {
    for case in cases() {
        let mut pb = ProgramBuilder::new();
        (case.program)(&mut pb);
        let mut code = CodeStore::new();
        code.install(pb.finish());

        let mut space = ObjectSpace::new(256 * 1024, 8 * 1024, 2048);
        let got = run_case(&mut space, &code, &case);
        check(&case, "deterministic", got);
    }
}

/// Every case through a `SharedSpace` agent — the exact access path the
/// threaded runner's workers use, lock striping and all.
#[test]
fn fault_table_threaded_access_path() {
    for case in cases() {
        let mut pb = ProgramBuilder::new();
        (case.program)(&mut pb);
        let mut code = CodeStore::new();
        code.install(pb.finish());

        let sharded = ShardedSpace::new(256 * 1024, 8 * 1024, 2048, 4);
        let shared = SharedSpace::new(sharded);
        let got = {
            let mut agent = shared.agent();
            run_case(&mut agent, &code, &case)
        };
        check(&case, "threaded", got);
    }
}

/// The two runners must also agree on the *recorded* codes as a set —
/// one table, one taxonomy, two execution paths.
#[test]
fn runners_agree_case_by_case() {
    for case in cases() {
        let mut pb = ProgramBuilder::new();
        (case.program)(&mut pb);
        let mut code = CodeStore::new();
        code.install(pb.finish());

        let mut det = ObjectSpace::new(256 * 1024, 8 * 1024, 2048);
        let a = run_case(&mut det, &code, &case);

        let shared = SharedSpace::new(ShardedSpace::new(256 * 1024, 8 * 1024, 2048, 4));
        let b = {
            let mut agent = shared.agent();
            run_case(&mut agent, &code, &case)
        };
        assert_eq!(a.kind, b.kind, "{}: runners disagree on kind", case.name);
        assert_eq!(
            a.recorded_code, b.recorded_code,
            "{}: runners disagree on recorded code",
            case.name
        );
    }
}
