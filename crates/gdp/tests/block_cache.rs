//! Satellite: block-cache invalidation.
//!
//! The pre-decoded basic-block cache snapshots a code segment once and
//! revalidates by [`CodeStore`] version on every resolve. These tests
//! pin the invalidation contract end to end: a patch (self-modifying
//! program) is observed at the next instruction boundary, rebinding
//! across segments keeps every segment coherent, and a patcher thread
//! hammering the store *while* a fused GDP drains the program neither
//! wedges the runner nor perturbs a single cycle.

use i432_arch::{
    sysobj::{CTX_SLOT_FIRST_FREE, PROC_SLOT_CONTEXT},
    AccessDescriptor, CodeBody, CodeRef, DomainState, ObjectSpec, ObjectType, PortDiscipline,
    PortState, Rights, ShardedSpace, SharedSpace, SpaceAccess, SpaceAccessExt, Subprogram,
    SysState, SystemType,
};
use i432_gdp::{
    exec::{Env, Gdp, StepEvent},
    port,
    process::{make_process, make_processor, ProcessSpec},
    AluOp, CodeStore, CostModel, DataDst, DataRef, Instruction, NativeRegistry, NullInterconnect,
};
use std::sync::atomic::{AtomicBool, Ordering};

const S_OUT: u16 = CTX_SLOT_FIRST_FREE as u16;

/// One process per installed code body, all sharing a dispatch port and
/// one output object; returns (processes, cpu, out_ad).
fn build<S: SpaceAccess + ?Sized>(
    space: &mut S,
    bodies: &[CodeRef],
) -> (
    Vec<i432_arch::ObjectRef>,
    i432_arch::ObjectRef,
    AccessDescriptor,
) {
    let root = space.root_sro();
    let dispatch = {
        let p = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: PortState::access_slots(8, 8),
                    otype: ObjectType::System(SystemType::Port),
                    level: None,
                    sys: SysState::Port(PortState::new(8, 8, PortDiscipline::Fifo)),
                },
            )
            .unwrap();
        space.mint(p, Rights::SEND | Rights::RECEIVE)
    };
    let out = space
        .create_object(root, ObjectSpec::generic(128, 0))
        .unwrap();
    let out_ad = space.mint(out, Rights::READ | Rights::WRITE);

    let dom = space
        .create_object(
            root,
            ObjectSpec {
                data_len: 0,
                access_len: 2,
                otype: ObjectType::System(SystemType::Domain),
                level: None,
                sys: SysState::Domain(DomainState {
                    name: "block-cache".into(),
                    subprograms: bodies
                        .iter()
                        .map(|r| Subprogram {
                            name: format!("sub{}", r.0),
                            body: CodeBody::Interpreted(*r),
                            ctx_data_len: 64,
                            ctx_access_len: 16,
                        })
                        .collect(),
                }),
            },
        )
        .unwrap();
    let dom_ad = space.mint(dom, Rights::CALL);

    let mut procs = Vec::new();
    for i in 0..bodies.len() {
        let p = make_process(
            space,
            root,
            dom_ad,
            i as u32,
            None,
            ProcessSpec::new(dispatch),
        )
        .unwrap();
        let ctx = space.load_ad_hw(p, PROC_SLOT_CONTEXT).unwrap().unwrap().obj;
        space
            .store_ad_hw(ctx, u32::from(S_OUT), Some(out_ad))
            .unwrap();
        space.atomically(|sm| port::make_ready(sm, p)).unwrap();
        procs.push(p);
    }
    let cpu = make_processor(space, root, 0, dispatch).unwrap();
    (procs, cpu, out_ad)
}

/// Steps `gdp` until `want` processes have exited; panics on faults and
/// returns the number of `Executed` steps.
fn drain<S: SpaceAccess + ?Sized>(
    gdp: &mut Gdp,
    env: &mut Env<'_, S>,
    want: usize,
    mut on_step: impl FnMut(u64, &mut Gdp),
) -> u64 {
    let mut exited = 0;
    let mut steps = 0u64;
    for _ in 0..2_000_000 {
        match gdp.step(env) {
            StepEvent::Executed { .. } => {
                steps += 1;
                on_step(steps, gdp);
            }
            StepEvent::ProcessExited(_) => {
                exited += 1;
                if exited == want {
                    return steps;
                }
            }
            StepEvent::ProcessFaulted { kind, .. } => panic!("unexpected fault: {kind:?}"),
            StepEvent::SystemError { fault, .. } => panic!("system error: {fault}"),
            _ => {}
        }
    }
    panic!("run did not finish within the step budget");
}

/// A patch through the shared store is observed by the fused runner at
/// the next instruction boundary — the cached pre-decode revalidates by
/// version, exactly like fetching from the store.
#[test]
fn patch_is_observed_at_the_next_step() {
    for (do_patch, expect) in [(false, 1u64), (true, 2u64)] {
        let shared = SharedSpace::new(ShardedSpace::new(256 * 1024, 8 * 1024, 2048, 4));
        let mut code = CodeStore::new();
        let main = code.install(vec![
            Instruction::Work { cycles: 5 },
            Instruction::Jump(2),
            Instruction::Mov {
                src: DataRef::Imm(1),
                dst: DataDst::Field(S_OUT, 0),
            },
            Instruction::Halt,
        ]);
        let (_, cpu, out_ad) = {
            let mut agent = shared.agent();
            build(&mut agent, &[main])
        };

        let mut gdp = Gdp::new_fused(cpu);
        let natives = NativeRegistry::new();
        let mut bus = NullInterconnect;
        let mut agent = shared.agent();
        let mut env = Env {
            space: &mut agent,
            code: &code,
            natives: &natives,
            bus: &mut bus,
            cost: CostModel::default(),
        };
        // The first executed step retires the fused work→jump pair and
        // caches the segment. Patching ip 2 right after must be seen by
        // the *next* resolve, even though the block is already decoded.
        drain(&mut gdp, &mut env, 1, |steps, _| {
            if do_patch && steps == 1 {
                assert!(code.patch(
                    main,
                    2,
                    Instruction::Mov {
                        src: DataRef::Imm(2),
                        dst: DataDst::Field(S_OUT, 0),
                    }
                ));
            }
        });
        let got = env.space.read_u64(out_ad, 0).unwrap();
        assert_eq!(
            got, expect,
            "patched instruction must be visible at the next step (patch={do_patch})"
        );
    }
}

/// Rebinding across processes running *different* segments: the block
/// cache holds one pre-decode per segment and keeps both coherent; the
/// workload-visible result and cycle count match the unfused runner's.
#[test]
fn rebinding_across_segments_stays_coherent() {
    let mk_code = || {
        let mut code = CodeStore::new();
        let a = code.install(vec![
            Instruction::Mov {
                src: DataRef::Imm(0xAAAA),
                dst: DataDst::Local(0),
            },
            Instruction::Mov {
                src: DataRef::Local(0),
                dst: DataDst::Field(S_OUT, 0),
            },
            Instruction::Halt,
        ]);
        let b = code.install(vec![
            Instruction::Alu {
                op: AluOp::Add,
                a: DataRef::Imm(0xB),
                b: DataRef::Imm(0xB000),
                dst: DataDst::Local(0),
            },
            Instruction::Mov {
                src: DataRef::Local(0),
                dst: DataDst::Field(S_OUT, 8),
            },
            Instruction::Halt,
        ]);
        (code, a, b)
    };

    let mut clocks = Vec::new();
    for fused in [true, false] {
        let shared = SharedSpace::new(ShardedSpace::new(256 * 1024, 8 * 1024, 2048, 4));
        let (code, a, b) = mk_code();
        let (_, cpu, out_ad) = {
            let mut agent = shared.agent();
            build(&mut agent, &[a, b])
        };
        let mut gdp = if fused {
            Gdp::new_fused(cpu)
        } else {
            Gdp::new_cached(cpu)
        };
        let natives = NativeRegistry::new();
        let mut bus = NullInterconnect;
        let mut agent = shared.agent();
        let mut env = Env {
            space: &mut agent,
            code: &code,
            natives: &natives,
            bus: &mut bus,
            cost: CostModel::default(),
        };
        drain(&mut gdp, &mut env, 2, |_, _| {});
        assert_eq!(env.space.read_u64(out_ad, 0).unwrap(), 0xAAAA);
        assert_eq!(env.space.read_u64(out_ad, 8).unwrap(), 0xB00B);
        if fused {
            assert_eq!(
                gdp.block_cache_occupancy(),
                2,
                "one pre-decode per executed segment"
            );
        }
        clocks.push(gdp.clock);
    }
    assert_eq!(clocks[0], clocks[1], "fused and unfused clocks must agree");
}

/// Drain-while-invalidate stress: a patcher thread hammers the shared
/// store with version bumps (re-installing the *same* instruction) while
/// a fused GDP runs a long hot loop on another thread. Every resolve
/// races a patch; the program must still complete with the exact output
/// and the exact clock of an unpatched run.
#[test]
fn threaded_drain_while_invalidate_stress() {
    const ITERS: u64 = 20_000;
    let run = |patch: bool| -> (u64, u64) {
        let shared = SharedSpace::new(ShardedSpace::new(256 * 1024, 8 * 1024, 2048, 4));
        let mut code = CodeStore::new();
        let main = code.install(vec![
            Instruction::Mov {
                src: DataRef::Imm(ITERS),
                dst: DataDst::Local(0),
            },
            // loop:
            Instruction::Work { cycles: 3 },
            Instruction::Alu {
                op: AluOp::Sub,
                a: DataRef::Local(0),
                b: DataRef::Imm(1),
                dst: DataDst::Local(0),
            },
            Instruction::JumpIf {
                cond: DataRef::Local(0),
                when: true,
                target: 1,
            },
            Instruction::Mov {
                src: DataRef::Imm(0xD00D),
                dst: DataDst::Field(S_OUT, 0),
            },
            Instruction::Halt,
        ]);
        let (_, cpu, out_ad) = {
            let mut agent = shared.agent();
            build(&mut agent, &[main])
        };

        let done = AtomicBool::new(false);
        let code_ref = &code;
        let shared_ref = &shared;
        let (out, clock) = std::thread::scope(|s| {
            if patch {
                s.spawn(|| {
                    // Same instruction, new version: every patch forces
                    // the runner's next resolve to re-snapshot mid-drain.
                    while !done.load(Ordering::Acquire) {
                        assert!(code_ref.patch(main, 1, Instruction::Work { cycles: 3 }));
                        std::thread::yield_now();
                    }
                });
            }
            let worker = s.spawn(|| {
                let mut gdp = Gdp::new_fused(cpu);
                let natives = NativeRegistry::new();
                let mut bus = NullInterconnect;
                let mut agent = shared_ref.agent();
                let mut env = Env {
                    space: &mut agent,
                    code: code_ref,
                    natives: &natives,
                    bus: &mut bus,
                    cost: CostModel::default(),
                };
                drain(&mut gdp, &mut env, 1, |_, _| {});
                let out = env.space.read_u64(out_ad, 0).unwrap();
                (out, gdp.clock)
            });
            let r = worker.join().unwrap();
            done.store(true, Ordering::Release);
            r
        });
        (out, clock)
    };

    let (out_stressed, clock_stressed) = run(true);
    let (out_quiet, clock_quiet) = run(false);
    assert_eq!(out_stressed, 0xD00D, "stressed run completes correctly");
    assert_eq!(out_quiet, 0xD00D);
    assert_eq!(
        clock_stressed, clock_quiet,
        "re-decode storms must not cost a single modeled cycle"
    );
}
