//! The calibrated cycle cost model.
//!
//! The paper publishes two absolute timings for an 8 MHz 432 with no-wait-
//! state memory:
//!
//! * §2 — "a domain switch on the 432 takes about **65 microseconds**"
//!   (≈ 520 cycles);
//! * §5 — "it takes **80 microseconds** at 8 megahertz to allocate a
//!   segment from an SRO via the creation instruction" (≈ 640 cycles).
//!
//! The model below assigns cycle charges to the micro-operations every
//! instruction decomposes into (decode, object-table lookup, AD movement,
//! memory words, ...), plus fixed sequencer charges for the high-level
//! instructions. The two published timings anchor the calibration:
//! summing the components of a cross-domain CALL and of CREATE OBJECT
//! reproduces ≈ 520 and ≈ 640 cycles respectively (verified by unit tests
//! here and reported against the paper in `EXPERIMENTS.md`).
//!
//! Context allocation inside CALL uses a *fast path* charge rather than
//! the general creation charge — this is forced by the published numbers
//! themselves (a CALL containing a general 640-cycle allocation could not
//! finish in 520 cycles) and matches the 432's specialized context
//! allocation.

use serde::{Deserialize, Serialize};

/// Simulated processor clock, Hz (the paper's 8 MHz part).
pub const CLOCK_HZ: u64 = 8_000_000;

/// Converts cycles to microseconds at [`CLOCK_HZ`].
#[inline]
pub fn cycles_to_us(cycles: u64) -> f64 {
    cycles as f64 * 1e6 / CLOCK_HZ as f64
}

/// Per-micro-operation cycle charges.
///
/// All instruction costs are derived from these; tests pin the two paper
/// anchors. Everything is public so ablation benches can vary the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Instruction fetch + decode.
    pub decode: u64,
    /// One object-table lookup / access-descriptor qualification.
    pub ot_lookup: u64,
    /// Moving one access descriptor (includes the write-barrier check).
    pub ad_move: u64,
    /// Touching one 4-byte memory word of a data part.
    pub mem_word: u64,
    /// One ALU operation.
    pub alu: u64,
    /// Taken or not-taken branch resolution.
    pub branch: u64,
    /// Fast-path context allocation performed by CALL.
    pub ctx_alloc: u64,
    /// CALL sequencing beyond context allocation and the AD moves
    /// (addressing-environment switch).
    pub call_switch: u64,
    /// RETURN sequencing (context teardown + environment restore).
    pub ret_fixed: u64,
    /// CREATE OBJECT sequencing beyond lookups and zeroing (free-list
    /// walk, descriptor build, SRO update).
    pub create_fixed: u64,
    /// Zero-fill charge per 4-byte word of a fresh segment.
    pub zero_per_word: u64,
    /// SEND sequencing (queue manipulation).
    pub send_fixed: u64,
    /// RECEIVE sequencing.
    pub recv_fixed: u64,
    /// Binding a ready process to a processor (dispatch).
    pub dispatch_fixed: u64,
    /// One idle poll of an empty dispatching port.
    pub idle_poll: u64,
    /// Delivering a faulted/preempted process to a port (implicit send).
    pub fault_delivery: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            decode: 4,
            ot_lookup: 10,
            ad_move: 8,
            mem_word: 4,
            alu: 5,
            branch: 4,
            ctx_alloc: 320,
            call_switch: 132,
            ret_fixed: 196,
            create_fixed: 580,
            zero_per_word: 2,
            send_fixed: 104,
            recv_fixed: 104,
            dispatch_fixed: 150,
            idle_poll: 16,
            fault_delivery: 120,
        }
    }
}

impl CostModel {
    /// Total charge of a cross-domain CALL (the paper's "domain switch"):
    /// decode, qualify the domain AD, fetch the subprogram entry, allocate
    /// the context (fast path), store the four linkage ADs
    /// (domain/caller/SRO/argument), and switch environments.
    pub fn call_total(&self) -> u64 {
        self.decode + 2 * self.ot_lookup + self.ctx_alloc + 4 * self.ad_move + self.call_switch
    }

    /// Total charge of CREATE OBJECT for a segment with `data_bytes` +
    /// `access_slots`: decode, qualify the SRO AD, sequencing, zero fill.
    pub fn create_total(&self, data_bytes: u32, access_slots: u32) -> u64 {
        let words = (data_bytes as u64).div_ceil(4) + access_slots as u64;
        self.decode + self.ot_lookup + self.create_fixed + words * self.zero_per_word
    }

    /// Total charge of a RETURN.
    pub fn return_total(&self) -> u64 {
        self.decode + self.ot_lookup + self.ret_fixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper §2: a domain switch is about 65 µs at 8 MHz (520 cycles).
    #[test]
    fn call_calibration_matches_paper() {
        let m = CostModel::default();
        let total = m.call_total();
        let us = cycles_to_us(total);
        assert!(
            (60.0..=70.0).contains(&us),
            "domain switch calibrated to ~65us, got {us:.1}us ({total} cycles)"
        );
    }

    /// Paper §5: allocating a segment from an SRO takes 80 µs at 8 MHz
    /// (640 cycles). Calibrated for a small (typical activation-record
    /// sized) segment.
    #[test]
    fn create_calibration_matches_paper() {
        let m = CostModel::default();
        let total = m.create_total(64, 4);
        let us = cycles_to_us(total);
        assert!(
            (74.0..=86.0).contains(&us),
            "allocation calibrated to ~80us, got {us:.1}us ({total} cycles)"
        );
    }

    #[test]
    fn larger_segments_cost_more_to_create() {
        let m = CostModel::default();
        assert!(m.create_total(4096, 64) > m.create_total(64, 4));
    }

    #[test]
    fn return_is_cheaper_than_call() {
        let m = CostModel::default();
        assert!(m.return_total() < m.call_total());
    }

    #[test]
    fn cycles_to_us_at_8mhz() {
        assert!((cycles_to_us(8) - 1.0).abs() < 1e-9);
        assert!((cycles_to_us(520) - 65.0).abs() < 1e-9);
    }
}
