//! Native subprogram bodies.
//!
//! A domain subprogram may be *interpreted* (an instruction segment) or
//! *native* — a Rust closure registered here. Native bodies are how the
//! emulator realizes iMAX services: they are invoked by the ordinary CALL
//! instruction, receive the same context linkage (domain, caller, SRO,
//! argument) and pay the same domain-switch cost, so callers cannot tell
//! an OS service from user code — the uniformity property of paper §4.
//!
//! Native bodies must be *non-blocking*: they complete and return (or
//! fault) within the CALL. Services that need to wait use ports via their
//! conditional (non-blocking) operations, exactly as the real iMAX did for
//! asynchronous inter-level communication (paper §7.3).

use crate::fault::Fault;
use i432_arch::{AccessDescriptor, NativeId, ObjectRef, SpaceMut};
use std::fmt;

/// What a native body hands back to the CALL machinery.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeReturn {
    /// Access descriptor returned to the caller's `ret_ad` slot.
    pub ad: Option<AccessDescriptor>,
    /// Scalar returned to the caller's `ret_val` location.
    pub value: Option<u64>,
}

impl NativeReturn {
    /// Return nothing.
    pub fn void() -> NativeReturn {
        NativeReturn::default()
    }

    /// Return an access descriptor.
    pub fn ad(ad: AccessDescriptor) -> NativeReturn {
        NativeReturn {
            ad: Some(ad),
            value: None,
        }
    }

    /// Return a scalar.
    pub fn value(v: u64) -> NativeReturn {
        NativeReturn {
            ad: None,
            value: Some(v),
        }
    }
}

/// Execution context handed to a native body.
pub struct NativeCtx<'a> {
    /// The object space (full kernel-mode access: the body *is* the
    /// trusted implementation inside its protection domain). Native
    /// bodies run as an indivisible section — on a sharded space the
    /// caller holds every shard lock for the duration, which is what
    /// lets executive services (GC, storage compaction, the type
    /// manager) see a consistent whole.
    pub space: &'a mut dyn SpaceMut,
    /// The process on whose behalf the call runs.
    pub process: ObjectRef,
    /// The native call's own context object; its `CTX_SLOT_ARG` slot holds
    /// the argument AD, `CTX_SLOT_DOMAIN` the service's domain.
    pub context: ObjectRef,
    /// Cycles the body has consumed so far; bodies add their simulated
    /// cost here (charged to the calling process like any instruction).
    pub cycles: u64,
}

impl NativeCtx<'_> {
    /// Charges simulated cycles for work the body performed.
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Convenience: reads the argument AD passed by the caller, if any.
    pub fn arg(&mut self) -> Option<AccessDescriptor> {
        let ctx_ad = self.space.mint(
            self.context,
            i432_arch::Rights::READ | i432_arch::Rights::WRITE,
        );
        self.space
            .load_ad(ctx_ad, i432_arch::sysobj::CTX_SLOT_ARG)
            .ok()
            .flatten()
    }
}

/// The signature of a native body.
pub type NativeFn = dyn Fn(&mut NativeCtx<'_>) -> Result<NativeReturn, Fault> + Send + Sync;

/// The registry of native bodies for a system.
#[derive(Default)]
pub struct NativeRegistry {
    bodies: Vec<(String, Box<NativeFn>)>,
}

impl NativeRegistry {
    /// An empty registry.
    pub fn new() -> NativeRegistry {
        NativeRegistry::default()
    }

    /// Registers a body under a diagnostic name.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F) -> NativeId
    where
        F: Fn(&mut NativeCtx<'_>) -> Result<NativeReturn, Fault> + Send + Sync + 'static,
    {
        let id = NativeId(self.bodies.len() as u32);
        self.bodies.push((name.into(), Box::new(f)));
        id
    }

    /// Invokes a body.
    pub fn invoke(&self, id: NativeId, cx: &mut NativeCtx<'_>) -> Result<NativeReturn, Fault> {
        match self.bodies.get(id.0 as usize) {
            Some((_, f)) => f(cx),
            None => Err(Fault::with_detail(
                crate::fault::FaultKind::BadSubprogram,
                format!("unknown native body {}", id.0),
            )),
        }
    }

    /// Diagnostic name of a body.
    pub fn name_of(&self, id: NativeId) -> Option<&str> {
        self.bodies.get(id.0 as usize).map(|(n, _)| n.as_str())
    }

    /// Number of registered bodies.
    pub fn count(&self) -> usize {
        self.bodies.len()
    }
}

impl fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeRegistry")
            .field("count", &self.bodies.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use i432_arch::ObjectSpace;

    #[test]
    fn register_and_invoke() {
        let mut reg = NativeRegistry::new();
        let id = reg.register("answer", |cx| {
            cx.charge(10);
            Ok(NativeReturn::value(42))
        });
        assert_eq!(reg.name_of(id), Some("answer"));

        let mut space = ObjectSpace::new(1024, 64, 32);
        let root = space.root_sro();
        let obj = space
            .create_object(root, i432_arch::ObjectSpec::generic(0, 4))
            .unwrap();
        let mut cx = NativeCtx {
            space: &mut space,
            process: obj,
            context: obj,
            cycles: 0,
        };
        let r = reg.invoke(id, &mut cx).unwrap();
        assert_eq!(r.value, Some(42));
        assert_eq!(cx.cycles, 10);
    }

    #[test]
    fn unknown_body_faults() {
        let reg = NativeRegistry::new();
        let mut space = ObjectSpace::new(1024, 64, 32);
        let root = space.root_sro();
        let obj = space
            .create_object(root, i432_arch::ObjectSpec::generic(0, 4))
            .unwrap();
        let mut cx = NativeCtx {
            space: &mut space,
            process: obj,
            context: obj,
            cycles: 0,
        };
        let e = reg.invoke(NativeId(3), &mut cx).unwrap_err();
        assert_eq!(e.kind, FaultKind::BadSubprogram);
    }
}
