//! The fault taxonomy.
//!
//! When an instruction violates a protection check the process takes a
//! *process-level fault*: it is suspended and, per the paper's process
//! model, "sent back to software" — its access descriptor is delivered as
//! a message to its fault port, where an iMAX service decides what to do.
//!
//! Faults inside low *system levels* (paper §7.3) are not permitted at
//! all; the executive treats them as processor-level errors.

use i432_arch::ArchError;
use std::fmt;

/// Machine-level classification of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// An access descriptor lacked a required right.
    Rights,
    /// The level (lifetime) rule was violated by an AD store.
    Level,
    /// A data or access reference fell outside the segment part.
    Bounds,
    /// A null access-descriptor slot was used.
    NullAccess,
    /// An object was not of the required type.
    TypeMismatch,
    /// A stale (reclaimed) reference was used.
    StaleRef,
    /// Storage allocation failed (SRO or arena exhausted).
    StorageExhausted,
    /// The object table is full.
    TableExhausted,
    /// The referenced segment is swapped out; iMAX must bring it back.
    SegmentAbsent,
    /// CALL named a subprogram index outside the domain's table.
    BadSubprogram,
    /// The instruction pointer left the instruction segment.
    BadIp,
    /// A port's waiting-process area overflowed.
    QueueOverflow,
    /// Integer division by zero.
    DivideByZero,
    /// A timeout expired (the only fault system-level-2 processes may
    /// take).
    Timeout,
    /// Software-raised fault with an application code.
    Explicit(u16),
}

impl FaultKind {
    /// Stable numeric code recorded in the process object.
    pub fn code(self) -> u16 {
        match self {
            FaultKind::Rights => 1,
            FaultKind::Level => 2,
            FaultKind::Bounds => 3,
            FaultKind::NullAccess => 4,
            FaultKind::TypeMismatch => 5,
            FaultKind::StaleRef => 6,
            FaultKind::StorageExhausted => 7,
            FaultKind::TableExhausted => 8,
            FaultKind::SegmentAbsent => 9,
            FaultKind::BadSubprogram => 10,
            FaultKind::BadIp => 11,
            FaultKind::QueueOverflow => 12,
            FaultKind::DivideByZero => 13,
            FaultKind::Timeout => 14,
            FaultKind::Explicit(c) => 1000 + c,
        }
    }

    /// Whether a process at iMAX system level `sys_level` is permitted to
    /// take this fault (paper §7.3: "Processes below level 3 of the system
    /// ... are in general not permitted to fault. Processes at level 2 are
    /// actually permitted a limited set of timeout faults while those at
    /// level 1 are not permitted even these.").
    pub fn permitted_at(self, sys_level: u8) -> bool {
        match sys_level {
            0 | 1 => false,
            2 => matches!(self, FaultKind::Timeout),
            _ => true,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Rights => write!(f, "rights-violation"),
            FaultKind::Level => write!(f, "level-violation"),
            FaultKind::Bounds => write!(f, "bounds"),
            FaultKind::NullAccess => write!(f, "null-access"),
            FaultKind::TypeMismatch => write!(f, "type-mismatch"),
            FaultKind::StaleRef => write!(f, "stale-reference"),
            FaultKind::StorageExhausted => write!(f, "storage-exhausted"),
            FaultKind::TableExhausted => write!(f, "object-table-exhausted"),
            FaultKind::SegmentAbsent => write!(f, "segment-absent"),
            FaultKind::BadSubprogram => write!(f, "bad-subprogram"),
            FaultKind::BadIp => write!(f, "bad-instruction-pointer"),
            FaultKind::QueueOverflow => write!(f, "queue-overflow"),
            FaultKind::DivideByZero => write!(f, "divide-by-zero"),
            FaultKind::Timeout => write!(f, "timeout"),
            FaultKind::Explicit(c) => write!(f, "explicit({c})"),
        }
    }
}

/// A fully described fault occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Classification.
    pub kind: FaultKind,
    /// Human-readable detail (usually the underlying [`ArchError`]).
    pub detail: String,
    /// Machine-readable auxiliary datum; for [`FaultKind::SegmentAbsent`]
    /// this is the absent object's table index, so iMAX's fault service
    /// can ask the swapping manager to bring it back.
    pub aux: u64,
}

impl Fault {
    /// A fault with no extra detail.
    pub fn new(kind: FaultKind) -> Fault {
        Fault {
            kind,
            detail: String::new(),
            aux: 0,
        }
    }

    /// A fault annotated with detail text.
    pub fn with_detail(kind: FaultKind, detail: impl Into<String>) -> Fault {
        Fault {
            kind,
            detail: detail.into(),
            aux: 0,
        }
    }
}

impl From<ArchError> for Fault {
    fn from(e: ArchError) -> Fault {
        let kind = match &e {
            ArchError::RightsViolation { .. } => FaultKind::Rights,
            ArchError::LevelViolation { .. } => FaultKind::Level,
            ArchError::DataBounds { .. } | ArchError::AccessBounds { .. } => FaultKind::Bounds,
            ArchError::NullAccess { .. } => FaultKind::NullAccess,
            ArchError::TypeMismatch { .. } => FaultKind::TypeMismatch,
            ArchError::StaleRef(_) | ArchError::FreeEntry(_) | ArchError::BadIndex(_) => {
                FaultKind::StaleRef
            }
            ArchError::ArenaExhausted { .. } | ArchError::PartTooLarge { .. } => {
                FaultKind::StorageExhausted
            }
            ArchError::TableExhausted => FaultKind::TableExhausted,
            ArchError::SegmentAbsent(_) => FaultKind::SegmentAbsent,
        };
        let aux = match &e {
            ArchError::SegmentAbsent(i) => i.0 as u64,
            _ => 0,
        };
        Fault {
            kind,
            detail: e.to_string(),
            aux,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.detail.is_empty() {
            write!(f, "{}", self.kind)
        } else {
            write!(f, "{}: {}", self.kind, self.detail)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{Level, Rights};

    #[test]
    fn arch_errors_map_to_kinds() {
        let f: Fault = ArchError::RightsViolation {
            needed: Rights::WRITE,
            held: Rights::READ,
        }
        .into();
        assert_eq!(f.kind, FaultKind::Rights);

        let f: Fault = ArchError::LevelViolation {
            stored: Level(2),
            container: Level(0),
        }
        .into();
        assert_eq!(f.kind, FaultKind::Level);

        let f: Fault = ArchError::TableExhausted.into();
        assert_eq!(f.kind, FaultKind::TableExhausted);
    }

    #[test]
    fn codes_are_distinct() {
        use std::collections::HashSet;
        let kinds = [
            FaultKind::Rights,
            FaultKind::Level,
            FaultKind::Bounds,
            FaultKind::NullAccess,
            FaultKind::TypeMismatch,
            FaultKind::StaleRef,
            FaultKind::StorageExhausted,
            FaultKind::TableExhausted,
            FaultKind::SegmentAbsent,
            FaultKind::BadSubprogram,
            FaultKind::BadIp,
            FaultKind::QueueOverflow,
            FaultKind::DivideByZero,
            FaultKind::Timeout,
            FaultKind::Explicit(0),
            FaultKind::Explicit(7),
        ];
        let codes: HashSet<u16> = kinds.iter().map(|k| k.code()).collect();
        assert_eq!(codes.len(), kinds.len());
    }

    /// Paper §7.3 fault-permission tiers.
    #[test]
    fn system_level_fault_permissions() {
        assert!(!FaultKind::Timeout.permitted_at(1));
        assert!(FaultKind::Timeout.permitted_at(2));
        assert!(!FaultKind::Rights.permitted_at(2));
        assert!(FaultKind::Rights.permitted_at(3));
        assert!(FaultKind::SegmentAbsent.permitted_at(4));
        assert!(!FaultKind::SegmentAbsent.permitted_at(2));
    }
}
