//! Hardware process objects, processor binding and implicit dispatching.
//!
//! Paper §5: "the hardware defines a process object which contains the
//! information for scheduling processes, dispatching them on any one of
//! several potentially available processors, and sending them back to
//! software when various fault or scheduling conditions arise. All
//! hardware operations involving a process object occur implicitly."

use crate::{
    context::{create_context, subprogram_of},
    fault::{Fault, FaultKind},
    port::{self, RecvOutcome},
};
use i432_arch::{
    sysobj::{
        CPU_ACCESS_SLOTS, CPU_SLOT_DISPATCH_PORT, CPU_SLOT_PROCESS, PROC_ACCESS_SLOTS,
        PROC_SLOT_CONTEXT, PROC_SLOT_DISPATCH_PORT, PROC_SLOT_FAULT_PORT, PROC_SLOT_SCHED_PORT,
        PROC_SLOT_SRO,
    },
    AccessDescriptor, Level, ObjectRef, ObjectSpec, ObjectType, ProcessState, ProcessStatus,
    ProcessorState, ProcessorStatus, Rights, SpaceAccess, SpaceAccessExt, SpaceMut, SysState,
    SystemType,
};

/// Bytes of scratch data every process object carries (accounting area).
pub const PROC_DATA_BYTES: u32 = 64;

/// Options for creating a process object.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// Dispatching port the process runs from (required).
    pub dispatch_port: AccessDescriptor,
    /// Fault port, if any.
    pub fault_port: Option<AccessDescriptor>,
    /// Scheduler port, if any (receives the process at scheduling
    /// events).
    pub scheduler_port: Option<AccessDescriptor>,
    /// Priority (lower = more urgent).
    pub priority: u8,
    /// Deadline for deadline-dispatched systems.
    pub deadline: u64,
    /// Time slice in cycles.
    pub timeslice: u64,
    /// iMAX system level (paper §7.3); 3 = ordinary application.
    pub sys_level: u8,
    /// Lifetime level of the process object.
    pub level: Level,
}

impl ProcessSpec {
    /// A standard application process on the given dispatching port.
    pub fn new(dispatch_port: AccessDescriptor) -> ProcessSpec {
        ProcessSpec {
            dispatch_port,
            fault_port: None,
            scheduler_port: None,
            priority: 128,
            deadline: u64::MAX,
            timeslice: 50_000,
            sys_level: 3,
            level: Level::GLOBAL,
        }
    }
}

/// Creates a process object with a root context executing `subprogram` of
/// `domain` with the given argument. The process is left in `Ready`
/// status but **not** enqueued; call [`port::make_ready`] (or iMAX's
/// process manager) to enter it into the dispatching mix.
pub fn make_process<S: SpaceAccess + ?Sized>(
    space: &mut S,
    sro: ObjectRef,
    domain_ad: AccessDescriptor,
    subprogram: u32,
    arg: Option<AccessDescriptor>,
    spec: ProcessSpec,
) -> Result<ObjectRef, Fault> {
    space
        .qualify(domain_ad, Rights::CALL)
        .map_err(Fault::from)?;
    let mut pstate = ProcessState::new(spec.level);
    pstate.priority = spec.priority;
    pstate.deadline = spec.deadline;
    pstate.timeslice = spec.timeslice;
    pstate.slice_remaining = spec.timeslice;
    pstate.sys_level = spec.sys_level;
    let proc_ref = space
        .create_object(
            sro,
            ObjectSpec {
                data_len: PROC_DATA_BYTES,
                access_len: PROC_ACCESS_SLOTS,
                otype: ObjectType::System(SystemType::Process),
                level: Some(spec.level),
                sys: SysState::Process(pstate),
            },
        )
        .map_err(Fault::from)?;
    space
        .store_ad_hw(proc_ref, PROC_SLOT_DISPATCH_PORT, Some(spec.dispatch_port))
        .map_err(Fault::from)?;
    space
        .store_ad_hw(proc_ref, PROC_SLOT_FAULT_PORT, spec.fault_port)
        .map_err(Fault::from)?;
    space
        .store_ad_hw(proc_ref, PROC_SLOT_SCHED_PORT, spec.scheduler_port)
        .map_err(Fault::from)?;
    let sro_ad = space.mint(sro, Rights::ALLOCATE | Rights::RECLAIM);
    space
        .store_ad_hw(proc_ref, PROC_SLOT_SRO, Some(sro_ad))
        .map_err(Fault::from)?;
    // Root context.
    let sub = subprogram_of(space, domain_ad.obj, subprogram)?;
    let ctx = create_context(
        space, sro, domain_ad, subprogram, &sub, arg, None, spec.level, None, None,
    )?;
    let ctx_ad = space.mint(ctx, Rights::READ | Rights::WRITE);
    space
        .store_ad_hw(proc_ref, PROC_SLOT_CONTEXT, Some(ctx_ad))
        .map_err(Fault::from)?;
    Ok(proc_ref)
}

/// Creates a processor object bound to a dispatching port.
pub fn make_processor<S: SpaceAccess + ?Sized>(
    space: &mut S,
    sro: ObjectRef,
    id: u32,
    dispatch_port: AccessDescriptor,
) -> Result<ObjectRef, Fault> {
    let cpu = space
        .create_object(
            sro,
            ObjectSpec {
                data_len: 0,
                access_len: CPU_ACCESS_SLOTS,
                otype: ObjectType::System(SystemType::Processor),
                level: Some(Level::GLOBAL),
                sys: SysState::Processor(ProcessorState::new(id)),
            },
        )
        .map_err(Fault::from)?;
    space
        .store_ad_hw(cpu, CPU_SLOT_DISPATCH_PORT, Some(dispatch_port))
        .map_err(Fault::from)?;
    Ok(cpu)
}

/// Binds `proc_ref` to the processor (dispatch completion).
pub fn bind<S: SpaceAccess + ?Sized>(
    space: &mut S,
    cpu: ObjectRef,
    proc_ref: ObjectRef,
) -> Result<(), Fault> {
    let pad = space.mint(proc_ref, Rights::NONE);
    space
        .store_ad_hw(cpu, CPU_SLOT_PROCESS, Some(pad))
        .map_err(Fault::from)?;
    space
        .with_processor_mut(cpu, |p| p.status = ProcessorStatus::Running)
        .map_err(Fault::from)?;
    space
        .with_process_mut(proc_ref, |ps| ps.status = ProcessStatus::Running)
        .map_err(Fault::from)?;
    Ok(())
}

/// Unbinds the current process from the processor, which goes idle.
pub fn unbind<S: SpaceAccess + ?Sized>(space: &mut S, cpu: ObjectRef) -> Result<(), Fault> {
    space
        .store_ad_hw(cpu, CPU_SLOT_PROCESS, None)
        .map_err(Fault::from)?;
    space
        .with_processor_mut(cpu, |p| p.status = ProcessorStatus::Idle)
        .map_err(Fault::from)?;
    Ok(())
}

/// Returns the process currently bound to the processor, if any.
pub fn current_process<S: SpaceAccess + ?Sized>(
    space: &mut S,
    cpu: ObjectRef,
) -> Result<Option<ObjectRef>, Fault> {
    Ok(space
        .load_ad_hw(cpu, CPU_SLOT_PROCESS)
        .map_err(Fault::from)?
        .map(|ad| ad.obj))
}

/// Attempts to dispatch a ready process from the processor's dispatching
/// port. Stopped or non-ready processes found in the queue are handed to
/// their scheduler port instead of being bound.
pub fn try_dispatch<S: SpaceMut + ?Sized>(
    space: &mut S,
    cpu: ObjectRef,
) -> Result<Option<ObjectRef>, Fault> {
    let dispatch = space
        .load_ad_hw(cpu, CPU_SLOT_DISPATCH_PORT)
        .map_err(Fault::from)?
        .ok_or_else(|| {
            Fault::with_detail(FaultKind::NullAccess, "processor has no dispatching port")
        })?;
    loop {
        match port::receive(space, None, dispatch, false, true)? {
            RecvOutcome::Received(msg) => {
                let proc_ref = msg.obj;
                let runnable = {
                    let ps = space.process(proc_ref).map_err(Fault::from)?;
                    ps.is_started() && ps.status == ProcessStatus::Ready
                };
                if runnable {
                    bind(space, cpu, proc_ref)?;
                    return Ok(Some(proc_ref));
                }
                // Not runnable: park it with its scheduler if it has one;
                // otherwise mark it Stopped so its manager (which holds an
                // access for it) can re-enter it into the mix on start.
                if !notify_scheduler(space, proc_ref)? {
                    space.process_mut(proc_ref).map_err(Fault::from)?.status =
                        ProcessStatus::Stopped;
                }
            }
            RecvOutcome::WouldBlock => return Ok(None),
            RecvOutcome::Blocked => unreachable!("carrier receive never blocks"),
        }
    }
}

/// Sends the process to its scheduler port (scheduling event). Returns
/// `false` when the process has no scheduler port.
pub fn notify_scheduler<S: SpaceMut + ?Sized>(
    space: &mut S,
    proc_ref: ObjectRef,
) -> Result<bool, Fault> {
    let Some(sched) = space
        .load_ad_hw(proc_ref, PROC_SLOT_SCHED_PORT)
        .map_err(Fault::from)?
    else {
        return Ok(false);
    };
    let pad = space.mint(proc_ref, Rights::NONE);
    port::send(space, None, sched, pad, 0, false, true)?;
    Ok(true)
}

/// Delivers a faulted process to its fault port. Returns `false` when the
/// process has no fault port (the process is then terminated).
pub fn deliver_fault<S: SpaceMut + ?Sized>(
    space: &mut S,
    proc_ref: ObjectRef,
) -> Result<bool, Fault> {
    let Some(fault_port) = space
        .load_ad_hw(proc_ref, PROC_SLOT_FAULT_PORT)
        .map_err(Fault::from)?
    else {
        space.process_mut(proc_ref).map_err(Fault::from)?.status = ProcessStatus::Terminated;
        return Ok(false);
    };
    let pad = space.mint(proc_ref, Rights::NONE);
    port::send(space, None, fault_port, pad, 0, false, true)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{
        CodeBody, CodeRef, DomainState, ObjectSpace, PortDiscipline, PortState, Subprogram,
    };

    fn setup() -> (ObjectSpace, ObjectRef, AccessDescriptor, AccessDescriptor) {
        let mut s = ObjectSpace::new(64 * 1024, 4096, 1024);
        let root = s.root_sro();
        let port = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: PortState::access_slots(16, 16),
                    otype: ObjectType::System(SystemType::Port),
                    level: None,
                    sys: SysState::Port(PortState::new(16, 16, PortDiscipline::Priority)),
                },
            )
            .unwrap();
        let dispatch = s.mint(port, Rights::NONE);
        let dom = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: 2,
                    otype: ObjectType::System(SystemType::Domain),
                    level: None,
                    sys: SysState::Domain(DomainState {
                        name: "d".into(),
                        subprograms: vec![Subprogram {
                            name: "main".into(),
                            body: CodeBody::Interpreted(CodeRef(0)),
                            ctx_data_len: 32,
                            ctx_access_len: 8,
                        }],
                    }),
                },
            )
            .unwrap();
        let dom_ad = s.mint(dom, Rights::CALL);
        (s, root, dispatch, dom_ad)
    }

    #[test]
    fn make_process_builds_linkage() {
        let (mut s, root, dispatch, dom_ad) = setup();
        let p = make_process(&mut s, root, dom_ad, 0, None, ProcessSpec::new(dispatch)).unwrap();
        assert!(s.load_ad_hw(p, PROC_SLOT_CONTEXT).unwrap().is_some());
        assert!(s.load_ad_hw(p, PROC_SLOT_DISPATCH_PORT).unwrap().is_some());
        assert_eq!(s.process(p).unwrap().status, ProcessStatus::Ready);
    }

    #[test]
    fn dispatch_binds_ready_process() {
        let (mut s, root, dispatch, dom_ad) = setup();
        let p = make_process(&mut s, root, dom_ad, 0, None, ProcessSpec::new(dispatch)).unwrap();
        port::make_ready(&mut s, p).unwrap();
        let cpu = make_processor(&mut s, root, 0, dispatch).unwrap();
        let got = try_dispatch(&mut s, cpu).unwrap();
        assert_eq!(got, Some(p));
        assert_eq!(s.process(p).unwrap().status, ProcessStatus::Running);
        assert_eq!(s.processor(cpu).unwrap().status, ProcessorStatus::Running);
        assert_eq!(current_process(&mut s, cpu).unwrap(), Some(p));
    }

    #[test]
    fn dispatch_empty_port_returns_none() {
        let (mut s, root, dispatch, _dom_ad) = setup();
        let cpu = make_processor(&mut s, root, 0, dispatch).unwrap();
        assert_eq!(try_dispatch(&mut s, cpu).unwrap(), None);
        assert_eq!(s.processor(cpu).unwrap().status, ProcessorStatus::Idle);
    }

    #[test]
    fn priority_dispatch_prefers_urgent() {
        let (mut s, root, dispatch, dom_ad) = setup();
        let mut spec_lo = ProcessSpec::new(dispatch);
        spec_lo.priority = 200;
        let lo = make_process(&mut s, root, dom_ad, 0, None, spec_lo).unwrap();
        let mut spec_hi = ProcessSpec::new(dispatch);
        spec_hi.priority = 10;
        let hi = make_process(&mut s, root, dom_ad, 0, None, spec_hi).unwrap();
        port::make_ready(&mut s, lo).unwrap();
        port::make_ready(&mut s, hi).unwrap();
        let cpu = make_processor(&mut s, root, 0, dispatch).unwrap();
        assert_eq!(try_dispatch(&mut s, cpu).unwrap(), Some(hi));
    }

    #[test]
    fn stopped_process_is_not_dispatched() {
        let (mut s, root, dispatch, dom_ad) = setup();
        let p = make_process(&mut s, root, dom_ad, 0, None, ProcessSpec::new(dispatch)).unwrap();
        port::make_ready(&mut s, p).unwrap();
        s.process_mut(p).unwrap().stop_count = 1;
        let cpu = make_processor(&mut s, root, 0, dispatch).unwrap();
        assert_eq!(try_dispatch(&mut s, cpu).unwrap(), None);
    }

    #[test]
    fn fault_delivery_without_port_terminates() {
        let (mut s, root, dispatch, dom_ad) = setup();
        let p = make_process(&mut s, root, dom_ad, 0, None, ProcessSpec::new(dispatch)).unwrap();
        assert!(!deliver_fault(&mut s, p).unwrap());
        assert_eq!(s.process(p).unwrap().status, ProcessStatus::Terminated);
    }
}
